//! Protein in an explicit water box — the Fig. 12(b) scenario.
//!
//! The paper's headline system is the SARS-CoV-2 spike protein solvated in
//! water (101,299,008 atoms). This example reproduces the *physics* of
//! Fig. 12(b) at a workstation scale: it computes the gas-phase protein
//! spectrum and the solvated spectrum, showing how the water bands (O–H
//! bend ≈ 1640 cm⁻¹, stretch ≈ 3400 cm⁻¹) obscure the protein signal while
//! the C–H stretch region (≈ 2900 cm⁻¹) remains discernible.
//!
//! ```sh
//! cargo run --release -p qfr-core --example solvated_protein -- 40
//! ```

use qfr_core::RamanWorkflow;
use qfr_geom::{ProteinBuilder, SolvatedSystem};

fn main() {
    let n_residues: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);

    let protein = ProteinBuilder::new(n_residues).seed(11).build();
    println!("protein: {} atoms", protein.n_atoms());

    // Solvate with a 6 A padding shell of water.
    let solvated = SolvatedSystem::build(&protein, 6.0, 3.1, 2.4, 13);
    println!("solvated: {} atoms total ({} waters)", solvated.n_atoms(), solvated.n_waters);

    let gas = RamanWorkflow::new(protein).sigma(5.0).run().expect("gas-phase run failed");
    let wet = RamanWorkflow::new(solvated)
        .sigma(20.0) // the paper's solvated smearing
        .run()
        .expect("solvated run failed");

    println!("\ngas phase : {}", gas.summary());
    println!("solvated  : {}", wet.summary());

    let mut gas_spec = gas.spectrum.clone();
    let mut wet_spec = wet.spectrum.clone();
    gas_spec.normalize_max();
    wet_spec.normalize_max();

    // The Fig. 12(b) observation: water obscures the mid-range protein
    // bands but the C-H stretch remains visible next to the O-H stretch.
    let value_at = |spec: &qfr_solver::RamanSpectrum, nu: f64| -> f64 {
        let idx =
            spec.wavenumbers.iter().position(|&w| w >= nu).unwrap_or(spec.wavenumbers.len() - 1);
        spec.intensities[idx]
    };
    println!("\nrelative intensity (normalized to each spectrum's max):");
    for (label, nu) in [
        ("amide I  1650", 1650.0),
        ("water bend 1640", 1640.0),
        ("C-H str  2900", 2900.0),
        ("O-H str  3400", 3400.0),
    ] {
        println!(
            "  {label:>16} cm-1 | gas {:>6.3} | solvated {:>6.3}",
            value_at(&gas_spec, nu),
            value_at(&wet_spec, nu)
        );
    }
    println!("\nsolvated spectrum:\n{}", wet_spec.ascii_plot(35, 60));
}
