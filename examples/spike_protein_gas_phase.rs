//! Gas-phase protein Raman spectrum — the Fig. 12(a) scenario.
//!
//! Builds a synthetic spike-protein-like chain (the paper's S protein has
//! 3,180 residues; pass a residue count as the first argument, default 300
//! for a quick run), computes its Raman spectrum with the paper's
//! gas-phase smearing of 5 cm⁻¹, and reports the characteristic bands the
//! paper discusses: Phe ring breathing ≈ 1030 cm⁻¹, CH₂ bending ≈ 1450
//! cm⁻¹, the amide III region 1200–1360 cm⁻¹, amide I ≈ 1650 cm⁻¹, and the
//! C–H stretch region ≈ 2900 cm⁻¹.
//!
//! ```sh
//! cargo run --release -p qfr-core --example spike_protein_gas_phase -- 300
//! ```

use qfr_core::RamanWorkflow;
use qfr_geom::ProteinBuilder;

fn main() {
    let n_residues: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);

    println!("building a synthetic {n_residues}-residue protein...");
    let system = ProteinBuilder::new(n_residues).seed(7).build();
    println!("protein: {} residues, {} atoms", system.residues.len(), system.n_atoms());

    let result = RamanWorkflow::new(system)
        .sigma(5.0) // the paper's gas-phase smearing
        .lanczos_steps(150)
        .run()
        .expect("workflow failed");

    println!("decomposition: {}", result.stats.summary());
    println!("run: {}", result.summary());

    let bands = [
        ("Phe ring breathing", 980.0, 1100.0),
        ("amide III", 1200.0, 1360.0),
        ("CH2 bending", 1400.0, 1500.0),
        ("amide I (C=O)", 1580.0, 1750.0),
        ("C-H stretch", 2800.0, 3050.0),
    ];
    let peaks = result.spectrum.peaks_above(0.02);
    println!("\nband assignment check:");
    for (name, lo, hi) in bands {
        let found: Vec<f64> =
            peaks.iter().cloned().filter(|p| (lo..hi).contains(p)).map(|p| p.round()).collect();
        let status = if found.is_empty() { "absent" } else { "present" };
        println!("  {name:<22} {lo:>6.0}-{hi:<6.0} cm-1: {status} {found:?}");
    }
    println!("\nspectrum:\n{}", result.spectrum.ascii_plot(35, 60));
}
