//! Pure-water Raman spectrum at increasing system size, with the
//! low-frequency intermolecular band.
//!
//! The paper computes a 101,250,000-atom pure-water spectrum and observes
//! "the emergence of peaks in the low-frequency region ... attributed to
//! two-body interactions and the increased number of atoms". This example
//! sweeps the box size, showing the low-frequency (< 400 cm⁻¹)
//! intermolecular intensity growing with system size relative to the
//! intramolecular bands, plus the matrix-free [`qfr_core::StreamedHessian`]
//! path that makes beyond-memory sizes tractable.
//!
//! ```sh
//! cargo run --release -p qfr-core --example water_box_raman
//! ```

use qfr_core::{RamanWorkflow, StreamedHessian};
use qfr_fragment::{Decomposition, DecompositionParams, FragmentEngine, MassWeighted};
use qfr_geom::WaterBoxBuilder;
use qfr_model::ForceFieldEngine;
use qfr_solver::{raman_lanczos, RamanOptions};

fn main() {
    println!("size sweep (assembled path):");
    for n in [8usize, 64, 216] {
        let system = WaterBoxBuilder::new(n).seed(21).build();
        let result = RamanWorkflow::new(system).sigma(20.0).run().expect("workflow failed");
        let mut spec = result.spectrum.clone();
        spec.normalize_max();
        // Fraction of spectral weight below 400 cm^-1.
        let low: f64 = spec
            .wavenumbers
            .iter()
            .zip(&spec.intensities)
            .filter(|(&w, _)| w < 400.0)
            .map(|(_, &i)| i)
            .sum();
        let total: f64 = spec.intensities.iter().sum();
        println!(
            "  {:>6} molecules ({:>6} atoms): ww pairs {:>6}, low-freq weight {:.3}%",
            n,
            3 * n,
            result.stats.n_water_water_pairs,
            100.0 * low / total
        );
    }

    // The matrix-free path: identical spectrum without storing the Hessian.
    println!("\nmatrix-free streamed operator (64 molecules):");
    let system = WaterBoxBuilder::new(64).seed(21).build();
    let decomposition = Decomposition::new(&system, DecompositionParams::default());
    let engine = ForceFieldEngine::new();

    // dalpha still needs one engine pass; the Hessian is never stored.
    let responses: Vec<_> =
        decomposition.jobs.iter().map(|j| engine.compute(&j.structure(&system))).collect();
    let assembled =
        qfr_fragment::assemble::assemble(&decomposition.jobs, &responses, system.n_atoms());
    let mw = MassWeighted::new(&assembled, &system.masses());

    let streamed = StreamedHessian::new(&system, &decomposition, &engine);
    let opts = RamanOptions { sigma: 20.0, lanczos_steps: 80, ..Default::default() };
    let spec = raman_lanczos(&streamed, &mw.dalpha, &opts);
    println!(
        "  peak at {:?} cm-1 ({} Lanczos steps, zero stored Hessian entries)",
        spec.peak().map(|p| p.round()),
        opts.lanczos_steps
    );
    println!("\nspectrum:\n{}", spec.ascii_plot(30, 60));
}
