//! Quickstart: Raman spectrum of a small water box in ~30 lines.
//!
//! ```sh
//! cargo run --release -p qfr-core --example quickstart
//! ```

use qfr_core::RamanWorkflow;
use qfr_geom::WaterBoxBuilder;

fn main() {
    // 1. Build a system: 64 water molecules at liquid density.
    let system = WaterBoxBuilder::new(64).seed(42).build();
    println!("system: {} atoms, {} waters", system.n_atoms(), system.n_waters);

    // 2. Run the full QF-RAMAN pipeline: quantum fragmentation ->
    //    per-fragment engine -> Eq.(1) assembly -> Lanczos/GAGQ solver.
    let result = RamanWorkflow::new(system)
        .sigma(20.0) // cm^-1 smearing, the paper's solvated-phase setting
        .run()
        .expect("workflow failed");

    // 3. Inspect the decomposition and the spectrum.
    println!("decomposition: {}", result.stats.summary());
    println!("run: {}", result.summary());
    println!(
        "\ncharacteristic bands (cm^-1): {:?}",
        result.spectrum.peaks_above(0.10).iter().map(|p| p.round()).collect::<Vec<_>>()
    );
    println!("\nspectrum:\n{}", result.spectrum.ascii_plot(30, 60));
}
