//! IR absorption, polarized Raman and depolarization ratios — the
//! companion observables the QF-RAMAN machinery yields for free.
//!
//! The same mass-weighted Hessian and Lanczos/GAGQ solver that produce the
//! Raman spectrum evaluate `Σ_c d_cᵀ δ(ω−H) d_c` for the dipole
//! derivatives (IR) and split the polarizability functionals into
//! rotational invariants (I_∥, I_⊥, ρ = I_⊥/I_∥). The classic textbook
//! signatures come out: water's symmetric stretch is polarized (ρ < ¾),
//! IR and Raman select different bands, and low-frequency Stokes
//! intensities grow under the 300 K Bose factor.
//!
//! ```sh
//! cargo run --release -p qfr-core --example ir_and_polarized
//! ```

use qfr_fragment::{assemble, Decomposition, DecompositionParams, FragmentEngine, MassWeighted};
use qfr_geom::WaterBoxBuilder;
use qfr_model::ForceFieldEngine;
use qfr_solver::{ir_lanczos, raman_lanczos, raman_polarized, RamanOptions};

fn main() {
    let system = WaterBoxBuilder::new(64).seed(17).build();
    println!("system: {} atoms", system.n_atoms());

    // Assemble once, evaluate three observables from the same operators.
    let engine = ForceFieldEngine::new();
    let d = Decomposition::new(&system, DecompositionParams::default());
    let responses: Vec<_> = d.jobs.iter().map(|j| engine.compute(&j.structure(&system))).collect();
    let asm = assemble::assemble(&d.jobs, &responses, system.n_atoms());
    let mw = MassWeighted::new(&asm, &system.masses());
    let opts = RamanOptions { sigma: 20.0, lanczos_steps: 120, ..Default::default() };

    let mut raman = raman_lanczos(&mw.hessian, &mw.dalpha, &opts);
    let mut ir = ir_lanczos(&mw.hessian, &mw.dmu, &opts);
    let pol = raman_polarized(&mw.hessian, &mw.dalpha, &opts);
    let rho = pol.depolarization_ratio(0.02);

    raman.normalize_max();
    ir.normalize_max();

    let at = |s: &qfr_solver::SpectralDensity, nu: f64| {
        let i = s.wavenumbers.iter().position(|&w| w >= nu).unwrap();
        s.intensities[i]
    };
    println!("\nband comparison (normalized):");
    println!("  band            |  Raman |   IR   | depol. ratio");
    for (label, nu) in
        [("libration  650", 650.0), ("bend      1750", 1750.0), ("stretch   3430", 3430.0)]
    {
        println!(
            "  {label:<15} | {:>6.3} | {:>6.3} | {:>6.3}",
            at(&raman, nu),
            at(&ir, nu),
            at(&rho, nu)
        );
    }

    // Thermal factor: low-frequency Stokes intensity grows strongly at
    // room temperature, high-frequency bands barely change.
    let mut thermal = raman.clone();
    thermal.apply_bose_factor(300.0);
    println!(
        "\n300 K Bose enhancement: x{:.2} at 200 cm-1, x{:.2} at 3430 cm-1",
        at(&thermal, 200.0) / at(&raman, 200.0).max(1e-12),
        at(&thermal, 3430.0) / at(&raman, 3430.0).max(1e-12)
    );

    println!("\nIR spectrum:\n{}", ir.ascii_plot(25, 55));
    println!("Raman spectrum:\n{}", raman.ascii_plot(25, 55));
}
