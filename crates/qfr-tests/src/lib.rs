//! # qfr-tests
//!
//! Cross-crate integration tests for the QF-RAMAN reproduction. The crate
//! itself is empty; everything lives under `tests/`:
//!
//! - `integration.rs` — end-to-end pipeline invariants, including the
//!   *exactness* test: for pure water the force field contains no
//!   inter-molecular terms beyond two-body, so the Eq. (1) fragment
//!   expansion must reproduce the monolithic whole-system Hessian to
//!   floating-point accuracy;
//! - `proptest_pipeline.rs` — property-based tests over randomized systems
//!   and solver parameters.

#![forbid(unsafe_code)]
