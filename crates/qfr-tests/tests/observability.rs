//! Integration tests for the observability layer (`qfr-obs`).
//!
//! These run in one test binary, and the trace/counter stores are process
//! globals, so every test takes `GUARD` and resets the stores inside the
//! critical section — exact-count assertions are safe here in a way they
//! are not in the library unit tests.

use qfr_sched::{
    run_master_leader_worker, FaultPlan, FragmentWorkItem, RecoveryPolicy, RuntimeConfig,
    SortedSingletonPolicy, Task,
};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// Walks the Chrome trace events and checks begin/end nesting per thread
/// (the invariant the span guards are supposed to guarantee): every "E"
/// closes the most recent open "B" of its tid, and no tid ends with an
/// open span.
fn check_nesting(events: &[serde_json::Value]) {
    let mut stacks: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
    for e in events {
        let tid = e["tid"].as_i64().expect("tid");
        let name = e["name"].as_str().expect("name").to_string();
        match e["ph"].as_str().expect("ph") {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let top = stacks.entry(tid).or_default().pop();
                assert_eq!(top.as_deref(), Some(name.as_str()), "mismatched end on tid {tid}");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
}

#[test]
fn chrome_trace_is_wellformed_and_nested() {
    let _g = lock();
    qfr_obs::reset_all();
    qfr_obs::trace::enable();

    // A scheduled end-to-end run: main-thread workflow spans, leader-thread
    // execute spans, and master-loop lifecycle instants all interleave.
    let system = qfr_geom::WaterBoxBuilder::new(6).seed(7).build();
    qfr_core::RamanWorkflow::new(system)
        .sigma(25.0)
        .lanczos_steps(40)
        .run_scheduled(RuntimeConfig { n_leaders: 2, workers_per_leader: 2, ..Default::default() })
        .expect("scheduled run");

    let json = qfr_obs::trace::export_chrome_json();
    qfr_obs::trace::disable();
    qfr_obs::reset_all();

    let doc = serde_json::from_str(&json).expect("trace must be valid JSON");
    assert_eq!(doc["displayTimeUnit"].as_str(), Some("ms"));
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "an instrumented run must emit events");
    for e in events {
        assert!(e["ts"].as_i64().is_some(), "every event carries a timestamp: {e:?}");
        assert_eq!(e["pid"].as_i64(), Some(1));
    }
    check_nesting(events);
    let names: std::collections::BTreeSet<&str> =
        events.iter().filter_map(|e| e["name"].as_str()).collect();
    for expected in ["workflow.decompose", "workflow.engine", "workflow.solver", "task.enqueue"] {
        assert!(names.contains(expected), "missing {expected} in {names:?}");
    }
}

#[test]
fn injected_fault_events_match_forecast() {
    let _g = lock();
    qfr_obs::reset_all();
    qfr_obs::trace::enable();

    let items: Vec<FragmentWorkItem> = (0..12).map(|i| FragmentWorkItem::new(i, 6)).collect();
    let plan = FaultPlan::with_failure_rate(9, 0.4).permanent([5]);
    let recovery = RecoveryPolicy { max_attempts: 3, backoff_base: 1e-4, ..Default::default() };

    // Singleton tasks mirror what SortedSingletonPolicy will emit (task
    // ids differ, but the forecast depends only on the fragment ids).
    let tasks: Vec<Task> = items.iter().map(|f| Task { id: f.id, fragments: vec![*f] }).collect();
    let forecast = plan.forecast(&tasks, &recovery);
    assert!(forecast.retries > 0, "seed 9 at 40% must produce retries");
    assert!(
        forecast.quarantined_fragments.contains(&5),
        "permanent failure must be forecast as quarantined"
    );

    let report = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(items)),
        |_item| true,
        RuntimeConfig {
            n_leaders: 3,
            workers_per_leader: 1,
            recovery,
            faults: plan,
            ..Default::default()
        },
    );

    let json = qfr_obs::trace::export_chrome_json();
    qfr_obs::trace::disable();
    let retried = qfr_obs::counter::value_of("sched.tasks.retried").unwrap_or(0);
    let quarantined = qfr_obs::counter::value_of("sched.tasks.quarantined").unwrap_or(0);
    qfr_obs::reset_all();

    // The executor's report, the counters, and the trace events must all
    // agree with the pure-function forecast.
    assert_eq!(report.retries, forecast.retries, "report retries vs forecast");
    assert_eq!(
        report.quarantined_fragments, forecast.quarantined_fragments,
        "report quarantine vs forecast"
    );
    assert_eq!(retried, forecast.retries as u64, "counter retries vs forecast");
    assert_eq!(
        quarantined,
        forecast.quarantined_fragments.len() as u64,
        "counter quarantine vs forecast"
    );

    let doc = serde_json::from_str(&json).expect("valid trace JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents");
    let count = |name: &str| events.iter().filter(|e| e["name"].as_str() == Some(name)).count();
    assert_eq!(count("task.retry"), forecast.retries, "trace retry events vs forecast");
    assert_eq!(
        count("task.quarantine"),
        forecast.quarantined_fragments.len(),
        "trace quarantine events vs forecast"
    );
    check_nesting(events);
}

#[test]
fn deterministic_report_excludes_timing_sensitive_counters() {
    let _g = lock();
    qfr_obs::reset_all();

    let items: Vec<FragmentWorkItem> = (0..8).map(|i| FragmentWorkItem::new(i, 6)).collect();
    run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(items)),
        |_item| true,
        RuntimeConfig { n_leaders: 2, workers_per_leader: 1, ..Default::default() },
    );

    let det = qfr_obs::counter::deterministic_report();
    let snap = qfr_obs::counter::snapshot();
    qfr_obs::reset_all();

    assert!(det.contains("sched.tasks.enqueued = 8"), "deterministic block:\n{det}");
    assert!(det.contains("sched.tasks.completed = 8"), "deterministic block:\n{det}");
    // Every registered counter must land on the right side of the
    // determinism contract: deterministic ones in the CI-gated block,
    // timing-sensitive ones excluded from it.
    let gated: std::collections::BTreeSet<&str> =
        det.lines().filter_map(|l| l.split(" = ").next()).collect();
    for c in &snap {
        match c.determinism {
            qfr_obs::counter::Determinism::Deterministic => {
                assert!(gated.contains(c.name), "{} missing from gated block:\n{det}", c.name)
            }
            qfr_obs::counter::Determinism::TimingSensitive => {
                assert!(!gated.contains(c.name), "{} leaked into gated block:\n{det}", c.name)
            }
        }
    }
}
