//! Property-based tests over the whole pipeline.

use proptest::prelude::*;
use qfr_core::RamanWorkflow;
use qfr_fragment::{
    assemble, Decomposition, DecompositionParams, FragmentEngine, FragmentResponse,
};
use qfr_geom::{ProteinBuilder, WaterBoxBuilder};
use qfr_model::ForceFieldEngine;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Eq. (1) exactness for pure water holds for ANY box size and seed.
    #[test]
    fn qf_exactness_randomized(n in 2..12usize, seed in 0u64..1000) {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        let engine = ForceFieldEngine::new();
        let params = DecompositionParams {
            lambda: qfr_model::params::NONBONDED_CUTOFF,
            ..Default::default()
        };
        let d = Decomposition::new(&sys, params);
        let responses: Vec<FragmentResponse> = d
            .jobs
            .iter()
            .map(|j| engine.compute(&j.structure(&sys)))
            .collect();
        let asm = assemble::assemble(&d.jobs, &responses, sys.n_atoms());
        let mono = engine.compute(
            &qfr_fragment::FragmentJob {
                kind: qfr_fragment::JobKind::WaterMonomer { w: 0 },
                coefficient: 1.0,
                atoms: (0..sys.n_atoms()).collect(),
                link_hydrogens: vec![],
            }
            .structure(&sys),
        );
        let err = asm.hessian.to_dense().max_abs_diff(&mono.hessian);
        prop_assert!(err < 1e-9, "n={n} seed={seed}: err {err}");
    }

    /// Every atom enters the Eq. (1) sums exactly once, for any mixed
    /// system.
    #[test]
    fn coverage_invariant(n_res in 1..8usize, n_waters in 0..20usize, seed in 0u64..500) {
        let mut sys = ProteinBuilder::new(n_res).seed(seed).build();
        if n_waters > 0 {
            let waters = WaterBoxBuilder::new(n_waters).seed(seed + 1).build();
            // Shift waters away from the protein, then append.
            let offset = qfr_geom::Vec3::new(200.0, 0.0, 0.0);
            for a in &waters.atoms {
                sys.atoms.push(qfr_geom::Atom { element: a.element, position: a.position + offset });
            }
            let base = sys.bonds.len();
            let shift = sys.atoms.len() - waters.atoms.len();
            for b in &waters.bonds {
                let mut nb = *b;
                nb.i += shift;
                nb.j += shift;
                sys.bonds.push(nb);
            }
            sys.n_waters = n_waters;
            let _ = base;
        }
        prop_assert!(sys.validate().is_empty());
        let d = Decomposition::new(&sys, DecompositionParams::default());
        for (a, c) in d.atom_coverage(sys.n_atoms()).iter().enumerate() {
            prop_assert!((c - 1.0).abs() < 1e-12, "atom {a} covered {c}x");
        }
    }

    /// The spectrum is invariant (to solver accuracy) under rigid
    /// translation of the whole system.
    #[test]
    fn spectrum_translation_invariant(seed in 0u64..200, dx in -50.0..50.0f64) {
        let sys = WaterBoxBuilder::new(5).seed(seed).build();
        let mut moved = sys.clone();
        for a in &mut moved.atoms {
            a.position += qfr_geom::Vec3::new(dx, -dx * 0.5, 1.0);
        }
        let s1 = RamanWorkflow::new(sys).sigma(30.0).run().unwrap();
        let s2 = RamanWorkflow::new(moved).sigma(30.0).run().unwrap();
        let sim = s1.spectrum.cosine_similarity(&s2.spectrum);
        prop_assert!(sim > 0.99999, "translation changed the spectrum: {sim}");
    }

    /// Lanczos spectra converge monotonically-ish to the dense reference
    /// as k grows (similarity at 2k never much worse than at k).
    #[test]
    fn lanczos_convergence(seed in 0u64..100) {
        let sys = WaterBoxBuilder::new(6).seed(seed).build();
        let base = RamanWorkflow::new(sys).sigma(40.0);
        let dense = base.run_dense_reference().unwrap();
        let sim_k = |k: usize| {
            base.clone()
                .lanczos_steps(k)
                .run()
                .unwrap()
                .spectrum
                .cosine_similarity(&dense.spectrum)
        };
        let s20 = sim_k(20);
        let s80 = sim_k(80);
        prop_assert!(s80 > 0.995, "k=80 similarity {s80}");
        prop_assert!(s80 >= s20 - 0.02, "convergence regressed: {s20} -> {s80}");
    }
}
