//! Cross-crate integration tests: geometry → fragmentation → engine →
//! assembly → solver, plus the runtime executing real engine work.

use qfr_core::{EngineKind, RamanWorkflow};
use qfr_fragment::{
    assemble, Decomposition, DecompositionParams, FragmentEngine, FragmentJob, FragmentResponse,
    JobKind, MassWeighted,
};
use qfr_geom::{ProteinBuilder, ResidueKind, SolvatedSystem, WaterBoxBuilder};
use qfr_model::ForceFieldEngine;
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::runtime::{run_master_leader_worker, RuntimeConfig};
use qfr_sched::task::FragmentWorkItem;

/// Computes the whole system as ONE fragment (no fragmentation at all).
fn monolithic_response(
    sys: &qfr_geom::MolecularSystem,
    engine: &dyn FragmentEngine,
) -> FragmentResponse {
    let job = FragmentJob {
        kind: JobKind::WaterMonomer { w: 0 },
        coefficient: 1.0,
        atoms: (0..sys.n_atoms()).collect(),
        link_hydrogens: vec![],
    };
    engine.compute(&job.structure(sys))
}

/// THE exactness test: for pure water our force field has only one- and
/// two-body inter-molecular terms, so the QF expansion of Eq. (1) with
/// λ ≥ the non-bonded cutoff must equal the monolithic computation
/// exactly — Hessian and polarizability derivatives alike. This validates
/// the cap/concap bookkeeping, the coefficient algebra, and the assembly
/// index mapping end to end.
#[test]
fn water_qf_expansion_is_exact() {
    let sys = WaterBoxBuilder::new(16).seed(3).build();
    let engine = ForceFieldEngine::new();
    let params =
        DecompositionParams { lambda: qfr_model::params::NONBONDED_CUTOFF, ..Default::default() };
    let d = Decomposition::new(&sys, params);
    let responses: Vec<FragmentResponse> =
        d.jobs.iter().map(|j| engine.compute(&j.structure(&sys))).collect();
    let asm = assemble::assemble(&d.jobs, &responses, sys.n_atoms());
    let qf_dense = asm.hessian.to_dense();

    let mono = monolithic_response(&sys, &engine);
    let err = qf_dense.max_abs_diff(&mono.hessian);
    assert!(err < 1e-9, "QF expansion must be exact for a two-body force field: err {err}");
    for c in 0..6 {
        for (i, &v) in asm.dalpha[c].iter().enumerate() {
            assert!((v - mono.dalpha[(c, i)]).abs() < 1e-9, "dalpha[{c}][{i}] diverged");
        }
    }
}

#[test]
fn assembled_hessian_is_symmetric_and_satisfies_asr() {
    let protein = ProteinBuilder::new(8).seed(4).fold(4, 2).build();
    let sys = SolvatedSystem::build(&protein, 4.0, 3.1, 2.4, 5);
    let engine = ForceFieldEngine::new();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let responses: Vec<FragmentResponse> =
        d.jobs.iter().map(|j| engine.compute(&j.structure(&sys))).collect();
    let asm = assemble::assemble(&d.jobs, &responses, sys.n_atoms());
    assert!(
        asm.hessian.max_asymmetry() < 1e-9,
        "assembled Hessian asymmetry {}",
        asm.hessian.max_asymmetry()
    );
    // Acoustic sum rule within each *link-H-free* subsystem: water rows are
    // unaffected by cap hydrogens, so their row block sums must vanish.
    let dense = asm.hessian.to_dense();
    let w0 = sys.water_atoms(0)[0];
    for c in 0..3 {
        let row = 3 * w0 + c;
        for q in 0..3 {
            let total: f64 = (0..sys.n_atoms()).map(|b| dense[(row, 3 * b + q)]).sum();
            assert!(total.abs() < 1e-9, "water acoustic sum rule violated: {total}");
        }
    }
}

#[test]
fn gas_phase_protein_bands_match_fig12a() {
    let sys = ProteinBuilder::new(30).seed(6).build();
    let result = RamanWorkflow::new(sys).sigma(8.0).lanczos_steps(120).run().unwrap();
    let mut spec = result.spectrum.clone();
    spec.normalize_max();
    let window_max = |lo: f64, hi: f64| {
        spec.wavenumbers
            .iter()
            .zip(&spec.intensities)
            .filter(|(&w, _)| (lo..hi).contains(&w))
            .map(|(_, &i)| i)
            .fold(0.0_f64, f64::max)
    };
    // The Fig. 12(a) characteristic regions all carry intensity.
    assert!(window_max(980.0, 1100.0) > 0.01, "Phe ring breathing missing");
    assert!(window_max(1200.0, 1360.0) > 0.05, "amide III missing");
    assert!(window_max(1580.0, 1750.0) > 0.05, "amide I missing");
    assert!(window_max(2800.0, 3050.0) > 0.05, "C-H stretch missing");
    // No intensity far above the highest physical band.
    assert!(window_max(3900.0, 4000.0) < 0.01, "unphysical high-frequency weight");
}

#[test]
fn solvation_obscures_protein_but_not_ch_region() {
    let protein = ProteinBuilder::new(10).seed(8).sequence(vec![ResidueKind::Ala; 10]).build();
    let solvated = SolvatedSystem::build(&protein, 5.0, 3.1, 2.4, 9);
    let wet = RamanWorkflow::new(solvated).sigma(20.0).run().unwrap();
    let mut spec = wet.spectrum.clone();
    spec.normalize_max();
    let window_max = |lo: f64, hi: f64| {
        spec.wavenumbers
            .iter()
            .zip(&spec.intensities)
            .filter(|(&w, _)| (lo..hi).contains(&w))
            .map(|(_, &i)| i)
            .fold(0.0_f64, f64::max)
    };
    // Water dominates ...
    assert!(window_max(3200.0, 3650.0) > 0.1, "water stretch band missing");
    // ... but the C-H stretch remains discernible (nonzero local signal
    // in a window where water has none).
    assert!(window_max(2850.0, 3050.0) > 1e-4, "C-H signal fully obscured, unlike Fig. 12(b)");
}

#[test]
fn runtime_executes_real_engine_workload() {
    // The master/leader/worker hierarchy driving REAL per-fragment engine
    // computations (not synthetic spins).
    let sys = WaterBoxBuilder::new(40).seed(10).build();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let engine = ForceFieldEngine::new();
    let items: Vec<FragmentWorkItem> = d
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| FragmentWorkItem::new(i as u32, j.size() as u32))
        .collect();
    let n_items = items.len();
    let report = run_master_leader_worker(
        Box::new(SizeSensitivePolicy::with_defaults(items)),
        |item| {
            let job = &d.jobs[item.id as usize];
            let resp = engine.compute(&job.structure(&sys));
            resp.hessian.rows() == 3 * job.size()
        },
        RuntimeConfig { n_leaders: 3, workers_per_leader: 2, prefetch: true, ..Default::default() },
    );
    assert_eq!(report.fragments_done, n_items);
    assert_eq!(report.retries, 0);
    assert!(report.is_complete(), "fault-free run must complete everything");
}

#[test]
fn scheduled_workflow_survives_permanent_failure_with_partial_result() {
    // End-to-end: the real engine workflow routed through the fault-tolerant
    // scheduler, with one decomposition job failing permanently. The run
    // must return a partial spectrum plus honest recovery accounting
    // instead of hanging or panicking.
    let sys = WaterBoxBuilder::new(16).seed(15).build();
    let wf = RamanWorkflow::new(sys).sigma(20.0);
    let result = wf
        .run_scheduled(RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 2,
            recovery: qfr_sched::RecoveryPolicy {
                max_attempts: 2,
                backoff_base: 1e-4,
                ..Default::default()
            },
            faults: qfr_sched::FaultPlan::none().permanent([1]),
            ..Default::default()
        })
        .unwrap();
    let recovery = result.recovery.expect("scheduled run reports recovery");
    assert!(recovery.quarantined_jobs >= 1, "job 1 must quarantine: {recovery:?}");
    assert!(recovery.retries >= 1);
    assert_eq!(recovery.unfinished_jobs, 0);
    assert!(result.spectrum.peak().is_some(), "partial spectrum still has bands");

    // The same workflow without faults completes and matches the plain run.
    let clean = wf.run_scheduled(RuntimeConfig::default()).unwrap();
    assert!(clean.recovery.unwrap().is_complete());
    let plain = wf.run().unwrap();
    let sim = plain.spectrum.cosine_similarity(&clean.spectrum);
    assert!(sim > 0.999999, "scheduler changed the physics: {sim}");
}

#[test]
fn dfpt_and_forcefield_engines_agree_on_shapes() {
    // Spacing beyond lambda: no pairs, so the monomer jobs survive
    // with coefficient +1.
    let sys = WaterBoxBuilder::new(2).seed(11).spacing(4.6).build();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let monomer = d.jobs.iter().find(|j| matches!(j.kind, JobKind::WaterMonomer { .. })).unwrap();
    let frag = monomer.structure(&sys);
    let ff = ForceFieldEngine::new().compute(&frag);
    let dfpt = qfr_dfpt::DfptEngine::new().compute(&frag);
    assert_eq!(ff.hessian.shape(), dfpt.hessian.shape());
    assert_eq!(ff.dalpha.shape(), dfpt.dalpha.shape());
    // Both produce symmetric Hessians and nonzero Raman activity.
    assert!(ff.hessian.is_symmetric(1e-9));
    assert!(dfpt.hessian.is_symmetric(1e-9));
    assert!(ff.dalpha.max_abs() > 0.0);
    assert!(dfpt.dalpha.max_abs() > 0.0);
}

#[test]
fn workflow_dfpt_engine_runs_on_pure_water() {
    // Tiny box so every fragment stays under the DFPT cap.
    let sys = WaterBoxBuilder::new(2).seed(12).spacing(4.8).build();
    let result = RamanWorkflow::new(sys).engine(EngineKind::ModelDfpt).sigma(60.0).run().unwrap();
    assert_eq!(result.engine, "model-dfpt");
    assert!(result.spectrum.peak().is_some(), "DFPT spectrum must be nonzero");
}

#[test]
fn decomposition_counts_scale_linearly_in_chain_length() {
    let d50 = Decomposition::new(
        &ProteinBuilder::new(50).seed(13).build(),
        DecompositionParams::default(),
    );
    let d100 = Decomposition::new(
        &ProteinBuilder::new(100).seed(13).build(),
        DecompositionParams::default(),
    );
    assert_eq!(d50.stats.n_capped_fragments, 48);
    assert_eq!(d100.stats.n_capped_fragments, 98);
    assert_eq!(d50.stats.n_cap_pairs, 47);
    assert_eq!(d100.stats.n_cap_pairs, 97);
}

#[test]
fn mass_weighting_moves_hydrogen_bands_up() {
    // Swap all masses to carbon's: the O-H stretch region must collapse
    // downward (frequency ~ 1/sqrt(mass)).
    let sys = WaterBoxBuilder::new(4).seed(14).build();
    let engine = ForceFieldEngine::new();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let responses: Vec<FragmentResponse> =
        d.jobs.iter().map(|j| engine.compute(&j.structure(&sys))).collect();
    let asm = assemble::assemble(&d.jobs, &responses, sys.n_atoms());
    let true_mw = MassWeighted::new(&asm, &sys.masses());
    let heavy_mw = MassWeighted::new(&asm, &vec![12.011; sys.n_atoms()]);
    let opts = qfr_solver::RamanOptions { sigma: 30.0, ..Default::default() };
    let s_true = qfr_solver::raman_lanczos(&true_mw.hessian, &true_mw.dalpha, &opts);
    let s_heavy = qfr_solver::raman_lanczos(&heavy_mw.hessian, &heavy_mw.dalpha, &opts);
    let top_true = s_true.peaks_above(0.02).into_iter().fold(0.0_f64, f64::max);
    let top_heavy = s_heavy.peaks_above(0.02).into_iter().fold(0.0_f64, f64::max);
    assert!(
        top_heavy < top_true,
        "heavier hydrogens must red-shift the spectrum: {top_heavy} vs {top_true}"
    );
}
