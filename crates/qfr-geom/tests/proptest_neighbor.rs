//! Property tests for the cell-list neighbor search: the fast
//! `group_pairs_within` must agree with the O(N²) brute-force reference on
//! *clustered* point sets (not just uniform grids), including points far
//! outside the λ-sized bounding box of the rest of the cloud.

use proptest::prelude::*;
use qfr_geom::neighbor::{group_pairs_brute_force, group_pairs_within, CellList};
use qfr_geom::Vec3;

/// A clustered cloud: `n_clusters` cluster centers in a box of edge
/// `box_edge`, each with `per_cluster` points jittered by `spread`, plus a
/// handful of far outliers well outside the main bounding box. Group ids
/// deliberately straddle clusters (`group_len` consecutive points per
/// group) so inter-group contacts happen both inside and across clusters.
fn clustered_cloud(
    seed: u64,
    n_clusters: usize,
    per_cluster: usize,
    box_edge: f64,
    spread: f64,
    n_outliers: usize,
) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut out = Vec::new();
    for _ in 0..n_clusters {
        let center = Vec3::new(rnd() * box_edge, rnd() * box_edge, rnd() * box_edge);
        for _ in 0..per_cluster {
            let jit = Vec3::new(
                (rnd() - 0.5) * 2.0 * spread,
                (rnd() - 0.5) * 2.0 * spread,
                (rnd() - 0.5) * 2.0 * spread,
            );
            out.push(center + jit);
        }
    }
    for k in 0..n_outliers {
        // Far outside the clustered box, in alternating octant directions,
        // so the cell grid must cover a much larger extent than the λ box.
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        out.push(Vec3::new(
            sign * (3.0 * box_edge + rnd() * box_edge),
            -2.0 * box_edge + rnd() * box_edge * 6.0,
            sign * (2.5 * box_edge + rnd() * box_edge),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast path == brute force on clustered clouds with outliers, for any
    /// λ and cluster geometry.
    #[test]
    fn clustered_group_pairs_match_brute_force(
        seed in 0u64..10_000,
        n_clusters in 1..6usize,
        per_cluster in 1..14usize,
        box_edge in 4.0..20.0f64,
        spread in 0.2..4.0f64,
        n_outliers in 0..5usize,
        lambda in 0.5..6.0f64,
        group_len in 1..7usize,
    ) {
        let positions =
            clustered_cloud(seed, n_clusters, per_cluster, box_edge, spread, n_outliers);
        let group_of: Vec<u32> =
            (0..positions.len()).map(|i| (i / group_len) as u32).collect();
        let fast = group_pairs_within(&positions, &group_of, lambda);
        let slow = group_pairs_brute_force(&positions, &group_of, lambda);
        prop_assert_eq!(fast, slow, "lambda {} on {} points", lambda, positions.len());
    }

    /// `query_within` returns exactly the points inside the ball, for
    /// clustered clouds and query points inside or outside the cloud's
    /// bounding box.
    #[test]
    fn query_within_matches_direct_scan(
        seed in 0u64..10_000,
        n_clusters in 1..5usize,
        per_cluster in 1..12usize,
        spread in 0.2..3.0f64,
        radius in 0.3..5.0f64,
        qx in -30.0..45.0f64,
        qy in -30.0..45.0f64,
        qz in -30.0..45.0f64,
    ) {
        let positions = clustered_cloud(seed, n_clusters, per_cluster, 15.0, spread, 2);
        let cl = CellList::new(&positions, radius);
        let query = Vec3::new(qx, qy, qz);
        let mut fast = cl.query_within(query, radius);
        fast.sort_unstable();
        let slow: Vec<usize> = (0..positions.len())
            .filter(|&i| positions[i].dist_sqr(query) <= radius * radius)
            .collect();
        prop_assert_eq!(fast, slow);
    }
}
