//! Property-based tests for geometry, builders and neighbor search.

use proptest::prelude::*;
use qfr_geom::neighbor::{group_pairs_brute_force, group_pairs_within, CellList};
use qfr_geom::{ProteinBuilder, ResidueKind, Vec3, WaterBoxBuilder};

fn vec3_strategy(extent: f64) -> impl Strategy<Value = Vec3> {
    (-extent..extent, -extent..extent, -extent..extent).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cell_list_query_matches_brute_force(
        points in prop::collection::vec(vec3_strategy(15.0), 1..120),
        q in vec3_strategy(15.0),
        radius in 0.5..4.0f64,
    ) {
        let cl = CellList::new(&points, 4.0);
        let mut fast = cl.query_within(q, radius);
        fast.sort_unstable();
        let slow: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(q) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn group_pairs_match_reference(
        points in prop::collection::vec(vec3_strategy(10.0), 2..80),
        lambda in 1.0..5.0f64,
        group_size in 1..5usize,
    ) {
        let groups: Vec<u32> = (0..points.len()).map(|i| (i / group_size) as u32).collect();
        let fast = group_pairs_within(&points, &groups, lambda);
        let slow = group_pairs_brute_force(&points, &groups, lambda);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn rotation_is_isometry(v in vec3_strategy(5.0), axis in vec3_strategy(2.0), angle in -6.3..6.3f64) {
        prop_assume!(axis.norm() > 0.1);
        let a = axis.normalized();
        let r = v.rotated_about(a, angle);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-10);
        // Rotating back recovers the original.
        let back = r.rotated_about(a, -angle);
        prop_assert!(back.dist(v) < 1e-10);
    }

    #[test]
    fn protein_builder_always_valid(n in 1..25usize, seed in 0u64..500) {
        let sys = ProteinBuilder::new(n).seed(seed).build();
        prop_assert!(sys.validate().is_empty());
        prop_assert_eq!(sys.residues.len(), n);
        // Every bond shorter than 8 A (serpentine turns are the longest).
        for b in &sys.bonds {
            let d = sys.atoms[b.i].position.dist(sys.atoms[b.j].position);
            prop_assert!(d < 8.5, "bond length {d}");
        }
        // No two atoms exactly coincide.
        for (i, a) in sys.atoms.iter().enumerate() {
            for bb in sys.atoms.iter().skip(i + 1) {
                prop_assert!(a.position.dist(bb.position) > 1e-6);
            }
        }
    }

    #[test]
    fn middle_residue_counts_exact(kind_idx in 0..20usize, seed in 0u64..100) {
        let kind = ResidueKind::ALL[kind_idx];
        let sys = ProteinBuilder::new(3)
            .seed(seed)
            .sequence(vec![ResidueKind::Ala, kind, ResidueKind::Ala])
            .build();
        prop_assert_eq!(sys.residues[1].len, kind.chain_atom_count());
    }

    #[test]
    fn water_box_valid_any_size(n in 1..80usize, seed in 0u64..200) {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        prop_assert_eq!(sys.n_waters, n);
        prop_assert_eq!(sys.n_atoms(), 3 * n);
        prop_assert!(sys.validate().is_empty());
        prop_assert_eq!(sys.bonds.len(), 2 * n);
    }
}
