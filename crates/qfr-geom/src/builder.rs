//! Synthetic system builders: proteins, water boxes, solvated proteins.
//!
//! The paper's test systems are (i) a water-dimer benchmark (uniform 6-atom
//! fragments), (ii) the SARS-CoV-2 spike protein with 3,180 residues, and
//! (iii) the spike protein in an explicit water box (101,299,008 atoms).
//! These builders generate deterministic synthetic stand-ins with matching
//! workload statistics: residue sizes spanning GLY(7)–TRP(24) naked atoms
//! (9–68 after conjugate capping), water at liquid density, and a λ-scale
//! contact structure produced by a compact serpentine fold.

use crate::element::Element;
use crate::embed::plan_hydrogens;
use crate::residue::ResidueKind;
use crate::system::{Atom, Bond, BondClass, MolecularSystem, ResidueSpan};
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Spacing between consecutive residue origins along a row (Å).
const RESIDUE_PITCH: f64 = 3.5;

/// Chain fold geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FoldStyle {
    /// Boustrophedon rows folded into layers (compact globule; the
    /// default).
    Serpentine,
    /// An α-helix-like coil: residues on a helical curve. Produces the
    /// physical i→i+3 / i→i+4 backbone contacts, i.e. generalized concaps
    /// at small sequence separations.
    Helix {
        /// Helix radius (Å); ~2.1 reproduces a ~3.5 Å Cα pitch.
        radius: f64,
        /// Twist per residue (degrees); ~100° for an α-helix.
        twist_deg: f64,
        /// Rise per residue (Å); ~1.5 for an α-helix.
        rise: f64,
    },
}

impl FoldStyle {
    /// The α-helix parameterization.
    pub fn alpha_helix() -> Self {
        FoldStyle::Helix { radius: 2.1, twist_deg: 100.0, rise: 1.5 }
    }
}

/// Builder for synthetic protein chains laid out as a compact serpentine
/// (rows of residues folded into layers), giving a globular contact
/// structure for the generalized-concap enumeration.
#[derive(Debug, Clone)]
pub struct ProteinBuilder {
    n_residues: usize,
    seed: u64,
    sequence: Option<Vec<ResidueKind>>,
    residues_per_row: usize,
    rows_per_layer: usize,
    row_spacing: f64,
    layer_spacing: f64,
    jitter: f64,
    fold_style: FoldStyle,
}

impl ProteinBuilder {
    /// New builder for a chain of `n_residues` (must be ≥ 1).
    pub fn new(n_residues: usize) -> Self {
        assert!(n_residues >= 1, "a protein needs at least one residue");
        Self {
            n_residues,
            seed: 42,
            sequence: None,
            residues_per_row: 32,
            rows_per_layer: 16,
            row_spacing: 7.0,
            layer_spacing: 10.0,
            jitter: 0.05,
            fold_style: FoldStyle::Serpentine,
        }
    }

    /// Sets the RNG seed (sequence sampling + geometric jitter).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses an explicit residue sequence instead of sampling one.
    ///
    /// # Panics
    /// Panics if the length differs from `n_residues`.
    pub fn sequence(mut self, seq: Vec<ResidueKind>) -> Self {
        assert_eq!(seq.len(), self.n_residues, "sequence length mismatch");
        self.sequence = Some(seq);
        self
    }

    /// Overrides the serpentine fold shape (residues per row, rows per
    /// layer). Small values make denser globules with more λ contacts.
    pub fn fold(mut self, residues_per_row: usize, rows_per_layer: usize) -> Self {
        assert!(residues_per_row >= 1 && rows_per_layer >= 1);
        self.residues_per_row = residues_per_row;
        self.rows_per_layer = rows_per_layer;
        self
    }

    /// Sets the per-atom positional jitter amplitude (Å).
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Selects the chain fold geometry (default: serpentine globule).
    pub fn fold_style(mut self, style: FoldStyle) -> Self {
        self.fold_style = style;
        self
    }

    /// Builds the molecular system (protein only, no waters).
    pub fn build(&self) -> MolecularSystem {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sequence: Vec<ResidueKind> = match &self.sequence {
            Some(s) => s.clone(),
            None => (0..self.n_residues)
                .map(|_| ResidueKind::ALL[rng.random_range(0..ResidueKind::ALL.len())])
                .collect(),
        };

        // ------------------------------------------------------------------
        // Pass 1: place all heavy atoms in global coordinates.
        // ------------------------------------------------------------------
        let mut heavy_el: Vec<Element> = Vec::new();
        let mut heavy_pos: Vec<Vec3> = Vec::new();
        // (i, j, order, class override) with *temporary* heavy indices.
        let mut heavy_bonds: Vec<(usize, usize, u8, Option<BondClass>)> = Vec::new();
        // Per residue: (temp heavy index base, template).
        let mut residue_info = Vec::with_capacity(sequence.len());

        let mut prev_c_temp: Option<usize> = None;
        for (r, &kind) in sequence.iter().enumerate() {
            let tpl = kind.template();
            // Per-residue placement: (origin, template transform).
            let (origin, reversed, helix_angle) = match self.fold_style {
                FoldStyle::Serpentine => {
                    let row = r / self.residues_per_row;
                    let col = r % self.residues_per_row;
                    let layer = row / self.rows_per_layer;
                    let row_in_layer = row % self.rows_per_layer;
                    let reversed = row % 2 == 1;
                    let base_x = if reversed {
                        (self.residues_per_row - 1 - col) as f64 * RESIDUE_PITCH
                    } else {
                        col as f64 * RESIDUE_PITCH
                    };
                    (
                        Vec3::new(
                            base_x,
                            row_in_layer as f64 * self.row_spacing,
                            layer as f64 * self.layer_spacing,
                        ),
                        reversed,
                        None,
                    )
                }
                FoldStyle::Helix { radius, twist_deg, rise } => {
                    let theta = twist_deg.to_radians() * r as f64;
                    (
                        Vec3::new(radius * theta.cos(), radius * theta.sin(), rise * r as f64),
                        false,
                        Some(theta),
                    )
                }
            };
            let temp_base = heavy_el.len();
            for (&el, &p) in tpl.elements.iter().zip(&tpl.positions) {
                // Odd serpentine rows run in -x (180° about y); helix
                // residues co-rotate with the helical frame about z so side
                // chains point outward.
                let local = match helix_angle {
                    Some(theta) => p.rotated_about(Vec3::new(0.0, 0.0, 1.0), theta),
                    None if reversed => Vec3::new(-p.x, p.y, -p.z),
                    None => p,
                };
                let jit = Vec3::new(
                    rng.random_range(-self.jitter..=self.jitter),
                    rng.random_range(-self.jitter..=self.jitter),
                    rng.random_range(-self.jitter..=self.jitter),
                );
                heavy_el.push(el);
                heavy_pos.push(origin + local + jit);
            }
            for &(i, j, order) in &tpl.bonds {
                heavy_bonds.push((temp_base + i, temp_base + j, order, None));
            }
            // Peptide bond to the previous residue.
            if let Some(pc) = prev_c_temp {
                heavy_bonds.push((pc, temp_base + tpl.n, 1, Some(BondClass::CNAmide)));
            }
            prev_c_temp = Some(temp_base + tpl.c);
            residue_info.push((temp_base, tpl));
        }

        // ------------------------------------------------------------------
        // Pass 2: hydrogenate (valences depend on the peptide bonds).
        // ------------------------------------------------------------------
        let mut adjacency: Vec<Vec<(usize, u8)>> = vec![Vec::new(); heavy_el.len()];
        for &(i, j, order, _) in &heavy_bonds {
            adjacency[i].push((j, order));
            adjacency[j].push((i, order));
        }
        let h_plan = plan_hydrogens(&heavy_el, &heavy_pos, &adjacency);

        // ------------------------------------------------------------------
        // Pass 3: assemble final atom order (per residue: heavy then H).
        // ------------------------------------------------------------------
        let mut atoms: Vec<Atom> = Vec::new();
        let mut bonds: Vec<Bond> = Vec::new();
        let mut residues: Vec<ResidueSpan> = Vec::new();
        let mut temp_to_final = vec![usize::MAX; heavy_el.len()];

        for (temp_base, tpl) in &residue_info {
            let start = atoms.len();
            let heavy_n = tpl.heavy_count();
            for local in 0..heavy_n {
                let t = temp_base + local;
                temp_to_final[t] = atoms.len();
                atoms.push(Atom { element: heavy_el[t], position: heavy_pos[t] });
            }
            // Hydrogens, right after their residue's heavy atoms.
            for local in 0..heavy_n {
                let t = temp_base + local;
                for &hpos in &h_plan[t] {
                    let h_idx = atoms.len();
                    atoms.push(Atom { element: Element::H, position: hpos });
                    bonds.push(Bond::new(temp_to_final[t], h_idx, 1, heavy_el[t], Element::H));
                }
            }
            residues.push(ResidueSpan {
                kind: tpl.kind,
                start,
                len: atoms.len() - start,
                n_idx: temp_to_final[temp_base + tpl.n],
                ca_idx: temp_to_final[temp_base + tpl.ca],
                c_idx: temp_to_final[temp_base + tpl.c],
                o_idx: temp_to_final[temp_base + tpl.o],
            });
        }
        for &(i, j, order, class) in &heavy_bonds {
            let (fi, fj) = (temp_to_final[i], temp_to_final[j]);
            let mut b = Bond::new(fi, fj, order, heavy_el[i], heavy_el[j]);
            if let Some(c) = class {
                b.class = c;
            }
            bonds.push(b);
        }

        MolecularSystem { atoms, bonds, residues, n_waters: 0 }
    }
}

/// Builder for water boxes at liquid density (one molecule per ~3.1 Å grid
/// cell ≈ 0.033 molecules/Å³), with randomized orientations.
#[derive(Debug, Clone)]
pub struct WaterBoxBuilder {
    n_molecules: usize,
    seed: u64,
    spacing: f64,
    jitter: f64,
}

/// Water geometry constants (Å / degrees).
const OH_LEN: f64 = 0.9572;
const HOH_ANGLE: f64 = 104.52_f64;

impl WaterBoxBuilder {
    /// New builder for `n_molecules` water molecules.
    pub fn new(n_molecules: usize) -> Self {
        Self { n_molecules, seed: 7, spacing: 3.1, jitter: 0.25 }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the grid spacing (Å); 3.1 gives liquid density.
    pub fn spacing(mut self, spacing: f64) -> Self {
        assert!(spacing > 1.5, "waters would overlap");
        self.spacing = spacing;
        self
    }

    /// Builds the water box.
    pub fn build(&self) -> MolecularSystem {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let side = (self.n_molecules as f64).cbrt().ceil() as usize;
        let mut sys = MolecularSystem::default();
        let mut placed = 0;
        'outer: for i in 0..side {
            for j in 0..side {
                for k in 0..side {
                    if placed == self.n_molecules {
                        break 'outer;
                    }
                    let o = Vec3::new(i as f64, j as f64, k as f64) * self.spacing
                        + Vec3::new(
                            rng.random_range(-self.jitter..=self.jitter),
                            rng.random_range(-self.jitter..=self.jitter),
                            rng.random_range(-self.jitter..=self.jitter),
                        );
                    push_water(&mut sys, o, &mut rng);
                    placed += 1;
                }
            }
        }
        sys.n_waters = placed;
        sys
    }
}

/// Appends one water molecule (O, H, H + two O–H bonds) with a random
/// orientation at oxygen position `o`.
fn push_water(sys: &mut MolecularSystem, o: Vec3, rng: &mut StdRng) {
    let dir1 = random_unit(rng);
    let axis = dir1.any_perpendicular();
    // Random roll around dir1 so molecules are not co-planar.
    let axis = axis.rotated_about(dir1, rng.random_range(0.0..std::f64::consts::TAU));
    let dir2 = dir1.rotated_about(axis, HOH_ANGLE.to_radians());
    let base = sys.atoms.len();
    sys.atoms.push(Atom { element: Element::O, position: o });
    sys.atoms.push(Atom { element: Element::H, position: o + dir1 * OH_LEN });
    sys.atoms.push(Atom { element: Element::H, position: o + dir2 * OH_LEN });
    sys.bonds.push(Bond::new(base, base + 1, 1, Element::O, Element::H));
    sys.bonds.push(Bond::new(base, base + 2, 1, Element::O, Element::H));
}

fn random_unit(rng: &mut StdRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.random_range(-1.0..=1.0),
            rng.random_range(-1.0..=1.0),
            rng.random_range(-1.0..=1.0),
        );
        let n = v.norm_sqr();
        if n > 1e-4 && n <= 1.0 {
            return v * (1.0 / n.sqrt());
        }
    }
}

/// Combines a protein with a surrounding water box (the paper's
/// "protein with explicit water" system).
#[derive(Debug, Clone, Copy)]
pub struct SolvatedSystem;

impl SolvatedSystem {
    /// Solvates `protein` in a box extending `padding` Å beyond its bounding
    /// box, on a `spacing` Å grid, skipping sites within `exclusion` Å of
    /// any protein atom.
    pub fn build(
        protein: &MolecularSystem,
        padding: f64,
        spacing: f64,
        exclusion: f64,
        seed: u64,
    ) -> MolecularSystem {
        assert!(protein.n_waters == 0, "protein input must not already contain waters");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = protein.clone();

        let positions: Vec<Vec3> = protein.atoms.iter().map(|a| a.position).collect();
        let (lo, hi) = bounding_box(&positions);
        let cl = crate::neighbor::CellList::new(&positions, exclusion.max(1.0));

        let nx = (((hi.x - lo.x) + 2.0 * padding) / spacing).floor() as usize + 1;
        let ny = (((hi.y - lo.y) + 2.0 * padding) / spacing).floor() as usize + 1;
        let nz = (((hi.z - lo.z) + 2.0 * padding) / spacing).floor() as usize + 1;
        let start = lo - Vec3::new(padding, padding, padding);
        let mut n_waters = 0;
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let o = start + Vec3::new(i as f64, j as f64, k as f64) * spacing;
                    if cl.any_within(o, exclusion) {
                        continue;
                    }
                    push_water(&mut sys, o, &mut rng);
                    n_waters += 1;
                }
            }
        }
        sys.n_waters = n_waters;
        sys
    }
}

fn bounding_box(positions: &[Vec3]) -> (Vec3, Vec3) {
    assert!(!positions.is_empty());
    let mut lo = positions[0];
    let mut hi = positions[0];
    for p in positions {
        lo.x = lo.x.min(p.x);
        lo.y = lo.y.min(p.y);
        lo.z = lo.z.min(p.z);
        hi.x = hi.x.max(p.x);
        hi.y = hi.y.max(p.y);
        hi.z = hi.z.max(p.z);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BondClass;

    #[test]
    fn single_residue_counts() {
        for kind in ResidueKind::ALL {
            let sys = ProteinBuilder::new(3)
                .sequence(vec![ResidueKind::Gly, kind, ResidueKind::Gly])
                .build();
            assert!(sys.validate().is_empty(), "{kind:?}: {:?}", sys.validate());
            // Middle residue has both peptide bonds -> standard atom count.
            let mid = sys.residues[1];
            assert_eq!(mid.len, kind.chain_atom_count(), "{kind:?} in-chain atom count");
        }
    }

    #[test]
    fn terminal_residues_gain_hydrogens() {
        // First N misses its peptide bond -> one extra H; last C -> one
        // extra H.
        let sys = ProteinBuilder::new(2).sequence(vec![ResidueKind::Ala, ResidueKind::Ala]).build();
        assert_eq!(sys.residues[0].len, ResidueKind::Ala.chain_atom_count() + 1);
        assert_eq!(sys.residues[1].len, ResidueKind::Ala.chain_atom_count() + 1);
    }

    #[test]
    fn peptide_bonds_present_and_classified() {
        let sys = ProteinBuilder::new(5).seed(1).build();
        let amide: Vec<&Bond> =
            sys.bonds.iter().filter(|b| b.class == BondClass::CNAmide).collect();
        assert_eq!(amide.len(), 4, "N-1 peptide bonds");
        for b in amide {
            let d = sys.atoms[b.i].position.dist(sys.atoms[b.j].position);
            assert!(d < 2.5, "peptide bond stretched to {d:.2} A");
        }
    }

    #[test]
    fn serpentine_turns_have_long_bonds_only_at_turns() {
        let sys = ProteinBuilder::new(20).fold(8, 4).seed(2).build();
        let long: usize = sys
            .bonds
            .iter()
            .filter(|b| sys.atoms[b.i].position.dist(sys.atoms[b.j].position) > 3.0)
            .count();
        // 20 residues / 8 per row -> 2 turns.
        assert!(long <= 3, "unexpected long bonds: {long}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = ProteinBuilder::new(10).seed(9).build();
        let b = ProteinBuilder::new(10).seed(9).build();
        assert_eq!(a.n_atoms(), b.n_atoms());
        for (x, y) in a.atoms.iter().zip(&b.atoms) {
            assert_eq!(x.position, y.position);
        }
        let c = ProteinBuilder::new(10).seed(10).build();
        let same = a.n_atoms() == c.n_atoms()
            && a.atoms.iter().zip(&c.atoms).all(|(x, y)| x.position == y.position);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn water_box_geometry() {
        let sys = WaterBoxBuilder::new(27).seed(3).build();
        assert_eq!(sys.n_waters, 27);
        assert_eq!(sys.n_atoms(), 81);
        assert!(sys.validate().is_empty());
        for w in 0..27 {
            let [o, h1, h2] = sys.water_atoms(w);
            let d1 = sys.atoms[o].position.dist(sys.atoms[h1].position);
            let d2 = sys.atoms[o].position.dist(sys.atoms[h2].position);
            assert!((d1 - OH_LEN).abs() < 1e-9);
            assert!((d2 - OH_LEN).abs() < 1e-9);
            let v1 = sys.atoms[h1].position - sys.atoms[o].position;
            let v2 = sys.atoms[h2].position - sys.atoms[o].position;
            let ang = v1.angle_between(v2).to_degrees();
            assert!((ang - HOH_ANGLE).abs() < 1e-6, "HOH angle {ang}");
        }
    }

    #[test]
    fn water_density_close_to_liquid() {
        let n = 512;
        let sys = WaterBoxBuilder::new(n).seed(4).build();
        // 8^3 grid at 3.1 A -> 24.8 A box; 512/24.8^3 = 0.0336 /A^3.
        let side: f64 = 8.0 * 3.1;
        let density = n as f64 / side.powi(3);
        assert!((0.025..0.045).contains(&density), "density {density}");
        let _ = sys;
    }

    #[test]
    fn waters_do_not_overlap() {
        let sys = WaterBoxBuilder::new(64).seed(5).build();
        for a in 0..sys.n_waters {
            for b in (a + 1)..sys.n_waters {
                let d = sys.atoms[sys.water_atoms(a)[0]]
                    .position
                    .dist(sys.atoms[sys.water_atoms(b)[0]].position);
                assert!(d > 1.8, "waters {a},{b} overlap at {d:.2}");
            }
        }
    }

    #[test]
    fn solvation_respects_exclusion_zone() {
        let protein = ProteinBuilder::new(4).seed(6).build();
        let solvated = SolvatedSystem::build(&protein, 6.0, 3.1, 2.4, 11);
        assert!(solvated.n_waters > 0, "padding must admit waters");
        assert_eq!(solvated.protein_atom_count(), protein.n_atoms());
        assert!(solvated.validate().is_empty());
        for w in 0..solvated.n_waters {
            let o_pos = solvated.atoms[solvated.water_atoms(w)[0]].position;
            for pa in &protein.atoms {
                assert!(o_pos.dist(pa.position) > 2.4 - 1e-9, "water O inside exclusion zone");
            }
        }
    }

    #[test]
    fn helix_fold_builds_valid_system() {
        let sys = ProteinBuilder::new(12).seed(31).fold_style(FoldStyle::alpha_helix()).build();
        assert!(sys.validate().is_empty(), "{:?}", sys.validate());
        assert_eq!(sys.residues.len(), 12);
        // The coarse rigid-template placement stretches peptide bonds on
        // the helical curve (the harmonic model takes the built length as
        // equilibrium, so only gross breakage would matter).
        for b in sys.bonds.iter().filter(|b| b.class == BondClass::CNAmide) {
            let d = sys.atoms[b.i].position.dist(sys.atoms[b.j].position);
            assert!(d < 6.5, "helical peptide bond stretched to {d:.2}");
        }
    }

    #[test]
    fn helix_has_short_range_backbone_contacts() {
        // The alpha-helix signature: residues i and i+3/i+4 are spatially
        // close (within the lambda threshold), unlike an extended strand.
        use crate::neighbor::group_pairs_within;
        let contacts = |style: FoldStyle| {
            let sys = ProteinBuilder::new(16)
                .seed(32)
                .sequence(vec![crate::residue::ResidueKind::Ala; 16])
                .fold_style(style)
                .build();
            let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.position).collect();
            let mut groups = vec![0u32; sys.n_atoms()];
            for (r, span) in sys.residues.iter().enumerate() {
                for a in span.atom_range() {
                    groups[a] = r as u32;
                }
            }
            group_pairs_within(&positions, &groups, 4.0)
                .into_iter()
                .filter(|&(i, j)| j - i >= 3 && j - i <= 4)
                .count()
        };
        let helix = contacts(FoldStyle::alpha_helix());
        let strand = contacts(FoldStyle::Serpentine);
        assert!(
            helix > strand,
            "helix i->i+3/4 contacts ({helix}) should exceed the strand's ({strand})"
        );
        assert!(helix >= 8, "expected pervasive helical contacts, got {helix}");
    }

    #[test]
    fn fragment_size_distribution_matches_paper_regime() {
        // Paper: naked residues + caps span 9..=68 atoms, ~19x cost spread.
        let sys = ProteinBuilder::new(200).seed(12).build();
        let sizes: Vec<usize> = sys.residues.iter().map(|r| r.len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 7 && max <= 26, "sizes {min}..{max}");
        // Cubic cost spread between smallest/largest capped fragments
        // (3 residues) comfortably exceeds an order of magnitude.
        let spread = (3.0 * max as f64).powi(3) / (3.0 * min as f64).powi(3);
        assert!(spread > 10.0, "cost spread {spread}");
    }
}
