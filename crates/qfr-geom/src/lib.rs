//! # qfr-geom
//!
//! Molecular geometry substrate for the QF-RAMAN reproduction: chemical
//! elements, 3-vector math, amino-acid residue templates with automatic
//! hydrogenation, synthetic protein and water-box builders, cell-list
//! neighbor search for the λ-threshold pair enumeration of Eq. (1), and
//! XYZ/PDB-lite file I/O.
//!
//! The paper evaluates on the SARS-CoV-2 spike protein (PDB 7DF3, 3,180
//! residues) solvated in an explicit water box totalling 101,299,008 atoms.
//! That structure is not shipped here; instead [`builder::ProteinBuilder`]
//! generates deterministic synthetic proteins whose residue-size
//! distribution (9–68 atoms per capped fragment, ≈19x per-fragment cost
//! spread) matches the paper's workload statistics, and
//! [`builder::WaterBoxBuilder`] produces water at liquid density. See
//! DESIGN.md ("Reproduction constraints and substitutions").

#![forbid(unsafe_code)]

pub mod builder;
pub mod covalent;
pub mod element;
pub mod embed;
pub mod io;
pub mod neighbor;
pub mod residue;
pub mod scenario;
pub mod system;
pub mod vec3;

pub use builder::{FoldStyle, ProteinBuilder, SolvatedSystem, WaterBoxBuilder};
pub use covalent::detect_bonds;
pub use element::Element;
pub use neighbor::CellList;
pub use residue::{ResidueKind, ResidueTemplate};
pub use scenario::{build_scenario, SCENARIO_NAMES};
pub use system::{Atom, Bond, MolecularSystem, ResidueSpan};
pub use vec3::Vec3;
