//! Element-aware covalent bond detection.
//!
//! The graph-based fragmenter (`qfr-fragment::graph`) partitions the
//! covalent graph of a system. Builders usually record bonds explicitly,
//! but imported or hand-assembled geometries may not; [`detect_bonds`]
//! reconstructs the graph from distances alone: two atoms are bonded when
//! their separation is below the sum of their single-bond covalent radii
//! times a tolerance factor (the standard distance criterion of structure
//! viewers and FragIt-style fragmenters).

use crate::element::Element;
use crate::neighbor::CellList;
use crate::system::{Atom, Bond};
use crate::vec3::Vec3;

/// Default detection tolerance: bond when `d < 1.15 · (r_i + r_j)`.
pub const BOND_TOLERANCE: f64 = 1.15;

/// Detects covalent bonds between `atoms` by the covalent-radius distance
/// criterion with the default [`BOND_TOLERANCE`]. H–H pairs are never
/// bonded (molecular hydrogen does not occur in these systems and a
/// spuriously close hydrogen pair must not fuse two molecules). Bond order
/// is reported as 1 — distances alone cannot distinguish conjugation; use
/// explicit builder bonds when double bonds matter. The result is sorted
/// by `(i, j)` with `i < j` and free of duplicates.
pub fn detect_bonds(atoms: &[Atom]) -> Vec<Bond> {
    detect_bonds_with_tolerance(atoms, BOND_TOLERANCE)
}

/// [`detect_bonds`] with an explicit tolerance factor.
pub fn detect_bonds_with_tolerance(atoms: &[Atom], tolerance: f64) -> Vec<Bond> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    if atoms.is_empty() {
        return Vec::new();
    }
    // The largest possible detection distance bounds the cell edge so one
    // cell-list query per atom sees every candidate.
    let max_r = atoms.iter().map(|a| a.element.covalent_radius()).fold(0.0_f64, f64::max);
    let reach = 2.0 * max_r * tolerance;
    let positions: Vec<Vec3> = atoms.iter().map(|a| a.position).collect();
    let cl = CellList::new(&positions, reach);
    let mut bonds = Vec::new();
    for (i, a) in atoms.iter().enumerate() {
        for j in cl.query_within(a.position, reach) {
            if j <= i {
                continue;
            }
            let b = &atoms[j];
            if a.element == Element::H && b.element == Element::H {
                continue;
            }
            let cutoff = tolerance * (a.element.covalent_radius() + b.element.covalent_radius());
            if a.position.dist(b.position) < cutoff {
                bonds.push(Bond::new(i, j, 1, a.element, b.element));
            }
        }
    }
    bonds.sort_unstable_by_key(|b| (b.i, b.j));
    bonds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BondClass;

    fn atom(e: Element, x: f64, y: f64, z: f64) -> Atom {
        Atom { element: e, position: Vec3::new(x, y, z) }
    }

    #[test]
    fn ethane_skeleton_detected() {
        // C-C at 1.54 A with hydrogens at 1.09 A.
        let atoms = vec![
            atom(Element::C, 0.0, 0.0, 0.0),
            atom(Element::C, 1.54, 0.0, 0.0),
            atom(Element::H, -0.63, 0.89, 0.0),
            atom(Element::H, 2.17, -0.89, 0.0),
        ];
        let bonds = detect_bonds(&atoms);
        let pairs: Vec<(usize, usize)> = bonds.iter().map(|b| (b.i, b.j)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 3)]);
        assert_eq!(bonds[0].class, BondClass::CCSingle);
        assert_eq!(bonds[1].class, BondClass::CH);
    }

    #[test]
    fn distant_atoms_not_bonded() {
        let atoms = vec![atom(Element::C, 0.0, 0.0, 0.0), atom(Element::C, 3.1, 0.0, 0.0)];
        assert!(detect_bonds(&atoms).is_empty());
    }

    #[test]
    fn h_h_pairs_never_bond() {
        let atoms = vec![atom(Element::H, 0.0, 0.0, 0.0), atom(Element::H, 0.6, 0.0, 0.0)];
        assert!(detect_bonds(&atoms).is_empty());
    }

    #[test]
    fn matches_water_builder_bonds() {
        // Detection over a built water box must reproduce the builder's
        // bond graph (2 O-H bonds per molecule, nothing intermolecular).
        let sys = crate::builder::WaterBoxBuilder::new(27).seed(3).build();
        let detected = detect_bonds(&sys.atoms);
        assert_eq!(detected.len(), sys.bonds.len());
        let mut expect: Vec<(usize, usize)> =
            sys.bonds.iter().map(|b| (b.i.min(b.j), b.i.max(b.j))).collect();
        expect.sort_unstable();
        let got: Vec<(usize, usize)> = detected.iter().map(|b| (b.i, b.j)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_input() {
        assert!(detect_bonds(&[]).is_empty());
    }
}
