//! Atoms, bonds and the assembled molecular system.

use crate::element::Element;
use crate::residue::ResidueKind;
use crate::vec3::Vec3;

/// One atom: element + Cartesian position (Å).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Chemical element.
    pub element: Element,
    /// Position in Å.
    pub position: Vec3,
}

/// Force-field bond class; determines the stretch force constant and the
/// bond-polarizability parameters in `qfr-model`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BondClass {
    /// C–H stretch (≈2900 cm⁻¹ band of Fig. 12).
    CH,
    /// N–H stretch.
    NH,
    /// O–H stretch (water ≈3400 cm⁻¹ band).
    OH,
    /// S–H stretch.
    SH,
    /// C–C single bond.
    CCSingle,
    /// Aromatic / conjugated C–C (ring modes, Phe breathing ≈1030 cm⁻¹).
    CCAromatic,
    /// C–N single bond.
    CNSingle,
    /// Peptide (amide) C–N bond — the amide III region coupling.
    CNAmide,
    /// C=N double bond (His, Arg).
    CNDouble,
    /// C–O single bond.
    COSingle,
    /// Carbonyl C=O (amide I region ≈1650 cm⁻¹).
    CODouble,
    /// C–S single bond.
    CSSingle,
    /// Disulfide S–S.
    SSBond,
    /// Anything else.
    Other,
}

impl BondClass {
    /// Classifies from the two elements and the formal bond order; peptide
    /// bonds are flagged explicitly by the chain builder instead.
    pub fn classify(a: Element, b: Element, order: u8) -> BondClass {
        use Element::*;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        match (lo, hi, order) {
            (H, C, _) => BondClass::CH,
            (H, N, _) => BondClass::NH,
            (H, O, _) => BondClass::OH,
            (H, S, _) => BondClass::SH,
            (C, C, 1) => BondClass::CCSingle,
            (C, C, 2) => BondClass::CCAromatic,
            (C, N, 1) => BondClass::CNSingle,
            (C, N, 2) => BondClass::CNDouble,
            (C, O, 1) => BondClass::COSingle,
            (C, O, 2) => BondClass::CODouble,
            (C, S, _) => BondClass::CSSingle,
            (S, S, _) => BondClass::SSBond,
            _ => BondClass::Other,
        }
    }
}

/// A covalent bond between atoms `i` and `j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    /// First atom index.
    pub i: usize,
    /// Second atom index.
    pub j: usize,
    /// Formal order (1 or 2).
    pub order: u8,
    /// Force-field class.
    pub class: BondClass,
}

impl Bond {
    /// Constructs a bond, classifying it from the elements.
    pub fn new(i: usize, j: usize, order: u8, ei: Element, ej: Element) -> Self {
        Self { i, j, order, class: BondClass::classify(ei, ej, order) }
    }
}

/// A protein residue's span within the system's atom list. Hydrogens are
/// stored inside the span, immediately after their heavy atoms, so spans are
/// contiguous — which the fragmenter relies on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidueSpan {
    /// Residue type.
    pub kind: ResidueKind,
    /// First atom index of the span.
    pub start: usize,
    /// Number of atoms in the span (heavy + hydrogens).
    pub len: usize,
    /// Absolute index of the backbone nitrogen.
    pub n_idx: usize,
    /// Absolute index of the alpha carbon.
    pub ca_idx: usize,
    /// Absolute index of the carbonyl carbon.
    pub c_idx: usize,
    /// Absolute index of the carbonyl oxygen.
    pub o_idx: usize,
}

impl ResidueSpan {
    /// Atom index range of this residue.
    pub fn atom_range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// A complete molecular system: an optional protein chain followed by zero
/// or more water molecules (3 atoms each, O first).
#[derive(Debug, Clone, Default)]
pub struct MolecularSystem {
    /// All atoms: protein residues first (contiguous spans), waters last.
    pub atoms: Vec<Atom>,
    /// All covalent bonds.
    pub bonds: Vec<Bond>,
    /// Protein residues in chain order (empty for pure water).
    pub residues: Vec<ResidueSpan>,
    /// Number of water molecules appended after the protein atoms.
    pub n_waters: usize,
}

impl MolecularSystem {
    /// Total atom count.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of protein atoms (those before the water block).
    pub fn protein_atom_count(&self) -> usize {
        self.atoms.len() - 3 * self.n_waters
    }

    /// First atom index of the water block.
    pub fn water_start(&self) -> usize {
        self.protein_atom_count()
    }

    /// Atom indices `[O, H, H]` of water molecule `w`.
    pub fn water_atoms(&self, w: usize) -> [usize; 3] {
        assert!(w < self.n_waters, "water index {w} out of {}", self.n_waters);
        let base = self.water_start() + 3 * w;
        [base, base + 1, base + 2]
    }

    /// Cartesian degrees of freedom (`3 * n_atoms`).
    pub fn dof(&self) -> usize {
        3 * self.atoms.len()
    }

    /// Per-atom masses in amu.
    pub fn masses(&self) -> Vec<f64> {
        self.atoms.iter().map(|a| a.element.mass()).collect()
    }

    /// Positions flattened to `[x0,y0,z0, x1,...]`.
    pub fn flat_positions(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dof());
        for a in &self.atoms {
            out.extend_from_slice(&a.position.to_array());
        }
        out
    }

    /// Minimum distance between any atom of `group_a` and any atom of
    /// `group_b` (brute force; use [`crate::neighbor`] for bulk queries).
    pub fn min_group_distance(&self, group_a: &[usize], group_b: &[usize]) -> f64 {
        let mut best = f64::INFINITY;
        for &i in group_a {
            for &j in group_b {
                best = best.min(self.atoms[i].position.dist(self.atoms[j].position));
            }
        }
        best
    }

    /// Number of covalent (non-water) atoms that belong to no residue span:
    /// ligands, cofactors, polymer chains. These sit between the residue
    /// block and the water block and are handled by the graph-based
    /// fragmenter rather than the chain/water fast path.
    pub fn nonresidue_atom_count(&self) -> usize {
        let res_total: usize = self.residues.iter().map(|r| r.len).sum();
        self.protein_atom_count().saturating_sub(res_total)
    }

    /// Sanity checks: bond indices in range, no self-bonds, residue spans
    /// contiguous and forming a prefix of the covalent (non-water) block,
    /// water block 3 atoms per molecule with O-H-H element pattern.
    /// Covalent atoms after the residue spans (ligands, polymer chains)
    /// are allowed. Returns a list of violations (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let n = self.atoms.len();
        for (k, b) in self.bonds.iter().enumerate() {
            if b.i >= n || b.j >= n {
                errs.push(format!("bond {k} index out of range"));
            } else if b.i == b.j {
                errs.push(format!("bond {k} is a self-bond"));
            }
        }
        let mut expected_start = 0;
        for (r, span) in self.residues.iter().enumerate() {
            if span.start != expected_start {
                errs.push(format!("residue {r} span not contiguous"));
            }
            expected_start = span.start + span.len;
            for idx in [span.n_idx, span.ca_idx, span.c_idx, span.o_idx] {
                if !(span.start..span.start + span.len).contains(&idx) {
                    errs.push(format!("residue {r} backbone index {idx} outside span"));
                }
            }
        }
        if expected_start > self.protein_atom_count() {
            errs.push("residue spans extend into the water block".to_string());
        }
        if 3 * self.n_waters > n {
            errs.push("water block larger than system".to_string());
        } else {
            for w in 0..self.n_waters {
                let [o, h1, h2] = self.water_atoms(w);
                if self.atoms[o].element != Element::O
                    || self.atoms[h1].element != Element::H
                    || self.atoms[h2].element != Element::H
                {
                    errs.push(format!("water {w} has wrong element pattern"));
                    break;
                }
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn water_system(n: usize) -> MolecularSystem {
        let mut sys = MolecularSystem::default();
        for w in 0..n {
            let o = Vec3::new(3.0 * w as f64, 0.0, 0.0);
            sys.atoms.push(Atom { element: Element::O, position: o });
            sys.atoms.push(Atom { element: Element::H, position: o + Vec3::new(0.96, 0.0, 0.0) });
            sys.atoms.push(Atom { element: Element::H, position: o + Vec3::new(-0.24, 0.93, 0.0) });
            let base = 3 * w;
            sys.bonds.push(Bond::new(base, base + 1, 1, Element::O, Element::H));
            sys.bonds.push(Bond::new(base, base + 2, 1, Element::O, Element::H));
        }
        sys.n_waters = n;
        sys
    }

    #[test]
    fn water_indexing() {
        let sys = water_system(3);
        assert_eq!(sys.n_atoms(), 9);
        assert_eq!(sys.protein_atom_count(), 0);
        assert_eq!(sys.water_atoms(1), [3, 4, 5]);
        assert_eq!(sys.dof(), 27);
        assert!(sys.validate().is_empty());
    }

    #[test]
    #[should_panic(expected = "water index")]
    fn water_index_out_of_range() {
        let sys = water_system(2);
        let _ = sys.water_atoms(2);
    }

    #[test]
    fn masses_and_positions() {
        let sys = water_system(1);
        let m = sys.masses();
        assert_eq!(m.len(), 3);
        assert!((m[0] - 15.999).abs() < 1e-9);
        assert!((m[1] - 1.008).abs() < 1e-9);
        let flat = sys.flat_positions();
        assert_eq!(flat.len(), 9);
        assert_eq!(flat[3], 0.96);
    }

    #[test]
    fn bond_classification() {
        assert_eq!(BondClass::classify(Element::C, Element::H, 1), BondClass::CH);
        assert_eq!(BondClass::classify(Element::H, Element::C, 1), BondClass::CH);
        assert_eq!(BondClass::classify(Element::C, Element::O, 2), BondClass::CODouble);
        assert_eq!(BondClass::classify(Element::C, Element::C, 2), BondClass::CCAromatic);
        assert_eq!(BondClass::classify(Element::S, Element::S, 1), BondClass::SSBond);
        assert_eq!(BondClass::classify(Element::N, Element::C, 2), BondClass::CNDouble);
        assert_eq!(BondClass::classify(Element::O, Element::O, 1), BondClass::Other);
    }

    #[test]
    fn min_group_distance() {
        let sys = water_system(2);
        let d = sys.min_group_distance(&[0, 1, 2], &[3, 4, 5]);
        // Closest pair: H1 of water0 at (0.96,0,0) vs H2 of water1 at
        // (2.76,0.93,0): sqrt(1.8^2 + 0.93^2) = 2.026.
        assert!((d - 2.026).abs() < 0.01, "d = {d}");
    }

    #[test]
    fn validation_catches_bad_bond() {
        let mut sys = water_system(1);
        sys.bonds.push(Bond::new(0, 0, 1, Element::O, Element::O));
        assert!(sys.validate().iter().any(|e| e.contains("self-bond")));
        sys.bonds.push(Bond::new(0, 99, 1, Element::O, Element::H));
        assert!(sys.validate().iter().any(|e| e.contains("out of range")));
    }

    #[test]
    fn validation_catches_bad_water_pattern() {
        let mut sys = water_system(1);
        sys.atoms[0].element = Element::C;
        assert!(sys.validate().iter().any(|e| e.contains("element pattern")));
    }

    #[test]
    fn nonresidue_atoms_between_residues_and_waters_are_valid() {
        // A ligand-style covalent block after the residue spans (here: a
        // residue-less system whose two leading atoms belong to no span)
        // must validate; spans reaching into the water block must not.
        let mut sys = water_system(2);
        sys.atoms.insert(0, Atom { element: Element::C, position: Vec3::new(-5.0, 0.0, 0.0) });
        sys.atoms.insert(1, Atom { element: Element::C, position: Vec3::new(-3.5, 0.0, 0.0) });
        for b in &mut sys.bonds {
            b.i += 2;
            b.j += 2;
        }
        sys.bonds.push(Bond::new(0, 1, 1, Element::C, Element::C));
        assert!(sys.validate().is_empty(), "{:?}", sys.validate());
        assert_eq!(sys.nonresidue_atom_count(), 2);
        // A span covering the ligand AND the first water atom overflows the
        // covalent block.
        sys.residues.push(ResidueSpan {
            kind: crate::residue::ResidueKind::Gly,
            start: 0,
            len: 3,
            n_idx: 0,
            ca_idx: 1,
            c_idx: 1,
            o_idx: 2,
        });
        assert!(sys.validate().iter().any(|e| e.contains("extend into the water block")));
    }
}
