//! The 20 amino-acid residue templates.
//!
//! Templates carry heavy atoms only (hydrogens are added at chain-assembly
//! time by [`crate::embed::plan_hydrogens`], because backbone valences
//! depend on the peptide bonds to neighboring residues). Local geometry is
//! procedural: a standard backbone plank in the xy-plane with side chains
//! growing in +z, rings placed as regular polygons. Bond orders follow the
//! neutral tautomers, so the automatic hydrogen count reproduces the
//! standard per-residue atom counts (GLY 7 … TRP 24 in-chain).

use crate::element::Element;
use crate::embed::{fused_hexagon, ring_vertices};
use crate::vec3::Vec3;

/// The 20 proteinogenic amino acids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ResidueKind {
    Gly,
    Ala,
    Ser,
    Cys,
    Thr,
    Val,
    Pro,
    Leu,
    Ile,
    Asn,
    Asp,
    Gln,
    Glu,
    Lys,
    Met,
    His,
    Phe,
    Arg,
    Tyr,
    Trp,
}

impl ResidueKind {
    /// All residue kinds, smallest to largest side chain.
    pub const ALL: [ResidueKind; 20] = [
        ResidueKind::Gly,
        ResidueKind::Ala,
        ResidueKind::Ser,
        ResidueKind::Cys,
        ResidueKind::Thr,
        ResidueKind::Val,
        ResidueKind::Pro,
        ResidueKind::Leu,
        ResidueKind::Ile,
        ResidueKind::Asn,
        ResidueKind::Asp,
        ResidueKind::Gln,
        ResidueKind::Glu,
        ResidueKind::Lys,
        ResidueKind::Met,
        ResidueKind::His,
        ResidueKind::Phe,
        ResidueKind::Arg,
        ResidueKind::Tyr,
        ResidueKind::Trp,
    ];

    /// Three-letter code.
    pub fn code(self) -> &'static str {
        match self {
            ResidueKind::Gly => "GLY",
            ResidueKind::Ala => "ALA",
            ResidueKind::Ser => "SER",
            ResidueKind::Cys => "CYS",
            ResidueKind::Thr => "THR",
            ResidueKind::Val => "VAL",
            ResidueKind::Pro => "PRO",
            ResidueKind::Leu => "LEU",
            ResidueKind::Ile => "ILE",
            ResidueKind::Asn => "ASN",
            ResidueKind::Asp => "ASP",
            ResidueKind::Gln => "GLN",
            ResidueKind::Glu => "GLU",
            ResidueKind::Lys => "LYS",
            ResidueKind::Met => "MET",
            ResidueKind::His => "HIS",
            ResidueKind::Phe => "PHE",
            ResidueKind::Arg => "ARG",
            ResidueKind::Tyr => "TYR",
            ResidueKind::Trp => "TRP",
        }
    }

    /// Builds this residue's heavy-atom template.
    pub fn template(self) -> ResidueTemplate {
        build_template(self)
    }

    /// Expected total in-chain atom count (heavy + hydrogens) once embedded
    /// in a chain with peptide bonds on both sides. Used to validate the
    /// builders and to drive workload statistics without building geometry.
    pub fn chain_atom_count(self) -> usize {
        match self {
            ResidueKind::Gly => 7,
            ResidueKind::Ala => 10,
            ResidueKind::Ser => 11,
            ResidueKind::Cys => 11,
            ResidueKind::Thr => 14,
            ResidueKind::Val => 16,
            ResidueKind::Pro => 14,
            ResidueKind::Leu => 19,
            ResidueKind::Ile => 19,
            ResidueKind::Asn => 14,
            ResidueKind::Asp => 13,
            ResidueKind::Gln => 17,
            ResidueKind::Glu => 16,
            ResidueKind::Lys => 21,
            ResidueKind::Met => 17,
            ResidueKind::His => 17,
            ResidueKind::Phe => 20,
            ResidueKind::Arg => 23,
            ResidueKind::Tyr => 21,
            ResidueKind::Trp => 24,
        }
    }
}

/// Heavy-atom template of one residue in local coordinates.
#[derive(Debug, Clone)]
pub struct ResidueTemplate {
    /// Residue kind.
    pub kind: ResidueKind,
    /// Heavy-atom elements.
    pub elements: Vec<Element>,
    /// Heavy-atom local positions (Å). Backbone N at the origin; the next
    /// residue's N is expected near `(3.5, 0, 0)`.
    pub positions: Vec<Vec3>,
    /// Heavy–heavy bonds `(i, j, order)` with local indices.
    pub bonds: Vec<(usize, usize, u8)>,
    /// Local index of backbone N.
    pub n: usize,
    /// Local index of C-alpha.
    pub ca: usize,
    /// Local index of the carbonyl carbon.
    pub c: usize,
    /// Local index of the carbonyl oxygen.
    pub o: usize,
}

impl ResidueTemplate {
    /// Number of heavy atoms.
    pub fn heavy_count(&self) -> usize {
        self.elements.len()
    }
}

struct Tb {
    elements: Vec<Element>,
    positions: Vec<Vec3>,
    bonds: Vec<(usize, usize, u8)>,
}

impl Tb {
    fn new() -> Self {
        Self { elements: Vec::new(), positions: Vec::new(), bonds: Vec::new() }
    }

    fn atom(&mut self, el: Element, pos: Vec3) -> usize {
        self.elements.push(el);
        self.positions.push(pos);
        self.elements.len() - 1
    }

    fn bond(&mut self, i: usize, j: usize, order: u8) {
        self.bonds.push((i, j, order));
    }

    /// Standard backbone: N, CA, C, O. Returns `(n, ca, c, o)`.
    fn backbone(&mut self) -> (usize, usize, usize, usize) {
        let n = self.atom(Element::N, Vec3::new(0.0, 0.0, 0.0));
        let ca = self.atom(Element::C, Vec3::new(1.46, 0.0, 0.0));
        let c = self.atom(Element::C, Vec3::new(2.40, 1.00, 0.0));
        let o = self.atom(Element::O, Vec3::new(2.10, 2.20, 0.0));
        self.bond(n, ca, 1);
        self.bond(ca, c, 1);
        self.bond(c, o, 2);
        (n, ca, c, o)
    }

    /// Grows a chain of single-bonded atoms from `parent`, zigzagging in +z.
    /// Returns the new atom indices.
    fn chain(&mut self, parent: usize, els: &[Element]) -> Vec<usize> {
        let mut out = Vec::with_capacity(els.len());
        let mut prev = parent;
        let mut pos = self.positions[parent];
        for (k, &el) in els.iter().enumerate() {
            let step =
                if k % 2 == 0 { Vec3::new(0.25, 0.70, 1.25) } else { Vec3::new(0.25, -0.70, 1.25) };
            pos += step;
            let idx = self.atom(el, pos);
            self.bond(prev, idx, 1);
            prev = idx;
            out.push(idx);
        }
        out
    }

    /// Two branch atoms off `parent` at tetrahedral-ish positions.
    /// `orders` gives each branch bond's order.
    fn branch2(&mut self, parent: usize, els: [Element; 2], orders: [u8; 2]) -> [usize; 2] {
        let p = self.positions[parent];
        let a = self.atom(els[0], p + Vec3::new(0.90, 0.55, 1.00));
        let b = self.atom(els[1], p + Vec3::new(-0.90, -0.55, 1.00));
        self.bond(parent, a, orders[0]);
        self.bond(parent, b, orders[1]);
        [a, b]
    }

    /// Standard CB attached to CA.
    fn cb(&mut self, ca: usize) -> usize {
        let p = self.positions[ca];
        let cb = self.atom(Element::C, p + Vec3::new(0.0, -0.77, 1.26));
        self.bond(ca, cb, 1);
        cb
    }

    fn finish(self, kind: ResidueKind, n: usize, ca: usize, c: usize, o: usize) -> ResidueTemplate {
        ResidueTemplate {
            kind,
            elements: self.elements,
            positions: self.positions,
            bonds: self.bonds,
            n,
            ca,
            c,
            o,
        }
    }
}

fn build_template(kind: ResidueKind) -> ResidueTemplate {
    let mut t = Tb::new();
    let (n, ca, c, o) = t.backbone();
    use Element::{C as Ec, N as En, O as Eo, S as Es};
    match kind {
        ResidueKind::Gly => {}
        ResidueKind::Ala => {
            t.cb(ca);
        }
        ResidueKind::Ser => {
            let cb = t.cb(ca);
            t.chain(cb, &[Eo]);
        }
        ResidueKind::Cys => {
            let cb = t.cb(ca);
            t.chain(cb, &[Es]);
        }
        ResidueKind::Thr => {
            let cb = t.cb(ca);
            t.branch2(cb, [Eo, Ec], [1, 1]);
        }
        ResidueKind::Val => {
            let cb = t.cb(ca);
            t.branch2(cb, [Ec, Ec], [1, 1]);
        }
        ResidueKind::Pro => {
            let cb = t.cb(ca);
            let cd = t.atom(Ec, t.positions[n] + Vec3::new(0.0, -0.60, 1.30));
            let cg_pos = (t.positions[cb] + t.positions[cd]) * 0.5 + Vec3::new(0.0, -0.75, 0.60);
            let cg = t.atom(Ec, cg_pos);
            t.bond(cb, cg, 1);
            t.bond(cg, cd, 1);
            t.bond(cd, n, 1); // ring closure: proline N has no H
        }
        ResidueKind::Leu => {
            let cb = t.cb(ca);
            let cg = t.chain(cb, &[Ec])[0];
            t.branch2(cg, [Ec, Ec], [1, 1]);
        }
        ResidueKind::Ile => {
            let cb = t.cb(ca);
            let [cg1, _cg2] = t.branch2(cb, [Ec, Ec], [1, 1]);
            t.chain(cg1, &[Ec]);
        }
        ResidueKind::Asn => {
            let cb = t.cb(ca);
            let cg = t.chain(cb, &[Ec])[0];
            t.branch2(cg, [Eo, En], [2, 1]);
        }
        ResidueKind::Asp => {
            let cb = t.cb(ca);
            let cg = t.chain(cb, &[Ec])[0];
            t.branch2(cg, [Eo, Eo], [2, 1]);
        }
        ResidueKind::Gln => {
            let cb = t.cb(ca);
            let cd = t.chain(cb, &[Ec, Ec])[1];
            t.branch2(cd, [Eo, En], [2, 1]);
        }
        ResidueKind::Glu => {
            let cb = t.cb(ca);
            let cd = t.chain(cb, &[Ec, Ec])[1];
            t.branch2(cd, [Eo, Eo], [2, 1]);
        }
        ResidueKind::Lys => {
            let cb = t.cb(ca);
            t.chain(cb, &[Ec, Ec, Ec, En]);
        }
        ResidueKind::Met => {
            let cb = t.cb(ca);
            t.chain(cb, &[Ec, Es, Ec]);
        }
        ResidueKind::His => {
            let cb = t.cb(ca);
            let cg = t.chain(cb, &[Ec])[0];
            let ring = ring_vertices(
                t.positions[cg],
                Vec3::new(0.1, 0.2, 1.0),
                Vec3::new(1.0, 0.25, 0.0),
                5,
                1.38,
            );
            let nd1 = t.atom(En, ring[0]);
            let ce1 = t.atom(Ec, ring[1]);
            let ne2 = t.atom(En, ring[2]);
            let cd2 = t.atom(Ec, ring[3]);
            t.bond(cg, nd1, 1);
            t.bond(nd1, ce1, 2);
            t.bond(ce1, ne2, 1);
            t.bond(ne2, cd2, 1);
            t.bond(cd2, cg, 2);
        }
        ResidueKind::Phe | ResidueKind::Tyr => {
            let cb = t.cb(ca);
            let cg = t.chain(cb, &[Ec])[0];
            let ring = ring_vertices(
                t.positions[cg],
                Vec3::new(0.1, 0.2, 1.0),
                Vec3::new(1.0, 0.25, 0.0),
                6,
                1.39,
            );
            let cd1 = t.atom(Ec, ring[0]);
            let ce1 = t.atom(Ec, ring[1]);
            let cz = t.atom(Ec, ring[2]);
            let ce2 = t.atom(Ec, ring[3]);
            let cd2 = t.atom(Ec, ring[4]);
            t.bond(cg, cd1, 2);
            t.bond(cd1, ce1, 1);
            t.bond(ce1, cz, 2);
            t.bond(cz, ce2, 1);
            t.bond(ce2, cd2, 2);
            t.bond(cd2, cg, 1);
            if kind == ResidueKind::Tyr {
                let dir = (t.positions[cz] - t.positions[cg]).normalized();
                let oh = t.atom(Eo, t.positions[cz] + dir * 1.36);
                t.bond(cz, oh, 1);
            }
        }
        ResidueKind::Arg => {
            let cb = t.cb(ca);
            let idx = t.chain(cb, &[Ec, Ec, En, Ec]);
            let cz = idx[3];
            t.branch2(cz, [En, En], [2, 1]);
        }
        ResidueKind::Trp => {
            let cb = t.cb(ca);
            let cg = t.chain(cb, &[Ec])[0];
            let ring5 = ring_vertices(
                t.positions[cg],
                Vec3::new(0.1, 0.2, 1.0),
                Vec3::new(1.0, 0.25, 0.0),
                5,
                1.38,
            );
            let cd1 = t.atom(Ec, ring5[0]);
            let ne1 = t.atom(En, ring5[1]);
            let ce2 = t.atom(Ec, ring5[2]);
            let cd2 = t.atom(Ec, ring5[3]);
            t.bond(cg, cd1, 2);
            t.bond(cd1, ne1, 1);
            t.bond(ne1, ce2, 1);
            t.bond(ce2, cd2, 2);
            t.bond(cd2, cg, 1);
            // Fused six-ring on the CD2–CE2 edge, away from CG.
            let hexa = fused_hexagon(t.positions[cd2], t.positions[ce2], t.positions[cg]);
            let cz2 = t.atom(Ec, hexa[0]);
            let ch2 = t.atom(Ec, hexa[1]);
            let cz3 = t.atom(Ec, hexa[2]);
            let ce3 = t.atom(Ec, hexa[3]);
            t.bond(ce2, cz2, 1);
            t.bond(cz2, ch2, 2);
            t.bond(ch2, cz3, 1);
            t.bond(cz3, ce3, 2);
            t.bond(ce3, cd2, 1);
        }
    }
    t.finish(kind, n, ca, c, o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_templates_build() {
        for kind in ResidueKind::ALL {
            let t = kind.template();
            assert!(t.heavy_count() >= 4, "{kind:?} missing backbone");
            assert_eq!(t.elements[t.n], Element::N);
            assert_eq!(t.elements[t.ca], Element::C);
            assert_eq!(t.elements[t.c], Element::C);
            assert_eq!(t.elements[t.o], Element::O);
        }
    }

    #[test]
    fn heavy_atom_counts() {
        let expect = |k: ResidueKind| match k {
            ResidueKind::Gly => 4,
            ResidueKind::Ala => 5,
            ResidueKind::Ser | ResidueKind::Cys => 6,
            ResidueKind::Thr | ResidueKind::Val | ResidueKind::Pro => 7,
            ResidueKind::Leu
            | ResidueKind::Ile
            | ResidueKind::Asn
            | ResidueKind::Asp
            | ResidueKind::Met => 8,
            ResidueKind::Gln | ResidueKind::Glu | ResidueKind::Lys => 9,
            ResidueKind::His => 10,
            ResidueKind::Phe => 11,
            ResidueKind::Arg => 11,
            ResidueKind::Tyr => 12,
            ResidueKind::Trp => 14,
        };
        for k in ResidueKind::ALL {
            assert_eq!(k.template().heavy_count(), expect(k), "{k:?}");
        }
    }

    #[test]
    fn bonds_reference_valid_atoms_no_dups() {
        for k in ResidueKind::ALL {
            let t = k.template();
            let mut seen = HashSet::new();
            for &(i, j, order) in &t.bonds {
                assert!(i < t.heavy_count() && j < t.heavy_count(), "{k:?}");
                assert_ne!(i, j, "{k:?} self-bond");
                assert!(order == 1 || order == 2, "{k:?} bad order");
                let key = (i.min(j), i.max(j));
                assert!(seen.insert(key), "{k:?} duplicate bond {key:?}");
            }
        }
    }

    #[test]
    fn bond_lengths_physical() {
        for k in ResidueKind::ALL {
            let t = k.template();
            for &(i, j, _) in &t.bonds {
                let d = t.positions[i].dist(t.positions[j]);
                assert!((1.0..2.2).contains(&d), "{k:?} bond {i}-{j} length {d:.2} out of range");
            }
        }
    }

    #[test]
    fn no_atom_clashes_within_template() {
        for k in ResidueKind::ALL {
            let t = k.template();
            for i in 0..t.heavy_count() {
                for j in (i + 1)..t.heavy_count() {
                    let d = t.positions[i].dist(t.positions[j]);
                    assert!(d > 0.9, "{k:?} atoms {i},{j} clash at {d:.2} A");
                }
            }
        }
    }

    #[test]
    fn valences_never_exceeded() {
        for k in ResidueKind::ALL {
            let t = k.template();
            let mut used = vec![0u8; t.heavy_count()];
            for &(i, j, order) in &t.bonds {
                used[i] += order;
                used[j] += order;
            }
            for (idx, (&el, &u)) in t.elements.iter().zip(&used).enumerate() {
                // Backbone N and C each need one spare slot for the peptide
                // bonds added at chain level.
                let budget = el.valence() - if idx == t.n || idx == t.c { 1 } else { 0 };
                assert!(u <= budget, "{k:?} atom {idx} ({el:?}) uses {u} of {budget} valence");
            }
        }
    }

    #[test]
    fn proline_nitrogen_is_saturated() {
        let t = ResidueKind::Pro.template();
        let n_bonds: u8 =
            t.bonds.iter().filter(|&&(i, j, _)| i == t.n || j == t.n).map(|&(_, _, o)| o).sum();
        // CA + CD within the template; the chain adds the peptide bond.
        assert_eq!(n_bonds, 2);
    }

    #[test]
    fn aromatic_rings_have_alternating_orders() {
        let t = ResidueKind::Phe.template();
        let aromatic: Vec<u8> = t
            .bonds
            .iter()
            .filter(|&&(i, j, _)| i >= 5 && j >= 5) // ring-ring bonds (after backbone+CB+CG)
            .map(|&(_, _, o)| o)
            .collect();
        assert!(aromatic.contains(&1) && aromatic.contains(&2));
    }

    #[test]
    fn codes_unique() {
        let codes: HashSet<&str> = ResidueKind::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), 20);
    }

    #[test]
    fn chain_atom_counts_span_paper_range() {
        let min = ResidueKind::ALL.iter().map(|k| k.chain_atom_count()).min().unwrap();
        let max = ResidueKind::ALL.iter().map(|k| k.chain_atom_count()).max().unwrap();
        assert_eq!(min, 7); // GLY
        assert_eq!(max, 24); // TRP
    }
}
