//! Minimal 3-vector math on `[f64; 3]`-backed values.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A 3-component Cartesian vector (Å for positions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Constructs from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared length.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Squared distance to another point (cheaper for threshold tests).
    #[inline]
    pub fn dist_sqr(self, o: Vec3) -> f64 {
        (self - o).norm_sqr()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// Panics on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self * (1.0 / n)
    }

    /// Unit vector, or `None` for (numerically) zero input.
    pub fn try_normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 1e-12 {
            Some(self * (1.0 / n))
        } else {
            None
        }
    }

    /// Any unit vector perpendicular to `self` (which must be nonzero).
    pub fn any_perpendicular(self) -> Vec3 {
        let axis =
            if self.x.abs() < 0.9 { Vec3::new(1.0, 0.0, 0.0) } else { Vec3::new(0.0, 1.0, 0.0) };
        self.cross(axis).normalized()
    }

    /// Rotates `self` about the (unit) `axis` by `angle` radians
    /// (Rodrigues' formula).
    pub fn rotated_about(self, axis: Vec3, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        self * c + axis.cross(self) * s + axis * (axis.dot(self) * (1.0 - c))
    }

    /// Angle in radians between two (nonzero) vectors.
    pub fn angle_between(self, o: Vec3) -> f64 {
        let d = self.dot(o) / (self.norm() * o.norm());
        d.clamp(-1.0, 1.0).acos()
    }

    /// Component array `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn dot_cross_orthogonality() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        let v = Vec3::new(0.3, -1.2, 2.2);
        let w = Vec3::new(1.5, 0.2, -0.7);
        let c = v.cross(w);
        assert!(c.dot(v).abs() < 1e-12);
        assert!(c.dot(w).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sqr(), 25.0);
        assert_eq!(Vec3::ZERO.dist(v), 5.0);
        assert_eq!(Vec3::ZERO.dist_sqr(v), 25.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn try_normalize_zero() {
        assert!(Vec3::ZERO.try_normalized().is_none());
        assert!(Vec3::new(1e-15, 0.0, 0.0).try_normalized().is_none());
        assert!(Vec3::new(2.0, 0.0, 0.0).try_normalized().is_some());
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        let _ = Vec3::ZERO.normalized();
    }

    #[test]
    fn perpendicular_really_is() {
        for v in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.3, -2.0, 0.9),
        ] {
            let p = v.any_perpendicular();
            assert!(v.dot(p).abs() < 1e-12);
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec3::new(1.0, 0.0, 0.0);
        let r = v.rotated_about(Vec3::new(0.0, 0.0, 1.0), FRAC_PI_2);
        assert!((r - Vec3::new(0.0, 1.0, 0.0)).norm() < 1e-12);
        // Full turn is identity.
        let r = v.rotated_about(Vec3::new(0.0, 0.0, 1.0), 2.0 * PI);
        assert!((r - v).norm() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec3::new(1.2, -0.7, 3.3);
        let axis = Vec3::new(0.5, 0.5, 0.7).normalized();
        let r = v.rotated_about(axis, 1.234);
        assert!((r.norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn angle_between_basis() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 2.0, 0.0);
        assert!((a.angle_between(b) - FRAC_PI_2).abs() < 1e-12);
        assert!(a.angle_between(a) < 1e-7);
        assert!((a.angle_between(-a) - PI).abs() < 1e-12);
    }

    #[test]
    fn conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0]);
    }
}
