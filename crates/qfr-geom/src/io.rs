//! XYZ and PDB-lite file I/O.
//!
//! XYZ is the interchange format used by the examples (write a built system,
//! reload it elsewhere); the PDB-lite writer produces viewable output for
//! protein systems.

use crate::element::Element;
use crate::system::{Atom, MolecularSystem};
use crate::vec3::Vec3;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Serializes a system to XYZ text (atom count, comment, `El x y z` lines).
pub fn to_xyz(sys: &MolecularSystem, comment: &str) -> String {
    let mut out = String::with_capacity(sys.n_atoms() * 40 + 64);
    let _ = writeln!(out, "{}", sys.n_atoms());
    let _ = writeln!(out, "{}", comment.replace('\n', " "));
    for a in &sys.atoms {
        let _ = writeln!(
            out,
            "{} {:.6} {:.6} {:.6}",
            a.element.symbol(),
            a.position.x,
            a.position.y,
            a.position.z
        );
    }
    out
}

/// Writes XYZ to any writer.
pub fn write_xyz<W: Write>(sys: &MolecularSystem, comment: &str, w: &mut W) -> io::Result<()> {
    w.write_all(to_xyz(sys, comment).as_bytes())
}

/// Error from XYZ parsing.
#[derive(Debug)]
pub enum XyzError {
    /// I/O failure.
    Io(io::Error),
    /// Structural / syntactic problem with a line.
    Parse(String),
}

impl std::fmt::Display for XyzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XyzError::Io(e) => write!(f, "io error: {e}"),
            XyzError::Parse(m) => write!(f, "xyz parse error: {m}"),
        }
    }
}

impl std::error::Error for XyzError {}

impl From<io::Error> for XyzError {
    fn from(e: io::Error) -> Self {
        XyzError::Io(e)
    }
}

/// Reads an XYZ file into a bare system (atoms only — bonds, residues and
/// water structure are not represented in XYZ).
pub fn read_xyz<R: BufRead>(r: &mut R) -> Result<MolecularSystem, XyzError> {
    let mut lines = r.lines();
    let count_line = lines.next().ok_or_else(|| XyzError::Parse("empty input".into()))??;
    let n: usize = count_line
        .trim()
        .parse()
        .map_err(|_| XyzError::Parse(format!("bad atom count: {count_line:?}")))?;
    let _comment = lines.next().ok_or_else(|| XyzError::Parse("missing comment line".into()))??;
    let mut atoms = Vec::with_capacity(n);
    for i in 0..n {
        let line =
            lines.next().ok_or_else(|| XyzError::Parse(format!("truncated at atom {i}")))??;
        let mut parts = line.split_whitespace();
        let sym = parts.next().ok_or_else(|| XyzError::Parse(format!("empty atom line {i}")))?;
        let element = Element::from_symbol(sym)
            .ok_or_else(|| XyzError::Parse(format!("unknown element {sym:?}")))?;
        let mut coord = |name: &str| -> Result<f64, XyzError> {
            parts
                .next()
                .ok_or_else(|| XyzError::Parse(format!("missing {name} on atom {i}")))?
                .parse()
                .map_err(|_| XyzError::Parse(format!("bad {name} on atom {i}")))
        };
        let (x, y, z) = (coord("x")?, coord("y")?, coord("z")?);
        atoms.push(Atom { element, position: Vec3::new(x, y, z) });
    }
    Ok(MolecularSystem { atoms, ..Default::default() })
}

/// Writes a PDB-lite representation: protein residues as ATOM records with
/// residue names/numbers, waters as HOH HETATM records.
pub fn to_pdb(sys: &MolecularSystem) -> String {
    let mut out = String::new();
    let mut serial = 1usize;
    for (ri, span) in sys.residues.iter().enumerate() {
        for idx in span.atom_range() {
            let a = &sys.atoms[idx];
            let _ = writeln!(
                out,
                "ATOM  {serial:>5} {:>4} {} A{:>4}    {:8.3}{:8.3}{:8.3}  1.00  0.00          {:>2}",
                a.element.symbol(),
                span.kind.code(),
                (ri + 1) % 10000,
                a.position.x,
                a.position.y,
                a.position.z,
                a.element.symbol()
            );
            serial += 1;
        }
    }
    for w in 0..sys.n_waters {
        for idx in sys.water_atoms(w) {
            let a = &sys.atoms[idx];
            let _ = writeln!(
                out,
                "HETATM{serial:>5} {:>4} HOH W{:>4}    {:8.3}{:8.3}{:8.3}  1.00  0.00          {:>2}",
                a.element.symbol(),
                (w + 1) % 10000,
                a.position.x,
                a.position.y,
                a.position.z,
                a.element.symbol()
            );
            serial += 1;
        }
    }
    out.push_str("END\n");
    out
}

/// Reads a PDB-lite file (as produced by [`to_pdb`], or any PDB whose
/// ATOM/HETATM records carry the element in columns 77–78 or as the atom
/// name): returns a bare system with atoms only. Water residues (`HOH`)
/// are recognized and counted when they appear as trailing O-H-H triples.
pub fn read_pdb<R: BufRead>(r: &mut R) -> Result<MolecularSystem, XyzError> {
    let mut atoms = Vec::new();
    let mut water_atoms = 0usize;
    for line in r.lines() {
        let line = line?;
        if !(line.starts_with("ATOM") || line.starts_with("HETATM")) {
            continue;
        }
        if line.len() < 54 {
            return Err(XyzError::Parse(format!("short PDB record: {line:?}")));
        }
        let coord = |range: std::ops::Range<usize>, name: &str| -> Result<f64, XyzError> {
            line.get(range.clone())
                .ok_or_else(|| XyzError::Parse(format!("missing {name} field")))?
                .trim()
                .parse()
                .map_err(|_| XyzError::Parse(format!("bad {name} in {line:?}")))
        };
        let x = coord(30..38, "x")?;
        let y = coord(38..46, "y")?;
        let z = coord(46..54, "z")?;
        // Element: columns 77-78 if present, else first letter of the atom
        // name field.
        let sym = line
            .get(76..78)
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .or_else(|| line.get(12..16).map(str::trim))
            .unwrap_or("");
        let element = Element::from_symbol(sym)
            .or_else(|| sym.get(0..1).and_then(Element::from_symbol))
            .ok_or_else(|| XyzError::Parse(format!("unknown element {sym:?}")))?;
        if line.contains("HOH") {
            water_atoms += 1;
        }
        atoms.push(Atom { element, position: Vec3::new(x, y, z) });
    }
    // Count waters only if the trailing HOH block is well-formed triples.
    let n_waters = if water_atoms > 0 && water_atoms % 3 == 0 {
        let start = atoms.len() - water_atoms;
        let pattern_ok = (0..water_atoms / 3).all(|w| {
            atoms[start + 3 * w].element == Element::O
                && atoms[start + 3 * w + 1].element == Element::H
                && atoms[start + 3 * w + 2].element == Element::H
        });
        if pattern_ok {
            water_atoms / 3
        } else {
            0
        }
    } else {
        0
    };
    Ok(MolecularSystem { atoms, n_waters, ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ProteinBuilder, WaterBoxBuilder};
    use std::io::BufReader;

    #[test]
    fn xyz_round_trip() {
        let sys = WaterBoxBuilder::new(4).seed(1).build();
        let text = to_xyz(&sys, "four waters");
        let mut reader = BufReader::new(text.as_bytes());
        let back = read_xyz(&mut reader).unwrap();
        assert_eq!(back.n_atoms(), sys.n_atoms());
        for (a, b) in back.atoms.iter().zip(&sys.atoms) {
            assert_eq!(a.element, b.element);
            assert!(a.position.dist(b.position) < 1e-5);
        }
    }

    #[test]
    fn xyz_header_shape() {
        let sys = WaterBoxBuilder::new(1).build();
        let text = to_xyz(&sys, "multi\nline comment");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("3"));
        assert_eq!(lines.next(), Some("multi line comment"));
        assert!(lines.next().unwrap().starts_with("O "));
    }

    #[test]
    fn xyz_rejects_garbage() {
        let mut r = BufReader::new("not a number\nhi\n".as_bytes());
        assert!(matches!(read_xyz(&mut r), Err(XyzError::Parse(_))));
        let mut r = BufReader::new("2\nc\nH 0 0 0\n".as_bytes());
        assert!(matches!(read_xyz(&mut r), Err(XyzError::Parse(_))), "truncated");
        let mut r = BufReader::new("1\nc\nXq 0 0 0\n".as_bytes());
        assert!(matches!(read_xyz(&mut r), Err(XyzError::Parse(_))), "bad element");
        let mut r = BufReader::new("1\nc\nH 0 zero 0\n".as_bytes());
        assert!(matches!(read_xyz(&mut r), Err(XyzError::Parse(_))), "bad coord");
    }

    #[test]
    fn pdb_round_trip_atoms_and_waters() {
        let protein = ProteinBuilder::new(2).seed(4).build();
        let solvated = crate::builder::SolvatedSystem::build(&protein, 4.0, 3.1, 2.4, 5);
        let pdb = to_pdb(&solvated);
        let mut r = BufReader::new(pdb.as_bytes());
        let back = read_pdb(&mut r).unwrap();
        assert_eq!(back.n_atoms(), solvated.n_atoms());
        assert_eq!(back.n_waters, solvated.n_waters, "water block recognized");
        for (a, b) in back.atoms.iter().zip(&solvated.atoms) {
            assert_eq!(a.element, b.element);
            assert!(a.position.dist(b.position) < 2e-3, "PDB precision is 3 decimals");
        }
    }

    #[test]
    fn pdb_reader_rejects_garbage() {
        let mut r = BufReader::new("ATOM      1    C\n".as_bytes());
        assert!(matches!(read_pdb(&mut r), Err(XyzError::Parse(_))));
        // Non-record lines are skipped silently.
        let mut r = BufReader::new("REMARK hello\nEND\n".as_bytes());
        let sys = read_pdb(&mut r).unwrap();
        assert_eq!(sys.n_atoms(), 0);
    }

    #[test]
    fn pdb_contains_residues_and_waters() {
        let protein = ProteinBuilder::new(2).seed(2).build();
        let solvated = crate::builder::SolvatedSystem::build(&protein, 4.0, 3.1, 2.4, 3);
        let pdb = to_pdb(&solvated);
        assert!(pdb.contains("ATOM"));
        assert!(pdb.contains("HETATM"));
        assert!(pdb.contains("HOH"));
        assert!(pdb.trim_end().ends_with("END"));
        let atom_lines =
            pdb.lines().filter(|l| l.starts_with("ATOM") || l.starts_with("HETATM")).count();
        assert_eq!(atom_lines, solvated.n_atoms());
    }
}
