//! Geometric embedding helpers: ring placement and automatic hydrogenation.
//!
//! Residue templates specify heavy atoms only; hydrogens are added by
//! [`plan_hydrogens`], which fills each heavy atom's remaining valence with
//! hydrogens placed at chemically sensible directions (tetrahedral /
//! trigonal geometry inferred from the existing bond directions). The same
//! placement rule is reused by the fragmenter when terminating cut peptide
//! bonds with cap hydrogens.

use crate::element::Element;
use crate::vec3::Vec3;

/// Tetrahedral half-angle used when adding two hydrogens: each H sits at
/// ±(109.47°/2) from the mean open direction.
const TET_HALF: f64 = 0.9553; // 54.735 degrees in radians

/// Angle between a CH3-style hydrogen direction and the open axis
/// (180° − 109.47°).
const CONE_ANGLE: f64 = 1.2310; // 70.53 degrees in radians

/// Positions of `count` hydrogens to attach to a heavy atom at `center`,
/// given the unit directions of its existing bonds.
///
/// - 0 existing bonds: hydrogens spread around +z;
/// - 1 H: opposite the mean bond direction;
/// - 2 H: split symmetrically about the open direction (tetrahedral);
/// - 3 H: a 120°-spaced cone around the open direction (methyl/ammonium).
pub fn hydrogen_positions(
    center: Vec3,
    existing_dirs: &[Vec3],
    count: usize,
    bond_len: f64,
) -> Vec<Vec3> {
    if count == 0 {
        return Vec::new();
    }
    // Open direction: opposite the resultant of existing bonds.
    let mut sum = Vec3::ZERO;
    for d in existing_dirs {
        sum += *d;
    }
    let base = (-sum)
        .try_normalized()
        .or_else(|| existing_dirs.first().map(|d| d.any_perpendicular()))
        .unwrap_or(Vec3::new(0.0, 0.0, 1.0));

    match count {
        1 => vec![center + base * bond_len],
        2 => {
            // Split in the plane least occupied: rotate about an axis
            // perpendicular to both base and the first existing bond.
            let axis = existing_dirs
                .first()
                .and_then(|d| base.cross(*d).try_normalized())
                .unwrap_or_else(|| base.any_perpendicular());
            vec![
                center + base.rotated_about(axis, TET_HALF) * bond_len,
                center + base.rotated_about(axis, -TET_HALF) * bond_len,
            ]
        }
        _ => {
            let perp = base.any_perpendicular();
            let tilted = base * CONE_ANGLE.cos() + perp * CONE_ANGLE.sin();
            (0..count)
                .map(|k| {
                    let ang = 2.0 * std::f64::consts::PI * k as f64 / count as f64;
                    center + tilted.rotated_about(base, ang) * bond_len
                })
                .collect()
        }
    }
}

/// Plans hydrogens for every heavy atom: returns, per heavy atom, the
/// positions of hydrogens needed to complete its valence.
///
/// `bond_orders[i]` lists `(neighbor index, order)` of atom `i`'s bonds
/// (both directions must be present).
pub fn plan_hydrogens(
    elements: &[Element],
    positions: &[Vec3],
    bond_orders: &[Vec<(usize, u8)>],
) -> Vec<Vec<Vec3>> {
    assert_eq!(elements.len(), positions.len());
    assert_eq!(elements.len(), bond_orders.len());
    elements
        .iter()
        .enumerate()
        .map(|(i, &el)| {
            if el == Element::H {
                return Vec::new();
            }
            let used: u8 = bond_orders[i].iter().map(|&(_, o)| o).sum();
            let free = el.valence().saturating_sub(used) as usize;
            if free == 0 {
                return Vec::new();
            }
            let dirs: Vec<Vec3> = bond_orders[i]
                .iter()
                .filter_map(|&(j, _)| (positions[j] - positions[i]).try_normalized())
                .collect();
            hydrogen_positions(positions[i], &dirs, free, el.h_bond_length())
        })
        .collect()
}

/// Vertices of a regular `n`-gon that contains `first` as a vertex and
/// extends from it in the direction `outward` (which need not be exactly
/// in-plane; it is projected). Returns the remaining `n-1` vertices in ring
/// order. `normal` fixes the ring plane.
pub fn ring_vertices(
    first: Vec3,
    outward: Vec3,
    normal: Vec3,
    n: usize,
    bond_len: f64,
) -> Vec<Vec3> {
    assert!(n >= 3, "a ring needs at least 3 vertices");
    let nrm = normal.normalized();
    // Project outward into the ring plane.
    let out_in_plane = (outward - nrm * outward.dot(nrm))
        .try_normalized()
        .unwrap_or_else(|| nrm.any_perpendicular());
    let circumradius = bond_len / (2.0 * (std::f64::consts::PI / n as f64).sin());
    let center = first + out_in_plane * circumradius;
    let spoke = first - center; // length = circumradius
    (1..n)
        .map(|k| {
            let ang = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            center + spoke.rotated_about(nrm, ang)
        })
        .collect()
}

/// Completes a hexagon sharing the edge `a`–`b`, on the side away from
/// `away`. Returns the 4 remaining vertices in ring order starting from the
/// vertex adjacent to `b`. Used for the fused six-ring of tryptophan.
pub fn fused_hexagon(a: Vec3, b: Vec3, away: Vec3) -> Vec<Vec3> {
    let edge = b - a;
    let bond_len = edge.norm();
    let mid = (a + b) * 0.5;
    // Plane normal: perpendicular to the edge and the (edge, away) plane.
    let to_away = away - mid;
    let nrm = edge.cross(to_away).try_normalized().unwrap_or_else(|| edge.any_perpendicular());
    // In-plane direction pointing away from `away`.
    let in_plane = nrm.cross(edge).normalized();
    let dir = if in_plane.dot(to_away) > 0.0 { -in_plane } else { in_plane };
    let apothem = bond_len * 3.0_f64.sqrt() / 2.0;
    let center = mid + dir * apothem;
    // Rotate the spoke center->b around the normal to enumerate vertices.
    let spoke = b - center;
    let trial = center + spoke.rotated_about(nrm, std::f64::consts::FRAC_PI_3);
    let sign = if trial.dist(a) > bond_len { 1.0 } else { -1.0 };
    (1..5)
        .map(|k| center + spoke.rotated_about(nrm, sign * std::f64::consts::FRAC_PI_3 * k as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hydrogen_opposes_bonds() {
        let c = Vec3::ZERO;
        let dirs = [Vec3::new(1.0, 0.0, 0.0)];
        let h = hydrogen_positions(c, &dirs, 1, 1.09);
        assert_eq!(h.len(), 1);
        assert!((h[0] - Vec3::new(-1.09, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn two_hydrogens_tetrahedral() {
        let c = Vec3::ZERO;
        let dirs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(-0.3, 0.9, 0.0).normalized()];
        let hs = hydrogen_positions(c, &dirs, 2, 1.0);
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert!((h.norm() - 1.0).abs() < 1e-12, "bond length wrong");
        }
        // H-C-H angle near tetrahedral.
        let ang = hs[0].angle_between(hs[1]).to_degrees();
        assert!((ang - 109.47).abs() < 1.0, "H-C-H angle {ang}");
    }

    #[test]
    fn three_hydrogens_methyl() {
        let c = Vec3::new(1.0, 2.0, 3.0);
        let dirs = [Vec3::new(0.0, 0.0, -1.0)];
        let hs = hydrogen_positions(c, &dirs, 3, 1.09);
        assert_eq!(hs.len(), 3);
        for h in &hs {
            assert!(((h.dist(c)) - 1.09).abs() < 1e-12);
            // Each H-C-bond angle near 109.5 deg.
            let ang = (*h - c).angle_between(Vec3::new(0.0, 0.0, -1.0)).to_degrees();
            assert!((ang - 109.47).abs() < 1.0, "angle {ang}");
        }
        // Mutual angles near 109.5 too.
        let a01 = (hs[0] - c).angle_between(hs[1] - c).to_degrees();
        assert!((a01 - 109.47).abs() < 2.0);
    }

    #[test]
    fn isolated_atom_gets_hydrogens() {
        let hs = hydrogen_positions(Vec3::ZERO, &[], 2, 0.96);
        assert_eq!(hs.len(), 2);
        let ang = hs[0].angle_between(hs[1]).to_degrees();
        assert!((ang - 109.47).abs() < 2.0);
    }

    #[test]
    fn plan_hydrogens_water_like() {
        // Lone O with no bonds -> 2 H.
        let els = [Element::O];
        let pos = [Vec3::ZERO];
        let bonds = [vec![]];
        let plan = plan_hydrogens(&els, &pos, &bonds);
        assert_eq!(plan[0].len(), 2);
    }

    #[test]
    fn plan_hydrogens_methane_like() {
        let els = [Element::C, Element::H];
        let pos = [Vec3::ZERO, Vec3::new(1.09, 0.0, 0.0)];
        let bonds = [vec![(1usize, 1u8)], vec![(0usize, 1u8)]];
        let plan = plan_hydrogens(&els, &pos, &bonds);
        assert_eq!(plan[0].len(), 3, "CH needs 3 more H");
        assert!(plan[1].is_empty(), "H never gets hydrogens");
    }

    #[test]
    fn plan_hydrogens_respects_double_bonds() {
        // Carbonyl C: bonded to O (order 2) and C (order 1) -> 1 H.
        let els = [Element::C, Element::O, Element::C];
        let pos = [Vec3::ZERO, Vec3::new(1.2, 0.0, 0.0), Vec3::new(-0.8, 1.2, 0.0)];
        let bonds = [vec![(1, 2), (2, 1)], vec![(0, 2)], vec![(0, 1)]];
        let plan = plan_hydrogens(&els, &pos, &bonds);
        assert_eq!(plan[0].len(), 1);
        assert!(plan[1].is_empty(), "carbonyl O is saturated");
        assert_eq!(plan[2].len(), 3);
    }

    #[test]
    fn ring_vertices_hexagon_geometry() {
        let first = Vec3::ZERO;
        let rest =
            ring_vertices(first, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0), 6, 1.39);
        assert_eq!(rest.len(), 5);
        let all: Vec<Vec3> = std::iter::once(first).chain(rest).collect();
        // Consecutive distances all equal the bond length.
        for k in 0..6 {
            let d = all[k].dist(all[(k + 1) % 6]);
            assert!((d - 1.39).abs() < 1e-9, "edge {k} length {d}");
        }
        // All vertices in the z=0 plane.
        for v in &all {
            assert!(v.z.abs() < 1e-9);
        }
    }

    #[test]
    fn ring_vertices_pentagon() {
        let rest =
            ring_vertices(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 0.0, 1.0), 5, 1.4);
        assert_eq!(rest.len(), 4);
        let all: Vec<Vec3> = std::iter::once(Vec3::ZERO).chain(rest).collect();
        for k in 0..5 {
            let d = all[k].dist(all[(k + 1) % 5]);
            assert!((d - 1.4).abs() < 1e-9);
        }
    }

    #[test]
    fn fused_hexagon_shares_edge() {
        // Base hexagon edge a-b; fused ring grows away from `away`.
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.4, 0.0, 0.0);
        let away = Vec3::new(0.7, 1.0, 0.0);
        let verts = fused_hexagon(a, b, away);
        assert_eq!(verts.len(), 4);
        // All on the -y side.
        for v in &verts {
            assert!(v.y < 0.1, "vertex on wrong side: {v:?}");
        }
        // Ring closure: b -> verts[0] -> ... -> verts[3] -> a, all 1.4.
        let cycle: Vec<Vec3> =
            std::iter::once(b).chain(verts.iter().copied()).chain(std::iter::once(a)).collect();
        for w in cycle.windows(2) {
            let d = w[0].dist(w[1]);
            assert!((d - 1.4).abs() < 1e-9, "edge {d}");
        }
    }
}
