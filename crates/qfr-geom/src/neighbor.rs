//! Cell-list neighbor search.
//!
//! Eq. (1) requires every pair of fragments whose minimal inter-atomic
//! distance is within λ (4 Å in the paper): protein–protein generalized
//! concaps, protein–water and water–water two-body terms. For 10⁸ atoms a
//! brute-force O(N²) scan is impossible; [`CellList`] bins atoms into cubic
//! cells of edge ≥ λ so only the 27 surrounding cells must be examined per
//! atom — the standard linked-cell technique of molecular dynamics.

use crate::vec3::Vec3;
use rayon::prelude::*;
use std::collections::HashMap;

/// A cubic-cell spatial index over a set of points.
#[derive(Debug, Clone)]
pub struct CellList {
    cell: f64,
    origin: Vec3,
    dims: [usize; 3],
    /// CSR-style storage: `starts[c]..starts[c+1]` indexes into `items`.
    starts: Vec<usize>,
    items: Vec<u32>,
    positions: Vec<Vec3>,
}

impl CellList {
    /// Builds a cell list with the given cell edge (must be > 0). Typically
    /// the edge equals the search radius λ.
    pub fn new(positions: &[Vec3], cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(positions.len() <= u32::MAX as usize, "too many points for u32 ids");
        // A NaN coordinate would silently bin to cell 0 (every comparison
        // below is false for NaN) and then be invisible to most queries —
        // reject corrupted geometry up front instead.
        for (i, p) in positions.iter().enumerate() {
            assert!(
                p.x.is_finite() && p.y.is_finite() && p.z.is_finite(),
                "point {i} has non-finite coordinates ({}, {}, {})",
                p.x,
                p.y,
                p.z
            );
        }
        if positions.is_empty() {
            return Self {
                cell,
                origin: Vec3::ZERO,
                dims: [1, 1, 1],
                starts: vec![0, 0],
                items: vec![],
                positions: vec![],
            };
        }
        let mut lo = positions[0];
        let mut hi = positions[0];
        for p in positions {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            lo.z = lo.z.min(p.z);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
            hi.z = hi.z.max(p.z);
        }
        let dims = [
            (((hi.x - lo.x) / cell).floor() as usize) + 1,
            (((hi.y - lo.y) / cell).floor() as usize) + 1,
            (((hi.z - lo.z) / cell).floor() as usize) + 1,
        ];
        let ncells = dims[0] * dims[1] * dims[2];
        // Counting sort into cells.
        let mut counts = vec![0usize; ncells + 1];
        let cell_of = |p: &Vec3| -> usize {
            let ix = ((p.x - lo.x) / cell) as usize;
            let iy = ((p.y - lo.y) / cell) as usize;
            let iz = ((p.z - lo.z) / cell) as usize;
            (ix.min(dims[0] - 1) * dims[1] + iy.min(dims[1] - 1)) * dims[2] + iz.min(dims[2] - 1)
        };
        for p in positions {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..ncells {
            counts[c + 1] += counts[c];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; positions.len()];
        for (i, p) in positions.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c]] = i as u32;
            cursor[c] += 1;
        }
        Self { cell, origin: lo, dims, starts, items, positions: positions.to_vec() }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    #[inline]
    fn cell_coords(&self, p: Vec3) -> [isize; 3] {
        [
            ((p.x - self.origin.x) / self.cell) as isize,
            ((p.y - self.origin.y) / self.cell) as isize,
            ((p.z - self.origin.z) / self.cell) as isize,
        ]
    }

    /// Indices of all points within `radius` of `query` (inclusive).
    ///
    /// `radius` must not exceed the cell edge, or neighbors could be missed.
    pub fn query_within(&self, query: Vec3, radius: f64) -> Vec<usize> {
        assert!(
            radius <= self.cell + 1e-12,
            "query radius {radius} exceeds cell size {}",
            self.cell
        );
        let r2 = radius * radius;
        let cc = self.cell_coords(query);
        let mut out = Vec::new();
        for dx in -1..=1isize {
            for dy in -1..=1isize {
                for dz in -1..=1isize {
                    let ix = cc[0] + dx;
                    let iy = cc[1] + dy;
                    let iz = cc[2] + dz;
                    if ix < 0 || iy < 0 || iz < 0 {
                        continue;
                    }
                    let (ix, iy, iz) = (ix as usize, iy as usize, iz as usize);
                    if ix >= self.dims[0] || iy >= self.dims[1] || iz >= self.dims[2] {
                        continue;
                    }
                    let c = (ix * self.dims[1] + iy) * self.dims[2] + iz;
                    for &i in &self.items[self.starts[c]..self.starts[c + 1]] {
                        if self.positions[i as usize].dist_sqr(query) <= r2 {
                            out.push(i as usize);
                        }
                    }
                }
            }
        }
        out
    }

    /// True if any indexed point lies within `radius` of `query`.
    ///
    /// `radius` must not exceed the cell edge, or neighbors could be missed.
    pub fn any_within(&self, query: Vec3, radius: f64) -> bool {
        assert!(
            radius <= self.cell + 1e-12,
            "query radius {radius} exceeds cell size {}",
            self.cell
        );
        let r2 = radius * radius;
        let cc = self.cell_coords(query);
        for dx in -1..=1isize {
            for dy in -1..=1isize {
                for dz in -1..=1isize {
                    let ix = cc[0] + dx;
                    let iy = cc[1] + dy;
                    let iz = cc[2] + dz;
                    if ix < 0 || iy < 0 || iz < 0 {
                        continue;
                    }
                    let (ix, iy, iz) = (ix as usize, iy as usize, iz as usize);
                    if ix >= self.dims[0] || iy >= self.dims[1] || iz >= self.dims[2] {
                        continue;
                    }
                    let c = (ix * self.dims[1] + iy) * self.dims[2] + iz;
                    for &i in &self.items[self.starts[c]..self.starts[c + 1]] {
                        if self.positions[i as usize].dist_sqr(query) <= r2 {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

/// Finds all unordered pairs of *groups* whose minimal inter-atomic distance
/// is within `lambda`.
///
/// `group_of[a]` maps atom `a` to its group id; `positions[a]` is its
/// location. Pairs `(g, g)` (same group) are never reported. Parallelized
/// over atoms with rayon; the result is sorted and deduplicated.
pub fn group_pairs_within(positions: &[Vec3], group_of: &[u32], lambda: f64) -> Vec<(u32, u32)> {
    assert_eq!(positions.len(), group_of.len(), "group map length mismatch");
    let cl = CellList::new(positions, lambda);
    let mut pairs: Vec<(u32, u32)> = positions
        .par_iter()
        .enumerate()
        .flat_map_iter(|(a, &pa)| {
            let ga = group_of[a];
            cl.query_within(pa, lambda)
                .into_iter()
                .filter_map(move |b| {
                    let gb = group_of[b];
                    // Count each group pair once (lower id first); skip
                    // intra-group contacts.
                    if gb > ga {
                        Some((ga, gb))
                    } else {
                        None
                    }
                })
                .collect::<Vec<_>>()
                .into_iter()
        })
        .collect();
    pairs.par_sort_unstable();
    pairs.dedup();
    pairs
}

/// Brute-force reference for [`group_pairs_within`] (tests only; O(N²)).
pub fn group_pairs_brute_force(
    positions: &[Vec3],
    group_of: &[u32],
    lambda: f64,
) -> Vec<(u32, u32)> {
    let l2 = lambda * lambda;
    let mut set: HashMap<(u32, u32), ()> = HashMap::new();
    for a in 0..positions.len() {
        for b in (a + 1)..positions.len() {
            let (ga, gb) = (group_of[a], group_of[b]);
            if ga == gb {
                continue;
            }
            if positions[a].dist_sqr(positions[b]) <= l2 {
                let key = (ga.min(gb), ga.max(gb));
                set.insert(key, ());
            }
        }
    }
    let mut pairs: Vec<(u32, u32)> = set.into_keys().collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, spacing: f64) -> Vec<Vec3> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    out.push(Vec3::new(i as f64, j as f64, k as f64) * spacing);
                }
            }
        }
        out
    }

    #[test]
    fn query_finds_neighbors_on_grid() {
        let pts = grid_points(4, 1.0);
        let cl = CellList::new(&pts, 1.5);
        // Center point (1,1,1) has 6 face neighbors at distance 1 plus itself.
        let q = Vec3::new(1.0, 1.0, 1.0);
        let within = cl.query_within(q, 1.0);
        assert_eq!(within.len(), 7);
        let within = cl.query_within(q, 1.5);
        // + 12 edge-diagonal neighbors at sqrt(2).
        assert_eq!(within.len(), 19);
    }

    #[test]
    fn any_within_matches_query() {
        let pts = grid_points(3, 2.0);
        let cl = CellList::new(&pts, 2.0);
        assert!(cl.any_within(Vec3::new(0.5, 0.0, 0.0), 1.0));
        assert!(!cl.any_within(Vec3::new(1.0, 1.0, 1.0), 0.5));
    }

    #[test]
    #[should_panic(expected = "exceeds cell size")]
    fn oversized_radius_rejected() {
        let cl = CellList::new(&[Vec3::ZERO], 1.0);
        let _ = cl.query_within(Vec3::ZERO, 2.0);
    }

    #[test]
    #[should_panic(expected = "exceeds cell size")]
    fn any_within_oversized_radius_rejected() {
        // Regression: `any_within` used to accept radius > cell and then
        // silently miss this neighbor — it sits 2.5 cells away, outside the
        // 27-cell stencil, so the unchecked scan returned `false` even
        // though the point is within the requested radius.
        let neighbor = Vec3::new(2.5, 0.0, 0.0);
        let cl = CellList::new(&[Vec3::ZERO, neighbor], 1.0);
        let _ = cl.any_within(Vec3::ZERO, 3.0);
    }

    #[test]
    #[should_panic(expected = "non-finite coordinates")]
    fn nan_positions_rejected() {
        // Regression: NaN coordinates used to bin to cell 0 silently.
        let _ = CellList::new(&[Vec3::ZERO, Vec3::new(f64::NAN, 0.0, 0.0)], 1.0);
    }

    #[test]
    fn empty_cell_list() {
        let cl = CellList::new(&[], 1.0);
        assert!(cl.is_empty());
        assert!(cl.query_within(Vec3::ZERO, 1.0).is_empty());
        assert!(!cl.any_within(Vec3::ZERO, 1.0));
    }

    #[test]
    fn group_pairs_match_brute_force() {
        // Pseudo-random cloud in a 12 A box, groups of 3 atoms.
        let mut state = 12345u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 12.0
        };
        let n = 120;
        let positions: Vec<Vec3> = (0..n).map(|_| Vec3::new(rnd(), rnd(), rnd())).collect();
        let group_of: Vec<u32> = (0..n).map(|i| (i / 3) as u32).collect();
        let fast = group_pairs_within(&positions, &group_of, 4.0);
        let slow = group_pairs_brute_force(&positions, &group_of, 4.0);
        assert_eq!(fast, slow);
        assert!(!fast.is_empty(), "test cloud should produce contacts");
    }

    #[test]
    fn group_pairs_exclude_same_group() {
        let positions = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0)];
        let pairs = group_pairs_within(&positions, &[0, 0], 4.0);
        assert!(pairs.is_empty());
    }

    #[test]
    fn group_pairs_threshold_boundary() {
        let positions = vec![Vec3::ZERO, Vec3::new(4.0, 0.0, 0.0), Vec3::new(8.5, 0.0, 0.0)];
        let pairs = group_pairs_within(&positions, &[0, 1, 2], 4.0);
        // 0-1 exactly at lambda: included. 1-2 at 4.5: excluded.
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn points_on_cell_boundaries() {
        // Degenerate coordinates landing exactly on cell edges must not be
        // lost or double counted.
        let positions = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(4.0, 0.0, 0.0),
            Vec3::new(4.0, 4.0, 0.0),
            Vec3::new(4.0, 4.0, 4.0),
        ];
        let cl = CellList::new(&positions, 4.0);
        assert_eq!(cl.len(), 4);
        for (i, &p) in positions.iter().enumerate() {
            let hits = cl.query_within(p, 0.1);
            assert_eq!(hits, vec![i]);
        }
    }
}
