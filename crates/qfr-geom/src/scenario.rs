//! Scenario generators beyond the paper's two species.
//!
//! The QF-RAMAN paper evaluates on exactly two molecular populations —
//! capped amino-acid chains and water. The graph-based fragmenter
//! (`qfr-fragment::graph`) removes that restriction; this module supplies
//! deterministic synthetic systems that exercise it:
//!
//! - [`protein_ligand`]: a protein with an aromatic small-molecule ligand
//!   docked at its surface (covalent atoms outside every residue span),
//!   optionally solvated;
//! - [`disulfide_dimer`]: two helical chains joined by an S–S bond — a
//!   multi-chain protein the chain/water fast path cannot describe;
//! - [`polymer_melt`]: a box of short alkane chains, no residues at all,
//!   with the covalent graph reconstructed by element-aware bond
//!   detection ([`crate::covalent::detect_bonds`]).
//!
//! [`build_scenario`] maps the CLI/bench scenario names to
//! workstation-sized defaults.

use crate::builder::{FoldStyle, ProteinBuilder, SolvatedSystem};
use crate::element::Element;
use crate::embed::{plan_hydrogens, ring_vertices};
use crate::residue::ResidueKind;
use crate::system::{Atom, Bond, MolecularSystem};
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Names accepted by [`build_scenario`] (and `qfr spectrum --scenario`).
pub const SCENARIO_NAMES: &[&str] = &["protein-ligand", "disulfide", "polymer-melt"];

/// Builds the named scenario at its workstation-sized default scale.
/// Returns `None` for an unknown name (see [`SCENARIO_NAMES`]).
pub fn build_scenario(name: &str, seed: u64) -> Option<MolecularSystem> {
    match name {
        "protein-ligand" => Some(protein_ligand(10, Some(4.0), seed)),
        "disulfide" => Some(disulfide_dimer(9, seed)),
        "polymer-melt" => Some(polymer_melt(5, 12, seed)),
        _ => None,
    }
}

/// Appends a molecule to `sys`: heavy atoms in the given order, then the
/// hydrogens completing each heavy atom's valence (heavy-then-H, matching
/// the residue layout), then all bonds. `bonds` carries indices into
/// `elements`/`positions`.
fn append_molecule(
    sys: &mut MolecularSystem,
    elements: &[Element],
    positions: &[Vec3],
    bonds: &[(usize, usize, u8)],
) {
    let mut adjacency: Vec<Vec<(usize, u8)>> = vec![Vec::new(); elements.len()];
    for &(i, j, order) in bonds {
        adjacency[i].push((j, order));
        adjacency[j].push((i, order));
    }
    let h_plan = plan_hydrogens(elements, positions, &adjacency);
    let base = sys.atoms.len();
    let mut final_of = vec![usize::MAX; elements.len()];
    for (k, (&el, &p)) in elements.iter().zip(positions).enumerate() {
        final_of[k] = sys.atoms.len();
        sys.atoms.push(Atom { element: el, position: p });
    }
    for (k, hs) in h_plan.iter().enumerate() {
        for &hp in hs {
            let h_idx = sys.atoms.len();
            sys.atoms.push(Atom { element: Element::H, position: hp });
            sys.bonds.push(Bond::new(final_of[k], h_idx, 1, elements[k], Element::H));
        }
    }
    for &(i, j, order) in bonds {
        sys.bonds.push(Bond::new(final_of[i], final_of[j], order, elements[i], elements[j]));
    }
    debug_assert!(base <= sys.atoms.len());
}

/// A protein with a phenyl-ethanol-like ligand (aromatic six-ring, ethyl
/// tail, hydroxyl) docked 3.4 Å off the protein surface — inside the λ
/// threshold but outside clash range. With `solvate_padding`, the combined
/// system is immersed in a water box. The ligand's atoms belong to no
/// residue span, so decomposition must go through the graph fragmenter.
pub fn protein_ligand(
    n_residues: usize,
    solvate_padding: Option<f64>,
    seed: u64,
) -> MolecularSystem {
    let mut sys = ProteinBuilder::new(n_residues).seed(seed).fold(5, 3).build();

    // Dock site: the +x-extreme protein atom.
    let anchor = sys
        .atoms
        .iter()
        .map(|a| a.position)
        .fold(Vec3::new(f64::NEG_INFINITY, 0.0, 0.0), |m, p| if p.x > m.x { p } else { m });

    // Aromatic ring (Kekulé alternating orders so the ring is protected
    // from cutting), first vertex toward the protein.
    let c0 = anchor + Vec3::new(3.4, 0.0, 0.0);
    let ring = {
        let mut v = vec![c0];
        v.extend(ring_vertices(c0, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0), 6, 1.39));
        v
    };
    let center = ring.iter().copied().fold(Vec3::ZERO, |s, p| s + p) * (1.0 / 6.0);
    // Ethyl-hydroxyl tail off the far vertex (ring[3]), extending away.
    let out = (ring[3] - center).normalized();
    let c6 = ring[3] + out * 1.50;
    let c7 = c6 + (out * 1.26 + Vec3::new(0.0, 0.0, 0.89));
    let o8 = c7 + (out * 1.17 + Vec3::new(0.0, 0.0, -0.82));

    let mut elements = vec![Element::C; 7];
    elements.push(Element::C);
    elements.push(Element::O);
    let mut positions = ring.clone();
    positions.push(c6);
    positions.push(c7);
    positions.push(o8);
    let bonds = vec![
        (0, 1, 2u8),
        (1, 2, 1),
        (2, 3, 2),
        (3, 4, 1),
        (4, 5, 2),
        (5, 0, 1),
        (3, 6, 1),
        (6, 7, 1),
        (7, 8, 1),
    ];
    append_molecule(&mut sys, &elements, &positions, &bonds);

    match solvate_padding {
        Some(pad) => SolvatedSystem::build(&sys, pad, 3.1, 2.4, seed + 1),
        None => sys,
    }
}

/// Two helical chains of `n_res_per_chain` residues each, placed side by
/// side and joined by a disulfide bond between their central cysteines.
/// The chains are *not* peptide-bonded to each other, so the single-chain
/// fast path does not apply; the S–S bridge makes them one covalent
/// component for the graph fragmenter.
pub fn disulfide_dimer(n_res_per_chain: usize, seed: u64) -> MolecularSystem {
    assert!(n_res_per_chain >= 1);
    let mut sequence = vec![ResidueKind::Ala; n_res_per_chain];
    sequence[n_res_per_chain / 2] = ResidueKind::Cys;
    let build_chain = |s: u64| {
        ProteinBuilder::new(n_res_per_chain)
            .seed(s)
            .sequence(sequence.clone())
            .fold_style(FoldStyle::alpha_helix())
            .build()
    };
    let chain_a = build_chain(seed);
    let chain_b = build_chain(seed.wrapping_add(1));

    // Place chain B beside chain A: 2.5 Å of clearance between bounding
    // boxes along x.
    let max_x = chain_a.atoms.iter().map(|a| a.position.x).fold(f64::NEG_INFINITY, f64::max);
    let min_x_b = chain_b.atoms.iter().map(|a| a.position.x).fold(f64::INFINITY, f64::min);
    let shift = Vec3::new(max_x - min_x_b + 2.5, 0.0, 0.0);

    let mut sys = chain_a.clone();
    let offset = sys.atoms.len();
    for a in &chain_b.atoms {
        sys.atoms.push(Atom { element: a.element, position: a.position + shift });
    }
    for b in &chain_b.bonds {
        sys.bonds.push(Bond { i: b.i + offset, j: b.j + offset, order: b.order, class: b.class });
    }
    for span in &chain_b.residues {
        let mut s = *span;
        s.start += offset;
        s.n_idx += offset;
        s.ca_idx += offset;
        s.c_idx += offset;
        s.o_idx += offset;
        sys.residues.push(s);
    }

    // The disulfide bridge: sulfur of each chain's central cysteine.
    let sulfur_of = |sys: &MolecularSystem, res: usize| -> usize {
        sys.residues[res]
            .atom_range()
            .find(|&a| sys.atoms[a].element == Element::S)
            .expect("cysteine residue has a sulfur")
    };
    let sa = sulfur_of(&sys, n_res_per_chain / 2);
    let sb = sulfur_of(&sys, n_res_per_chain + n_res_per_chain / 2);
    sys.bonds.push(Bond::new(sa, sb, 1, Element::S, Element::S));
    sys
}

/// A melt of `n_chains` alkane chains of `chain_len` carbons each, laid on
/// a jittered y–z grid with ~5.5 Å inter-chain spacing. The covalent graph
/// is reconstructed from the carbon positions by
/// [`crate::covalent::detect_bonds`] — no builder bond bookkeeping — and
/// hydrogens then complete each carbon's valence. No residues, no waters:
/// decomposition is possible only through the graph fragmenter.
pub fn polymer_melt(n_chains: usize, chain_len: usize, seed: u64) -> MolecularSystem {
    assert!(n_chains >= 1 && chain_len >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Tetrahedral zig-zag backbone: 1.54 Å bonds at 109.47°.
    let dx = 1.54 * (109.47_f64 / 2.0).to_radians().sin();
    let dy = 1.54 * (109.47_f64 / 2.0).to_radians().cos();
    let side = (n_chains as f64).sqrt().ceil() as usize;
    let mut heavy: Vec<Atom> = Vec::new();
    for c in 0..n_chains {
        let row = c / side;
        let col = c % side;
        let origin = Vec3::new(
            rng.random_range(-0.3..=0.3),
            col as f64 * 5.5 + rng.random_range(-0.3..=0.3),
            row as f64 * 5.5 + rng.random_range(-0.3..=0.3),
        );
        for k in 0..chain_len {
            let p = origin + Vec3::new(k as f64 * dx, if k % 2 == 0 { 0.0 } else { dy }, 0.0);
            heavy.push(Atom { element: Element::C, position: p });
        }
    }
    let detected = crate::covalent::detect_bonds(&heavy);
    let elements: Vec<Element> = heavy.iter().map(|a| a.element).collect();
    let positions: Vec<Vec3> = heavy.iter().map(|a| a.position).collect();
    let bonds: Vec<(usize, usize, u8)> = detected.iter().map(|b| (b.i, b.j, b.order)).collect();
    let mut sys = MolecularSystem::default();
    append_molecule(&mut sys, &elements, &positions, &bonds);
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BondClass;

    #[test]
    fn all_scenarios_build_and_validate() {
        for &name in SCENARIO_NAMES {
            let sys = build_scenario(name, 42).unwrap();
            assert!(sys.validate().is_empty(), "{name}: {:?}", sys.validate());
            assert!(sys.n_atoms() > 0, "{name} is empty");
        }
        assert!(build_scenario("no-such-scenario", 42).is_none());
    }

    #[test]
    fn protein_ligand_has_nonresidue_atoms_within_lambda() {
        let sys = protein_ligand(6, None, 7);
        let n_lig = sys.nonresidue_atom_count();
        assert_eq!(n_lig, 19, "9 heavy ligand atoms + 10 hydrogens");
        // The ligand sits within the λ = 4 Å threshold of the protein but
        // outside clash range.
        let res_end = sys.n_atoms() - n_lig;
        let d = sys.min_group_distance(
            &(0..res_end).collect::<Vec<_>>(),
            &(res_end..sys.n_atoms()).collect::<Vec<_>>(),
        );
        assert!(d < 4.0, "ligand outside lambda: {d:.2}");
        assert!(d > 1.6, "ligand clashes with protein: {d:.2}");
        // Aromatic ring bonds are present (protected from cutting later).
        let aromatic = sys.bonds.iter().filter(|b| b.class == BondClass::CCAromatic).count();
        assert_eq!(aromatic, 3, "Kekulé ring carries 3 double bonds");
    }

    #[test]
    fn protein_ligand_solvated_keeps_water_pattern() {
        let sys = protein_ligand(6, Some(3.0), 8);
        assert!(sys.n_waters > 0);
        assert!(sys.validate().is_empty(), "{:?}", sys.validate());
        assert!(sys.nonresidue_atom_count() >= 19);
    }

    #[test]
    fn disulfide_dimer_bridges_two_chains() {
        let sys = disulfide_dimer(5, 11);
        assert_eq!(sys.residues.len(), 10);
        assert!(sys.validate().is_empty(), "{:?}", sys.validate());
        let ss: Vec<&Bond> = sys.bonds.iter().filter(|b| b.class == BondClass::SSBond).collect();
        assert_eq!(ss.len(), 1, "exactly one disulfide bridge");
        // No peptide bond joins residue 4 (chain A end) to residue 5
        // (chain B start).
        let (ca, nb) = (sys.residues[4].c_idx, sys.residues[5].n_idx);
        assert!(
            !sys.bonds.iter().any(|b| (b.i == ca && b.j == nb) || (b.i == nb && b.j == ca)),
            "chains must not be peptide-bonded"
        );
    }

    #[test]
    fn polymer_melt_is_residue_free_alkane() {
        let sys = polymer_melt(4, 8, 3);
        assert!(sys.residues.is_empty());
        assert_eq!(sys.n_waters, 0);
        assert!(sys.validate().is_empty());
        let n_c = sys.atoms.iter().filter(|a| a.element == Element::C).count();
        assert_eq!(n_c, 32);
        // Each chain: 7 C-C bonds; terminal carbons get 3 H, internal 2 H.
        let cc = sys.bonds.iter().filter(|b| b.class == BondClass::CCSingle).count();
        assert_eq!(cc, 4 * 7);
        let n_h = sys.atoms.iter().filter(|a| a.element == Element::H).count();
        assert_eq!(n_h, 4 * (2 * 3 + 6 * 2), "2 CH3 ends + 6 CH2 per chain");
    }

    #[test]
    fn scenarios_are_deterministic() {
        for &name in SCENARIO_NAMES {
            let a = build_scenario(name, 5).unwrap();
            let b = build_scenario(name, 5).unwrap();
            assert_eq!(a.n_atoms(), b.n_atoms());
            for (x, y) in a.atoms.iter().zip(&b.atoms) {
                assert_eq!(x.position, y.position, "{name} not deterministic");
            }
        }
    }
}
