//! Chemical elements occurring in proteins and water.

/// The elements present in the benchmark systems (protein + water).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// Hydrogen.
    H,
    /// Carbon.
    C,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Sulfur (CYS, MET side chains).
    S,
}

impl Element {
    /// Atomic mass in amu (standard atomic weights).
    pub fn mass(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::S => 32.06,
        }
    }

    /// Typical covalent valence used by the auto-hydrogenation pass.
    pub fn valence(self) -> u8 {
        match self {
            Element::H => 1,
            Element::C => 4,
            Element::N => 3,
            Element::O => 2,
            Element::S => 2,
        }
    }

    /// Typical X–H bond length in Å.
    pub fn h_bond_length(self) -> f64 {
        match self {
            Element::H => 0.74,
            Element::C => 1.09,
            Element::N => 1.01,
            Element::O => 0.96,
            Element::S => 1.34,
        }
    }

    /// Single-bond covalent radius in Å (Pyykkö/Atsumi values, rounded).
    /// Two atoms are considered covalently bonded when their distance is
    /// below the sum of their radii times a tolerance factor — the
    /// element-aware bond detection used by [`crate::covalent`].
    pub fn covalent_radius(self) -> f64 {
        match self {
            Element::H => 0.32,
            Element::C => 0.75,
            Element::N => 0.71,
            Element::O => 0.63,
            Element::S => 1.03,
        }
    }

    /// One- or two-letter element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::S => "S",
        }
    }

    /// Parses a symbol (case-insensitive).
    pub fn from_symbol(s: &str) -> Option<Element> {
        match s.trim().to_ascii_uppercase().as_str() {
            "H" => Some(Element::H),
            "C" => Some(Element::C),
            "N" => Some(Element::N),
            "O" => Some(Element::O),
            "S" => Some(Element::S),
            _ => None,
        }
    }

    /// Number of electrons of the neutral atom — the DFPT mini-engine sizes
    /// its model basis from this.
    pub fn atomic_number(self) -> u32 {
        match self {
            Element::H => 1,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::S => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masses_are_physical() {
        assert!((Element::H.mass() - 1.008).abs() < 1e-6);
        assert!(Element::C.mass() > Element::H.mass());
        assert!(Element::S.mass() > Element::O.mass());
    }

    #[test]
    fn valences() {
        assert_eq!(Element::C.valence(), 4);
        assert_eq!(Element::N.valence(), 3);
        assert_eq!(Element::O.valence(), 2);
        assert_eq!(Element::H.valence(), 1);
        assert_eq!(Element::S.valence(), 2);
    }

    #[test]
    fn symbol_round_trip() {
        for e in [Element::H, Element::C, Element::N, Element::O, Element::S] {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
            assert_eq!(Element::from_symbol(&e.symbol().to_lowercase()), Some(e));
        }
        assert_eq!(Element::from_symbol("Xx"), None);
        assert_eq!(Element::from_symbol(" c "), Some(Element::C));
    }

    #[test]
    fn h_bond_lengths_reasonable() {
        for e in [Element::C, Element::N, Element::O, Element::S] {
            let l = e.h_bond_length();
            assert!((0.9..1.5).contains(&l), "{e:?}: {l}");
        }
    }

    #[test]
    fn atomic_numbers() {
        assert_eq!(Element::H.atomic_number(), 1);
        assert_eq!(Element::S.atomic_number(), 16);
    }

    #[test]
    fn covalent_radii_bracket_bond_lengths() {
        // A C–C single bond (1.54 Å) must be detected at tolerance 1.15,
        // and the radii must be small enough that a 3.1 Å water grid is not.
        let cc = 2.0 * Element::C.covalent_radius();
        assert!(cc * 1.15 > 1.54 && cc * 1.15 < 2.0, "C-C window {cc}");
        for e in [Element::C, Element::N, Element::O, Element::S] {
            let xh = (e.covalent_radius() + Element::H.covalent_radius()) * 1.15;
            assert!(xh > e.h_bond_length(), "{e:?}-H bond outside detection window");
        }
    }
}
