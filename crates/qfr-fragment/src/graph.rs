//! Graph-algorithm fragmentation for arbitrary covalent systems.
//!
//! The residue-chain decomposition of [`crate::decompose`] assumes the
//! covalent block is a single peptide chain; ligands, disulfide-bridged
//! multi-chain proteins and polymers break that assumption. This module
//! generalizes the QF cut to any covalent graph:
//!
//! 1. **Covalent graph** — adjacency is taken from the system's bond list
//!    restricted to the covalent block (everything before the water block).
//! 2. **Bond scoring** — each bond gets a cut cost, or is declared
//!    uncuttable: X–H bonds and anything double-bond-like (aromatic C–C,
//!    C=O, C=N, order ≥ 2) are never cut; C–C single bonds are the
//!    preferred cut (cost 0), then C–S/C–N single, then amide C–N and C–O
//!    single, then S–S, then everything else.
//! 3. **Bridges only** — a bond inside a ring is never cut (cutting it
//!    would not disconnect anything and the two caps would overlap), so
//!    only bridge edges (Tarjan) are cuttable.
//! 4. **Contraction** — uncuttable edges are contracted with a union-find;
//!    the cuttable bridges between the resulting super-nodes form a
//!    forest.
//! 5. **Partitioning** — each tree is partitioned bottom-up under the
//!    `max_fragment_atoms` budget. At every node the children are merged
//!    in deterministic order (highest cut cost first, then smallest open
//!    part, then lowest atom index) while the budget allows; the rest are
//!    cut. A refinement pass re-merges cut edges (most expensive first)
//!    wherever the combined part still fits.
//! 6. **Capping** — every cut bond is terminated with a link hydrogen on
//!    *both* sides via the same `cap_hydrogen` placement the chain path
//!    uses.
//!
//! Job emission mirrors Eq. (1): one-body partition terms, two-body
//! partition pairs within λ (plus every cut-bond-adjacent pair, whose
//! dimer restores the cut bond and drops its caps), partition–water and
//! water–water pairs, with monomer coefficients merged exactly as in the
//! chain path. The atom-coverage invariant (every real atom counted
//! exactly once) holds by the same inclusion–exclusion argument.

use crate::decompose::{cap_hydrogen, Decomposition, DecompositionParams};
use crate::fragment::{FragmentJob, JobKind, LinkHydrogen};
use crate::stats::DecompositionStats;
use qfr_geom::neighbor::group_pairs_within;
use qfr_geom::system::{Bond, BondClass};
use qfr_geom::{MolecularSystem, Vec3};
use qfr_obs::Counter;
use std::collections::{BTreeMap, BTreeSet};

/// Total covalent bonds cut across all graph decompositions.
static BONDS_CUT: Counter = Counter::deterministic("fragment.graph.bonds_cut");
/// Total partitions emitted across all graph decompositions.
static PARTITIONS: Counter = Counter::deterministic("fragment.graph.partitions");

/// Cut cost of a bond, or `None` when the bond must never be cut.
///
/// Never cut: X–H terminal bonds (capping them would replace an H with an
/// H), and double-bond-like classes (aromatic C–C, C=O, C=N, or any formal
/// order ≥ 2) whose π systems a link hydrogen cannot represent. Among the
/// cuttable single bonds, apolar C–C is cheapest, heteroatom single bonds
/// cost more, the conjugated amide C–N and the soft S–S more still.
pub fn cut_cost(bond: &Bond) -> Option<u32> {
    if bond.order >= 2 {
        return None;
    }
    match bond.class {
        BondClass::CH | BondClass::NH | BondClass::OH | BondClass::SH => None,
        BondClass::CCAromatic | BondClass::CNDouble | BondClass::CODouble => None,
        BondClass::CCSingle => Some(0),
        BondClass::CSSingle | BondClass::CNSingle => Some(1),
        BondClass::CNAmide | BondClass::COSingle => Some(2),
        BondClass::SSBond => Some(3),
        BondClass::Other => Some(4),
    }
}

/// One covalent partition: a connected set of atoms plus the cut bonds on
/// its boundary.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Global atom indices, ascending (not necessarily contiguous).
    pub atoms: Vec<usize>,
    /// Cut bonds as `(anchor, removed)`: `anchor` is inside this partition,
    /// `removed` is the neighbor lost to the cut (capped with a link H).
    pub caps: Vec<(usize, usize)>,
}

/// Result of partitioning the covalent block.
#[derive(Debug, Clone)]
pub struct CovalentPartitioning {
    /// Partitions ordered by their lowest atom index.
    pub parts: Vec<Partition>,
    /// Partition index of every covalent atom.
    pub part_of: Vec<usize>,
    /// Cut bonds as global `(i, j)` pairs with `i < j`, sorted.
    pub cut_bonds: Vec<(usize, usize)>,
}

/// Disjoint-set forest with union by size and path halving.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big;
        self.size[big] += self.size[small];
    }

    fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

/// Marks bridge edges (whose removal disconnects the graph) with an
/// iterative Tarjan low-link sweep. `adj[u]` holds `(neighbor, edge index)`
/// pairs; the returned vector is indexed by edge.
fn bridges(n: usize, adj: &[Vec<(usize, usize)>], n_edges: usize) -> Vec<bool> {
    const UNSEEN: usize = usize::MAX;
    let mut disc = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut is_bridge = vec![false; n_edges];
    let mut timer = 0usize;
    // Frames: (node, edge taken to reach it, next adjacency slot).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for start in 0..n {
        if disc[start] != UNSEEN {
            continue;
        }
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        stack.push((start, usize::MAX, 0));
        while let Some(frame) = stack.last_mut() {
            let (u, parent_edge) = (frame.0, frame.1);
            if frame.2 < adj[u].len() {
                let (v, e) = adj[u][frame.2];
                frame.2 += 1;
                if e == parent_edge {
                    continue; // the tree edge back up; parallel edges keep their own id
                }
                if disc[v] == UNSEEN {
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, e, 0));
                } else {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(parent) = stack.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        is_bridge[parent_edge] = true;
                    }
                }
            }
        }
    }
    is_bridge
}

/// Partitions the covalent block (atoms before the water block) into
/// connected fragments of at most `max_fragment_atoms` real atoms each,
/// cutting only bridge single-bonds and preferring cheap cuts. A single
/// contracted super-node larger than the budget becomes an oversized
/// partition of its own (it cannot be split without cutting a ring or a
/// double bond). Fully deterministic for a given system.
pub fn partition_covalent(
    sys: &MolecularSystem,
    max_fragment_atoms: usize,
) -> CovalentPartitioning {
    assert!(max_fragment_atoms >= 1, "fragment budget must be at least one atom");
    let n_cov = sys.water_start();

    // Covalent graph: edges with cost, adjacency with edge indices.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut costs: Vec<Option<u32>> = Vec::new();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_cov];
    for b in &sys.bonds {
        if b.i < n_cov && b.j < n_cov {
            let e = edges.len();
            edges.push((b.i.min(b.j), b.i.max(b.j)));
            costs.push(cut_cost(b));
            adj[b.i].push((b.j, e));
            adj[b.j].push((b.i, e));
        }
    }

    // Only scored bridges are cuttable; contract everything else.
    let bridge = bridges(n_cov, &adj, edges.len());
    let cuttable: Vec<bool> = (0..edges.len()).map(|e| bridge[e] && costs[e].is_some()).collect();
    let mut uf = UnionFind::new(n_cov);
    for (e, &(i, j)) in edges.iter().enumerate() {
        if !cuttable[e] {
            uf.union(i, j);
        }
    }

    // Canonical super-node id = lowest atom index of the contracted set.
    let mut sid_of_root = vec![usize::MAX; n_cov];
    for a in 0..n_cov {
        let r = uf.find(a);
        if sid_of_root[r] == usize::MAX {
            sid_of_root[r] = a;
        }
    }
    let sid: Vec<usize> = (0..n_cov).map(|a| sid_of_root[uf.find(a)]).collect();

    // Super-graph over the cuttable bridges: a forest by construction.
    let mut sadj: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for &s in &sid {
        sadj.entry(s).or_default();
    }
    for (e, &(i, j)) in edges.iter().enumerate() {
        if cuttable[e] {
            sadj.get_mut(&sid[i]).unwrap().push((sid[j], e));
            sadj.get_mut(&sid[j]).unwrap().push((sid[i], e));
        }
    }
    for list in sadj.values_mut() {
        list.sort_unstable();
    }

    // Bottom-up tree partitioning: reverse preorder visits children before
    // parents; each node absorbs children while the budget allows.
    let mut visited = vec![false; n_cov];
    let mut greedy_cuts: Vec<usize> = Vec::new();
    let roots: Vec<usize> = sadj.keys().copied().collect();
    for root in roots {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        let mut pre: Vec<(usize, usize, usize)> = Vec::new(); // (sid, parent sid, edge)
        let mut stack = vec![(root, usize::MAX, usize::MAX)];
        while let Some((u, p, pe)) = stack.pop() {
            pre.push((u, p, pe));
            for &(v, e) in &sadj[&u] {
                if !visited[v] {
                    visited[v] = true;
                    stack.push((v, u, e));
                }
            }
        }
        let mut children: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for &(u, p, pe) in &pre {
            if p != usize::MAX {
                children.entry(p).or_default().push((u, pe));
            }
        }
        for &(u, _, _) in pre.iter().rev() {
            let Some(kids) = children.get(&u) else { continue };
            // Merge order: protect expensive cuts first, then pack the
            // smallest open parts, then lowest atom index.
            let mut cand: Vec<(u32, usize, usize, usize)> = kids
                .iter()
                .map(|&(c, e)| (costs[e].expect("cuttable edge has a cost"), uf.size_of(c), c, e))
                .collect();
            cand.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            for (_, _, c, e) in cand {
                if uf.size_of(u) + uf.size_of(c) <= max_fragment_atoms {
                    uf.union(u, c);
                } else {
                    greedy_cuts.push(e);
                }
            }
        }
    }

    // Refinement: re-merge across cut edges, most expensive first, wherever
    // the combined part still fits the budget.
    let mut ranked: Vec<(u32, usize)> =
        greedy_cuts.iter().map(|&e| (costs[e].expect("cut edge has a cost"), e)).collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut final_cuts: Vec<usize> = Vec::new();
    for (_, e) in ranked {
        let (i, j) = edges[e];
        if uf.find(i) != uf.find(j) && uf.size_of(i) + uf.size_of(j) <= max_fragment_atoms {
            uf.union(i, j);
        } else {
            final_cuts.push(e);
        }
    }

    // Materialize partitions in order of first (lowest) atom index.
    let mut part_index: BTreeMap<usize, usize> = BTreeMap::new();
    let mut part_of = vec![usize::MAX; n_cov];
    let mut parts: Vec<Partition> = Vec::new();
    for (a, slot) in part_of.iter_mut().enumerate() {
        let r = uf.find(a);
        let idx = *part_index.entry(r).or_insert_with(|| {
            parts.push(Partition { atoms: Vec::new(), caps: Vec::new() });
            parts.len() - 1
        });
        *slot = idx;
        parts[idx].atoms.push(a);
    }
    let mut cut_bonds: Vec<(usize, usize)> = final_cuts.iter().map(|&e| edges[e]).collect();
    cut_bonds.sort_unstable();
    for &(i, j) in &cut_bonds {
        parts[part_of[i]].caps.push((i, j));
        parts[part_of[j]].caps.push((j, i));
    }
    for p in &mut parts {
        p.caps.sort_unstable();
    }
    CovalentPartitioning { parts, part_of, cut_bonds }
}

/// General decomposition over graph partitions; entered by
/// [`Decomposition::new`] whenever the system is not a single water-capped
/// residue chain.
pub(crate) fn decompose(sys: &MolecularSystem, params: DecompositionParams) -> Decomposition {
    let part = partition_covalent(sys, params.max_fragment_atoms);
    let nparts = part.parts.len();
    BONDS_CUT.add(part.cut_bonds.len() as u64);
    PARTITIONS.add(nparts as u64);

    // Link hydrogens per partition, one per cut bond, deterministic order.
    let caps: Vec<Vec<LinkHydrogen>> = part
        .parts
        .iter()
        .map(|p| {
            p.caps.iter().map(|&(anchor, removed)| cap_hydrogen(sys, anchor, removed)).collect()
        })
        .collect();

    // λ pairs over partition and water groups, plus every cut-bond-adjacent
    // partition pair (its dimer restores the cut bond).
    let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.position).collect();
    let mut group_of = vec![0u32; sys.n_atoms()];
    for (a, &p) in part.part_of.iter().enumerate() {
        group_of[a] = p as u32;
    }
    for w in 0..sys.n_waters {
        for a in sys.water_atoms(w) {
            group_of[a] = (nparts + w) as u32;
        }
    }
    let mut pairs: BTreeSet<(usize, usize)> =
        group_pairs_within(&positions, &group_of, params.lambda)
            .into_iter()
            .map(|(a, b)| (a as usize, b as usize))
            .collect();
    for &(i, j) in &part.cut_bonds {
        let (p, q) = (part.part_of[i], part.part_of[j]);
        pairs.insert((p.min(q), p.max(q)));
    }

    let mut jobs: Vec<FragmentJob> = Vec::new();
    let mut stats = DecompositionStats::default();
    let mut part_coeff = vec![1.0f64; nparts];
    let mut water_coeff = vec![1.0f64; sys.n_waters];

    for &(ga, gb) in &pairs {
        match (ga < nparts, gb < nparts) {
            (true, true) => {
                let mut atoms = part.parts[ga].atoms.clone();
                atoms.extend(&part.parts[gb].atoms);
                atoms.sort_unstable();
                // Drop the caps of any bond internal to the dimer: the
                // carried-over real bond replaces them.
                let mut link_hydrogens = Vec::new();
                for (&(_, removed), lh) in part.parts[ga].caps.iter().zip(&caps[ga]) {
                    if part.part_of[removed] != gb {
                        link_hydrogens.push(*lh);
                    }
                }
                for (&(_, removed), lh) in part.parts[gb].caps.iter().zip(&caps[gb]) {
                    if part.part_of[removed] != ga {
                        link_hydrogens.push(*lh);
                    }
                }
                jobs.push(FragmentJob {
                    kind: JobKind::GraphDimer { p: ga, q: gb },
                    coefficient: 1.0,
                    atoms,
                    link_hydrogens,
                });
                part_coeff[ga] -= 1.0;
                part_coeff[gb] -= 1.0;
                stats.n_generalized_concaps += 1;
            }
            (true, false) => {
                let w = gb - nparts;
                let mut atoms = part.parts[ga].atoms.clone();
                atoms.extend(sys.water_atoms(w));
                jobs.push(FragmentJob {
                    kind: JobKind::GraphWaterDimer { p: ga, w },
                    coefficient: 1.0,
                    atoms,
                    link_hydrogens: caps[ga].clone(),
                });
                part_coeff[ga] -= 1.0;
                water_coeff[w] -= 1.0;
                stats.n_residue_water_pairs += 1;
            }
            (false, false) => {
                let (a, b) = (ga - nparts, gb - nparts);
                let mut atoms = sys.water_atoms(a).to_vec();
                atoms.extend(sys.water_atoms(b));
                jobs.push(FragmentJob {
                    kind: JobKind::WaterWaterDimer { a, b },
                    coefficient: 1.0,
                    atoms,
                    link_hydrogens: vec![],
                });
                water_coeff[a] -= 1.0;
                water_coeff[b] -= 1.0;
                stats.n_water_water_pairs += 1;
            }
            (false, true) => unreachable!("pairs are ordered ga <= gb"),
        }
    }

    // Merged one-body terms: base coefficient 1 minus one per pair; zeros
    // are omitted (their coverage is carried entirely by the dimers).
    for (p, &coeff) in part_coeff.iter().enumerate() {
        if coeff != 0.0 {
            jobs.push(FragmentJob {
                kind: JobKind::GraphMonomer { p },
                coefficient: coeff,
                atoms: part.parts[p].atoms.clone(),
                link_hydrogens: caps[p].clone(),
            });
        }
    }
    for (w, &coeff) in water_coeff.iter().enumerate() {
        if coeff != 0.0 {
            jobs.push(FragmentJob {
                kind: JobKind::WaterMonomer { w },
                coefficient: coeff,
                atoms: sys.water_atoms(w).to_vec(),
                link_hydrogens: vec![],
            });
        }
    }

    stats.n_capped_fragments = nparts;
    stats.n_graph_partitions = nparts;
    stats.n_bonds_cut = part.cut_bonds.len();
    stats.n_water_monomers = sys.n_waters;
    for job in &jobs {
        stats.record_size(job.size());
    }
    stats.n_jobs = jobs.len();
    Decomposition { jobs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_geom::scenario::{build_scenario, SCENARIO_NAMES};
    use qfr_geom::{ProteinBuilder, SolvatedSystem};

    fn graph_params() -> DecompositionParams {
        DecompositionParams::default()
    }

    #[test]
    fn coverage_is_exactly_one_on_all_scenarios() {
        for &name in SCENARIO_NAMES {
            let sys = build_scenario(name, 11).expect("known scenario");
            let d = Decomposition::new(&sys, graph_params());
            assert!(d.stats.n_graph_partitions > 0, "{name} must take the graph path");
            for (a, &c) in d.atom_coverage(sys.n_atoms()).iter().enumerate() {
                assert!(c == 1.0, "{name}: atom {a} covered {c} times (should be exactly 1)");
            }
        }
    }

    #[test]
    fn partitions_respect_budget_and_cover_every_atom() {
        let sys = build_scenario("polymer-melt", 7).unwrap();
        let budget = 20;
        let part = partition_covalent(&sys, budget);
        let n_cov = sys.water_start();
        let mut seen = vec![false; n_cov];
        for p in &part.parts {
            assert!(p.atoms.len() <= budget, "partition exceeds the atom budget");
            for &a in &p.atoms {
                assert!(!seen[a], "atom {a} in two partitions");
                seen[a] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every covalent atom belongs to a partition");
        assert!(part.parts.len() > 1, "a melt above the budget must be split");
        assert!(!part.cut_bonds.is_empty());
    }

    #[test]
    fn rings_double_bonds_and_hydrogens_are_never_cut() {
        let sys = build_scenario("protein-ligand", 3).unwrap();
        let part = partition_covalent(&sys, 12);
        assert!(!part.cut_bonds.is_empty(), "a 12-atom budget forces cuts");
        for &(i, j) in &part.cut_bonds {
            let bond = sys
                .bonds
                .iter()
                .find(|b| (b.i.min(b.j), b.i.max(b.j)) == (i, j))
                .expect("cut bond exists in the system");
            assert!(cut_cost(bond).is_some(), "cut an uncuttable bond {bond:?}");
            assert_eq!(bond.order, 1);
        }
        // No uncuttable bond (X–H, aromatic, double) may straddle a
        // partition boundary: every aromatic ring stays whole.
        let n_cov = sys.water_start();
        for b in &sys.bonds {
            if b.i < n_cov && b.j < n_cov && cut_cost(b).is_none() {
                assert_eq!(
                    part.part_of[b.i], part.part_of[b.j],
                    "uncuttable bond {b:?} crosses a partition boundary"
                );
            }
        }
    }

    #[test]
    fn decomposition_is_deterministic() {
        let sys = build_scenario("disulfide", 5).unwrap();
        let d1 = Decomposition::new(&sys, graph_params());
        let d2 = Decomposition::new(&sys, graph_params());
        assert_eq!(d1.jobs.len(), d2.jobs.len());
        for (a, b) in d1.jobs.iter().zip(&d2.jobs) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.coefficient, b.coefficient);
            assert_eq!(a.atoms, b.atoms);
            assert_eq!(a.link_hydrogens.len(), b.link_hydrogens.len());
        }
        assert_eq!(d1.stats, d2.stats);
    }

    #[test]
    fn chain_systems_still_take_the_fast_path() {
        let protein = ProteinBuilder::new(8).seed(2).fold(4, 2).build();
        let sys = SolvatedSystem::build(&protein, 4.0, 3.1, 2.4, 3);
        let d = Decomposition::new(&sys, graph_params());
        assert_eq!(d.stats.n_graph_partitions, 0, "chain+water must use the residue path");
        assert!(!d.jobs.iter().any(|j| matches!(
            j.kind,
            JobKind::GraphMonomer { .. }
                | JobKind::GraphDimer { .. }
                | JobKind::GraphWaterDimer { .. }
        )));
    }

    #[test]
    fn cut_bond_dimers_restore_the_bond_and_drop_its_caps() {
        let sys = build_scenario("disulfide", 5).unwrap();
        let params = DecompositionParams { max_fragment_atoms: 25, ..Default::default() };
        let part = partition_covalent(&sys, params.max_fragment_atoms);
        let d = Decomposition::new(&sys, params);
        let (ci, cj) = part.cut_bonds[0];
        let (p, q) =
            (part.part_of[ci].min(part.part_of[cj]), part.part_of[ci].max(part.part_of[cj]));
        let dimer = d
            .jobs
            .iter()
            .find(|j| j.kind == JobKind::GraphDimer { p, q })
            .expect("cut-bond-adjacent parts always form a dimer");
        let frag = dimer.structure(&sys);
        let has_cut_bond = frag.bonds.iter().any(|b| {
            let (gi, gj) = (frag.global_map[b.i], frag.global_map[b.j]);
            (gi == Some(ci) && gj == Some(cj)) || (gi == Some(cj) && gj == Some(ci))
        });
        assert!(has_cut_bond, "the dimer must carry the restored cut bond");
        let internal_cuts = part.parts[p]
            .caps
            .iter()
            .filter(|&&(_, removed)| part.part_of[removed] == q)
            .count()
            + part.parts[q].caps.iter().filter(|&&(_, removed)| part.part_of[removed] == p).count();
        assert_eq!(
            dimer.link_hydrogens.len(),
            part.parts[p].caps.len() + part.parts[q].caps.len() - internal_cuts,
            "caps of the internal bond are dropped, all boundary caps kept"
        );
    }

    #[test]
    fn graph_counters_accumulate() {
        let sys = build_scenario("polymer-melt", 9).unwrap();
        let before = qfr_obs::counter::value_of("fragment.graph.partitions").unwrap_or(0);
        let d = Decomposition::new(&sys, graph_params());
        let after = qfr_obs::counter::value_of("fragment.graph.partitions").unwrap_or(0);
        assert!(after >= before + d.stats.n_graph_partitions as u64);
        assert!(qfr_obs::counter::value_of("fragment.graph.bonds_cut").is_some());
    }
}
