//! # qfr-fragment
//!
//! The Quantum Fragmentation (QF) algorithm of the QF-RAMAN paper
//! (Section IV-A, Eq. (1)):
//!
//! - the protein is cut at every peptide bond except the first and last;
//!   each naked residue `a_k` is capped with its former neighbors, forming
//!   fragments `Cap*_{k-1} a_k Cap_{k+1}`;
//! - the doubly-counted cap pairs `Cap*_k Cap_{k+1}` are subtracted;
//! - every water molecule is a one-body fragment;
//! - *generalized concaps* add two-body corrections `E_ij - E_i - E_j` for
//!   every fragment pair within the distance threshold λ (4 Å): sequentially
//!   non-neighboring residues, residue–water, and water–water pairs;
//! - dangling bonds created by the cuts are terminated with link hydrogens.
//!
//! [`decompose::Decomposition`] enumerates the resulting signed job list,
//! [`fragment::FragmentStructure`] materializes each job's geometry for an
//! engine, and [`assemble`] folds per-fragment Hessian and polarizability-
//! derivative blocks into the global sparse operators that the Lanczos/GAGQ
//! spectral solver consumes. Systems that are not a single water-capped
//! residue chain (ligands, disulfide-bridged multi-chain proteins,
//! polymers) are decomposed by the general [`graph`] partitioner instead,
//! behind the same [`Decomposition`] interface.

#![forbid(unsafe_code)]

pub mod assemble;
pub mod decompose;
pub mod fragment;
pub mod graph;
pub mod key;
pub mod stats;

pub use assemble::{AssembledSystem, MassWeighted};
pub use decompose::{Decomposition, DecompositionParams};
pub use fragment::{FragmentEngine, FragmentJob, FragmentResponse, FragmentStructure, JobKind};
pub use graph::{partition_covalent, CovalentPartitioning, Partition};
pub use key::{canonical_key, canonicalize, exact_key, Canonical, GeomKey, DEFAULT_KEY_TOL};
pub use stats::DecompositionStats;
