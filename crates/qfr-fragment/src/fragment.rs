//! Fragment jobs, materialized fragment structures, and the engine trait.

use qfr_geom::system::{Bond, BondClass};
use qfr_geom::{Element, MolecularSystem, Vec3};
use qfr_linalg::DMatrix;

/// What a signed fragment job represents in Eq. (1). Used for reporting,
/// scheduling statistics and debugging; the assembly only needs the
/// coefficient and atom list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// `Cap*_{k-1} a_k Cap_{k+1}` — capped fragment centred on residue `k`.
    CappedFragment {
        /// Centre residue index.
        k: usize,
    },
    /// `Cap*_k Cap_{k+1}` — subtracted cap pair.
    CapCap {
        /// First residue of the pair.
        k: usize,
    },
    /// Single water molecule one-body term (its net coefficient absorbs all
    /// `-E_w` monomer subtractions from two-body pairs it participates in).
    WaterMonomer {
        /// Water molecule index.
        w: usize,
    },
    /// Residue monomer subtraction (`-E_i` terms of the generalized concaps
    /// and residue–water pairs, merged per residue).
    ResidueMonomer {
        /// Residue index.
        r: usize,
    },
    /// Generalized concap dimer between non-neighboring residues.
    ConcapDimer {
        /// Lower residue index.
        i: usize,
        /// Higher residue index.
        j: usize,
    },
    /// Residue–water two-body dimer.
    ResidueWaterDimer {
        /// Residue index.
        r: usize,
        /// Water index.
        w: usize,
    },
    /// Water–water two-body dimer.
    WaterWaterDimer {
        /// Lower water index.
        a: usize,
        /// Higher water index.
        b: usize,
    },
    /// One-body term of a graph-partition fragment (general covalent
    /// systems; see `graph`). Its net coefficient absorbs the `-E_p`
    /// monomer subtractions of every two-body pair it participates in.
    GraphMonomer {
        /// Partition index.
        p: usize,
    },
    /// Two-body term between graph partitions within λ (or sharing cut
    /// bonds, which the dimer restores).
    GraphDimer {
        /// Lower partition index.
        p: usize,
        /// Higher partition index.
        q: usize,
    },
    /// Two-body term between a graph partition and a water molecule.
    GraphWaterDimer {
        /// Partition index.
        p: usize,
        /// Water molecule index.
        w: usize,
    },
}

/// A link hydrogen terminating a cut bond: placed along the direction of the
/// removed neighbor at the X–H bond length of the anchor element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkHydrogen {
    /// Global index of the anchor (kept) atom.
    pub anchor: usize,
    /// Position of the added hydrogen.
    pub position: Vec3,
}

/// One signed term of Eq. (1): a set of real atoms plus link hydrogens,
/// entering the global sums with `coefficient` (+1 or −1 before monomer
/// merging; merged monomers may carry larger negative integers).
#[derive(Debug, Clone)]
pub struct FragmentJob {
    /// Which Eq. (1) term this is.
    pub kind: JobKind,
    /// Signed multiplicity in the assembly.
    pub coefficient: f64,
    /// Global indices of the real atoms, ascending.
    pub atoms: Vec<usize>,
    /// Link hydrogens terminating cut bonds.
    pub link_hydrogens: Vec<LinkHydrogen>,
}

impl FragmentJob {
    /// Total atom count the engine will see (real + link H).
    pub fn size(&self) -> usize {
        self.atoms.len() + self.link_hydrogens.len()
    }

    /// Materializes the fragment geometry for an engine, carrying over the
    /// system's bonds (both endpoints inside the fragment) and adding
    /// anchor–link-H bonds.
    pub fn structure(&self, sys: &MolecularSystem) -> FragmentStructure {
        let mut elements = Vec::with_capacity(self.size());
        let mut positions = Vec::with_capacity(self.size());
        let mut global_map = Vec::with_capacity(self.size());
        // Map global -> local for bond extraction.
        let mut local_of = std::collections::HashMap::with_capacity(self.atoms.len());
        for (local, &g) in self.atoms.iter().enumerate() {
            let a = &sys.atoms[g];
            elements.push(a.element);
            positions.push(a.position);
            global_map.push(Some(g));
            local_of.insert(g, local);
        }
        let mut bonds = Vec::new();
        for b in &sys.bonds {
            if let (Some(&li), Some(&lj)) = (local_of.get(&b.i), local_of.get(&b.j)) {
                bonds.push(Bond { i: li, j: lj, order: b.order, class: b.class });
            }
        }
        for lh in &self.link_hydrogens {
            let anchor_local =
                *local_of.get(&lh.anchor).expect("link hydrogen anchor must be a fragment atom");
            let h_local = elements.len();
            elements.push(Element::H);
            positions.push(lh.position);
            global_map.push(None);
            let anchor_el = sys.atoms[lh.anchor].element;
            bonds.push(Bond {
                i: anchor_local,
                j: h_local,
                order: 1,
                class: BondClass::classify(anchor_el, Element::H, 1),
            });
        }
        FragmentStructure { elements, positions, bonds, global_map }
    }
}

/// A materialized fragment: what an engine actually computes on.
#[derive(Debug, Clone)]
pub struct FragmentStructure {
    /// Per-atom elements (link hydrogens included, at the end).
    pub elements: Vec<Element>,
    /// Per-atom positions.
    pub positions: Vec<Vec3>,
    /// Covalent bonds with local indices and preserved classes.
    pub bonds: Vec<Bond>,
    /// Local atom → global atom; `None` for link hydrogens.
    pub global_map: Vec<Option<usize>>,
}

impl FragmentStructure {
    /// Atom count (including link hydrogens).
    pub fn n_atoms(&self) -> usize {
        self.elements.len()
    }

    /// Cartesian degrees of freedom.
    pub fn dof(&self) -> usize {
        3 * self.n_atoms()
    }

    /// Per-atom masses (amu).
    pub fn masses(&self) -> Vec<f64> {
        self.elements.iter().map(|e| e.mass()).collect()
    }
}

/// Per-fragment response data produced by an engine: everything Eq. (1)
/// needs from one QM (or model) calculation.
#[derive(Debug, Clone)]
pub struct FragmentResponse {
    /// Cartesian Hessian, `3m x 3m` over the fragment's atoms
    /// (`∂²E/∂r_I∂r_J`).
    pub hessian: DMatrix,
    /// Polarizability derivatives, `6 x 3m`: rows are the independent tensor
    /// components (xx, yy, zz, xy, xz, yz), columns the Cartesian dofs.
    pub dalpha: DMatrix,
    /// Dipole derivatives, `3 x 3m` (IR intensities).
    pub dmu: DMatrix,
}

impl FragmentResponse {
    /// Zero response of the right shape.
    pub fn zeros(n_atoms: usize) -> Self {
        Self {
            hessian: DMatrix::zeros(3 * n_atoms, 3 * n_atoms),
            dalpha: DMatrix::zeros(6, 3 * n_atoms),
            dmu: DMatrix::zeros(3, 3 * n_atoms),
        }
    }

    /// Validates shape consistency against a structure.
    pub fn check_shape(&self, frag: &FragmentStructure) {
        assert_eq!(self.hessian.shape(), (frag.dof(), frag.dof()), "hessian shape");
        assert_eq!(self.dalpha.shape(), (6, frag.dof()), "dalpha shape");
        assert_eq!(self.dmu.shape(), (3, frag.dof()), "dmu shape");
    }
}

/// An engine that can compute the response of one fragment. Implemented by
/// the force-field model engine (`qfr-model`) and the DFPT mini-engine
/// (`qfr-dfpt`).
pub trait FragmentEngine: Sync {
    /// Computes Hessian and polarizability derivatives of a fragment.
    fn compute(&self, frag: &FragmentStructure) -> FragmentResponse;

    /// Human-readable engine name (reporting).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_geom::WaterBoxBuilder;

    fn water_job(sys: &MolecularSystem, w: usize) -> FragmentJob {
        FragmentJob {
            kind: JobKind::WaterMonomer { w },
            coefficient: 1.0,
            atoms: sys.water_atoms(w).to_vec(),
            link_hydrogens: vec![],
        }
    }

    #[test]
    fn water_structure_extraction() {
        let sys = WaterBoxBuilder::new(3).seed(1).build();
        let job = water_job(&sys, 1);
        assert_eq!(job.size(), 3);
        let frag = job.structure(&sys);
        assert_eq!(frag.n_atoms(), 3);
        assert_eq!(frag.dof(), 9);
        assert_eq!(frag.elements[0], Element::O);
        assert_eq!(frag.bonds.len(), 2, "both O-H bonds carried over");
        assert_eq!(frag.global_map[0], Some(sys.water_atoms(1)[0]));
        let m = frag.masses();
        assert!((m[0] - 15.999).abs() < 1e-9);
    }

    #[test]
    fn dimer_structure_has_both_molecules_no_cross_bonds() {
        let sys = WaterBoxBuilder::new(2).seed(2).build();
        let mut atoms = sys.water_atoms(0).to_vec();
        atoms.extend(sys.water_atoms(1));
        let job = FragmentJob {
            kind: JobKind::WaterWaterDimer { a: 0, b: 1 },
            coefficient: 1.0,
            atoms,
            link_hydrogens: vec![],
        };
        let frag = job.structure(&sys);
        assert_eq!(frag.n_atoms(), 6);
        assert_eq!(frag.bonds.len(), 4, "two O-H bonds per molecule, no cross bonds");
    }

    #[test]
    fn link_hydrogen_appended_with_bond() {
        let sys = WaterBoxBuilder::new(1).seed(3).build();
        let o = sys.water_atoms(0)[0];
        let job = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![o], // orphan O
            link_hydrogens: vec![LinkHydrogen {
                anchor: o,
                position: sys.atoms[o].position + Vec3::new(0.96, 0.0, 0.0),
            }],
        };
        let frag = job.structure(&sys);
        assert_eq!(frag.n_atoms(), 2);
        assert_eq!(frag.elements[1], Element::H);
        assert_eq!(frag.global_map[1], None, "link H maps to no global atom");
        assert_eq!(frag.bonds.len(), 1);
        assert_eq!(frag.bonds[0].class, BondClass::OH);
    }

    #[test]
    fn response_shape_check() {
        let sys = WaterBoxBuilder::new(1).seed(4).build();
        let frag = water_job(&sys, 0).structure(&sys);
        let resp = FragmentResponse::zeros(3);
        resp.check_shape(&frag);
        assert_eq!(resp.hessian.shape(), (9, 9));
        assert_eq!(resp.dalpha.shape(), (6, 9));
    }

    #[test]
    #[should_panic(expected = "hessian shape")]
    fn response_shape_mismatch_panics() {
        let sys = WaterBoxBuilder::new(1).seed(5).build();
        let frag = water_job(&sys, 0).structure(&sys);
        FragmentResponse::zeros(2).check_shape(&frag);
    }
}
