//! Content-addressed fragment geometry keys.
//!
//! Two keys are defined over a materialized [`FragmentStructure`]:
//!
//! - the **exact key** hashes the engine's literal input — element kinds,
//!   link-hydrogen flags, bonds, and the raw `f64` bit patterns of every
//!   position, in local atom order. Two fragments share an exact key iff a
//!   deterministic engine is guaranteed to produce bit-identical responses
//!   for both, which is what makes exact cache hits safe to substitute
//!   without any tolerance argument;
//! - the **canonical key** hashes a translation/rotation-canonicalized,
//!   tolerance-quantized byte stream in a reorder-invariant canonical atom
//!   order. Fragments that are the same molecule up to rigid motion, atom
//!   relabeling, and sub-tolerance geometric noise share a canonical key —
//!   the equivalence class behind the paper's "millions of near-identical
//!   water fragments" (§VI-A) and FMO-style cross-run fragment reuse.
//!
//! Both keys are 128-bit FNV-1a digests of an explicit byte stream (the
//! checkpoint layer's 64-bit file fingerprint folds per-fragment exact keys
//! into its digest). 128 bits keep silent collisions negligible at the
//! paper's 10⁷–10⁸ fragment scale, where a 64-bit birthday bound would not.
//!
//! The canonical frame ([`Canonical`]) is also the transport datum: a cached
//! response can be rotated/permuted from its stored frame into a requesting
//! fragment's frame (see `qfr-cache`), because both geometries agree in
//! canonical coordinates by construction.

use crate::fragment::FragmentStructure;
use qfr_geom::{Element, Vec3};

/// Quantization tolerance (Å) used for canonical keys when the caller has
/// no better number: tight enough that chemically distinct geometries
/// separate, loose enough that `f64` noise from rigid-motion arithmetic
/// (≈1e-12 Å) never straddles a bucket in practice.
pub const DEFAULT_KEY_TOL: f64 = 1e-3;

/// A 128-bit content key over fragment geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GeomKey(pub u128);

impl std::fmt::Display for GeomKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental 128-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128 {
    /// FNV-1a 128-bit offset basis.
    pub fn new() -> Self {
        Fnv128(0x6c62272e07bb014262b821756295c58d)
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(0x0000000001000000000000000000013b);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a little-endian `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Finishes the digest.
    pub fn finish(&self) -> GeomKey {
        GeomKey(self.0)
    }
}

/// Stable per-element code for hashing (atomic number).
fn z(e: Element) -> u8 {
    match e {
        Element::H => 1,
        Element::C => 6,
        Element::N => 7,
        Element::O => 8,
        Element::S => 16,
    }
}

/// Quantizes a length to `tol`-sized buckets.
fn q(x: f64, tol: f64) -> i64 {
    (x / tol).round() as i64
}

/// True for atoms that are link hydrogens (no global index).
fn is_link(frag: &FragmentStructure, i: usize) -> bool {
    frag.global_map[i].is_none()
}

/// Exact key: elements, link flags, bonds, and raw position bits in local
/// atom order. See the module docs for the substitution guarantee.
pub fn exact_key(frag: &FragmentStructure) -> GeomKey {
    let mut h = Fnv128::new();
    h.write(b"qfr-exact-v1");
    h.write_u64(frag.n_atoms() as u64);
    for i in 0..frag.n_atoms() {
        h.write(&[is_link(frag, i) as u8, z(frag.elements[i])]);
        let p = frag.positions[i];
        h.write_u64(p.x.to_bits());
        h.write_u64(p.y.to_bits());
        h.write_u64(p.z.to_bits());
    }
    hash_bonds(&mut h, frag, None);
    h.finish()
}

/// Bond list digest; `rank_of` remaps endpoints into canonical ranks when
/// present (canonical key), otherwise local indices are hashed (exact key).
fn hash_bonds(h: &mut Fnv128, frag: &FragmentStructure, rank_of: Option<&[usize]>) {
    let mut bonds: Vec<(usize, usize, u8, u8)> = frag
        .bonds
        .iter()
        .map(|b| {
            let (i, j) = match rank_of {
                Some(r) => (r[b.i], r[b.j]),
                None => (b.i, b.j),
            };
            (i.min(j), i.max(j), b.order, b.class as u8)
        })
        .collect();
    bonds.sort_unstable();
    h.write_u64(bonds.len() as u64);
    for (i, j, order, class) in bonds {
        h.write_u64(i as u64);
        h.write_u64(j as u64);
        h.write(&[order, class]);
    }
}

/// A fragment reduced to its canonical frame: the key plus everything
/// needed to transport a response between two members of the same
/// equivalence class.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// Canonical (tolerance-quantized) geometry key.
    pub key: GeomKey,
    /// Centroid of the fragment in its original frame.
    pub centroid: Vec3,
    /// Orthonormal canonical axes (rows of the rotation into canonical
    /// coordinates: `r_canon = axes · (p − centroid)`).
    pub axes: [Vec3; 3],
    /// Canonical atom order: `order[k]` is the local index of canonical
    /// rank `k`.
    pub order: Vec<usize>,
}

/// Rotation/reorder-invariant per-atom descriptor used for canonical frame
/// selection and atom ordering. Every field is built from quantized rigid
/// invariants (distances), so the descriptor is identical for any rigid
/// motion or relabeling of the same geometry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Desc {
    link: u8,
    z: u8,
    q_centroid: i64,
    q_dists: Vec<i64>,
}

/// Canonicalizes a fragment: frame, atom order, and tolerance-quantized
/// key. Deterministic, translation/rotation-invariant, and invariant under
/// atom relabeling (up to exact descriptor ties between geometrically
/// equivalent atoms, where any choice yields the same canonical stream).
pub fn canonicalize(frag: &FragmentStructure, tol: f64) -> Canonical {
    let n = frag.n_atoms();
    assert!(n > 0, "cannot canonicalize an empty fragment");
    assert!(tol > 0.0, "quantization tolerance must be positive");
    let mut centroid = Vec3::ZERO;
    for p in &frag.positions {
        centroid += *p;
    }
    centroid = centroid * (1.0 / n as f64);
    let rel: Vec<Vec3> = frag.positions.iter().map(|&p| p - centroid).collect();

    let desc: Vec<Desc> = (0..n)
        .map(|i| {
            let mut q_dists: Vec<i64> =
                (0..n).filter(|&j| j != i).map(|j| q(rel[i].dist(rel[j]), tol)).collect();
            q_dists.sort_unstable();
            Desc {
                link: is_link(frag, i) as u8,
                z: z(frag.elements[i]),
                q_centroid: q(rel[i].norm(), tol),
                q_dists,
            }
        })
        .collect();

    // Primary axis: toward the atom farthest from the centroid, selected
    // by quantized invariants only (so the choice is stable under rigid
    // motion and relabeling). Fragments whose atoms all sit within `tol`
    // of the centroid (single atoms) fall back to the identity frame.
    let primary = (0..n)
        .filter(|&i| rel[i].norm() > tol)
        .max_by(|&a, &b| (desc[a].q_centroid, &desc[a]).cmp(&(desc[b].q_centroid, &desc[b])));
    let u = match primary {
        Some(a) => rel[a].normalized(),
        None => Vec3::new(1.0, 0.0, 0.0),
    };

    // Secondary axis: toward the atom with the largest perpendicular
    // distance from the primary axis. Collinear fragments fall back to a
    // deterministic perpendicular; their off-axis canonical coordinates
    // all quantize to zero, so the fallback choice never leaks into the
    // key.
    let perp_of = |i: usize| {
        let p = rel[i] - u * rel[i].dot(u);
        (p, p.norm())
    };
    let secondary = (0..n)
        .filter(|&i| perp_of(i).1 > tol)
        .max_by(|&a, &b| (q(perp_of(a).1, tol), &desc[a]).cmp(&(q(perp_of(b).1, tol), &desc[b])));
    let v = match secondary {
        Some(b) => perp_of(b).0.normalized(),
        None => {
            let e = if u.x.abs() <= u.y.abs() && u.x.abs() <= u.z.abs() {
                Vec3::new(1.0, 0.0, 0.0)
            } else if u.y.abs() <= u.z.abs() {
                Vec3::new(0.0, 1.0, 0.0)
            } else {
                Vec3::new(0.0, 0.0, 1.0)
            };
            (e - u * e.dot(u)).normalized()
        }
    };
    let w = u.cross(v);
    let axes = [u, v, w];

    let coords: Vec<[i64; 3]> =
        rel.iter().map(|&r| [q(r.dot(u), tol), q(r.dot(v), tol), q(r.dot(w), tol)]).collect();

    // Canonical atom order: link flag, element, then quantized canonical
    // coordinates (a total order up to coincident atoms).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (desc[a].link, desc[a].z, coords[a], a).cmp(&(desc[b].link, desc[b].z, coords[b], b))
    });
    let mut rank_of = vec![0usize; n];
    for (rank, &local) in order.iter().enumerate() {
        rank_of[local] = rank;
    }

    let mut h = Fnv128::new();
    h.write(b"qfr-canon-v1");
    h.write_u64(n as u64);
    for &local in &order {
        h.write(&[desc[local].link, desc[local].z]);
        for c in coords[local] {
            h.write_i64(c);
        }
    }
    hash_bonds(&mut h, frag, Some(&rank_of));

    Canonical { key: h.finish(), centroid, axes, order }
}

/// Canonical key only (no frame), for callers that just need the digest.
pub fn canonical_key(frag: &FragmentStructure, tol: f64) -> GeomKey {
    canonicalize(frag, tol).key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragmentJob, JobKind, LinkHydrogen};
    use qfr_geom::WaterBoxBuilder;

    fn water_frag(n: usize, seed: u64, w: usize) -> FragmentStructure {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w },
            coefficient: 1.0,
            atoms: sys.water_atoms(w).to_vec(),
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    fn rotate(frag: &FragmentStructure, axis: Vec3, angle: f64, shift: Vec3) -> FragmentStructure {
        let k = axis.normalized();
        let (s, c) = angle.sin_cos();
        let mut out = frag.clone();
        for p in &mut out.positions {
            let r = *p;
            *p = r * c + k.cross(r) * s + k * (k.dot(r) * (1.0 - c)) + shift;
        }
        out
    }

    #[test]
    fn exact_key_sensitive_to_everything() {
        let frag = water_frag(4, 1, 2);
        let base = exact_key(&frag);
        assert_eq!(base, exact_key(&frag), "deterministic");
        let mut moved = frag.clone();
        moved.positions[0].x += 1e-9;
        assert_ne!(base, exact_key(&moved), "position bits matter");
        let mut relabeled = frag.clone();
        relabeled.elements[1] = Element::O;
        assert_ne!(base, exact_key(&relabeled), "elements matter");
        let mut translated = frag.clone();
        for p in &mut translated.positions {
            p.z += 3.0;
        }
        assert_ne!(base, exact_key(&translated), "exact key is absolute-position keyed");
    }

    #[test]
    fn canonical_key_invariant_under_rigid_motion() {
        let frag = water_frag(5, 3, 1);
        let base = canonical_key(&frag, DEFAULT_KEY_TOL);
        let moved = rotate(&frag, Vec3::new(0.3, -1.2, 0.8), 1.234, Vec3::new(10.0, -40.0, 2.5e3));
        assert_eq!(base, canonical_key(&moved, DEFAULT_KEY_TOL));
    }

    #[test]
    fn canonical_key_invariant_under_relabeling() {
        let frag = water_frag(5, 4, 0);
        let base = canonical_key(&frag, DEFAULT_KEY_TOL);
        // Swap the two hydrogens (local atoms 1 and 2), remapping bonds.
        let mut swapped = frag.clone();
        swapped.elements.swap(1, 2);
        swapped.positions.swap(1, 2);
        swapped.global_map.swap(1, 2);
        for b in &mut swapped.bonds {
            for e in [&mut b.i, &mut b.j] {
                *e = match *e {
                    1 => 2,
                    2 => 1,
                    other => other,
                };
            }
        }
        assert_eq!(base, canonical_key(&swapped, DEFAULT_KEY_TOL));
        assert_ne!(exact_key(&frag), exact_key(&swapped), "exact key is order-sensitive");
    }

    #[test]
    fn canonical_key_separates_perturbed_geometry() {
        let frag = water_frag(5, 5, 2);
        let base = canonical_key(&frag, DEFAULT_KEY_TOL);
        let mut stretched = frag.clone();
        stretched.positions[1].x += 50.0 * DEFAULT_KEY_TOL;
        assert_ne!(base, canonical_key(&stretched, DEFAULT_KEY_TOL));
    }

    #[test]
    fn link_hydrogen_distinguished_from_real_hydrogen() {
        let sys = WaterBoxBuilder::new(1).seed(7).build();
        let o = sys.water_atoms(0)[0];
        let h1 = sys.water_atoms(0)[1];
        let real = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![o, h1],
            link_hydrogens: vec![],
        }
        .structure(&sys);
        let link = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![o],
            link_hydrogens: vec![LinkHydrogen { anchor: o, position: sys.atoms[h1].position }],
        }
        .structure(&sys);
        assert_eq!(real.n_atoms(), link.n_atoms());
        assert_ne!(canonical_key(&real, DEFAULT_KEY_TOL), canonical_key(&link, DEFAULT_KEY_TOL));
    }

    #[test]
    fn single_atom_fragment_canonicalizes() {
        let sys = WaterBoxBuilder::new(1).seed(9).build();
        let o = sys.water_atoms(0)[0];
        let frag = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![o],
            link_hydrogens: vec![],
        }
        .structure(&sys);
        let c = canonicalize(&frag, DEFAULT_KEY_TOL);
        assert_eq!(c.order, vec![0]);
        // Identity-frame fallback.
        assert_eq!(c.axes[0], Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn canonical_frame_reconstructs_coordinates() {
        // axes · (p − centroid) must agree between two rotated copies,
        // atom-for-atom through the canonical order.
        let frag = water_frag(3, 11, 1);
        let moved = rotate(&frag, Vec3::new(1.0, 2.0, -0.5), 0.77, Vec3::new(-5.0, 1.0, 9.0));
        let ca = canonicalize(&frag, DEFAULT_KEY_TOL);
        let cb = canonicalize(&moved, DEFAULT_KEY_TOL);
        assert_eq!(ca.key, cb.key);
        for k in 0..frag.n_atoms() {
            let pa = frag.positions[ca.order[k]] - ca.centroid;
            let pb = moved.positions[cb.order[k]] - cb.centroid;
            for d in 0..3 {
                let xa = pa.dot(ca.axes[d]);
                let xb = pb.dot(cb.axes[d]);
                assert!((xa - xb).abs() < 1e-9, "rank {k} axis {d}: {xa} vs {xb}");
            }
        }
    }
}
