//! Enumeration of the signed fragment jobs of Eq. (1).

use crate::fragment::{FragmentJob, JobKind, LinkHydrogen};
use crate::stats::DecompositionStats;
use qfr_geom::neighbor::group_pairs_within;
use qfr_geom::{MolecularSystem, Vec3};

/// Parameters of the decomposition.
#[derive(Debug, Clone, Copy)]
pub struct DecompositionParams {
    /// Distance threshold λ for all two-body terms (paper: 4 Å for
    /// protein–protein, protein–water and water–water alike).
    pub lambda: f64,
    /// Minimum sequence separation for a generalized concap. Residue pairs
    /// with separation 1 or 2 share a capped triple already; the default 3
    /// adds exactly the missing pairs.
    pub min_sequence_separation: usize,
    /// Atom budget per partition on the graph-decomposition path (general
    /// covalent systems; see [`crate::graph`]). Ignored by the
    /// residue-chain fast path, whose fragment sizes follow the residues.
    /// The default 40 sits inside the paper's 9–68 atom fragment range.
    pub max_fragment_atoms: usize,
}

impl Default for DecompositionParams {
    fn default() -> Self {
        Self { lambda: 4.0, min_sequence_separation: 3, max_fragment_atoms: 40 }
    }
}

/// The complete signed job list for one system, plus workload statistics.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// All jobs with non-zero coefficient, deterministic order: capped
    /// fragments, cap pairs, concap dimers, residue–water dimers,
    /// water–water dimers, residue monomers, water monomers.
    pub jobs: Vec<FragmentJob>,
    /// Counts and size distribution (Section VI-A of the paper).
    pub stats: DecompositionStats,
}

impl Decomposition {
    /// Decomposes a system under the given parameters.
    ///
    /// Residue-chain systems (every covalent atom inside a residue span,
    /// consecutive residues peptide-bonded — i.e. everything the protein
    /// builders produce, solvated or not) take the chain fast path below,
    /// which reproduces the historical job lists bit for bit. Anything
    /// else — ligands, disulfide-bridged multi-chain proteins, polymers —
    /// falls back to the general [`crate::graph`] decomposition.
    pub fn new(sys: &MolecularSystem, params: DecompositionParams) -> Self {
        if !is_residue_chain(sys) {
            return crate::graph::decompose(sys, params);
        }
        let nres = sys.residues.len();
        let mut jobs: Vec<FragmentJob> = Vec::new();
        let mut stats = DecompositionStats::default();

        // ------------------------------------------------------------------
        // One-body protein terms: capped fragments and cap-pair subtractions.
        // ------------------------------------------------------------------
        match nres {
            0 => {}
            1 | 2 => {
                jobs.push(residue_job(sys, JobKind::CappedFragment { k: 0 }, 1.0, 0, nres - 1));
                stats.n_capped_fragments = 1;
            }
            _ => {
                for k in 1..=nres - 2 {
                    jobs.push(residue_job(sys, JobKind::CappedFragment { k }, 1.0, k - 1, k + 1));
                }
                stats.n_capped_fragments = nres - 2;
                for k in 1..=nres - 3 {
                    jobs.push(residue_job(sys, JobKind::CapCap { k }, -1.0, k, k + 1));
                }
                stats.n_cap_pairs = nres.saturating_sub(3);
            }
        }

        // ------------------------------------------------------------------
        // λ-threshold pair enumeration over residue and water groups.
        // ------------------------------------------------------------------
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.position).collect();
        let mut group_of = vec![0u32; sys.n_atoms()];
        for (r, span) in sys.residues.iter().enumerate() {
            for a in span.atom_range() {
                group_of[a] = r as u32;
            }
        }
        for w in 0..sys.n_waters {
            for a in sys.water_atoms(w) {
                group_of[a] = (nres + w) as u32;
            }
        }
        let pairs = group_pairs_within(&positions, &group_of, params.lambda);

        let mut res_monomer_coeff = vec![0.0f64; nres];
        let mut water_monomer_coeff = vec![1.0f64; sys.n_waters];

        for &(ga, gb) in &pairs {
            let (ga, gb) = (ga as usize, gb as usize);
            match (ga < nres, gb < nres) {
                (true, true) => {
                    // Generalized concap between non-neighboring residues.
                    if gb - ga < params.min_sequence_separation {
                        continue;
                    }
                    let mut job =
                        residue_job(sys, JobKind::ConcapDimer { i: ga, j: gb }, 1.0, ga, ga);
                    let other =
                        residue_job(sys, JobKind::ConcapDimer { i: ga, j: gb }, 1.0, gb, gb);
                    job.atoms.extend(other.atoms);
                    job.link_hydrogens.extend(other.link_hydrogens);
                    jobs.push(job);
                    res_monomer_coeff[ga] -= 1.0;
                    res_monomer_coeff[gb] -= 1.0;
                    stats.n_generalized_concaps += 1;
                }
                (true, false) => {
                    let w = gb - nres;
                    let mut job =
                        residue_job(sys, JobKind::ResidueWaterDimer { r: ga, w }, 1.0, ga, ga);
                    job.atoms.extend(sys.water_atoms(w));
                    jobs.push(job);
                    res_monomer_coeff[ga] -= 1.0;
                    water_monomer_coeff[w] -= 1.0;
                    stats.n_residue_water_pairs += 1;
                }
                (false, false) => {
                    let (a, b) = (ga - nres, gb - nres);
                    let mut atoms = sys.water_atoms(a).to_vec();
                    atoms.extend(sys.water_atoms(b));
                    jobs.push(FragmentJob {
                        kind: JobKind::WaterWaterDimer { a, b },
                        coefficient: 1.0,
                        atoms,
                        link_hydrogens: vec![],
                    });
                    water_monomer_coeff[a] -= 1.0;
                    water_monomer_coeff[b] -= 1.0;
                    stats.n_water_water_pairs += 1;
                }
                (false, true) => unreachable!("pairs are ordered ga <= gb"),
            }
        }

        // ------------------------------------------------------------------
        // Merged monomer subtractions.
        // ------------------------------------------------------------------
        for (r, &coeff) in res_monomer_coeff.iter().enumerate() {
            if coeff != 0.0 {
                jobs.push(residue_job(sys, JobKind::ResidueMonomer { r }, coeff, r, r));
            }
        }
        for (w, &coeff) in water_monomer_coeff.iter().enumerate() {
            if coeff != 0.0 {
                jobs.push(FragmentJob {
                    kind: JobKind::WaterMonomer { w },
                    coefficient: coeff,
                    atoms: sys.water_atoms(w).to_vec(),
                    link_hydrogens: vec![],
                });
            }
        }
        stats.n_water_monomers = sys.n_waters;

        for job in &jobs {
            stats.record_size(job.size());
        }
        stats.n_jobs = jobs.len();
        Decomposition { jobs, stats }
    }

    /// Sum of all coefficients weighted by atom count — a quick check that
    /// every *real* atom's self-term enters exactly once (see tests).
    pub fn atom_coverage(&self, n_atoms: usize) -> Vec<f64> {
        let mut cover = vec![0.0; n_atoms];
        for job in &self.jobs {
            for &a in &job.atoms {
                cover[a] += job.coefficient;
            }
        }
        cover
    }
}

/// True when the covalent block is exactly the classic residue-chain shape
/// the fast path was written for: every covalent atom inside a residue
/// span, and every consecutive residue pair joined by its peptide bond
/// (derived from the bond list, so a chain break or a second chain routes
/// to the graph path). Pure water boxes (no residues) qualify trivially.
fn is_residue_chain(sys: &MolecularSystem) -> bool {
    if sys.nonresidue_atom_count() != 0 {
        return false;
    }
    if sys.residues.len() < 2 {
        return true;
    }
    let bonded: std::collections::HashSet<(usize, usize)> =
        sys.bonds.iter().map(|b| (b.i.min(b.j), b.i.max(b.j))).collect();
    sys.residues.windows(2).all(|rs| {
        let (c, n) = (rs[0].c_idx, rs[1].n_idx);
        bonded.contains(&(c.min(n), c.max(n)))
    })
}

/// Builds the job covering residues `first..=last`, cutting and capping at
/// both chain ends.
fn residue_job(
    sys: &MolecularSystem,
    kind: JobKind,
    coefficient: f64,
    first: usize,
    last: usize,
) -> FragmentJob {
    let nres = sys.residues.len();
    let start = sys.residues[first].start;
    let end = sys.residues[last].start + sys.residues[last].len;
    let atoms: Vec<usize> = (start..end).collect();
    let mut link_hydrogens = Vec::new();
    // N-side cut: previous residue's carbonyl C removed; cap the N.
    if first > 0 {
        let n_idx = sys.residues[first].n_idx;
        let prev_c = sys.residues[first - 1].c_idx;
        link_hydrogens.push(cap_hydrogen(sys, n_idx, prev_c));
    }
    // C-side cut: next residue's N removed; cap the C.
    if last + 1 < nres {
        let c_idx = sys.residues[last].c_idx;
        let next_n = sys.residues[last + 1].n_idx;
        link_hydrogens.push(cap_hydrogen(sys, c_idx, next_n));
    }
    FragmentJob { kind, coefficient, atoms, link_hydrogens }
}

/// Places a cap hydrogen on `anchor` along the direction of the removed
/// atom, at the anchor element's X–H bond length.
///
/// # Panics
/// Panics when `anchor` and `removed` coincide: there is no cut-bond
/// direction to place the hydrogen along, and fabricating one (the old
/// `+x` fallback) yields a plausible-looking but wrong fragment from
/// corrupted input geometry.
pub(crate) fn cap_hydrogen(sys: &MolecularSystem, anchor: usize, removed: usize) -> LinkHydrogen {
    let a = sys.atoms[anchor];
    let dir = (sys.atoms[removed].position - a.position).try_normalized().unwrap_or_else(|| {
        panic!(
            "degenerate cut-bond geometry: anchor atom {anchor} and removed atom {removed} \
             coincide at {:?}; cannot orient a link hydrogen",
            a.position
        )
    });
    LinkHydrogen { anchor, position: a.position + dir * a.element.h_bond_length() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_geom::{ProteinBuilder, ResidueKind, SolvatedSystem, WaterBoxBuilder};

    #[test]
    fn pure_water_counts() {
        let sys = WaterBoxBuilder::new(27).seed(1).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        assert_eq!(d.stats.n_capped_fragments, 0);
        assert_eq!(d.stats.n_water_monomers, 27);
        // 3.1 A grid spacing with lambda 4 A: every water touches several
        // neighbors.
        assert!(d.stats.n_water_water_pairs > 27, "dense box must have many pairs");
        // Water dimer jobs have exactly 6 atoms (the paper's water-dimer
        // fragment size).
        for job in &d.jobs {
            if matches!(job.kind, JobKind::WaterWaterDimer { .. }) {
                assert_eq!(job.size(), 6);
            }
        }
    }

    #[test]
    fn atom_coverage_is_exactly_one() {
        // The inclusion-exclusion of Eq. (1) must count every atom's
        // one-body contribution exactly once, protein and water alike.
        let protein = ProteinBuilder::new(8).seed(2).fold(4, 2).build();
        let sys = SolvatedSystem::build(&protein, 4.0, 3.1, 2.4, 3);
        let d = Decomposition::new(&sys, DecompositionParams::default());
        for (a, c) in d.atom_coverage(sys.n_atoms()).iter().enumerate() {
            assert!((c - 1.0).abs() < 1e-12, "atom {a} covered {c} times (should be 1)");
        }
    }

    #[test]
    fn protein_fragment_and_cap_counts() {
        let n = 12;
        let sys = ProteinBuilder::new(n).seed(3).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        assert_eq!(d.stats.n_capped_fragments, n - 2);
        assert_eq!(d.stats.n_cap_pairs, n - 3);
    }

    #[test]
    fn tiny_proteins() {
        for n in [1usize, 2] {
            let sys = ProteinBuilder::new(n).seed(4).build();
            let d = Decomposition::new(&sys, DecompositionParams::default());
            assert_eq!(d.stats.n_capped_fragments, 1);
            assert_eq!(d.stats.n_cap_pairs, 0);
            let cover = d.atom_coverage(sys.n_atoms());
            assert!(cover.iter().all(|c| (c - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn capped_fragments_have_two_link_hydrogens_in_the_middle() {
        let sys = ProteinBuilder::new(6).seed(5).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        for job in &d.jobs {
            if let JobKind::CappedFragment { k } = job.kind {
                let expected = usize::from(k > 1) + usize::from(k + 2 < 6);
                assert_eq!(job.link_hydrogens.len(), expected, "fragment {k} link H count");
            }
        }
    }

    #[test]
    fn link_hydrogen_geometry() {
        let sys = ProteinBuilder::new(6).seed(6).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        for job in &d.jobs {
            for lh in &job.link_hydrogens {
                let dist = sys.atoms[lh.anchor].position.dist(lh.position);
                let expect = sys.atoms[lh.anchor].element.h_bond_length();
                assert!((dist - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sequence_separation_respected() {
        // Compact fold so residues i, i+1, i+2 are spatially close; none may
        // appear as concap dimers.
        let sys = ProteinBuilder::new(15).seed(7).fold(5, 3).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        for job in &d.jobs {
            if let JobKind::ConcapDimer { i, j } = job.kind {
                assert!(j - i >= 3, "concap {i},{j} too close in sequence");
            }
        }
    }

    #[test]
    fn coefficients_balance_pairwise_terms() {
        let sys = WaterBoxBuilder::new(8).seed(8).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        // Per water: monomer coefficient == 1 - (pairs containing it).
        let mut pair_count = [0usize; 8];
        for job in &d.jobs {
            if let JobKind::WaterWaterDimer { a, b } = job.kind {
                pair_count[a] += 1;
                pair_count[b] += 1;
            }
        }
        for job in &d.jobs {
            if let JobKind::WaterMonomer { w } = job.kind {
                assert!((job.coefficient - (1.0 - pair_count[w] as f64)).abs() < 1e-12);
            }
        }
        // Waters whose coefficient would be exactly zero are omitted.
        for (w, &pc) in pair_count.iter().enumerate() {
            if pc == 1 {
                assert!(!d
                    .jobs
                    .iter()
                    .any(|j| matches!(j.kind, JobKind::WaterMonomer { w: jw } if jw == w)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate cut-bond geometry")]
    fn coincident_cut_bond_atoms_are_a_hard_error() {
        // Regression: a coincident anchor/removed pair used to fall back to
        // a silent +x cap direction, producing a wrong fragment instead of
        // reporting the corrupted input.
        use qfr_geom::system::Atom;
        use qfr_geom::Element;
        let p = Vec3::new(1.0, 2.0, 3.0);
        let sys = MolecularSystem {
            atoms: vec![
                Atom { element: Element::C, position: p },
                Atom { element: Element::N, position: p },
            ],
            ..Default::default()
        };
        let _ = cap_hydrogen(&sys, 0, 1);
    }

    #[test]
    fn lambda_zero_disables_two_body_terms() {
        let sys = WaterBoxBuilder::new(8).seed(9).build();
        let d = Decomposition::new(&sys, DecompositionParams { lambda: 0.5, ..Default::default() });
        assert_eq!(d.stats.n_water_water_pairs, 0);
        assert_eq!(d.stats.n_jobs, 8, "only the 8 monomers remain");
    }

    #[test]
    fn solvated_protein_has_all_term_types() {
        let protein = ProteinBuilder::new(10)
            .seed(10)
            .fold(5, 2)
            .sequence(vec![ResidueKind::Gly; 10])
            .build();
        let sys = SolvatedSystem::build(&protein, 5.0, 3.1, 2.4, 11);
        let d = Decomposition::new(&sys, DecompositionParams::default());
        assert!(d.stats.n_capped_fragments > 0);
        assert!(d.stats.n_cap_pairs > 0);
        assert!(d.stats.n_residue_water_pairs > 0, "protein surface touches water");
        assert!(d.stats.n_water_water_pairs > 0);
        assert!(d.stats.n_water_monomers > 0);
    }
}
