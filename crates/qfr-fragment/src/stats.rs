//! Decomposition statistics (Section VI-A of the paper reports these for
//! the 7DF3 spike-protein system: 3,171 conjugate caps, 11,394 generalized
//! concaps, 3,088 residue–water pairs, 128,341,476 water–water pairs).

/// Counts and fragment-size distribution of one decomposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecompositionStats {
    /// Total signed jobs emitted.
    pub n_jobs: usize,
    /// `Cap*_{k-1} a_k Cap_{k+1}` fragments.
    pub n_capped_fragments: usize,
    /// Subtracted `Cap*_k Cap_{k+1}` pairs (paper: "conjugate caps").
    pub n_cap_pairs: usize,
    /// Generalized concaps (non-neighboring residue pairs within λ).
    pub n_generalized_concaps: usize,
    /// Residue–water pairs within λ.
    pub n_residue_water_pairs: usize,
    /// Water–water pairs within λ.
    pub n_water_water_pairs: usize,
    /// Water molecules (one-body terms before coefficient merging).
    pub n_water_monomers: usize,
    /// Graph partitions (general covalent systems only; 0 on the
    /// residue-chain fast path).
    pub n_graph_partitions: usize,
    /// Covalent bonds cut by the graph partitioner (0 on the fast path).
    pub n_bonds_cut: usize,
    /// Smallest job size seen (atoms incl. link H); 0 when no jobs.
    pub min_size: usize,
    /// Largest job size seen.
    pub max_size: usize,
    /// Histogram of job sizes, bucketed by exact atom count (index = size).
    pub size_histogram: Vec<usize>,
}

impl DecompositionStats {
    /// Records one job's size into min/max and the histogram.
    pub fn record_size(&mut self, size: usize) {
        if self.size_histogram.len() <= size {
            self.size_histogram.resize(size + 1, 0);
        }
        self.size_histogram[size] += 1;
        if self.min_size == 0 || size < self.min_size {
            self.min_size = size;
        }
        self.max_size = self.max_size.max(size);
    }

    /// Ratio of the cubic cost of the largest to the smallest job — the
    /// paper quotes a 19x runtime spread for 9–68 atom fragments, and a
    /// 5.4x spread for 9–35 atom fragments in the Fig. 8 study.
    pub fn cost_spread(&self) -> f64 {
        if self.min_size == 0 {
            return 1.0;
        }
        (self.max_size as f64 / self.min_size as f64).powi(3)
    }

    /// Mean job size.
    pub fn mean_size(&self) -> f64 {
        let (mut total, mut count) = (0usize, 0usize);
        for (size, &n) in self.size_histogram.iter().enumerate() {
            total += size * n;
            count += n;
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "jobs={} fragments={} caps={} concaps={} res-water={} water-water={} sizes={}..{} (mean {:.1})",
            self.n_jobs,
            self.n_capped_fragments,
            self.n_cap_pairs,
            self.n_generalized_concaps,
            self.n_residue_water_pairs,
            self.n_water_water_pairs,
            self.min_size,
            self.max_size,
            self.mean_size()
        );
        if self.n_graph_partitions > 0 {
            s.push_str(&format!(
                " graph-parts={} bonds-cut={}",
                self.n_graph_partitions, self.n_bonds_cut
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_extremes() {
        let mut s = DecompositionStats::default();
        s.record_size(10);
        s.record_size(3);
        s.record_size(25);
        assert_eq!(s.min_size, 3);
        assert_eq!(s.max_size, 25);
        assert_eq!(s.size_histogram[10], 1);
        assert_eq!(s.size_histogram[3], 1);
    }

    #[test]
    fn mean_and_spread() {
        let mut s = DecompositionStats::default();
        s.record_size(9);
        s.record_size(35);
        // Paper Fig. 8: 9..35 atoms -> cost spread quoted as ~5.4x in time;
        // our cubic model gives (35/9)^3 = 58.8 FLOP spread; measured time
        // spread is tempered by constant overheads.
        assert!((s.mean_size() - 22.0).abs() < 1e-12);
        assert!(s.cost_spread() > 50.0);
    }

    #[test]
    fn zero_size_job_is_invisible_to_the_min_sentinel() {
        // `min_size == 0` doubles as the "nothing recorded yet" sentinel, so
        // a (pathological) zero-atom job cannot be distinguished from an
        // empty history: recording 0 then 5 reports min_size == 5. This test
        // pins that edge-case behavior; the histogram still counts the job.
        let mut s = DecompositionStats::default();
        s.record_size(0);
        assert_eq!(s.min_size, 0);
        assert_eq!(s.max_size, 0);
        s.record_size(5);
        assert_eq!(s.min_size, 5, "the size-0 record is absorbed by the sentinel");
        assert_eq!(s.max_size, 5);
        assert_eq!(s.size_histogram[0], 1, "histogram still remembers the zero-size job");
        assert_eq!(s.size_histogram[5], 1);
        assert_eq!(s.cost_spread(), 1.0);
    }

    #[test]
    fn empty_stats() {
        let s = DecompositionStats::default();
        assert_eq!(s.mean_size(), 0.0);
        assert_eq!(s.cost_spread(), 1.0);
        assert!(s.summary().contains("jobs=0"));
    }
}
