//! Assembly of per-fragment responses into the global operators of Eq. (1).
//!
//! Each job's Hessian block enters the global `3N x 3N` Hessian with the
//! job's coefficient, mapped through the fragment→global atom map. Link
//! hydrogens have no global image; their rows and columns are dropped (their
//! double counting cancels between the capped-fragment and cap-pair terms).
//! The six polarizability-derivative rows assemble the same way into six
//! global dof vectors.
//!
//! [`MassWeighted`] then forms the mass-weighted Hessian
//! `H = M^{-1/2} E(2) M^{-1/2}` and the mass-weighted derivative vectors
//! `d = M^{-1/2} (∂α/∂ξ)` consumed by the Lanczos/GAGQ spectral solver
//! (Eq. (5)).

use crate::fragment::{FragmentJob, FragmentResponse};
use qfr_linalg::sparse::MatVec;
use qfr_linalg::{CsrMatrix, TripletBuilder};

/// Globally assembled (unweighted) operators.
#[derive(Debug, Clone)]
pub struct AssembledSystem {
    /// Global Cartesian Hessian (`3N x 3N`, sparse).
    pub hessian: CsrMatrix,
    /// Global polarizability derivatives: six vectors of length `3N`
    /// (components xx, yy, zz, xy, xz, yz).
    pub dalpha: [Vec<f64>; 6],
    /// Global dipole derivatives: three vectors of length `3N` (IR).
    pub dmu: [Vec<f64>; 3],
    /// Number of atoms.
    pub n_atoms: usize,
}

/// Assembles job responses into global operators.
///
/// `responses[i]` must correspond to `jobs[i]` and cover the job's atoms
/// in order (real atoms first, then link hydrogens), exactly as produced by
/// engines running on [`crate::FragmentStructure`].
///
/// # Panics
/// Panics on length or shape mismatches.
pub fn assemble(
    jobs: &[FragmentJob],
    responses: &[FragmentResponse],
    n_atoms: usize,
) -> AssembledSystem {
    assert_eq!(jobs.len(), responses.len(), "one response per job required");
    let dof = 3 * n_atoms;
    let mut builder = TripletBuilder::new(dof, dof);
    let mut dalpha: [Vec<f64>; 6] = std::array::from_fn(|_| vec![0.0; dof]);
    let mut dmu: [Vec<f64>; 3] = std::array::from_fn(|_| vec![0.0; dof]);

    for (job, resp) in jobs.iter().zip(responses) {
        let m = job.size();
        assert_eq!(resp.hessian.rows(), 3 * m, "hessian shape mismatch for {:?}", job.kind);
        assert_eq!(resp.dalpha.cols(), 3 * m, "dalpha shape mismatch for {:?}", job.kind);
        let coeff = job.coefficient;
        // Local atom -> global atom (link H at the end -> None).
        let n_real = job.atoms.len();
        for (la, &ga) in job.atoms.iter().enumerate() {
            debug_assert!(ga < n_atoms);
            // Hessian block rows for this atom vs all real atoms.
            for (lb, &gb) in job.atoms.iter().enumerate() {
                for da in 0..3 {
                    for db in 0..3 {
                        let v = resp.hessian[(3 * la + da, 3 * lb + db)];
                        if v != 0.0 {
                            builder.push(3 * ga + da, 3 * gb + db, coeff * v);
                        }
                    }
                }
            }
            for (comp, dvec) in dalpha.iter_mut().enumerate() {
                for da in 0..3 {
                    dvec[3 * ga + da] += coeff * resp.dalpha[(comp, 3 * la + da)];
                }
            }
            for (comp, dvec) in dmu.iter_mut().enumerate() {
                for da in 0..3 {
                    dvec[3 * ga + da] += coeff * resp.dmu[(comp, 3 * la + da)];
                }
            }
        }
        // Link-hydrogen rows/cols (indices >= n_real) are intentionally
        // dropped: no global image.
        let _ = n_real;
    }

    AssembledSystem { hessian: builder.build(), dalpha, dmu, n_atoms }
}

/// Mass-weighted operators ready for the spectral solver.
#[derive(Debug, Clone)]
pub struct MassWeighted {
    /// Mass-weighted Hessian (`H_ij = E2_ij / sqrt(M_i M_j)`), sparse.
    pub hessian: CsrMatrix,
    /// Mass-weighted polarizability derivative vectors (per component).
    pub dalpha: [Vec<f64>; 6],
    /// Mass-weighted dipole derivative vectors (per Cartesian component).
    pub dmu: [Vec<f64>; 3],
}

impl MassWeighted {
    /// Applies mass weighting to an assembled system.
    ///
    /// `masses` are per-atom (amu); each Cartesian dof uses its atom's mass.
    pub fn new(asm: &AssembledSystem, masses: &[f64]) -> Self {
        assert_eq!(masses.len(), asm.n_atoms, "mass count mismatch");
        let dof = 3 * asm.n_atoms;
        let inv_sqrt: Vec<f64> = masses.iter().map(|&m| 1.0 / m.sqrt()).collect();
        let mut builder = TripletBuilder::new(dof, dof);
        for i in 0..dof {
            let wi = inv_sqrt[i / 3];
            for (j, v) in asm.hessian.row_entries(i) {
                builder.push(i, j, v * wi * inv_sqrt[j / 3]);
            }
        }
        let dalpha = std::array::from_fn(|c| {
            asm.dalpha[c].iter().enumerate().map(|(i, &v)| v * inv_sqrt[i / 3]).collect()
        });
        let dmu = std::array::from_fn(|c| {
            asm.dmu[c].iter().enumerate().map(|(i, &v)| v * inv_sqrt[i / 3]).collect()
        });
        Self { hessian: builder.build(), dalpha, dmu }
    }

    /// The operator dimension (`3N`).
    pub fn dim(&self) -> usize {
        self.hessian.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{JobKind, LinkHydrogen};
    use qfr_geom::Vec3;
    use qfr_linalg::DMatrix;

    fn unit_response(n_atoms: usize, hval: f64, aval: f64) -> FragmentResponse {
        FragmentResponse {
            hessian: DMatrix::from_fn(
                3 * n_atoms,
                3 * n_atoms,
                |i, j| {
                    if i == j {
                        hval
                    } else {
                        0.0
                    }
                },
            ),
            dalpha: DMatrix::from_fn(6, 3 * n_atoms, |_, _| aval),
            dmu: DMatrix::from_fn(3, 3 * n_atoms, |_, _| aval),
        }
    }

    fn job(kind: JobKind, coeff: f64, atoms: Vec<usize>) -> FragmentJob {
        FragmentJob { kind, coefficient: coeff, atoms, link_hydrogens: vec![] }
    }

    #[test]
    fn overlapping_jobs_accumulate_with_coefficients() {
        // Two jobs over atoms {0,1} and {1,2}, plus a -1 monomer on atom 1:
        // diagonal coverage 1 everywhere.
        let jobs = vec![
            job(JobKind::WaterMonomer { w: 0 }, 1.0, vec![0, 1]),
            job(JobKind::WaterMonomer { w: 1 }, 1.0, vec![1, 2]),
            job(JobKind::WaterMonomer { w: 2 }, -1.0, vec![1]),
        ];
        let responses = vec![
            unit_response(2, 2.0, 1.0),
            unit_response(2, 2.0, 1.0),
            unit_response(1, 2.0, 1.0),
        ];
        let asm = assemble(&jobs, &responses, 3);
        let dense = asm.hessian.to_dense();
        for d in 0..9 {
            assert!((dense[(d, d)] - 2.0).abs() < 1e-12, "dof {d}");
        }
        for c in 0..6 {
            assert_eq!(asm.dalpha[c], vec![1.0; 9]);
        }
    }

    #[test]
    fn link_hydrogen_rows_dropped() {
        let j = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0],
            link_hydrogens: vec![LinkHydrogen { anchor: 0, position: Vec3::ZERO }],
        };
        // Response over 2 atoms (real + link H), all entries 1.
        let resp = FragmentResponse {
            hessian: DMatrix::from_fn(6, 6, |_, _| 1.0),
            dalpha: DMatrix::from_fn(6, 6, |_, _| 1.0),
            dmu: DMatrix::from_fn(3, 6, |_, _| 1.0),
        };
        let asm = assemble(&[j], &[resp], 1);
        let dense = asm.hessian.to_dense();
        assert_eq!(dense.shape(), (3, 3));
        // Only the real-atom block survives.
        for i in 0..3 {
            for jj in 0..3 {
                assert_eq!(dense[(i, jj)], 1.0);
            }
        }
        assert_eq!(asm.dalpha[0], vec![1.0; 3]);
    }

    #[test]
    fn off_diagonal_blocks_map_correctly() {
        // One job on atoms {2, 5} with a distinctive off-diagonal entry.
        let mut h = DMatrix::zeros(6, 6);
        h[(0, 3)] = 7.0; // atom-local (0,x)-(1,x)
        h[(3, 0)] = 7.0;
        let resp = FragmentResponse {
            hessian: h,
            dalpha: DMatrix::zeros(6, 6),
            dmu: DMatrix::zeros(3, 6),
        };
        let asm = assemble(&[job(JobKind::WaterMonomer { w: 0 }, 1.0, vec![2, 5])], &[resp], 6);
        assert_eq!(asm.hessian.get(6, 15), 7.0); // (atom2,x)-(atom5,x)
        assert_eq!(asm.hessian.get(15, 6), 7.0);
        assert_eq!(asm.hessian.get(6, 6), 0.0);
    }

    #[test]
    fn exact_cancellation_produces_empty_matrix() {
        let jobs = vec![
            job(JobKind::WaterMonomer { w: 0 }, 1.0, vec![0]),
            job(JobKind::WaterMonomer { w: 0 }, -1.0, vec![0]),
        ];
        let responses = vec![unit_response(1, 3.0, 2.0), unit_response(1, 3.0, 2.0)];
        let asm = assemble(&jobs, &responses, 1);
        assert_eq!(asm.hessian.nnz(), 0);
        assert_eq!(asm.dalpha[0], vec![0.0; 3]);
    }

    #[test]
    fn mass_weighting_scales_correctly() {
        let jobs = vec![job(JobKind::WaterMonomer { w: 0 }, 1.0, vec![0, 1])];
        let responses = vec![unit_response(2, 4.0, 2.0)];
        let asm = assemble(&jobs, &responses, 2);
        let masses = [4.0, 16.0];
        let mw = MassWeighted::new(&asm, &masses);
        let dense = mw.hessian.to_dense();
        assert!((dense[(0, 0)] - 1.0).abs() < 1e-12, "4/sqrt(4*4)");
        assert!((dense[(3, 3)] - 0.25).abs() < 1e-12, "4/sqrt(16*16)");
        assert!((mw.dalpha[0][0] - 1.0).abs() < 1e-12, "2/sqrt(4)");
        assert!((mw.dalpha[0][3] - 0.5).abs() < 1e-12, "2/sqrt(16)");
        assert_eq!(mw.dim(), 6);
    }

    #[test]
    #[should_panic(expected = "one response per job")]
    fn length_mismatch_panics() {
        let jobs = vec![job(JobKind::WaterMonomer { w: 0 }, 1.0, vec![0])];
        let _ = assemble(&jobs, &[], 1);
    }

    #[test]
    #[should_panic(expected = "hessian shape mismatch")]
    fn shape_mismatch_panics() {
        let jobs = vec![job(JobKind::WaterMonomer { w: 0 }, 1.0, vec![0, 1])];
        let responses = vec![unit_response(1, 1.0, 1.0)];
        let _ = assemble(&jobs, &responses, 2);
    }
}
