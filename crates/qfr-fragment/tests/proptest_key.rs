//! Property tests for the canonical fragment geometry key: rigid-motion
//! and relabeling invariance, and separation beyond the quantization
//! tolerance.

use proptest::prelude::*;
use qfr_fragment::{canonical_key, exact_key, FragmentJob, FragmentStructure, JobKind};
use qfr_geom::{Vec3, WaterBoxBuilder};

const TOL: f64 = 1e-3;

/// A water monomer or dimer fragment out of a seeded box.
fn fragment(n_waters: usize, seed: u64, w: usize, dimer: bool) -> FragmentStructure {
    let sys = WaterBoxBuilder::new(n_waters).seed(seed).build();
    let w = w % n_waters;
    let mut atoms = sys.water_atoms(w).to_vec();
    let kind = if dimer {
        let w2 = (w + 1) % n_waters;
        if w2 != w {
            atoms.extend(sys.water_atoms(w2));
        }
        JobKind::WaterWaterDimer { a: w.min((w + 1) % n_waters), b: w.max((w + 1) % n_waters) }
    } else {
        JobKind::WaterMonomer { w }
    };
    FragmentJob { kind, coefficient: 1.0, atoms, link_hydrogens: vec![] }.structure(&sys)
}

/// Rodrigues rotation of every position, then a translation.
fn rigid_motion(
    frag: &FragmentStructure,
    axis: Vec3,
    angle: f64,
    shift: Vec3,
) -> FragmentStructure {
    let k = axis.normalized();
    let (s, c) = angle.sin_cos();
    let mut out = frag.clone();
    for p in &mut out.positions {
        let r = *p;
        *p = r * c + k.cross(r) * s + k * (k.dot(r) * (1.0 - c)) + shift;
    }
    out
}

/// Cyclic relabeling of the fragment's atoms by `offset`, bonds remapped.
fn relabel(frag: &FragmentStructure, offset: usize) -> FragmentStructure {
    let n = frag.n_atoms();
    let perm: Vec<usize> = (0..n).map(|i| (i + offset) % n).collect(); // new -> old
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let mut out = frag.clone();
    for (new, &old) in perm.iter().enumerate() {
        out.elements[new] = frag.elements[old];
        out.positions[new] = frag.positions[old];
        out.global_map[new] = frag.global_map[old];
    }
    for b in &mut out.bonds {
        b.i = inv[b.i];
        b.j = inv[b.j];
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rigid motion (any rotation + translation) preserves the canonical
    /// key and the exact key does not survive it (it is absolute-keyed).
    #[test]
    fn canonical_key_rigid_motion_invariant(
        n in 2..8usize, seed in 0u64..500, w in 0usize..8, dimer in 0usize..2,
        ax in -1.0..1.0f64, ay in -1.0..1.0f64, az in -1.0..1.0f64,
        angle in 0.01..6.2f64, tx in -50.0..50.0f64, ty in -50.0..50.0f64, tz in -50.0..50.0f64,
    ) {
        prop_assume!(ax.abs() + ay.abs() + az.abs() > 0.1);
        let frag = fragment(n, seed, w, dimer == 1);
        let moved = rigid_motion(&frag, Vec3::new(ax, ay, az), angle, Vec3::new(tx, ty, tz));
        prop_assert_eq!(canonical_key(&frag, TOL), canonical_key(&moved, TOL));
        prop_assert!(exact_key(&frag) != exact_key(&moved));
    }

    /// Atom relabeling preserves the canonical key.
    #[test]
    fn canonical_key_relabeling_invariant(
        n in 2..8usize, seed in 0u64..500, w in 0usize..8, dimer in 0usize..2,
        offset in 1usize..6,
    ) {
        let frag = fragment(n, seed, w, dimer == 1);
        let shuffled = relabel(&frag, offset % frag.n_atoms().max(1));
        prop_assert_eq!(canonical_key(&frag, TOL), canonical_key(&shuffled, TOL));
    }

    /// Composition: relabeling after a rigid motion still hashes equal.
    #[test]
    fn canonical_key_composed_invariance(
        n in 2..6usize, seed in 0u64..500, w in 0usize..6,
        angle in 0.1..6.0f64, offset in 1usize..5,
    ) {
        let frag = fragment(n, seed, w, true);
        let moved = rigid_motion(&frag, Vec3::new(0.2, -0.9, 0.4), angle, Vec3::new(7.0, -3.0, 11.0));
        let shuffled = relabel(&moved, offset % moved.n_atoms().max(1));
        prop_assert_eq!(canonical_key(&frag, TOL), canonical_key(&shuffled, TOL));
    }

    /// A perturbation well beyond the quantization tolerance separates the
    /// keys (moving one atom shifts its invariants by ≥ many buckets).
    #[test]
    fn canonical_key_separates_beyond_tolerance(
        n in 2..8usize, seed in 0u64..500, w in 0usize..8,
        atom in 0usize..3, magnitude in 0.05..0.8f64,
    ) {
        let frag = fragment(n, seed, w, false);
        let mut bent = frag.clone();
        let i = atom % bent.n_atoms();
        bent.positions[i].x += magnitude;
        bent.positions[i].y -= 0.6 * magnitude;
        prop_assert!(canonical_key(&frag, TOL) != canonical_key(&bent, TOL));
    }

    /// Sub-tolerance noise keeps the key when positions stay well inside
    /// their buckets: quantization is what grants near-identical fragments
    /// a shared address.
    #[test]
    fn canonical_key_tolerates_sub_quantum_noise(
        n in 2..6usize, seed in 0u64..500, w in 0usize..6, jitter in 0.0..0.04f64,
    ) {
        let frag = fragment(n, seed, w, false);
        let coarse = 1.0; // coarse buckets make "well inside" overwhelmingly likely
        let mut noisy = frag.clone();
        for (k, p) in noisy.positions.iter_mut().enumerate() {
            let s = if k % 2 == 0 { 1.0 } else { -1.0 };
            p.x += s * jitter * 1e-3;
            p.z -= s * jitter * 0.7e-3;
        }
        prop_assert_eq!(canonical_key(&frag, coarse), canonical_key(&noisy, coarse));
    }
}
