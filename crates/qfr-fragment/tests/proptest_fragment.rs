//! Property tests for the QF decomposition and assembly.

use proptest::prelude::*;
use qfr_fragment::{
    assemble, Decomposition, DecompositionParams, FragmentResponse, JobKind, MassWeighted,
};
use qfr_geom::{ProteinBuilder, WaterBoxBuilder};
use qfr_linalg::DMatrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Coverage: every atom's one-body term enters exactly once for any
    /// water box and any λ.
    #[test]
    fn water_coverage_any_lambda(n in 1..40usize, seed in 0u64..1000, lambda in 0.1..8.0f64) {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        let d = Decomposition::new(
            &sys,
            DecompositionParams { lambda, ..Default::default() },
        );
        for (a, c) in d.atom_coverage(sys.n_atoms()).iter().enumerate() {
            prop_assert!((c - 1.0).abs() < 1e-12, "atom {a}: {c}");
        }
    }

    /// Protein coverage for any chain length and fold.
    #[test]
    fn protein_coverage(n in 1..30usize, seed in 0u64..500, per_row in 2..12usize) {
        let sys = ProteinBuilder::new(n).seed(seed).fold(per_row, 3).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        for (a, c) in d.atom_coverage(sys.n_atoms()).iter().enumerate() {
            prop_assert!((c - 1.0).abs() < 1e-12, "atom {a}: {c}");
        }
        // Fragment / cap counts follow the Eq. (1) bookkeeping.
        if n >= 3 {
            prop_assert_eq!(d.stats.n_capped_fragments, n - 2);
            prop_assert_eq!(d.stats.n_cap_pairs, n.saturating_sub(3));
        } else {
            prop_assert_eq!(d.stats.n_capped_fragments, 1);
        }
    }

    /// λ monotonicity: growing the threshold never removes two-body terms.
    #[test]
    fn lambda_monotonicity(n in 2..25usize, seed in 0u64..500, l1 in 1.0..4.0f64, dl in 0.0..3.0f64) {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        let d1 = Decomposition::new(&sys, DecompositionParams { lambda: l1, ..Default::default() });
        let d2 = Decomposition::new(
            &sys,
            DecompositionParams { lambda: l1 + dl, ..Default::default() },
        );
        prop_assert!(d2.stats.n_water_water_pairs >= d1.stats.n_water_water_pairs);
    }

    /// Assembly is linear: doubling every response doubles the assembled
    /// operators.
    #[test]
    fn assembly_linearity(n in 1..12usize, seed in 0u64..500) {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let make = |scale: f64| -> Vec<FragmentResponse> {
            d.jobs
                .iter()
                .map(|j| {
                    let m = j.size();
                    FragmentResponse {
                        hessian: DMatrix::from_fn(3 * m, 3 * m, |i, jj| {
                            scale * ((i * 31 + jj * 7 + seed as usize) % 11) as f64
                        }),
                        dalpha: DMatrix::from_fn(6, 3 * m, |i, jj| {
                            scale * ((i * 13 + jj * 3) % 5) as f64
                        }),
                        dmu: DMatrix::from_fn(3, 3 * m, |i, jj| {
                            scale * ((i * 5 + jj) % 7) as f64
                        }),
                    }
                })
                .collect()
        };
        let a1 = assemble::assemble(&d.jobs, &make(1.0), sys.n_atoms());
        let a2 = assemble::assemble(&d.jobs, &make(2.0), sys.n_atoms());
        let d1 = a1.hessian.to_dense();
        let d2 = a2.hessian.to_dense();
        prop_assert!(d2.max_abs_diff(&d1.scaled(2.0)) < 1e-9);
        for c in 0..6 {
            for (x1, x2) in a1.dalpha[c].iter().zip(&a2.dalpha[c]) {
                prop_assert!((x2 - 2.0 * x1).abs() < 1e-9);
            }
        }
    }

    /// Mass weighting with unit masses is the identity.
    #[test]
    fn unit_mass_weighting_is_identity(n in 1..10usize, seed in 0u64..300) {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let responses: Vec<FragmentResponse> = d
            .jobs
            .iter()
            .map(|j| {
                let m = j.size();
                FragmentResponse {
                    hessian: DMatrix::identity(3 * m),
                    dalpha: DMatrix::from_fn(6, 3 * m, |_, _| 1.0),
                    dmu: DMatrix::from_fn(3, 3 * m, |_, _| 1.0),
                }
            })
            .collect();
        let asm = assemble::assemble(&d.jobs, &responses, sys.n_atoms());
        let mw = MassWeighted::new(&asm, &vec![1.0; sys.n_atoms()]);
        prop_assert!(mw.hessian.to_dense().max_abs_diff(&asm.hessian.to_dense()) < 1e-12);
    }

    /// Fragment structures always carry their bonds and valid global maps.
    #[test]
    fn structures_well_formed(n in 1..15usize, seed in 0u64..300) {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        for job in &d.jobs {
            let frag = job.structure(&sys);
            prop_assert_eq!(frag.n_atoms(), job.size());
            for b in &frag.bonds {
                prop_assert!(b.i < frag.n_atoms() && b.j < frag.n_atoms());
            }
            // Water jobs: 2 bonds per molecule, no crossings.
            match job.kind {
                JobKind::WaterMonomer { .. } => prop_assert_eq!(frag.bonds.len(), 2),
                JobKind::WaterWaterDimer { .. } => prop_assert_eq!(frag.bonds.len(), 4),
                _ => {}
            }
            // Global map: real atoms map, link H do not.
            for (local, g) in frag.global_map.iter().enumerate() {
                if local < job.atoms.len() {
                    prop_assert_eq!(*g, Some(job.atoms[local]));
                } else {
                    prop_assert!(g.is_none());
                }
            }
        }
    }
}

/// Non-proptest regression: dimers appear symmetrically (i<j once).
#[test]
fn dimers_unique_and_ordered() {
    let sys = WaterBoxBuilder::new(27).seed(5).build();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let mut seen = std::collections::HashSet::new();
    for job in &d.jobs {
        if let JobKind::WaterWaterDimer { a, b } = job.kind {
            assert!(a < b, "dimer order violated");
            assert!(seen.insert((a, b)), "duplicate dimer {a},{b}");
        }
    }
    assert_eq!(seen.len(), d.stats.n_water_water_pairs);
}

/// Non-proptest regression: capped fragments contain their own residue's
/// atoms plus both neighbors.
#[test]
fn capped_fragment_atom_spans() {
    let sys = ProteinBuilder::new(6).seed(6).build();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    for job in &d.jobs {
        if let JobKind::CappedFragment { k } = job.kind {
            let lo = sys.residues[k - 1].start;
            let hi = sys.residues[k + 1].start + sys.residues[k + 1].len;
            let expect: Vec<usize> = (lo..hi).collect();
            assert_eq!(job.atoms, expect, "fragment {k} span");
        }
    }
}

/// The FragmentJob size matches the structure it materializes, including
/// caps.
#[test]
fn job_size_includes_link_hydrogens() {
    let sys = ProteinBuilder::new(5).seed(7).build();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    for job in &d.jobs {
        let frag = job.structure(&sys);
        assert_eq!(job.size(), frag.n_atoms());
        assert_eq!(frag.n_atoms(), job.atoms.len() + job.link_hydrogens.len());
    }
}
