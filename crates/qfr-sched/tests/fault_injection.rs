//! Deterministic fault-injection integration tests.
//!
//! The same seeded [`FaultPlan`] is run through the threaded runtime and
//! the discrete-event simulator. Because injected failure decisions are
//! pure functions of `(fragment, attempt)`, both executors must produce
//! *identical* retry and quarantine counters — and both must match the
//! pure [`FaultPlan::forecast`] computed from the task decomposition
//! alone, regardless of thread interleaving or simulated timing.

use qfr_sched::balancer::{Policy, SortedSingletonPolicy};
use qfr_sched::fault::{FaultPlan, RecoveryPolicy};
use qfr_sched::runtime::{run_master_leader_worker, RuntimeConfig};
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::{water_dimer_workload, FragmentWorkItem, Task};

/// Drains a policy copy to learn the exact task decomposition.
fn decompose(frags: Vec<FragmentWorkItem>) -> Vec<Task> {
    let mut probe: Box<dyn Policy> = Box::new(SortedSingletonPolicy::new(frags));
    let mut tasks = Vec::new();
    while let Some(t) = probe.next_task() {
        tasks.push(t);
    }
    tasks
}

#[test]
fn runtime_and_simulator_match_the_forecast_exactly() {
    let plan = FaultPlan::with_failure_rate(2024, 0.35).permanent([3, 17]);
    let rec = RecoveryPolicy { max_attempts: 3, backoff_base: 1e-4, straggler_factor: Some(4.0) };
    let frags = water_dimer_workload(30);
    let n = frags.len();

    let forecast = plan.forecast(&decompose(frags.clone()), &rec);
    assert!(forecast.retries >= 2, "scenario should exercise retries: {}", forecast.retries);
    assert!(forecast.quarantined_fragments.contains(&3));
    assert!(forecast.quarantined_fragments.contains(&17));

    // Threaded runtime, wall-clock scheduling.
    let run = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(frags.clone())),
        |_| true,
        RuntimeConfig {
            n_leaders: 3,
            workers_per_leader: 1,
            prefetch: true,
            recovery: rec,
            faults: plan.clone(),
        },
    );
    // Discrete-event simulator, virtual-time scheduling.
    let sim = simulate(
        Box::new(SortedSingletonPolicy::new(frags)),
        &SimConfig { n_leaders: 3, recovery: rec, faults: plan, ..Default::default() },
    );

    // Exact counter parity with the forecast in both executors.
    assert_eq!(run.retries, forecast.retries, "runtime retries vs forecast");
    assert_eq!(sim.retries, forecast.retries, "simulator retries vs forecast");
    assert_eq!(run.quarantined_fragments, forecast.quarantined_fragments);
    assert_eq!(sim.quarantined_fragments, forecast.quarantined_fragments);

    // Exactly-once completion of every non-quarantined fragment.
    let done = n - forecast.quarantined_fragments.len();
    assert_eq!(run.fragments_done, done);
    assert_eq!(sim.fragments, done);
    assert_eq!(run.tasks_executed, done, "singleton tasks complete exactly once");
    assert_eq!(sim.tasks_completed, done);
    assert_eq!(run.unfinished_fragments, 0);
    assert_eq!(sim.unfinished_fragments, 0);
}

#[test]
fn retries_are_bounded_by_max_attempts() {
    // A brutal failure rate: every task needs several attempts, many
    // quarantine. The retry count must still respect the per-task cap.
    let plan = FaultPlan::with_failure_rate(7, 0.8);
    let rec = RecoveryPolicy { max_attempts: 2, backoff_base: 1e-4, straggler_factor: None };
    let frags = water_dimer_workload(25);
    let n = frags.len();
    let forecast = plan.forecast(&decompose(frags.clone()), &rec);

    let run = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(frags)),
        |_| true,
        RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 1,
            prefetch: false,
            recovery: rec,
            faults: plan,
        },
    );
    assert_eq!(run.retries, forecast.retries);
    assert!(run.retries <= n * (rec.max_attempts as usize - 1), "retry cap violated");
    assert_eq!(run.quarantined_fragments, forecast.quarantined_fragments);
    assert!(
        !run.quarantined_fragments.is_empty(),
        "an 80% failure rate with 2 attempts should quarantine something"
    );
    // The run returned (no hang) with a partial result and full accounting.
    assert_eq!(run.fragments_done + run.quarantined_fragments.len(), n);
}

#[test]
fn quarantine_is_deterministic_across_repeated_runs() {
    let plan = FaultPlan::with_failure_rate(99, 0.6);
    let rec = RecoveryPolicy { max_attempts: 2, backoff_base: 1e-4, straggler_factor: Some(4.0) };
    let frags = water_dimer_workload(20);
    let reference = plan.forecast(&decompose(frags.clone()), &rec);
    for trial in 0..3 {
        let run = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags.clone())),
            |_| true,
            RuntimeConfig {
                n_leaders: 4,
                workers_per_leader: 1,
                prefetch: true,
                recovery: rec,
                faults: plan.clone(),
            },
        );
        assert_eq!(
            run.quarantined_fragments, reference.quarantined_fragments,
            "trial {trial}: quarantine set must not depend on interleaving"
        );
        assert_eq!(run.retries, reference.retries, "trial {trial}");
    }
}

/// A straggler copy of attempt *n* that reports after the eager retry has
/// already issued attempt *n+1* must be dropped as stale: the in-flight
/// entry for attempt *n+1* and every forecastable counter stay untouched.
///
/// Construction: one oversized fragment (dispatched first by the sorted
/// policy) fails permanently and sleeps long enough that the idle second
/// leader gets a duplicate copy. Both copies of attempt 0 are doomed
/// (failure is pure in `(fragment, attempt)`); the first to report
/// concludes the attempt eagerly, so the second — which started strictly
/// later and sleeps just as long — always lands stale.
#[test]
fn stale_straggler_ack_leaves_counters_untouched_runtime() {
    const SLOW: u32 = 0;
    let mut frags = vec![FragmentWorkItem::new(SLOW, 500)];
    frags.extend((1..13).map(|i| FragmentWorkItem::new(i, 6)));
    let n = frags.len();

    let plan = FaultPlan::none().permanent([SLOW]);
    let rec = RecoveryPolicy { max_attempts: 2, backoff_base: 1e-4, straggler_factor: Some(2.0) };
    let forecast = plan.forecast(&decompose(frags.clone()), &rec);
    assert_eq!(forecast.retries, 1, "one eager retry before quarantine");
    assert_eq!(forecast.eager_retries, 1);
    assert_eq!(forecast.quarantined_fragments, vec![SLOW]);

    let run = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(frags)),
        |item| {
            if item.id == SLOW {
                std::thread::sleep(std::time::Duration::from_millis(150));
            }
            true
        },
        RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 1,
            prefetch: false,
            recovery: rec,
            faults: plan,
        },
    );

    // The stale copy was observed and dropped...
    assert!(run.reissues >= 1, "slow task must be re-issued: {}", run.reissues);
    assert!(run.stale_dropped >= 1, "straggler ack must be dropped as stale");
    // ...without disturbing any forecastable counter or the quarantine set.
    assert_eq!(run.retries, forecast.retries);
    assert_eq!(run.eager_retries, forecast.eager_retries);
    assert_eq!(run.quarantined_fragments, forecast.quarantined_fragments);
    assert_eq!(run.fragments_done, n - 1);
    assert_eq!(run.unfinished_fragments, 0);
}

/// Simulator twin of the stale-straggler scenario: virtual time makes the
/// whole trajectory deterministic, so the stale drop reproduces exactly.
/// Injected copy latency stretches some first copies; the clean re-issued
/// copy of a doomed attempt then fails first, the eager retry issues
/// attempt n+1, and the stretched copy's Done event lands stale. Counter
/// parity with the forecast must hold for *every* seed, stale drops or not.
#[test]
fn stale_straggler_ack_leaves_counters_untouched_simulator() {
    let rec = RecoveryPolicy { max_attempts: 3, backoff_base: 1e-4, straggler_factor: Some(2.0) };
    let frags = water_dimer_workload(40);
    let tasks = decompose(frags.clone());
    let mut saw_stale = false;
    for seed in 0..60u64 {
        let plan = FaultPlan::with_failure_rate(seed, 0.3).stragglers(0.3, 30.0);
        let forecast = plan.forecast(&tasks, &rec);
        let sim = simulate(
            Box::new(SortedSingletonPolicy::new(frags.clone())),
            &SimConfig { n_leaders: 3, recovery: rec, faults: plan, ..Default::default() },
        );
        assert_eq!(sim.retries, forecast.retries, "seed {seed}");
        assert_eq!(sim.eager_retries, forecast.eager_retries, "seed {seed}");
        assert_eq!(sim.quarantined_fragments, forecast.quarantined_fragments, "seed {seed}");
        if sim.stale_dropped > 0 {
            assert!(sim.reissues > 0, "seed {seed}: a stale ack implies a duplicate copy");
            saw_stale = true;
            break;
        }
    }
    assert!(saw_stale, "no seed in 0..60 produced a stale straggler ack");
}

#[test]
fn leader_death_and_failures_compose() {
    // One leader dies early AND fragments fail intermittently: survivors
    // absorb the bounced work and the retry counters still match the
    // forecast (death re-dispatches at the same attempt, costing no retry).
    let plan = FaultPlan::with_failure_rate(5, 0.25).kill_leader_after(0, 2);
    let rec = RecoveryPolicy { max_attempts: 3, backoff_base: 1e-4, straggler_factor: Some(4.0) };
    let frags = water_dimer_workload(24);
    let n = frags.len();
    let forecast = plan.forecast(&decompose(frags.clone()), &rec);

    let run = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(frags)),
        |_| true,
        RuntimeConfig {
            n_leaders: 3,
            workers_per_leader: 1,
            prefetch: true,
            recovery: rec,
            faults: plan,
        },
    );
    assert_eq!(run.leaders_died, 1);
    assert_eq!(run.retries, forecast.retries);
    assert_eq!(run.quarantined_fragments, forecast.quarantined_fragments);
    assert_eq!(run.fragments_done, n - forecast.quarantined_fragments.len());
    assert_eq!(run.unfinished_fragments, 0, "two survivors must finish everything");
}
