//! Deterministic fault-injection integration tests.
//!
//! The same seeded [`FaultPlan`] is run through the threaded runtime and
//! the discrete-event simulator. Because injected failure decisions are
//! pure functions of `(fragment, attempt)`, both executors must produce
//! *identical* retry and quarantine counters — and both must match the
//! pure [`FaultPlan::forecast`] computed from the task decomposition
//! alone, regardless of thread interleaving or simulated timing.

use qfr_sched::balancer::{Policy, SortedSingletonPolicy};
use qfr_sched::fault::{FaultPlan, RecoveryPolicy};
use qfr_sched::runtime::{run_master_leader_worker, RuntimeConfig};
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::{water_dimer_workload, FragmentWorkItem, Task};

/// Drains a policy copy to learn the exact task decomposition.
fn decompose(frags: Vec<FragmentWorkItem>) -> Vec<Task> {
    let mut probe: Box<dyn Policy> = Box::new(SortedSingletonPolicy::new(frags));
    let mut tasks = Vec::new();
    while let Some(t) = probe.next_task() {
        tasks.push(t);
    }
    tasks
}

#[test]
fn runtime_and_simulator_match_the_forecast_exactly() {
    let plan = FaultPlan::with_failure_rate(2024, 0.35).permanent([3, 17]);
    let rec = RecoveryPolicy { max_attempts: 3, backoff_base: 1e-4, straggler_factor: Some(4.0) };
    let frags = water_dimer_workload(30);
    let n = frags.len();

    let forecast = plan.forecast(&decompose(frags.clone()), &rec);
    assert!(forecast.retries >= 2, "scenario should exercise retries: {}", forecast.retries);
    assert!(forecast.quarantined_fragments.contains(&3));
    assert!(forecast.quarantined_fragments.contains(&17));

    // Threaded runtime, wall-clock scheduling.
    let run = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(frags.clone())),
        |_| true,
        RuntimeConfig {
            n_leaders: 3,
            workers_per_leader: 1,
            prefetch: true,
            recovery: rec,
            faults: plan.clone(),
        },
    );
    // Discrete-event simulator, virtual-time scheduling.
    let sim = simulate(
        Box::new(SortedSingletonPolicy::new(frags)),
        &SimConfig { n_leaders: 3, recovery: rec, faults: plan, ..Default::default() },
    );

    // Exact counter parity with the forecast in both executors.
    assert_eq!(run.retries, forecast.retries, "runtime retries vs forecast");
    assert_eq!(sim.retries, forecast.retries, "simulator retries vs forecast");
    assert_eq!(run.quarantined_fragments, forecast.quarantined_fragments);
    assert_eq!(sim.quarantined_fragments, forecast.quarantined_fragments);

    // Exactly-once completion of every non-quarantined fragment.
    let done = n - forecast.quarantined_fragments.len();
    assert_eq!(run.fragments_done, done);
    assert_eq!(sim.fragments, done);
    assert_eq!(run.tasks_executed, done, "singleton tasks complete exactly once");
    assert_eq!(sim.tasks_completed, done);
    assert_eq!(run.unfinished_fragments, 0);
    assert_eq!(sim.unfinished_fragments, 0);
}

#[test]
fn retries_are_bounded_by_max_attempts() {
    // A brutal failure rate: every task needs several attempts, many
    // quarantine. The retry count must still respect the per-task cap.
    let plan = FaultPlan::with_failure_rate(7, 0.8);
    let rec = RecoveryPolicy { max_attempts: 2, backoff_base: 1e-4, straggler_factor: None };
    let frags = water_dimer_workload(25);
    let n = frags.len();
    let forecast = plan.forecast(&decompose(frags.clone()), &rec);

    let run = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(frags)),
        |_| true,
        RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 1,
            prefetch: false,
            recovery: rec,
            faults: plan,
        },
    );
    assert_eq!(run.retries, forecast.retries);
    assert!(run.retries <= n * (rec.max_attempts as usize - 1), "retry cap violated");
    assert_eq!(run.quarantined_fragments, forecast.quarantined_fragments);
    assert!(
        !run.quarantined_fragments.is_empty(),
        "an 80% failure rate with 2 attempts should quarantine something"
    );
    // The run returned (no hang) with a partial result and full accounting.
    assert_eq!(run.fragments_done + run.quarantined_fragments.len(), n);
}

#[test]
fn quarantine_is_deterministic_across_repeated_runs() {
    let plan = FaultPlan::with_failure_rate(99, 0.6);
    let rec = RecoveryPolicy { max_attempts: 2, backoff_base: 1e-4, straggler_factor: Some(4.0) };
    let frags = water_dimer_workload(20);
    let reference = plan.forecast(&decompose(frags.clone()), &rec);
    for trial in 0..3 {
        let run = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags.clone())),
            |_| true,
            RuntimeConfig {
                n_leaders: 4,
                workers_per_leader: 1,
                prefetch: true,
                recovery: rec,
                faults: plan.clone(),
            },
        );
        assert_eq!(
            run.quarantined_fragments, reference.quarantined_fragments,
            "trial {trial}: quarantine set must not depend on interleaving"
        );
        assert_eq!(run.retries, reference.retries, "trial {trial}");
    }
}

#[test]
fn leader_death_and_failures_compose() {
    // One leader dies early AND fragments fail intermittently: survivors
    // absorb the bounced work and the retry counters still match the
    // forecast (death re-dispatches at the same attempt, costing no retry).
    let plan = FaultPlan::with_failure_rate(5, 0.25).kill_leader_after(0, 2);
    let rec = RecoveryPolicy { max_attempts: 3, backoff_base: 1e-4, straggler_factor: Some(4.0) };
    let frags = water_dimer_workload(24);
    let n = frags.len();
    let forecast = plan.forecast(&decompose(frags.clone()), &rec);

    let run = run_master_leader_worker(
        Box::new(SortedSingletonPolicy::new(frags)),
        |_| true,
        RuntimeConfig {
            n_leaders: 3,
            workers_per_leader: 1,
            prefetch: true,
            recovery: rec,
            faults: plan,
        },
    );
    assert_eq!(run.leaders_died, 1);
    assert_eq!(run.retries, forecast.retries);
    assert_eq!(run.quarantined_fragments, forecast.quarantined_fragments);
    assert_eq!(run.fragments_done, n - forecast.quarantined_fragments.len());
    assert_eq!(run.unfinished_fragments, 0, "two survivors must finish everything");
}
