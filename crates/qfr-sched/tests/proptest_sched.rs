//! Property tests for the scheduling stack: policy completeness, simulator
//! conservation laws, and runtime correctness under failure injection.

use proptest::prelude::*;
use qfr_sched::balancer::{
    Policy, RandomPolicy, RoundRobinPolicy, SizeSensitivePolicy, SortedSingletonPolicy,
};
use qfr_sched::fault::{FaultPlan, RecoveryPolicy};
use qfr_sched::runtime::{run_master_leader_worker, RuntimeConfig};
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::FragmentWorkItem;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

fn workload(sizes: &[u32]) -> Vec<FragmentWorkItem> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &atoms)| FragmentWorkItem::new(i as u32, atoms.clamp(3, 80)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_schedules_every_fragment_once(
        sizes in prop::collection::vec(3u32..80, 1..300),
        chunk in 1usize..16,
        seed in 0u64..1000,
    ) {
        let frags = workload(&sizes);
        let n = frags.len();
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(SizeSensitivePolicy::with_defaults(frags.clone())),
            Box::new(RoundRobinPolicy::new(frags.clone(), chunk)),
            Box::new(RandomPolicy::new(frags, chunk, seed)),
        ];
        for mut p in policies {
            let mut seen = HashSet::new();
            while let Some(t) = p.next_task() {
                prop_assert!(!t.is_empty());
                for f in &t.fragments {
                    prop_assert!(seen.insert(f.id), "fragment {} twice", f.id);
                }
            }
            prop_assert_eq!(seen.len(), n);
        }
    }

    #[test]
    fn simulator_conserves_work(
        sizes in prop::collection::vec(3u32..80, 1..400),
        n_leaders in 1usize..64,
        seed in 0u64..1000,
    ) {
        let frags = workload(&sizes);
        let total_cost: f64 = frags.iter().map(|f| f.cost()).sum();
        let report = simulate(
            Box::new(SizeSensitivePolicy::with_defaults(frags)),
            &SimConfig { n_leaders, seed, speed_jitter: 0.0, ..Default::default() },
        );
        prop_assert_eq!(report.fragments, sizes.len());
        // With unit speeds, busy time sums exactly to total cost.
        let busy: f64 = report.node_busy.iter().sum();
        prop_assert!((busy - total_cost).abs() < 1e-6 * total_cost.max(1.0));
        // Makespan bounds: total/n <= makespan (no node exceeds it).
        prop_assert!(report.makespan + 1e-9 >= total_cost / n_leaders as f64);
        for &f in &report.node_finish {
            prop_assert!(f <= report.makespan + 1e-9);
        }
    }

    #[test]
    fn runtime_recovers_from_any_single_failure(
        sizes in prop::collection::vec(3u32..40, 2..60),
        victim in 0usize..60,
        leaders in 1usize..5,
    ) {
        let frags = workload(&sizes);
        let n = frags.len();
        let victim_id = (victim % n) as u32;
        let failures = AtomicUsize::new(0);
        let report = run_master_leader_worker(
            Box::new(SizeSensitivePolicy::with_defaults(frags)),
            |f| {
                !(f.id == victim_id && failures.fetch_add(1, Ordering::SeqCst) == 0)
            },
            RuntimeConfig {
                n_leaders: leaders,
                workers_per_leader: 1,
                prefetch: true,
                // Stragglers off: a duplicate of the failing attempt could
                // otherwise absorb the failure without a retry.
                recovery: RecoveryPolicy { straggler_factor: None, ..Default::default() },
                ..Default::default()
            },
        );
        prop_assert_eq!(report.fragments_done, n, "lost fragments after failure");
        prop_assert!(report.retries >= 1);
    }

    #[test]
    fn generated_fault_plans_conserve_fragments_and_match_forecast(
        sizes in prop::collection::vec(3u32..40, 2..50),
        seed in 0u64..500,
        rate_pct in 0u32..45,
        n_permanent in 0u32..3,
        max_attempts in 1u32..4,
        leaders in 1usize..4,
    ) {
        // Generate a fault plan from the proptest inputs: a random failure
        // rate plus a few permanently failing fragments.
        let frags = workload(&sizes);
        let n = frags.len();
        let plan = FaultPlan::with_failure_rate(seed, rate_pct as f64 / 100.0)
            .permanent((0..n_permanent.min(n as u32)).map(|i| i * (n as u32 / n_permanent.max(1)).max(1)));
        let rec = RecoveryPolicy { max_attempts, backoff_base: 1e-4, ..Default::default() };

        // The exact task decomposition, for the deterministic forecast.
        let mut probe: Box<dyn Policy> = Box::new(SortedSingletonPolicy::new(frags.clone()));
        let mut tasks = Vec::new();
        while let Some(t) = probe.next_task() { tasks.push(t); }
        let forecast = plan.forecast(&tasks, &rec);

        let report = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags)),
            |_| true,
            RuntimeConfig {
                n_leaders: leaders,
                workers_per_leader: 1,
                prefetch: true,
                recovery: rec,
                faults: plan,
            },
        );
        // Counters are a pure function of the plan: they must match the
        // forecast exactly, regardless of thread interleaving.
        prop_assert_eq!(report.retries, forecast.retries);
        prop_assert_eq!(&report.quarantined_fragments, &forecast.quarantined_fragments);
        prop_assert_eq!(report.fragments_done, n - forecast.quarantined_fragments.len());
        prop_assert_eq!(report.unfinished_fragments, 0);
        // Exactly-once: singleton tasks, so completed tasks == fragments.
        prop_assert_eq!(report.tasks_executed, report.fragments_done);
        // Bounded retries: never more than max_attempts - 1 per task.
        prop_assert!(report.retries <= n * (max_attempts as usize - 1));
    }
}
