//! Machine models of the two evaluation platforms.
//!
//! Section VI-B: ORISE nodes carry a 32-core x86 CPU plus 4 HIP GPUs
//! (4,096 cores each); the new-generation Sunway has 96,000 SW26010-pro
//! nodes of 390 cores. Table I reports per-accelerator achieved FP64
//! TFLOPS ranges and full-system PFLOPS estimated from the fragment-size
//! distribution — these models provide the constants for that
//! extrapolation.

/// A supercomputer model used for full-system extrapolation.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Machine name.
    pub name: &'static str,
    /// Number of nodes in the evaluation.
    pub nodes: usize,
    /// Accelerators per node (GPUs on ORISE; 1 CPU complex on Sunway).
    pub accels_per_node: usize,
    /// Peak FP64 TFLOPS of a single accelerator.
    pub accel_peak_tflops: f64,
    /// Accelerator launch overhead in seconds (offload modeling).
    pub launch_overhead_s: f64,
    /// Host↔accelerator bandwidth in GB/s (PCIe on ORISE; on-chip DMA on
    /// Sunway, which shares the address space — effectively much higher).
    pub transfer_gbs: f64,
    /// Mean time between failures of a single node, in hours. At the
    /// 96,000-node scale a multi-hour run sees node failures as a matter
    /// of course, which is what motivates the scheduler's retry/
    /// re-issue/quarantine machinery (`crate::fault`).
    pub node_mtbf_hours: f64,
}

impl MachineModel {
    /// The ORISE evaluation configuration: 6,000 nodes × 4 GPUs.
    /// Per-GPU peak chosen so that the paper's 85.27 PFLOPS at 53.8%
    /// efficiency reproduces the full-system peak.
    pub fn orise() -> Self {
        Self {
            name: "ORISE",
            nodes: 6_000,
            accels_per_node: 4,
            accel_peak_tflops: 6.6,
            launch_overhead_s: 20e-6,
            transfer_gbs: 16.0,
            node_mtbf_hours: 50_000.0,
        }
    }

    /// The new-generation Sunway configuration: 96,000 SW26010-pro nodes.
    /// Per-node peak chosen so that 399.9 PFLOPS at 29.5% efficiency
    /// reproduces the full-system peak.
    pub fn sunway() -> Self {
        Self {
            name: "Sunway",
            nodes: 96_000,
            accels_per_node: 1,
            accel_peak_tflops: 14.1,
            launch_overhead_s: 5e-6,
            transfer_gbs: 400.0,
            node_mtbf_hours: 30_000.0,
        }
    }

    /// Total accelerators in the machine.
    pub fn total_accels(&self) -> usize {
        self.nodes * self.accels_per_node
    }

    /// Full-system FP64 peak in PFLOPS.
    pub fn peak_pflops(&self) -> f64 {
        self.accel_peak_tflops * self.total_accels() as f64 / 1000.0
    }

    /// Extrapolates a measured/modeled per-accelerator rate (TFLOPS) to the
    /// full system (PFLOPS) — the Table I methodology ("could thus be
    /// estimated to reach ...").
    pub fn full_system_pflops(&self, per_accel_tflops: f64) -> f64 {
        per_accel_tflops * self.total_accels() as f64 / 1000.0
    }

    /// FP64 efficiency of an achieved per-accelerator rate.
    pub fn efficiency(&self, per_accel_tflops: f64) -> f64 {
        per_accel_tflops / self.accel_peak_tflops
    }

    /// Probability that a given node fails at least once during a run of
    /// `run_hours`, under an exponential failure model with the node MTBF.
    pub fn node_failure_probability(&self, run_hours: f64) -> f64 {
        1.0 - (-run_hours / self.node_mtbf_hours).exp()
    }

    /// Expected number of node failures across the whole machine during a
    /// run of `run_hours` — the rate to feed a [`crate::FaultPlan`] when
    /// simulating full-system jobs.
    pub fn expected_node_failures(&self, run_hours: f64) -> f64 {
        self.nodes as f64 * run_hours / self.node_mtbf_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orise_reproduces_table1_peak() {
        let m = MachineModel::orise();
        assert_eq!(m.total_accels(), 24_000);
        // Paper: 85.27 PFLOPS at 53.8% of peak -> peak ~158.5 PFLOPS.
        let peak = m.peak_pflops();
        assert!((peak - 158.5).abs() < 5.0, "ORISE peak {peak}");
        // Achieving 85.27 PFLOPS means ~3.55 TFLOPS per GPU.
        let per_accel = 85.27 * 1000.0 / 24_000.0;
        let eff = m.efficiency(per_accel);
        assert!((eff - 0.538).abs() < 0.02, "efficiency {eff}");
    }

    #[test]
    fn sunway_reproduces_table1_peak() {
        let m = MachineModel::sunway();
        assert_eq!(m.total_accels(), 96_000);
        // Paper: 399.9 PFLOPS at 29.5% -> peak ~1355 PFLOPS.
        let peak = m.peak_pflops();
        assert!((peak - 1355.0).abs() < 30.0, "Sunway peak {peak}");
        let per_accel = 399.9 * 1000.0 / 96_000.0;
        let eff = m.efficiency(per_accel);
        assert!((eff - 0.295).abs() < 0.02, "efficiency {eff}");
    }

    #[test]
    fn extrapolation_linear_in_rate() {
        let m = MachineModel::orise();
        let a = m.full_system_pflops(2.0);
        let b = m.full_system_pflops(4.0);
        assert!((b / a - 2.0).abs() < 1e-12);
        assert!((a - 48.0).abs() < 1e-9); // 2 TF * 24000 / 1000
    }

    #[test]
    fn failure_model_scales_with_machine_size() {
        let sunway = MachineModel::sunway();
        let orise = MachineModel::orise();
        // A 10-hour full-system Sunway run expects tens of node failures —
        // fault tolerance is mandatory, not optional, at this scale.
        assert!(sunway.expected_node_failures(10.0) > 10.0);
        assert!(sunway.expected_node_failures(10.0) > orise.expected_node_failures(10.0));
        // Per-node failure probability stays tiny and bounded.
        let p = sunway.node_failure_probability(10.0);
        assert!(p > 0.0 && p < 1e-3, "per-node p {p}");
        // Exponential model sanity: p(0) = 0, monotone in duration.
        assert_eq!(sunway.node_failure_probability(0.0), 0.0);
        assert!(sunway.node_failure_probability(20.0) > p);
    }

    #[test]
    fn sunway_has_cheaper_offload() {
        // The paper notes Sunway needs no aggregated PCIe transfer: shared
        // memory space.
        assert!(MachineModel::sunway().launch_overhead_s < MachineModel::orise().launch_overhead_s);
        assert!(MachineModel::sunway().transfer_gbs > MachineModel::orise().transfer_gbs);
    }
}
