//! Scheduling policies, headed by the paper's system-size-sensitive load
//! balancer (Section V-B, Fig. 4).
//!
//! The policy interface is a pull model: leaders (real threads in
//! [`crate::runtime`], simulated nodes in [`crate::simulator`]) ask the
//! master for the next task; the policy decides what to hand out and at
//! what granularity. Failed or straggling tasks can be pushed back with
//! [`Policy::requeue`], mirroring the paper's "processed for a long time
//! but not yet completed" re-queueing.

use crate::task::{FragmentWorkItem, Task};

/// A task-dispensing policy (the master's brain).
pub trait Policy: Send {
    /// Next task, or `None` when the pool is drained.
    fn next_task(&mut self) -> Option<Task>;

    /// Returns a task to the pool (straggler / failure re-queue).
    fn requeue(&mut self, task: Task);

    /// Fragments not yet handed out (excluding in-flight ones).
    fn remaining_fragments(&self) -> usize;
}

/// Configuration of the system-size-sensitive policy.
#[derive(Debug, Clone, Copy)]
pub struct SizeSensitiveConfig {
    /// Minimum task cost that amortizes one master round-trip. Fragments at
    /// or above it ship alone (the "large" phase); smaller ones are packed
    /// until a task reaches it (the "medium" phase). In
    /// [`cost_model`](crate::task::cost_model) units, 1000 ≈ a 28-atom
    /// fragment.
    pub min_task_cost: f64,
    /// The shrinking-granularity tail starts when this fraction of
    /// fragments remains.
    pub tail_fraction: f64,
    /// Tail pack size divisor: each tail task packs
    /// `ceil(remaining / divisor)` fragments (floor 1), so granularity
    /// shrinks as the pool drains.
    pub tail_divisor: usize,
}

impl Default for SizeSensitiveConfig {
    fn default() -> Self {
        Self { min_task_cost: 1000.0, tail_fraction: 0.15, tail_divisor: 24 }
    }
}

/// The paper's policy: sort by size; large fragments go alone, medium
/// fragments pack to a cost target, and the tail is served at shrinking
/// granularity so lightly- and heavily-loaded leaders converge (Fig. 4(c)).
#[derive(Debug)]
pub struct SizeSensitivePolicy {
    /// Remaining fragments, sorted ascending by cost (served from the back).
    pool: Vec<FragmentWorkItem>,
    requeued: Vec<Task>,
    cfg: SizeSensitiveConfig,
    initial_count: usize,
    next_id: u32,
}

impl SizeSensitivePolicy {
    /// Builds the policy over a fragment population.
    pub fn new(mut fragments: Vec<FragmentWorkItem>, cfg: SizeSensitiveConfig) -> Self {
        fragments.sort_by(|a, b| a.cost().total_cmp(&b.cost()).then(a.id.cmp(&b.id)));
        let initial_count = fragments.len();
        Self { pool: fragments, requeued: Vec::new(), cfg, initial_count, next_id: 0 }
    }

    /// Default configuration constructor.
    pub fn with_defaults(fragments: Vec<FragmentWorkItem>) -> Self {
        Self::new(fragments, SizeSensitiveConfig::default())
    }

    fn make_task(&mut self, fragments: Vec<FragmentWorkItem>) -> Task {
        let id = self.next_id;
        self.next_id += 1;
        Task { id, fragments }
    }
}

impl Policy for SizeSensitivePolicy {
    fn next_task(&mut self) -> Option<Task> {
        if let Some(t) = self.requeued.pop() {
            return Some(t);
        }
        self.pool.last()?;
        // Shrinking-granularity tail (Fig. 4(c)): once only a small share
        // of the pool remains, cap the pack size at `ceil(remaining /
        // divisor)` so granularity falls smoothly to single fragments and
        // all leaders drain together. The cap never *grows* tasks beyond
        // the medium pack target.
        let tail_cap =
            if self.pool.len() <= (self.cfg.tail_fraction * self.initial_count as f64) as usize {
                self.pool.len().div_ceil(self.cfg.tail_divisor).max(1)
            } else {
                usize::MAX
            };
        // Serve from the large end, packing until the master round-trip is
        // amortized. A fragment already at or above the target ships alone
        // (Fig. 4(b) "each large fragment as a task"); small ones pack.
        let mut fragments = Vec::new();
        let mut cost = 0.0;
        while cost < self.cfg.min_task_cost && fragments.len() < tail_cap {
            match self.pool.pop() {
                Some(f) => {
                    cost += f.cost();
                    fragments.push(f);
                }
                None => break,
            }
        }
        if fragments.is_empty() {
            None
        } else {
            Some(self.make_task(fragments))
        }
    }

    fn requeue(&mut self, task: Task) {
        self.requeued.push(task);
    }

    fn remaining_fragments(&self) -> usize {
        self.pool.len() + self.requeued.iter().map(|t| t.len()).sum::<usize>()
    }
}

/// Baseline: fragments chunked in arrival order into fixed-size tasks
/// (static round-robin-style distribution; no size awareness).
#[derive(Debug)]
pub struct RoundRobinPolicy {
    tasks: Vec<Task>,
}

impl RoundRobinPolicy {
    /// Chunks fragments in arrival order, `chunk` per task.
    pub fn new(fragments: Vec<FragmentWorkItem>, chunk: usize) -> Self {
        assert!(chunk > 0);
        let mut tasks: Vec<Task> = fragments
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| Task { id: i as u32, fragments: c.to_vec() })
            .collect();
        tasks.reverse(); // pop from the back = original order
        Self { tasks }
    }
}

impl Policy for RoundRobinPolicy {
    fn next_task(&mut self) -> Option<Task> {
        self.tasks.pop()
    }

    fn requeue(&mut self, task: Task) {
        self.tasks.push(task);
    }

    fn remaining_fragments(&self) -> usize {
        self.tasks.iter().map(|t| t.len()).sum()
    }
}

/// Baseline: size-sorted singletons (classic LPT under a pull model) — good
/// balance but one master round-trip per fragment, the communication cost
/// the paper's packing avoids.
#[derive(Debug)]
pub struct SortedSingletonPolicy {
    pool: Vec<FragmentWorkItem>,
    requeued: Vec<Task>,
    next_id: u32,
}

impl SortedSingletonPolicy {
    /// Builds the policy (largest served first).
    pub fn new(mut fragments: Vec<FragmentWorkItem>) -> Self {
        fragments.sort_by(|a, b| a.cost().total_cmp(&b.cost()).then(a.id.cmp(&b.id)));
        Self { pool: fragments, requeued: Vec::new(), next_id: 0 }
    }
}

impl Policy for SortedSingletonPolicy {
    fn next_task(&mut self) -> Option<Task> {
        if let Some(t) = self.requeued.pop() {
            return Some(t);
        }
        let f = self.pool.pop()?;
        let id = self.next_id;
        self.next_id += 1;
        Some(Task { id, fragments: vec![f] })
    }

    fn requeue(&mut self, task: Task) {
        self.requeued.push(task);
    }

    fn remaining_fragments(&self) -> usize {
        self.pool.len() + self.requeued.iter().map(|t| t.len()).sum::<usize>()
    }
}

/// Baseline: seeded random order, fixed chunking — the worst case for
/// size-induced imbalance.
#[derive(Debug)]
pub struct RandomPolicy {
    inner: RoundRobinPolicy,
}

impl RandomPolicy {
    /// Shuffles fragments with a deterministic LCG, then chunks.
    pub fn new(mut fragments: Vec<FragmentWorkItem>, chunk: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..fragments.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % (i + 1);
            fragments.swap(i, j);
        }
        Self { inner: RoundRobinPolicy::new(fragments, chunk) }
    }
}

impl Policy for RandomPolicy {
    fn next_task(&mut self) -> Option<Task> {
        self.inner.next_task()
    }

    fn requeue(&mut self, task: Task) {
        self.inner.requeue(task);
    }

    fn remaining_fragments(&self) -> usize {
        self.inner.remaining_fragments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{protein_workload, water_dimer_workload};
    use std::collections::HashSet;

    fn drain(policy: &mut dyn Policy) -> Vec<Task> {
        let mut out = Vec::new();
        while let Some(t) = policy.next_task() {
            out.push(t);
        }
        out
    }

    fn assert_every_fragment_once(tasks: &[Task], n: usize) {
        let mut seen = HashSet::new();
        for t in tasks {
            for f in &t.fragments {
                assert!(seen.insert(f.id), "fragment {} scheduled twice", f.id);
            }
        }
        assert_eq!(seen.len(), n, "not every fragment scheduled");
    }

    #[test]
    fn size_sensitive_serves_every_fragment_once() {
        let frags = protein_workload(500, 1);
        let mut p = SizeSensitivePolicy::with_defaults(frags);
        let tasks = drain(&mut p);
        assert_every_fragment_once(&tasks, 500);
        assert_eq!(p.remaining_fragments(), 0);
    }

    #[test]
    fn large_fragments_ship_alone_and_first() {
        let frags = protein_workload(300, 2);
        let max_cost = frags.iter().map(|f| f.cost()).fold(0.0, f64::max);
        let mut p = SizeSensitivePolicy::with_defaults(frags);
        let tasks = drain(&mut p);
        // First tasks are singletons of the largest fragments.
        for t in tasks.iter().take(3) {
            assert_eq!(t.len(), 1, "large task must be singleton");
            assert!(t.cost() >= 0.5 * max_cost);
        }
        // Costs of the large singleton prefix are non-increasing.
        let singleton_costs: Vec<f64> = tasks
            .iter()
            .take_while(|t| t.len() == 1 && t.cost() >= 0.5 * max_cost)
            .map(|t| t.cost())
            .collect();
        assert!(singleton_costs.len() > 1);
        for w in singleton_costs.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn medium_tasks_are_packed() {
        let frags = water_dimer_workload(2000);
        let mut p = SizeSensitivePolicy::with_defaults(frags);
        let tasks = drain(&mut p);
        // Uniform small fragments: everything below large cutoff packs.
        let mid = &tasks[tasks.len() / 3];
        assert!(mid.len() > 1, "medium phase must pack fragments");
        assert_every_fragment_once(&tasks, 2000);
    }

    #[test]
    fn tail_granularity_shrinks_to_one() {
        let frags = water_dimer_workload(1000);
        let mut p = SizeSensitivePolicy::with_defaults(frags);
        let tasks = drain(&mut p);
        let last = tasks.last().unwrap();
        assert_eq!(last.len(), 1, "final task must be a single fragment");
        // Tail task sizes are non-increasing.
        let tail: Vec<usize> = tasks.iter().rev().take(10).map(|t| t.len()).collect();
        for w in tail.windows(2) {
            assert!(w[1] >= w[0], "tail granularity must shrink toward the end");
        }
    }

    #[test]
    fn requeue_serves_task_again() {
        let frags = water_dimer_workload(10);
        let mut p = SizeSensitivePolicy::with_defaults(frags);
        let t = p.next_task().unwrap();
        let tid = t.id;
        let tlen = t.len();
        p.requeue(t);
        let again = p.next_task().unwrap();
        assert_eq!(again.id, tid);
        assert_eq!(again.len(), tlen);
    }

    #[test]
    fn round_robin_preserves_order() {
        let frags = protein_workload(10, 3);
        let ids: Vec<u32> = frags.iter().map(|f| f.id).collect();
        let mut p = RoundRobinPolicy::new(frags, 3);
        let tasks = drain(&mut p);
        assert_eq!(tasks.len(), 4);
        let served: Vec<u32> =
            tasks.iter().flat_map(|t| t.fragments.iter().map(|f| f.id)).collect();
        assert_eq!(served, ids);
    }

    #[test]
    fn sorted_singleton_is_lpt_order() {
        let frags = protein_workload(50, 4);
        let mut p = SortedSingletonPolicy::new(frags);
        let tasks = drain(&mut p);
        assert!(tasks.iter().all(|t| t.len() == 1));
        for w in tasks.windows(2) {
            assert!(w[0].cost() >= w[1].cost() - 1e-9);
        }
        assert_every_fragment_once(&tasks, 50);
    }

    #[test]
    fn random_policy_complete_and_deterministic() {
        let frags = protein_workload(100, 5);
        let t1 = drain(&mut RandomPolicy::new(frags.clone(), 4, 9));
        assert_every_fragment_once(&t1, 100);
        let t2 = drain(&mut RandomPolicy::new(frags.clone(), 4, 9));
        assert_eq!(t1.len(), t2.len());
        let t3 = drain(&mut RandomPolicy::new(frags, 4, 10));
        let same_order = t1
            .iter()
            .zip(&t3)
            .all(|(a, b)| a.fragments.iter().map(|f| f.id).eq(b.fragments.iter().map(|f| f.id)));
        assert!(!same_order, "different seeds should shuffle differently");
    }

    #[test]
    fn empty_pool_yields_none() {
        let mut p = SizeSensitivePolicy::with_defaults(vec![]);
        assert!(p.next_task().is_none());
        assert_eq!(p.remaining_fragments(), 0);
    }

    /// A non-finite measured cost (a hung timer, a 0/0 rate) must not
    /// panic the sort — `total_cmp` orders NaN after +inf, so the poisoned
    /// fragment simply sorts to the "largest" end and every fragment is
    /// still served exactly once.
    #[test]
    fn nan_cost_fragment_does_not_panic_policies() {
        let mut frags = water_dimer_workload(20);
        frags[7] = frags[7].with_cost_hint(f64::NAN);
        frags[3] = frags[3].with_cost_hint(f64::INFINITY);
        let tasks = drain(&mut SizeSensitivePolicy::with_defaults(frags.clone()));
        assert_every_fragment_once(&tasks, 20);
        // NaN sorts after +inf under total_cmp: the poisoned fragment is
        // served first, as its own task.
        assert_eq!(tasks[0].fragments[0].id, 7);
        assert!(tasks[0].fragments[0].cost().is_nan());
        let tasks = drain(&mut SortedSingletonPolicy::new(frags));
        assert_every_fragment_once(&tasks, 20);
        assert_eq!(tasks[0].fragments[0].id, 7);
    }
}
