//! Work items and tasks.
//!
//! A *fragment work item* is one fragment's full DFPT job (all of its
//! atomic displacements); its cost follows the cubic scaling of the
//! per-fragment quantum calculation, which is what makes the paper's
//! workload hard to balance: the spike protein's 9–68-atom fragments spread
//! per-fragment runtimes by ~19x.

/// Abstract cost of processing one fragment (arbitrary time units): a
/// constant per-fragment overhead plus the cubic electronic-structure term.
/// `cost_model(9) : cost_model(35)` ≈ 1 : 5.5, matching the 5.4x spread the
/// paper quotes for the Fig. 8 protein, and `cost_model(9) : cost_model(68)`
/// ≈ 1 : 19, matching the Section IV-B figure.
pub fn cost_model(atoms: u32) -> f64 {
    let a = atoms as f64;
    // Effective measured scaling: the asymptotic cubic cost of the
    // electronic structure is tempered by per-fragment constant overheads
    // (I/O, setup, small-matrix inefficiency). `179 + a²` reproduces both
    // measured spreads the paper quotes: 9→35 atoms ≈ 5.4x (Fig. 8) and
    // 9→68 atoms ≈ 19x (Section IV-B).
    179.0 + a * a
}

/// One fragment's workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentWorkItem {
    /// Stable fragment id.
    pub id: u32,
    /// Fragment size in atoms (including link hydrogens).
    pub atoms: u32,
    /// Measured-cost override: when a caller has real timings (a warm
    /// cache makes the model cost wildly wrong for hit fragments), it
    /// replaces the size model. External measurements are not trusted to
    /// be finite — the balancer must order them NaN-safely.
    pub cost_hint: Option<f64>,
}

impl FragmentWorkItem {
    /// A work item costed by the size model.
    pub fn new(id: u32, atoms: u32) -> Self {
        Self { id, atoms, cost_hint: None }
    }

    /// Overrides the modeled cost with a measured one.
    pub fn with_cost_hint(mut self, cost: f64) -> Self {
        self.cost_hint = Some(cost);
        self
    }

    /// Cost in abstract time units.
    pub fn cost(&self) -> f64 {
        self.cost_hint.unwrap_or_else(|| cost_model(self.atoms))
    }
}

/// A task: one or more fragments packed together by the load balancer and
/// dispatched to a single leader.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task id (unique per balancer instance).
    pub id: u32,
    /// Packed fragments.
    pub fragments: Vec<FragmentWorkItem>,
}

impl Task {
    /// Total cost of the packed fragments.
    pub fn cost(&self) -> f64 {
        self.fragments.iter().map(|f| f.cost()).sum()
    }

    /// Number of fragments in the task.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True for an empty task (never produced by the balancer).
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Ids of the packed fragments, in task order (quarantine reporting).
    pub fn fragment_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.fragments.iter().map(|f| f.id)
    }
}

/// Builds the water-dimer benchmark workload: `n` uniform 6-atom fragments
/// (the ORISE water-dimer study of Figs. 8, 10, 11).
pub fn water_dimer_workload(n: usize) -> Vec<FragmentWorkItem> {
    (0..n).map(|i| FragmentWorkItem::new(i as u32, 6)).collect()
}

/// Builds a protein-like workload with fragment sizes drawn from the
/// 9–35-atom range of the Fig. 8 study (deterministic, seeded).
pub fn protein_workload(n: usize, seed: u64) -> Vec<FragmentWorkItem> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Triangular-ish distribution over 9..=35 (mid sizes common).
            let a = 9 + ((state >> 33) % 27) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = 9 + ((state >> 33) % 27) as u32;
            FragmentWorkItem::new(i as u32, (a + b) / 2)
        })
        .collect()
}

/// Builds a shard-ownership workload for the out-of-core assembly: item
/// `i` is shard `ranges[i]` of a `ShardPlan`, identified by its shard
/// index and costed *linearly* in owned atoms — a shard build is a sweep
/// over its rows' fragment jobs, not a cubic per-fragment quantum
/// calculation, so the size model above would mis-balance it badly.
pub fn shard_range_workload(ranges: &[std::ops::Range<usize>]) -> Vec<FragmentWorkItem> {
    ranges
        .iter()
        .enumerate()
        .map(|(s, r)| {
            FragmentWorkItem::new(s as u32, r.len().min(u32::MAX as usize) as u32)
                .with_cost_hint(r.len() as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_spread_matches_paper() {
        let r35 = cost_model(35) / cost_model(9);
        assert!((4.5..6.5).contains(&r35), "9->35 spread {r35} (paper: ~5.4x)");
        let r68 = cost_model(68) / cost_model(9);
        assert!((15.0..25.0).contains(&r68), "9->68 spread {r68} (paper: ~19x)");
    }

    #[test]
    fn cost_monotone_in_size() {
        for a in 6..68 {
            assert!(cost_model(a + 1) > cost_model(a));
        }
    }

    #[test]
    fn task_cost_sums() {
        let t = Task {
            id: 0,
            fragments: vec![FragmentWorkItem::new(0, 6), FragmentWorkItem::new(1, 6)],
        };
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!((t.cost() - 2.0 * cost_model(6)).abs() < 1e-12);
    }

    #[test]
    fn workload_builders() {
        let w = water_dimer_workload(100);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|f| f.atoms == 6));
        let p = protein_workload(1000, 42);
        assert!(p.iter().all(|f| (9..=35).contains(&f.atoms)));
        let min = p.iter().map(|f| f.atoms).min().unwrap();
        let max = p.iter().map(|f| f.atoms).max().unwrap();
        assert!(min <= 12 && max >= 32, "distribution should span the range: {min}..{max}");
        // Deterministic.
        assert_eq!(p, protein_workload(1000, 42));
        assert_ne!(p, protein_workload(1000, 43));
    }

    #[test]
    fn shard_workload_linear_costs() {
        let ranges = vec![0..40, 40..80, 80..115];
        let w = shard_range_workload(&ranges);
        assert_eq!(w.len(), 3);
        for (s, item) in w.iter().enumerate() {
            assert_eq!(item.id, s as u32);
            assert_eq!(item.cost(), ranges[s].len() as f64, "linear, not cubic");
        }
        // Empty trailing shards (k > n_atoms) cost zero but stay schedulable.
        let empty = shard_range_workload(&[0..1, 1..1]);
        assert_eq!(empty[1].cost(), 0.0);
    }
}
