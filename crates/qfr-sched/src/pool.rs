//! Shared persistent worker pool.
//!
//! The master/leader/worker runtime ([`crate::runtime`]) spins up its
//! hierarchy per run and tears it down at the end — the right shape for
//! one batch job, the wrong one for a long-running spectrum service where
//! many concurrent requests each contribute small bursts of fragment work.
//! [`WorkerPool`] is the service-facing complement: a fixed set of OS
//! threads draining one shared FIFO of boxed jobs, so every request's
//! fragments compete for the *same* cores instead of oversubscribing the
//! machine with per-request pools.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signals workers that a job arrived or shutdown began.
    work_cv: Condvar,
    /// Jobs submitted over the pool's lifetime (monotone).
    submitted: AtomicUsize,
    /// Jobs fully executed (monotone).
    executed: AtomicUsize,
}

#[derive(Default)]
struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A fixed-size pool of OS worker threads draining a shared job queue.
///
/// Jobs are plain `FnOnce` closures and run in FIFO submission order
/// (start order; completion order depends on job durations). Jobs must
/// not block on *other pool jobs* — the pool has no work-stealing or
/// re-entrancy, so a job waiting for a later job deadlocks when every
/// worker does it at once. The spectrum service keeps coordinators on
/// their own threads and submits only leaf compute work here for exactly
/// this reason.
///
/// Dropping the pool shuts it down: already-queued jobs still run, then
/// the workers exit and are joined.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("submitted", &self.submitted())
            .field("executed", &self.executed())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue::default()),
            work_cv: Condvar::new(),
            submitted: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qfr-pool-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers: handles }
    }

    fn worker_loop(shared: &PoolShared) {
        loop {
            let job = {
                let mut q = shared.queue.lock().expect("pool queue poisoned");
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = shared.work_cv.wait(q).expect("pool queue poisoned");
                }
            };
            job();
            shared.executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enqueues a job; one idle worker wakes to run it.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        assert!(!q.shutdown, "submit after shutdown");
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.work_cv.notify_one();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted over the pool's lifetime.
    pub fn submitted(&self) -> usize {
        self.shared.submitted.load(Ordering::Relaxed)
    }

    /// Jobs fully executed so far.
    pub fn executed(&self) -> usize {
        self.shared.executed.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_submitted_jobs() {
        let pool = WorkerPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            pool.submit(move || {
                sum.fetch_add(i, Ordering::Relaxed);
                let (lock, cv) = &*done;
                *lock.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        let (lock, cv) = &*done;
        let mut n = lock.lock().unwrap();
        while *n < 100 {
            n = cv.wait(n).unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        assert_eq!(pool.submitted(), 100);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let sum = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let sum = Arc::clone(&sum);
                pool.submit(move || {
                    sum.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop joins the workers after the queue drains.
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
