//! The real master/leader/worker runtime on OS threads (Fig. 3).
//!
//! - The **master** owns the scheduling policy and serves task-assignment
//!   requests over crossbeam channels (the `leader-available` /
//!   `task-assignment` signals of Fig. 4(a)).
//! - Each **leader** pulls tasks, partitions every fragment's displacement
//!   set statically across its **workers** (scoped threads), and reports
//!   completion or failure back to the master.
//! - **Prefetching** (Fig. 4(d)): a leader requests its next task while the
//!   current one is still executing, hiding the master round-trip.
//!
//! # Recovery semantics
//!
//! The master implements the contract documented in [`crate::fault`]:
//!
//! - A failed attempt is **retried eagerly with exponential backoff**: the
//!   retry is scheduled at the *first* failed copy of the attempt (failure
//!   is pure in `(fragment, attempt)`, so every copy of a failed attempt is
//!   doomed — waiting for a straggler duplicate to also fail would only
//!   delay recovery). The task waits `backoff_base * 2^attempt` in a
//!   master-held delay queue — it does *not* go back through
//!   [`Policy::requeue`] — until [`RecoveryPolicy::max_attempts`] attempts
//!   have failed, after which the task is **quarantined** and its fragments
//!   reported in [`RunReport::quarantined_fragments`] instead of hanging
//!   the run.
//! - Every `Completed`/`Failed`/`Returned` acknowledgement is **tagged
//!   with `(attempt, copy)`**; the master drops messages whose attempt no
//!   longer matches the in-flight entry (a straggler copy of an already
//!   concluded attempt), counting them in [`RunReport::stale_dropped`].
//!   Without the tag a stale copy of attempt *n* could corrupt the
//!   bookkeeping of the in-flight attempt *n+1* of the same task.
//! - **Straggler re-issue** (the paper's "processed for a long time but not
//!   yet completed" rule, on by default): an idle leader receives a
//!   duplicate copy of an in-flight task older than `straggler_factor x`
//!   the mean completed-task duration. Completion is **exactly-once**: the
//!   first successful copy wins; the loser only increments
//!   [`RunReport::duplicates_suppressed`], so `tasks_executed`,
//!   `fragments_done` and per-leader busy time count each fragment once.
//! - A **dead leader** (scheduled via [`FaultPlan::kill_leader_after`])
//!   bounces any assignment it still receives back to the master, which
//!   re-dispatches it at the same attempt. If every leader dies, the run
//!   returns with [`RunReport::unfinished_fragments`] set rather than
//!   deadlocking.
//!
//! Conservation invariant (asserted on every run):
//! `fragments_done + quarantined + unfinished == distinct input fragments`.

use crate::balancer::Policy;
use crate::fault::{FaultPlan, RecoveryPolicy};
use crate::task::{FragmentWorkItem, Task};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use qfr_obs::trace;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

// Task lifecycle counters, shared with the simulator so either executor
// feeds the same `--metrics` report. Enqueues, completions, retries and
// quarantines are pure functions of the workload and the `FaultPlan` seed
// (failure is decided per (fragment, attempt)); straggler re-issues,
// suppressed duplicates and leader deaths depend on wall-clock races and
// are therefore reported but never baselined.
pub(crate) static TASKS_ENQUEUED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("sched.tasks.enqueued");
pub(crate) static TASKS_COMPLETED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("sched.tasks.completed");
pub(crate) static TASKS_RETRIED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("sched.tasks.retried");
pub(crate) static TASKS_QUARANTINED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("sched.tasks.quarantined");
pub(crate) static REISSUES: qfr_obs::Counter = qfr_obs::Counter::timing_sensitive("sched.reissues");
pub(crate) static DUPLICATES_SUPPRESSED: qfr_obs::Counter =
    qfr_obs::Counter::timing_sensitive("sched.duplicates_suppressed");
pub(crate) static LEADERS_DIED: qfr_obs::Counter =
    qfr_obs::Counter::timing_sensitive("sched.leaders_died");
// Stale acknowledgements (a copy of an attempt that already concluded)
// exist only when a straggler duplicate raced an eager retry, so the count
// is timing-sensitive in the threaded runtime.
pub(crate) static STALE_DROPPED: qfr_obs::Counter =
    qfr_obs::Counter::timing_sensitive("sched.stale_dropped");

/// Runtime shape and fault/recovery configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of leader threads.
    pub n_leaders: usize,
    /// Worker threads per leader (static displacement partitioning).
    pub workers_per_leader: usize,
    /// Whether leaders prefetch their next task.
    pub prefetch: bool,
    /// Retry, backoff and straggler re-issue policy.
    pub recovery: RecoveryPolicy,
    /// Injected faults (none by default).
    pub faults: FaultPlan,
}

impl Default for RuntimeConfig {
    /// The default shape: 4 leaders x 2 workers, prefetching, default
    /// recovery policy, no injected faults.
    fn default() -> Self {
        Self {
            n_leaders: 4,
            workers_per_leader: 2,
            prefetch: true,
            recovery: RecoveryPolicy::default(),
            faults: FaultPlan::none(),
        }
    }
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock seconds from first dispatch to last completion.
    pub makespan: f64,
    /// Per-leader busy seconds (first successful executions only).
    pub leader_busy: Vec<f64>,
    /// Tasks completed, each counted exactly once.
    pub tasks_executed: usize,
    /// Distinct fragments completed successfully.
    pub fragments_done: usize,
    /// Failure-triggered re-queues (retry attempts scheduled).
    pub retries: usize,
    /// Retries scheduled eagerly at the *first* failed copy of an attempt.
    /// Under the eager protocol every retry is eager, so this equals
    /// [`RunReport::retries`] and matches `FaultForecast::eager_retries`;
    /// the field exists so a future opt-out can diverge them.
    pub eager_retries: usize,
    /// Acknowledgements dropped because their `(attempt, copy)` tag no
    /// longer matched the in-flight entry (straggler copies of an attempt
    /// that an eager retry already concluded). Timing-sensitive.
    pub stale_dropped: usize,
    /// Straggler duplicates issued to idle leaders.
    pub reissues: usize,
    /// Completions discarded because another copy already won.
    pub duplicates_suppressed: usize,
    /// Fragments whose task exhausted `max_attempts` (sorted ids).
    pub quarantined_fragments: Vec<u32>,
    /// Fragments abandoned because every leader died.
    pub unfinished_fragments: usize,
    /// Leaders that died during the run.
    pub leaders_died: usize,
}

impl RunReport {
    /// Relative busy-time deviation range across leaders
    /// `((min-mean)/mean, (max-mean)/mean)` — the Fig. 8 metric.
    pub fn busy_variation(&self) -> (f64, f64) {
        let mean = self.leader_busy.iter().sum::<f64>() / self.leader_busy.len().max(1) as f64;
        if mean <= 0.0 {
            return (0.0, 0.0);
        }
        let min = self.leader_busy.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.leader_busy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        ((min - mean) / mean, (max - mean) / mean)
    }

    /// Whether every input fragment completed (nothing quarantined or
    /// abandoned).
    pub fn is_complete(&self) -> bool {
        self.quarantined_fragments.is_empty() && self.unfinished_fragments == 0
    }

    /// Plain-text run summary followed by the shared observability report
    /// (span aggregates + counter registry).
    pub fn text_report(&self) -> String {
        let (lo, hi) = self.busy_variation();
        let mut out = String::from("-- run report --\n");
        out.push_str(&format!("makespan_s         = {:.6}\n", self.makespan));
        out.push_str(&format!("tasks_executed     = {}\n", self.tasks_executed));
        out.push_str(&format!("fragments_done     = {}\n", self.fragments_done));
        out.push_str(&format!("retries            = {}\n", self.retries));
        out.push_str(&format!("eager_retries      = {}\n", self.eager_retries));
        out.push_str(&format!("stale_dropped      = {}\n", self.stale_dropped));
        out.push_str(&format!("reissues           = {}\n", self.reissues));
        out.push_str(&format!("duplicates_suppressed = {}\n", self.duplicates_suppressed));
        out.push_str(&format!("quarantined        = {}\n", self.quarantined_fragments.len()));
        out.push_str(&format!("unfinished         = {}\n", self.unfinished_fragments));
        out.push_str(&format!("leaders_died       = {}\n", self.leaders_died));
        out.push_str(&format!("busy_variation     = {lo:+.3}..{hi:+.3}\n"));
        out.push_str(&qfr_obs::report());
        out
    }
}

/// One unit of work sent to a leader: a task, its attempt number, and the
/// copy index within that attempt (straggler duplicates get copy ≥ 1).
#[derive(Debug, Clone)]
struct Assignment {
    task: Task,
    attempt: u32,
    copy: u32,
}

/// A leader's task mailbox (`None` = shut down).
type TaskChannel = (Sender<Option<Assignment>>, Receiver<Option<Assignment>>);

// Completion, failure and bounce acknowledgements carry the `(attempt,
// copy)` tag of the assignment they answer: the master matches the attempt
// against the in-flight entry and drops stale copies of attempts that an
// eager retry already concluded (the tag is what makes eager retry safe).
enum MasterMsg {
    Available { leader: usize },
    Completed { leader: usize, task_id: u32, attempt: u32, copy: u32, seconds: f64 },
    Failed { leader: usize, task_id: u32, attempt: u32, copy: u32 },
    Returned { leader: usize, task_id: u32, attempt: u32 },
    Died { leader: usize },
}

/// Master-side bookkeeping for one in-flight task attempt.
struct InFlight {
    task: Task,
    attempt: u32,
    issued: Instant,
    /// Copies issued for this attempt (caps the duplicate storm at 2).
    copies: u32,
    /// Copies still outstanding.
    live: u32,
    holders: Vec<usize>,
    completed: bool,
}

#[derive(Default)]
struct MasterOut {
    retries: usize,
    eager_retries: usize,
    stale_dropped: usize,
    reissues: usize,
    leaders_died: usize,
    quarantined: Vec<u32>,
    unfinished: usize,
}

fn outstanding_fragments(
    in_flight: &HashMap<u32, InFlight>,
    ready: &[(Task, u32)],
    delayed: &[(Instant, Task, u32)],
    policy_remaining: usize,
) -> usize {
    policy_remaining
        + ready.iter().map(|(t, _)| t.len()).sum::<usize>()
        + delayed.iter().map(|(_, t, _)| t.len()).sum::<usize>()
        + in_flight.values().filter(|e| !e.completed).map(|e| e.task.len()).sum::<usize>()
}

/// Runs a workload through the three-level hierarchy.
///
/// `workload` processes one fragment (one displacement partition is handled
/// internally by the leader's workers) and returns `true` on success. A
/// `false` — or an injected failure from `cfg.faults` — fails the whole
/// task, which the master retries with backoff up to
/// `cfg.recovery.max_attempts` total attempts before quarantining it.
pub fn run_master_leader_worker<F>(
    mut policy: Box<dyn Policy>,
    workload: F,
    cfg: RuntimeConfig,
) -> RunReport
where
    F: Fn(&FragmentWorkItem) -> bool + Sync,
{
    assert!(cfg.n_leaders > 0 && cfg.workers_per_leader > 0);
    assert!(cfg.recovery.max_attempts >= 1, "need at least one attempt per task");
    let initial_fragments = policy.remaining_fragments();
    let (to_master, master_rx): (Sender<MasterMsg>, Receiver<MasterMsg>) = unbounded();
    // Unbounded so the master's final None broadcast can never block.
    let leader_channels: Vec<TaskChannel> = (0..cfg.n_leaders).map(|_| unbounded()).collect();

    let busy: Vec<Mutex<f64>> = (0..cfg.n_leaders).map(|_| Mutex::new(0.0)).collect();
    let done_fragments = Mutex::new(HashSet::<u32>::new());
    // Task ids whose first successful copy already reported: the arbiter
    // for exactly-once crediting across straggler duplicates.
    let won_tasks = Mutex::new(HashSet::<u32>::new());
    let counters = Mutex::new((0usize, 0usize)); // (tasks_executed, duplicates_suppressed)
    let master_out = Mutex::new(MasterOut::default());

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // ---------------- master ----------------
        let master_senders: Vec<Sender<Option<Assignment>>> =
            leader_channels.iter().map(|(s, _)| s.clone()).collect();
        let out_ref = &master_out;
        let cfg_ref = &cfg;
        scope.spawn(move || {
            let rec = cfg_ref.recovery;
            let mut in_flight: HashMap<u32, InFlight> = HashMap::new();
            let mut ready: Vec<(Task, u32)> = Vec::new();
            let mut delayed: Vec<(Instant, Task, u32)> = Vec::new();
            let mut waiting: Vec<usize> = Vec::new();
            let mut dead = vec![false; cfg_ref.n_leaders];
            let mut mean_acc = (0.0f64, 0usize); // (sum seconds, count)
            let mut retries = 0usize;
            let mut eager_retries = 0usize;
            let mut stale_dropped = 0usize;
            let mut reissues = 0usize;
            let mut leaders_died = 0usize;
            let mut quarantined: Vec<u32> = Vec::new();
            let unfinished;
            loop {
                // While leaders are parked and time-based work exists
                // (straggler aging, backoff expiry), poll with a timeout so
                // it gets picked up without waiting for another message.
                let poll =
                    !waiting.is_empty() && (rec.straggler_factor.is_some() || !delayed.is_empty());
                let msg = if poll {
                    match master_rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(m) => Some(m),
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                        Err(_) => {
                            unfinished = outstanding_fragments(
                                &in_flight,
                                &ready,
                                &delayed,
                                policy.remaining_fragments(),
                            );
                            break;
                        }
                    }
                } else {
                    match master_rx.recv() {
                        Ok(m) => Some(m),
                        Err(_) => {
                            unfinished = outstanding_fragments(
                                &in_flight,
                                &ready,
                                &delayed,
                                policy.remaining_fragments(),
                            );
                            break;
                        }
                    }
                };
                match msg {
                    Some(MasterMsg::Available { leader }) if !dead[leader] => {
                        waiting.push(leader);
                    }
                    Some(MasterMsg::Available { .. }) => {}
                    Some(MasterMsg::Completed { leader, task_id, attempt, copy, seconds }) => {
                        match in_flight.get_mut(&task_id) {
                            Some(e) if e.attempt == attempt => {
                                e.live -= 1;
                                e.holders.retain(|&l| l != leader);
                                if !e.completed {
                                    e.completed = true;
                                    mean_acc.0 += seconds;
                                    mean_acc.1 += 1;
                                }
                                if e.live == 0 {
                                    in_flight.remove(&task_id);
                                }
                            }
                            // A copy of an attempt that already concluded
                            // (an eager retry removed or replaced the
                            // entry): drop it — acting on it would corrupt
                            // the current attempt's bookkeeping.
                            _ => {
                                stale_dropped += 1;
                                STALE_DROPPED.incr();
                                trace::instant(
                                    "task.stale_drop",
                                    &[
                                        ("task", i64::from(task_id)),
                                        ("attempt", i64::from(attempt)),
                                        ("copy", i64::from(copy)),
                                    ],
                                );
                            }
                        }
                    }
                    Some(MasterMsg::Failed { leader, task_id, attempt, copy }) => {
                        match in_flight.get_mut(&task_id) {
                            Some(e) if e.attempt == attempt => {
                                if e.completed {
                                    // Another copy of this attempt already
                                    // won (impure workload): just retire
                                    // this copy.
                                    e.live -= 1;
                                    e.holders.retain(|&l| l != leader);
                                    if e.live == 0 {
                                        in_flight.remove(&task_id);
                                    }
                                } else {
                                    // Eager retry: failure is pure in
                                    // (fragment, attempt), so the first
                                    // failed copy dooms every other copy of
                                    // this attempt — conclude now instead
                                    // of waiting for stragglers; their
                                    // acks will stale-drop.
                                    let e = in_flight.remove(&task_id).expect("matched above");
                                    let next = e.attempt + 1;
                                    if next >= rec.max_attempts {
                                        TASKS_QUARANTINED.incr();
                                        trace::instant(
                                            "task.quarantine",
                                            &[("task", i64::from(task_id))],
                                        );
                                        quarantined.extend(e.task.fragment_ids());
                                    } else {
                                        retries += 1;
                                        // Every retry is scheduled at the
                                        // first failed copy, so the eager
                                        // count equals the retry count and
                                        // stays forecast-exact.
                                        eager_retries += 1;
                                        TASKS_RETRIED.incr();
                                        trace::instant(
                                            "task.retry",
                                            &[
                                                ("task", i64::from(task_id)),
                                                ("attempt", i64::from(next)),
                                            ],
                                        );
                                        let delay =
                                            Duration::from_secs_f64(rec.backoff_after(e.attempt));
                                        delayed.push((Instant::now() + delay, e.task, next));
                                    }
                                }
                            }
                            _ => {
                                stale_dropped += 1;
                                STALE_DROPPED.incr();
                                trace::instant(
                                    "task.stale_drop",
                                    &[
                                        ("task", i64::from(task_id)),
                                        ("attempt", i64::from(attempt)),
                                        ("copy", i64::from(copy)),
                                    ],
                                );
                            }
                        }
                    }
                    Some(MasterMsg::Returned { leader, task_id, attempt }) => {
                        // Bounced off a dead leader: the copy never ran, so
                        // re-dispatch at the same attempt, no penalty.
                        match in_flight.get_mut(&task_id) {
                            Some(e) if e.attempt == attempt => {
                                e.live -= 1;
                                e.copies = e.copies.saturating_sub(1);
                                e.holders.retain(|&l| l != leader);
                                if e.live == 0 {
                                    let e = in_flight.remove(&task_id).expect("matched above");
                                    if !e.completed {
                                        ready.push((e.task, e.attempt));
                                    }
                                }
                            }
                            _ => {
                                stale_dropped += 1;
                                STALE_DROPPED.incr();
                                trace::instant(
                                    "task.stale_drop",
                                    &[
                                        ("task", i64::from(task_id)),
                                        ("attempt", i64::from(attempt)),
                                    ],
                                );
                            }
                        }
                    }
                    Some(MasterMsg::Died { leader }) if !dead[leader] => {
                        dead[leader] = true;
                        leaders_died += 1;
                        LEADERS_DIED.incr();
                        trace::instant("leader.death", &[("leader", leader as i64)]);
                        waiting.retain(|&l| l != leader);
                    }
                    Some(MasterMsg::Died { .. }) => {}
                    None => {}
                }

                // Promote delayed retries whose backoff has expired.
                let now = Instant::now();
                let mut i = 0;
                while i < delayed.len() {
                    if delayed[i].0 <= now {
                        let (_, task, attempt) = delayed.swap_remove(i);
                        ready.push((task, attempt));
                    } else {
                        i += 1;
                    }
                }

                // Feed idle leaders: retries first, then the policy pool.
                while !waiting.is_empty() {
                    let next = ready.pop().or_else(|| {
                        policy.next_task().map(|t| {
                            TASKS_ENQUEUED.incr();
                            (t, 0)
                        })
                    });
                    let Some((task, attempt)) = next else { break };
                    let leader = waiting.pop().expect("checked non-empty");
                    trace::instant(
                        "task.enqueue",
                        &[
                            ("task", i64::from(task.id)),
                            ("attempt", i64::from(attempt)),
                            ("leader", leader as i64),
                        ],
                    );
                    in_flight.insert(
                        task.id,
                        InFlight {
                            task: task.clone(),
                            attempt,
                            issued: Instant::now(),
                            copies: 1,
                            live: 1,
                            holders: vec![leader],
                            completed: false,
                        },
                    );
                    master_senders[leader].send(Some(Assignment { task, attempt, copy: 0 })).ok();
                }

                // Serve still-idle leaders with duplicate copies of
                // stragglers (the paper's "mark un-processed again" rule).
                if let Some(factor) = rec.straggler_factor {
                    if mean_acc.1 > 0 {
                        let mean = mean_acc.0 / mean_acc.1 as f64;
                        let mut w = 0;
                        while w < waiting.len() {
                            let leader = waiting[w];
                            let candidate = in_flight.values_mut().find(|e| {
                                !e.completed
                                    && e.copies < 2
                                    && !e.holders.contains(&leader)
                                    && e.issued.elapsed().as_secs_f64() > factor * mean
                            });
                            let Some(e) = candidate else {
                                w += 1;
                                continue;
                            };
                            let copy = e.copies;
                            e.copies += 1;
                            e.live += 1;
                            e.holders.push(leader);
                            reissues += 1;
                            REISSUES.incr();
                            trace::instant(
                                "task.reissue",
                                &[
                                    ("task", i64::from(e.task.id)),
                                    ("copy", i64::from(copy)),
                                    ("leader", leader as i64),
                                ],
                            );
                            master_senders[leader]
                                .send(Some(Assignment {
                                    task: e.task.clone(),
                                    attempt: e.attempt,
                                    copy,
                                }))
                                .ok();
                            waiting.swap_remove(w);
                        }
                    }
                }

                // Termination: all work concluded, or every leader died.
                let work_done = ready.is_empty()
                    && delayed.is_empty()
                    && policy.remaining_fragments() == 0
                    && in_flight.values().all(|e| e.completed);
                let all_dead = dead.iter().all(|&d| d);
                if work_done || all_dead {
                    unfinished = outstanding_fragments(
                        &in_flight,
                        &ready,
                        &delayed,
                        policy.remaining_fragments(),
                    );
                    for s in &master_senders {
                        s.send(None).ok();
                    }
                    break;
                }
            }
            let mut out = out_ref.lock();
            quarantined.sort_unstable();
            out.retries = retries;
            out.eager_retries = eager_retries;
            out.stale_dropped = stale_dropped;
            out.reissues = reissues;
            out.leaders_died = leaders_died;
            out.quarantined = quarantined;
            out.unfinished = unfinished;
        });

        // ---------------- leaders ----------------
        for (leader_id, (_, task_rx)) in leader_channels.iter().enumerate() {
            let to_master = to_master.clone();
            let task_rx = task_rx.clone();
            let workload = &workload;
            let busy_slot = &busy[leader_id];
            let done_ref = &done_fragments;
            let won_ref = &won_tasks;
            let counters_ref = &counters;
            let cfg_ref = &cfg;
            scope.spawn(move || {
                let death_quota = cfg_ref.faults.death_after(leader_id);
                let mut executed = 0usize;
                let mut leader_dead = false;
                let mut pending: Option<Assignment> = None;
                to_master.send(MasterMsg::Available { leader: leader_id }).ok();
                loop {
                    let assignment = match pending.take() {
                        Some(a) => a,
                        None => match task_rx.recv() {
                            Ok(Some(a)) => a,
                            _ => break,
                        },
                    };
                    if leader_dead {
                        to_master
                            .send(MasterMsg::Returned {
                                leader: leader_id,
                                task_id: assignment.task.id,
                                attempt: assignment.attempt,
                            })
                            .ok();
                        continue;
                    }
                    // Prefetch: ask for the next task before executing.
                    if cfg_ref.prefetch {
                        trace::instant("task.prefetch", &[("leader", leader_id as i64)]);
                        to_master.send(MasterMsg::Available { leader: leader_id }).ok();
                    }
                    let Assignment { task, attempt, copy } = assignment;
                    let faults = &cfg_ref.faults;
                    let exec_span = qfr_obs::span("sched.task.execute");
                    let start = Instant::now();
                    // Partition each fragment's work across the leader's
                    // workers: fragments of the task are split statically.
                    let results: Vec<(u32, bool)> = std::thread::scope(|ws| {
                        let chunks: Vec<&[FragmentWorkItem]> = task
                            .fragments
                            .chunks(task.fragments.len().div_ceil(cfg_ref.workers_per_leader))
                            .collect();
                        let handles: Vec<_> = chunks
                            .into_iter()
                            .map(|chunk| {
                                ws.spawn(move || {
                                    chunk
                                        .iter()
                                        .map(|f| {
                                            (
                                                f.id,
                                                workload(f)
                                                    && !faults.fragment_fails(f.id, attempt),
                                            )
                                        })
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("worker panicked"))
                            .collect()
                    });
                    // Injected straggler latency: stretch this copy's
                    // execution by the plan's multiplier.
                    let stretch = faults.latency_multiplier(task.id, attempt, copy);
                    if stretch > 1.0 {
                        std::thread::sleep(start.elapsed().mul_f64(stretch - 1.0));
                    }
                    let seconds = start.elapsed().as_secs_f64();
                    drop(exec_span);
                    executed += 1;
                    let ok = results.iter().all(|&(_, s)| s);
                    if ok {
                        // Exactly-once: only the first successful copy
                        // credits busy time, tasks_executed and fragments.
                        let first = won_ref.lock().insert(task.id);
                        if first {
                            *busy_slot.lock() += seconds;
                            {
                                let mut done = done_ref.lock();
                                for f in &task.fragments {
                                    done.insert(f.id);
                                }
                            }
                            counters_ref.lock().0 += 1;
                            TASKS_COMPLETED.incr();
                            trace::instant(
                                "task.complete",
                                &[
                                    ("task", i64::from(task.id)),
                                    ("attempt", i64::from(attempt)),
                                    ("leader", leader_id as i64),
                                ],
                            );
                        } else {
                            counters_ref.lock().1 += 1;
                            DUPLICATES_SUPPRESSED.incr();
                        }
                        to_master
                            .send(MasterMsg::Completed {
                                leader: leader_id,
                                task_id: task.id,
                                attempt,
                                copy,
                                seconds,
                            })
                            .ok();
                    } else {
                        trace::instant(
                            "task.fail",
                            &[
                                ("task", i64::from(task.id)),
                                ("attempt", i64::from(attempt)),
                                ("copy", i64::from(copy)),
                                ("leader", leader_id as i64),
                            ],
                        );
                        to_master
                            .send(MasterMsg::Failed {
                                leader: leader_id,
                                task_id: task.id,
                                attempt,
                                copy,
                            })
                            .ok();
                    }
                    if death_quota.is_some_and(|q| executed >= q) {
                        leader_dead = true;
                        to_master.send(MasterMsg::Died { leader: leader_id }).ok();
                    }
                    if !cfg_ref.prefetch {
                        if !leader_dead {
                            to_master.send(MasterMsg::Available { leader: leader_id }).ok();
                        }
                    } else {
                        match task_rx.try_recv() {
                            Ok(Some(a)) => pending = Some(a),
                            // A `None` here is the master's shutdown
                            // broadcast: honor it instead of silently
                            // swallowing it and deadlocking in recv().
                            Ok(None) => break,
                            Err(_) => {}
                        }
                    }
                }
            });
        }
        drop(to_master);
    });

    let makespan = t0.elapsed().as_secs_f64();
    let (tasks_executed, duplicates_suppressed) = *counters.lock();
    let done = done_fragments.into_inner();
    let fragments_done = done.len();
    let mut out = master_out.into_inner();
    // Salvage reconciliation: under an *impure* workload a straggler copy of
    // an earlier attempt can succeed (and credit its fragments) after the
    // master eagerly quarantined the task — the stale ack is dropped, but
    // the result is real. Keep the credit and un-quarantine those
    // fragments; under a pure FaultPlan this is a no-op, so the forecast
    // parity guarantees are untouched.
    out.quarantined.retain(|f| !done.contains(f));
    let report = RunReport {
        makespan,
        leader_busy: busy.iter().map(|b| *b.lock()).collect(),
        tasks_executed,
        fragments_done,
        retries: out.retries,
        eager_retries: out.eager_retries,
        stale_dropped: out.stale_dropped,
        reissues: out.reissues,
        duplicates_suppressed,
        quarantined_fragments: out.quarantined,
        unfinished_fragments: out.unfinished,
        leaders_died: out.leaders_died,
    };
    assert_eq!(
        report.fragments_done + report.quarantined_fragments.len() + report.unfinished_fragments,
        initial_fragments,
        "fragment conservation violated: every input fragment must be done, \
         quarantined, or reported unfinished exactly once"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{SizeSensitivePolicy, SortedSingletonPolicy};
    use crate::task::{protein_workload, water_dimer_workload};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn spin_for(cost: f64) {
        // Busy work proportional to cost (deterministic, ~microseconds).
        let iters = (cost * 40.0) as u64;
        let mut acc = 0.0_f64;
        for i in 0..iters {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
    }

    #[test]
    fn processes_every_fragment() {
        let frags = protein_workload(200, 1);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        let report = run_master_leader_worker(
            Box::new(policy),
            |f| {
                spin_for(f.cost() / 50.0);
                true
            },
            RuntimeConfig {
                n_leaders: 4,
                workers_per_leader: 2,
                prefetch: true,
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(report.fragments_done, 200);
        assert_eq!(report.retries, 0);
        assert!(report.quarantined_fragments.is_empty());
        assert_eq!(report.unfinished_fragments, 0);
        assert!(report.is_complete());
        assert!(report.tasks_executed > 0);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn failure_injection_retries_and_recovers() {
        let frags = water_dimer_workload(60);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        // Fragment 7 fails on its first *execution* only — impure on
        // purpose, to exercise the workload-reported failure path. Straggler
        // re-issue is disabled: a duplicate copy would be the second
        // execution and could succeed before the original's failure ack
        // lands, legitimately completing the task with zero retries.
        let failures = AtomicUsize::new(0);
        let report = run_master_leader_worker(
            Box::new(policy),
            |f| {
                if f.id == 7 && failures.fetch_add(1, Ordering::SeqCst) == 0 {
                    return false;
                }
                true
            },
            RuntimeConfig {
                n_leaders: 3,
                workers_per_leader: 1,
                prefetch: false,
                recovery: RecoveryPolicy { straggler_factor: None, ..RecoveryPolicy::default() },
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(report.fragments_done, 60, "all fragments recover");
        assert!(report.retries >= 1, "the failure must trigger a retry");
        assert!(report.quarantined_fragments.is_empty());
    }

    #[test]
    fn single_leader_single_worker() {
        let frags = water_dimer_workload(10);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        let report = run_master_leader_worker(
            Box::new(policy),
            |_| true,
            RuntimeConfig {
                n_leaders: 1,
                workers_per_leader: 1,
                prefetch: false,
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(report.fragments_done, 10);
        assert_eq!(report.leader_busy.len(), 1);
    }

    #[test]
    fn time_based_straggler_reissued_exactly_once() {
        // Fragment 0's first execution stalls; the other fragments finish
        // fast, the pool drains, and the idle leader receives a duplicate
        // copy of the stalled task, which completes immediately. When the
        // stalled original eventually finishes too, its completion is
        // suppressed: every fragment is credited exactly once.
        let frags = water_dimer_workload(10);
        let first = AtomicUsize::new(0);
        let report = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags)),
            |f| {
                if f.id == 0 && first.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
                true
            },
            RuntimeConfig {
                n_leaders: 2,
                workers_per_leader: 1,
                prefetch: false,
                recovery: RecoveryPolicy {
                    straggler_factor: Some(5.0),
                    ..RecoveryPolicy::default()
                },
                faults: FaultPlan::none(),
            },
        );
        assert_eq!(report.fragments_done, 10);
        assert!(report.reissues >= 1, "idle leader should have received a straggler copy");
        assert!(
            report.duplicates_suppressed >= 1,
            "the slow original must be suppressed when it finally completes"
        );
        assert_eq!(
            report.tasks_executed, 10,
            "exactly-once: duplicates must not inflate tasks_executed"
        );
        assert_eq!(report.retries, 0, "a straggler re-issue is not a retry");
    }

    #[test]
    fn permanent_failure_is_quarantined_without_hanging() {
        let frags = water_dimer_workload(8);
        let report = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags)),
            |_| true,
            RuntimeConfig {
                n_leaders: 2,
                workers_per_leader: 1,
                prefetch: true,
                recovery: RecoveryPolicy {
                    max_attempts: 2,
                    backoff_base: 1e-4,
                    straggler_factor: None,
                },
                faults: FaultPlan::none().permanent([3]),
            },
        );
        assert_eq!(report.fragments_done, 7);
        assert_eq!(report.quarantined_fragments, vec![3]);
        assert_eq!(report.retries, 1, "max_attempts=2 means exactly one retry before quarantine");
        assert_eq!(report.unfinished_fragments, 0);
        assert!(!report.is_complete());
        assert_eq!(report.tasks_executed, 7);
    }

    #[test]
    fn dead_leader_bounces_work_to_survivors() {
        let frags = water_dimer_workload(12);
        let report = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags)),
            |_| true,
            RuntimeConfig {
                n_leaders: 2,
                workers_per_leader: 1,
                prefetch: true,
                recovery: RecoveryPolicy::default(),
                faults: FaultPlan::none().kill_leader_after(0, 1),
            },
        );
        assert_eq!(report.fragments_done, 12, "the surviving leader must absorb the work");
        assert_eq!(report.leaders_died, 1);
        assert!(report.quarantined_fragments.is_empty());
        assert_eq!(report.unfinished_fragments, 0);
    }

    #[test]
    fn all_leaders_dead_returns_partial_instead_of_hanging() {
        let frags = water_dimer_workload(6);
        let report = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags)),
            |_| true,
            RuntimeConfig {
                n_leaders: 1,
                workers_per_leader: 1,
                prefetch: false,
                recovery: RecoveryPolicy::default(),
                faults: FaultPlan::none().kill_leader_after(0, 2),
            },
        );
        assert_eq!(report.leaders_died, 1);
        assert_eq!(report.fragments_done, 2);
        assert_eq!(report.unfinished_fragments, 4);
        assert!(!report.is_complete());
    }

    #[test]
    fn busy_variation_metric() {
        let report = RunReport {
            makespan: 1.0,
            leader_busy: vec![0.9, 1.0, 1.1],
            tasks_executed: 3,
            fragments_done: 3,
            retries: 0,
            eager_retries: 0,
            stale_dropped: 0,
            reissues: 0,
            duplicates_suppressed: 0,
            quarantined_fragments: vec![],
            unfinished_fragments: 0,
            leaders_died: 0,
        };
        let (lo, hi) = report.busy_variation();
        assert!((lo + 0.1).abs() < 1e-12);
        assert!((hi - 0.1).abs() < 1e-12);
    }

    #[test]
    fn balanced_leaders_under_size_sensitive_policy() {
        // Many uneven fragments across 4 leaders: busy times should agree
        // within a loose bound thanks to the shrinking-granularity tail.
        let frags = protein_workload(400, 7);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        let report = run_master_leader_worker(
            Box::new(policy),
            |f| {
                spin_for(f.cost() / 10.0);
                true
            },
            RuntimeConfig {
                n_leaders: 4,
                workers_per_leader: 1,
                prefetch: true,
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(report.fragments_done, 400);
        assert_eq!(report.retries, 0);
        // Wall-clock balance on a real machine is noisy (CI boxes run other
        // work); the *deterministic* balance property is asserted in the
        // simulator tests. Here we only require that no leader was starved
        // or hogged outright.
        let (lo, hi) = report.busy_variation();
        assert!(
            lo > -0.95 && hi < 2.0,
            "leader busy times pathologically unbalanced: {lo:+.2}..{hi:+.2}"
        );
        assert!(report.leader_busy.iter().all(|&b| b > 0.0), "a leader was starved");
    }
}
