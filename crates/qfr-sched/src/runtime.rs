//! The real master/leader/worker runtime on OS threads (Fig. 3).
//!
//! - The **master** owns the scheduling policy and serves task-assignment
//!   requests over crossbeam channels (the `leader-available` /
//!   `task-assignment` signals of Fig. 4(a)).
//! - Each **leader** pulls tasks, partitions every fragment's displacement
//!   set statically across its **workers** (scoped threads), and reports
//!   completion or failure back to the master.
//! - **Prefetching** (Fig. 4(d)): a leader requests its next task while the
//!   current one is still executing, hiding the master round-trip.
//! - **Re-queueing**: a failed task (the stand-in for the paper's
//!   "processed for a long time but not yet completed") goes back to the
//!   pool and is eventually served to another leader.

use crate::balancer::Policy;
use crate::task::{FragmentWorkItem, Task};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::time::Instant;

/// Runtime shape.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of leader threads.
    pub n_leaders: usize,
    /// Worker threads per leader (static displacement partitioning).
    pub workers_per_leader: usize,
    /// Whether leaders prefetch their next task.
    pub prefetch: bool,
    /// Time-based straggler re-issue (the paper's "processed for a long
    /// time but not yet completed" rule): when an idle leader asks for work
    /// and the pool is empty, any in-flight task older than
    /// `factor × mean completed-task duration` is re-issued to the idle
    /// leader. The first finisher wins; duplicate completions are
    /// deduplicated. `None` disables the mechanism.
    pub straggler_factor: Option<f64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self { n_leaders: 4, workers_per_leader: 2, prefetch: true, straggler_factor: None }
    }
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock seconds from first dispatch to last completion.
    pub makespan: f64,
    /// Per-leader busy seconds (executing fragments).
    pub leader_busy: Vec<f64>,
    /// Tasks executed to completion (including re-executions).
    pub tasks_executed: usize,
    /// Distinct fragments completed successfully.
    pub fragments_done: usize,
    /// Tasks re-queued after a failure.
    pub requeues: usize,
}

impl RunReport {
    /// Relative busy-time deviation range across leaders
    /// `((min-mean)/mean, (max-mean)/mean)` — the Fig. 8 metric.
    pub fn busy_variation(&self) -> (f64, f64) {
        let mean = self.leader_busy.iter().sum::<f64>() / self.leader_busy.len().max(1) as f64;
        if mean <= 0.0 {
            return (0.0, 0.0);
        }
        let min = self.leader_busy.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.leader_busy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        ((min - mean) / mean, (max - mean) / mean)
    }
}

/// A leader's task mailbox (`None` = shut down).
type TaskChannel = (Sender<Option<Task>>, Receiver<Option<Task>>);

enum MasterMsg {
    Available { leader: usize },
    Completed { task_id: u32, seconds: f64 },
    Failed { task: Task },
}

/// Runs a workload through the three-level hierarchy.
///
/// `workload` processes one fragment (one displacement partition is handled
/// internally by the leader's workers) and returns `true` on success. A
/// `false` fails the whole task, which the master re-queues; re-executions
/// call the workload again, so an intermittent failure eventually succeeds.
pub fn run_master_leader_worker<F>(
    mut policy: Box<dyn Policy>,
    workload: F,
    cfg: RuntimeConfig,
) -> RunReport
where
    F: Fn(&FragmentWorkItem) -> bool + Sync,
{
    assert!(cfg.n_leaders > 0 && cfg.workers_per_leader > 0);
    let (to_master, master_rx): (Sender<MasterMsg>, Receiver<MasterMsg>) = unbounded();
    // Unbounded so the master's final None broadcast can never block.
    let leader_channels: Vec<TaskChannel> = (0..cfg.n_leaders).map(|_| unbounded()).collect();

    let busy: Vec<Mutex<f64>> = (0..cfg.n_leaders).map(|_| Mutex::new(0.0)).collect();
    let done_fragments = Mutex::new(std::collections::HashSet::<u32>::new());
    let stats = Mutex::new((0usize, 0usize)); // (tasks_executed, requeues)

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // ---------------- master ----------------
        let master_senders: Vec<Sender<Option<Task>>> =
            leader_channels.iter().map(|(s, _)| s.clone()).collect();
        let stats_ref = &stats;
        scope.spawn(move || {
            // Copies in flight per task id, plus the original issue time.
            let mut in_flight: std::collections::HashMap<u32, (Task, Instant, u32)> =
                std::collections::HashMap::new();
            let mut completed: std::collections::HashSet<u32> =
                std::collections::HashSet::new();
            let mut inflight_copies = 0usize;
            let mut waiting: Vec<usize> = Vec::new();
            let mut drained = false;
            let mut mean_acc = (0.0f64, 0usize); // (sum seconds, count)
            // Finds an in-flight task that has exceeded the straggler
            // age threshold.
            let find_straggler = |in_flight: &std::collections::HashMap<u32, (Task, Instant, u32)>,
                                  completed: &std::collections::HashSet<u32>,
                                  mean_acc: (f64, usize)|
             -> Option<u32> {
                let factor = cfg.straggler_factor?;
                if mean_acc.1 == 0 {
                    return None;
                }
                let mean = mean_acc.0 / mean_acc.1 as f64;
                in_flight
                    .iter()
                    // One duplicate at a time per task: the paper re-queues
                    // a straggler once, not into a duplicate storm.
                    .filter(|(id, (_, _, copies))| !completed.contains(id) && *copies < 2)
                    .find(|(_, (_, issued, _))| issued.elapsed().as_secs_f64() > factor * mean)
                    .map(|(&id, _)| id)
            };
            loop {
                // While leaders are parked and straggler detection is on,
                // poll with a timeout so aging tasks get re-issued without
                // waiting for another message.
                let msg = if !waiting.is_empty() && cfg.straggler_factor.is_some() {
                    match master_rx.recv_timeout(std::time::Duration::from_millis(2)) {
                        Ok(m) => Some(m),
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                        Err(_) => break,
                    }
                } else {
                    match master_rx.recv() {
                        Ok(m) => Some(m),
                        Err(_) => break,
                    }
                };
                match msg {
                    Some(MasterMsg::Available { leader }) => {
                        if let Some(task) = policy.next_task() {
                            inflight_copies += 1;
                            in_flight.insert(task.id, (task.clone(), Instant::now(), 1));
                            master_senders[leader].send(Some(task)).ok();
                        } else if inflight_copies == 0 {
                            drained = true;
                            master_senders[leader].send(None).ok();
                        } else {
                            waiting.push(leader);
                        }
                    }
                    Some(MasterMsg::Completed { task_id, seconds }) => {
                        inflight_copies -= 1;
                        if completed.insert(task_id) {
                            mean_acc.0 += seconds;
                            mean_acc.1 += 1;
                        }
                        if let Some(entry) = in_flight.get_mut(&task_id) {
                            entry.2 -= 1;
                            if entry.2 == 0 {
                                in_flight.remove(&task_id);
                            }
                        }
                    }
                    Some(MasterMsg::Failed { task }) => {
                        inflight_copies -= 1;
                        let already_done = completed.contains(&task.id);
                        if let Some(entry) = in_flight.get_mut(&task.id) {
                            entry.2 -= 1;
                            if entry.2 == 0 {
                                in_flight.remove(&task.id);
                            }
                        }
                        if !already_done {
                            stats_ref.lock().1 += 1;
                            policy.requeue(task);
                        }
                        // Serve a waiting leader if any.
                        if let Some(leader) = waiting.pop() {
                            if let Some(task) = policy.next_task() {
                                inflight_copies += 1;
                                in_flight.insert(task.id, (task.clone(), Instant::now(), 1));
                                master_senders[leader].send(Some(task)).ok();
                            } else {
                                waiting.push(leader);
                            }
                        }
                    }
                    None => {}
                }
                // Serve parked leaders with duplicate copies of stragglers
                // (the paper's "mark un-processed again" rule).
                while let Some(&leader) = waiting.last() {
                    let Some(straggler) = find_straggler(&in_flight, &completed, mean_acc)
                    else {
                        break;
                    };
                    waiting.pop();
                    let entry = in_flight.get_mut(&straggler).expect("just found");
                    entry.2 += 1;
                    inflight_copies += 1;
                    stats_ref.lock().1 += 1;
                    master_senders[leader].send(Some(entry.0.clone())).ok();
                }
                if drained || (inflight_copies == 0 && policy.remaining_fragments() == 0) {
                    // Release everyone and stop.
                    for s in &master_senders {
                        s.send(None).ok();
                    }
                    break;
                }
            }
        });

        // ---------------- leaders ----------------
        for (leader_id, (_, task_rx)) in leader_channels.iter().enumerate() {
            let to_master = to_master.clone();
            let task_rx = task_rx.clone();
            let workload = &workload;
            let busy_slot = &busy[leader_id];
            let done_ref = &done_fragments;
            let stats_ref = &stats;
            scope.spawn(move || {
                to_master.send(MasterMsg::Available { leader: leader_id }).ok();
                let mut pending: Option<Task> = None;
                loop {
                    let task = match pending.take() {
                        Some(t) => t,
                        None => match task_rx.recv() {
                            Ok(Some(t)) => t,
                            _ => break,
                        },
                    };
                    // Prefetch: ask for the next task before executing.
                    if cfg.prefetch {
                        to_master.send(MasterMsg::Available { leader: leader_id }).ok();
                    }
                    let start = Instant::now();
                    // Partition each fragment's work across the leader's
                    // workers: fragments of the task are split statically.
                    let results: Vec<(u32, bool)> = std::thread::scope(|ws| {
                        let chunks: Vec<&[FragmentWorkItem]> = task
                            .fragments
                            .chunks(task.fragments.len().div_ceil(cfg.workers_per_leader))
                            .collect();
                        let handles: Vec<_> = chunks
                            .into_iter()
                            .map(|chunk| {
                                ws.spawn(move || {
                                    chunk
                                        .iter()
                                        .map(|f| (f.id, workload(f)))
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
                    });
                    let seconds = start.elapsed().as_secs_f64();
                    *busy_slot.lock() += seconds;
                    let ok = results.iter().all(|&(_, s)| s);
                    if ok {
                        {
                            let mut done = done_ref.lock();
                            for (id, _) in &results {
                                done.insert(*id);
                            }
                        }
                        stats_ref.lock().0 += 1;
                        let task_id = task.id;
                        drop(task);
                        to_master.send(MasterMsg::Completed { task_id, seconds }).ok();
                    } else {
                        to_master.send(MasterMsg::Failed { task }).ok();
                    }
                    if !cfg.prefetch {
                        to_master.send(MasterMsg::Available { leader: leader_id }).ok();
                    } else if let Ok(Some(t)) = task_rx.try_recv() {
                        pending = Some(t);
                    }
                }
            });
        }
        drop(to_master);
    });

    let makespan = t0.elapsed().as_secs_f64();
    let (tasks_executed, requeues) = *stats.lock();
    let fragments_done = done_fragments.lock().len();
    RunReport {
        makespan,
        leader_busy: busy.iter().map(|b| *b.lock()).collect(),
        tasks_executed,
        fragments_done,
        requeues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{SizeSensitivePolicy, SortedSingletonPolicy};
    use crate::task::{protein_workload, water_dimer_workload};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn spin_for(cost: f64) {
        // Busy work proportional to cost (deterministic, ~microseconds).
        let iters = (cost * 40.0) as u64;
        let mut acc = 0.0_f64;
        for i in 0..iters {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
    }

    #[test]
    fn processes_every_fragment() {
        let frags = protein_workload(200, 1);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        let report = run_master_leader_worker(
            Box::new(policy),
            |f| {
                spin_for(f.cost() / 50.0);
                true
            },
            RuntimeConfig { n_leaders: 4, workers_per_leader: 2, prefetch: true, ..Default::default() },
        );
        assert_eq!(report.fragments_done, 200);
        assert_eq!(report.requeues, 0);
        assert!(report.tasks_executed > 0);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn failure_injection_requeues_and_recovers() {
        let frags = water_dimer_workload(60);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        // Fragment 7 fails on its first attempt only.
        let failures = AtomicUsize::new(0);
        let report = run_master_leader_worker(
            Box::new(policy),
            |f| {
                if f.id == 7 && failures.fetch_add(1, Ordering::SeqCst) == 0 {
                    return false;
                }
                true
            },
            RuntimeConfig { n_leaders: 3, workers_per_leader: 1, prefetch: false, ..Default::default() },
        );
        assert_eq!(report.fragments_done, 60, "all fragments recover");
        assert!(report.requeues >= 1, "the failure must trigger a requeue");
    }

    #[test]
    fn single_leader_single_worker() {
        let frags = water_dimer_workload(10);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        let report = run_master_leader_worker(
            Box::new(policy),
            |_| true,
            RuntimeConfig { n_leaders: 1, workers_per_leader: 1, prefetch: false, ..Default::default() },
        );
        assert_eq!(report.fragments_done, 10);
        assert_eq!(report.leader_busy.len(), 1);
    }

    #[test]
    fn time_based_straggler_reissued_to_idle_leader() {
        // Fragment 0's first execution stalls; the other fragments finish
        // fast, the pool drains, and the idle leader receives a duplicate
        // copy of the stalled task, which completes immediately.
        let frags = water_dimer_workload(10);
        let first = AtomicUsize::new(0);
        let report = run_master_leader_worker(
            Box::new(SortedSingletonPolicy::new(frags)),
            |f| {
                if f.id == 0 && first.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
                true
            },
            RuntimeConfig {
                n_leaders: 2,
                workers_per_leader: 1,
                prefetch: false,
                straggler_factor: Some(5.0),
            },
        );
        assert_eq!(report.fragments_done, 10);
        assert!(
            report.requeues >= 1,
            "idle leader should have received a straggler copy"
        );
        assert!(
            report.tasks_executed >= 11,
            "the duplicate must actually execute: {}",
            report.tasks_executed
        );
    }

    #[test]
    fn busy_variation_metric() {
        let report = RunReport {
            makespan: 1.0,
            leader_busy: vec![0.9, 1.0, 1.1],
            tasks_executed: 3,
            fragments_done: 3,
            requeues: 0,
        };
        let (lo, hi) = report.busy_variation();
        assert!((lo + 0.1).abs() < 1e-12);
        assert!((hi - 0.1).abs() < 1e-12);
    }

    #[test]
    fn balanced_leaders_under_size_sensitive_policy() {
        // Many uneven fragments across 4 leaders: busy times should agree
        // within a loose bound thanks to the shrinking-granularity tail.
        let frags = protein_workload(400, 7);
        let policy = SizeSensitivePolicy::with_defaults(frags);
        let report = run_master_leader_worker(
            Box::new(policy),
            |f| {
                spin_for(f.cost() / 10.0);
                true
            },
            RuntimeConfig { n_leaders: 4, workers_per_leader: 1, prefetch: true, ..Default::default() },
        );
        assert_eq!(report.fragments_done, 400);
        // Wall-clock balance on a real machine is noisy (CI boxes run other
        // work); the *deterministic* balance property is asserted in the
        // simulator tests. Here we only require that no leader was starved
        // or hogged outright.
        let (lo, hi) = report.busy_variation();
        assert!(
            lo > -0.95 && hi < 2.0,
            "leader busy times pathologically unbalanced: {lo:+.2}..{hi:+.2}"
        );
        assert!(report.leader_busy.iter().all(|&b| b > 0.0), "a leader was starved");
    }
}
