//! # qfr-sched
//!
//! The HPC runtime of QF-RAMAN (Section V of the paper), reproduced at two
//! levels of fidelity:
//!
//! - a **real shared-memory runtime** ([`runtime`]) with the paper's
//!   three-level master/leader/worker hierarchy on OS threads and crossbeam
//!   channels, including task prefetching and failure re-queueing;
//! - a **discrete-event cluster simulator** ([`simulator`]) that drives the
//!   *same* [`balancer`] policies at the paper's scales (750–96,000 nodes),
//!   regenerating the load-balance variance of Fig. 8 and the strong/weak
//!   scaling of Figs. 10–11 — the substitution for the inaccessible ORISE
//!   and Sunway machines (see DESIGN.md);
//! - the **system-size-sensitive load balancer** ([`balancer`], Fig. 4):
//!   largest fragments as singleton tasks, medium fragments packed to a
//!   target cost, and a shrinking-granularity tail that lets busy leaders
//!   finish together with idle ones;
//! - **elastic workload offloading** ([`offload`], Fig. 5): scattered small
//!   GEMMs gathered into stride-32 size-class batches, executed either on a
//!   real rayon "accelerator" or against a modeled accelerator with launch
//!   overheads, reproducing the profitability crossover;
//! - **machine models** ([`machine`]) of ORISE and the new Sunway for the
//!   Table I full-system extrapolations.

pub mod balancer;
pub mod machine;
pub mod offload;
pub mod runtime;
pub mod simulator;
pub mod task;

pub use balancer::{Policy, RandomPolicy, RoundRobinPolicy, SizeSensitivePolicy, SortedSingletonPolicy};
pub use machine::MachineModel;
pub use offload::{offload_comparison, CpuAccelerator, ModeledAccelerator, OffloadReport};
pub use runtime::{run_master_leader_worker, RunReport, RuntimeConfig};
pub use simulator::{simulate, SimConfig, SimReport};
pub use task::{cost_model, FragmentWorkItem, Task};
