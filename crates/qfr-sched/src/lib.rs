//! # qfr-sched
//!
//! The HPC runtime of QF-RAMAN (Section V of the paper), reproduced at two
//! levels of fidelity:
//!
//! - a **real shared-memory runtime** ([`runtime`]) with the paper's
//!   three-level master/leader/worker hierarchy on OS threads and crossbeam
//!   channels, including task prefetching and fault recovery;
//! - a **discrete-event cluster simulator** ([`simulator`]) that drives the
//!   *same* [`balancer`] policies at the paper's scales (750–96,000 nodes),
//!   regenerating the load-balance variance of Fig. 8 and the strong/weak
//!   scaling of Figs. 10–11 — the substitution for the inaccessible ORISE
//!   and Sunway machines (see DESIGN.md);
//! - a **deterministic fault-injection layer** ([`fault`]) shared by both
//!   executors: a seedable [`FaultPlan`] of per-attempt failure
//!   probabilities, injected straggler latency, and leader-death schedules,
//!   plus the [`RecoveryPolicy`] governing retries and re-issue;
//! - the **system-size-sensitive load balancer** ([`balancer`], Fig. 4):
//!   largest fragments as singleton tasks, medium fragments packed to a
//!   target cost, and a shrinking-granularity tail that lets busy leaders
//!   finish together with idle ones;
//! - **elastic workload offloading** ([`offload`], Fig. 5): scattered small
//!   GEMMs gathered into stride-32 size-class batches, executed either on a
//!   real rayon "accelerator" or against a modeled accelerator with launch
//!   overheads, reproducing the profitability crossover;
//! - **machine models** ([`machine`]) of ORISE and the new Sunway for the
//!   Table I full-system extrapolations.
//!
//! # Recovery-semantics contract
//!
//! Both executors implement the same recovery contract (defined in detail
//! in [`fault`]):
//!
//! 1. **Eager retry with exponential backoff** — a failed attempt `a` of a
//!    task re-queues it at attempt `a + 1` after `backoff_base * 2^a`, held
//!    in a master-side delay queue (never through [`Policy::requeue`]). The
//!    retry is scheduled at the *first* failed copy of the attempt; every
//!    acknowledgement carries an `(attempt, copy)` tag, and stale acks of a
//!    concluded attempt are dropped (`stale_dropped` in the reports)
//!    instead of corrupting the current attempt's bookkeeping.
//! 2. **Quarantine** — after [`RecoveryPolicy::max_attempts`] failed
//!    attempts the task's fragments are reported as
//!    `quarantined_fragments` in the run report; the run completes with a
//!    partial result instead of hanging.
//! 3. **Straggler re-issue** (on by default) — an idle leader duplicates an
//!    in-flight task older than `straggler_factor x` the mean completed
//!    duration; at most two copies of an attempt exist at once.
//! 4. **Exactly-once crediting** — the first successful copy wins;
//!    `tasks_executed`, `fragments_done` and busy time count each fragment
//!    exactly once, and losers only increment `duplicates_suppressed`.
//! 5. **Conservation** — every run satisfies (and asserts)
//!    `fragments_done + quarantined + unfinished == distinct input
//!    fragments`.
//!
//! Because injected failures are pure functions of `(fragment, attempt)`,
//! the retry/eager-retry/quarantine counters of both executors match
//! [`FaultPlan::forecast`] exactly for the same plan and decomposition.

#![forbid(unsafe_code)]

pub mod balancer;
pub mod fault;
pub mod machine;
pub mod offload;
pub mod pool;
pub mod runtime;
pub mod simulator;
pub mod task;

pub use balancer::{
    Policy, RandomPolicy, RoundRobinPolicy, SizeSensitivePolicy, SortedSingletonPolicy,
};
pub use fault::{FaultForecast, FaultPlan, RecoveryPolicy};
pub use machine::MachineModel;
pub use offload::{offload_comparison, CpuAccelerator, ModeledAccelerator, OffloadReport};
pub use pool::WorkerPool;
pub use runtime::{run_master_leader_worker, RunReport, RuntimeConfig};
pub use simulator::{simulate, SimConfig, SimReport};
pub use task::{cost_model, shard_range_workload, FragmentWorkItem, Task};
