//! Deterministic fault injection and the recovery policy.
//!
//! The paper's production runs ride on machines where node failure and
//! stragglers are routine (Section V-C: tasks "processed for a long time
//! but not yet completed" are re-queued). To exercise that machinery
//! reproducibly, this module defines a **seedable fault plan** that both
//! executors — the threaded [`crate::runtime`] and the discrete-event
//! [`crate::simulator`] — consult through pure functions of
//! `(fragment, attempt)` / `(task, attempt, copy)`. Because the decisions
//! depend only on the plan and those indices, never on wall-clock or
//! thread interleaving, a fixed plan produces the *same* failure/retry/
//! quarantine trajectory in both executors, and [`FaultPlan::forecast`]
//! can predict the recovery counters exactly.
//!
//! # Recovery semantics (the contract both executors implement)
//!
//! - **Attempts**: execution attempt `a` of a task fails iff any of its
//!   fragments fails at attempt `a` ([`FaultPlan::fragment_fails`]) or the
//!   user workload reports failure. Attempts are numbered from 0 per task.
//! - **Eager retry with backoff**: a failed attempt `a` re-queues the task
//!   with attempt `a + 1` after a delay of `backoff_base * 2^a`, unless
//!   `a + 1 == max_attempts`. The retry is scheduled at the *first* failed
//!   copy of the attempt: failure is pure in `(fragment, attempt)`, so
//!   every other copy of the attempt is doomed and waiting for it would
//!   only delay recovery. Acknowledgements carry an `(attempt, copy)` tag,
//!   and the master drops any whose attempt no longer matches the in-flight
//!   entry (a stale straggler copy of a concluded attempt).
//! - **Quarantine**: a task whose `max_attempts` attempts all failed is
//!   quarantined — its fragments are reported in the run report instead of
//!   being retried forever (or hanging the run).
//! - **Straggler re-issue**: when a leader is idle, the pool is empty, and
//!   an in-flight task is older than `straggler_factor x` the mean
//!   completed-task duration, a *duplicate copy* of the same attempt is
//!   issued to the idle leader. The first successful copy wins; the
//!   loser's completion is suppressed, so `tasks_executed`,
//!   `fragments_done` and busy time count each fragment exactly once.
//! - **Leader death**: a leader scheduled to die stops executing after
//!   completing its quota; any assignment it still receives bounces back
//!   to the master and is re-dispatched (same attempt — a dead leader is
//!   not the task's fault).

use crate::task::Task;
use std::collections::{BTreeMap, BTreeSet};

const SALT_FAILURE: u64 = 0x517cc1b727220a95;
const SALT_LATENCY: u64 = 0x2545f4914f6cdd1d;

/// A deterministic, seedable plan of injected faults.
///
/// The default plan ([`FaultPlan::none`]) injects nothing; executors then
/// behave exactly like the fault-free runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-decision hash.
    pub seed: u64,
    /// Probability that one fragment execution attempt fails.
    pub failure_rate: f64,
    /// Fragments that fail on *every* attempt (drive quarantine).
    pub permanent_failures: BTreeSet<u32>,
    /// Probability that a task copy gets its execution stretched.
    pub straggler_rate: f64,
    /// Execution-time multiplier applied to stretched copies.
    pub straggler_multiplier: f64,
    /// Leader index → number of tasks after which that leader dies.
    pub leader_deaths: BTreeMap<usize, usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        Self {
            seed: 0,
            failure_rate: 0.0,
            permanent_failures: BTreeSet::new(),
            straggler_rate: 0.0,
            straggler_multiplier: 1.0,
            leader_deaths: BTreeMap::new(),
        }
    }

    /// Plan with only a per-attempt fragment failure probability.
    pub fn with_failure_rate(seed: u64, failure_rate: f64) -> Self {
        Self { seed, failure_rate, ..Self::none() }
    }

    /// Plan whose per-attempt fragment failure probability is derived from
    /// a machine's MTBF: the expected number of node failures over a run of
    /// `run_hours` is spread uniformly over the `n_tasks` task attempts, so
    /// `failure_rate = nodes * node_failure_probability(run_hours) /
    /// n_tasks`, clamped to `[0, 1]`. This is how the fault ablations tie
    /// injected failures to the paper's machines instead of hand-picked
    /// rates.
    pub fn from_machine(
        machine: &crate::machine::MachineModel,
        run_hours: f64,
        n_tasks: usize,
        seed: u64,
    ) -> Self {
        assert!(n_tasks > 0, "cannot spread failures over zero tasks");
        let expected_failures = machine.nodes as f64 * machine.node_failure_probability(run_hours);
        let rate = (expected_failures / n_tasks as f64).clamp(0.0, 1.0);
        Self::with_failure_rate(seed, rate)
    }

    /// Plan with only straggler latency injection.
    pub fn with_stragglers(seed: u64, rate: f64, multiplier: f64) -> Self {
        Self { seed, straggler_rate: rate, straggler_multiplier: multiplier, ..Self::none() }
    }

    /// Adds straggler latency injection to an existing plan.
    pub fn stragglers(mut self, rate: f64, multiplier: f64) -> Self {
        self.straggler_rate = rate;
        self.straggler_multiplier = multiplier;
        self
    }

    /// Adds fragments that fail every attempt.
    pub fn permanent(mut self, fragments: impl IntoIterator<Item = u32>) -> Self {
        self.permanent_failures.extend(fragments);
        self
    }

    /// Schedules `leader` to die after completing `tasks` tasks.
    pub fn kill_leader_after(mut self, leader: usize, tasks: usize) -> Self {
        self.leader_deaths.insert(leader, tasks);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.failure_rate > 0.0
            || !self.permanent_failures.is_empty()
            || (self.straggler_rate > 0.0 && self.straggler_multiplier > 1.0)
            || !self.leader_deaths.is_empty()
    }

    /// Uniform deterministic value in `[0, 1)` for one decision.
    fn unit(&self, salt: u64, a: u64, b: u64) -> f64 {
        let mut x = self
            .seed
            .wrapping_add(salt)
            .wrapping_add(a.wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add(b.wrapping_mul(0xbf58476d1ce4e5b9));
        // SplitMix64 finalizer.
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether attempt `attempt` of fragment `fragment` fails. Pure in its
    /// arguments — identical for every copy of the attempt, in every
    /// executor.
    pub fn fragment_fails(&self, fragment: u32, attempt: u32) -> bool {
        if self.permanent_failures.contains(&fragment) {
            return true;
        }
        self.failure_rate > 0.0
            && self.unit(SALT_FAILURE, fragment as u64, attempt as u64) < self.failure_rate
    }

    /// Whether attempt `attempt` of `task` fails (any fragment fails).
    pub fn task_fails(&self, task: &Task, attempt: u32) -> bool {
        task.fragments.iter().any(|f| self.fragment_fails(f.id, attempt))
    }

    /// Execution-time multiplier for copy `copy` of attempt `attempt` of
    /// task `task_id` (≥ 1). Keyed on the copy index so a straggler
    /// re-issue of a stretched copy can run clean — injected latency
    /// models a slow *node*, not an expensive task.
    pub fn latency_multiplier(&self, task_id: u32, attempt: u32, copy: u32) -> f64 {
        if self.straggler_rate <= 0.0 || self.straggler_multiplier <= 1.0 {
            return 1.0;
        }
        let key = (task_id as u64) << 20 | (attempt as u64) << 8 | copy as u64;
        if self.unit(SALT_LATENCY, key, 0) < self.straggler_rate {
            self.straggler_multiplier
        } else {
            1.0
        }
    }

    /// Number of tasks after which `leader` dies, if scheduled.
    pub fn death_after(&self, leader: usize) -> Option<usize> {
        self.leader_deaths.get(&leader).copied()
    }

    /// Predicts the failure/retry/quarantine trajectory for a concrete
    /// task decomposition: because failure decisions are pure in
    /// `(fragment, attempt)`, the number of failing leading attempts of
    /// each task — and hence the retry and quarantine counters — is a
    /// function of the plan alone. Both executors must match this exactly.
    pub fn forecast(&self, tasks: &[Task], recovery: &RecoveryPolicy) -> FaultForecast {
        let mut retries = 0usize;
        let mut quarantined: Vec<u32> = Vec::new();
        for task in tasks {
            let failing =
                (0..recovery.max_attempts).take_while(|&a| self.task_fails(task, a)).count() as u32;
            if failing == recovery.max_attempts {
                retries += recovery.max_attempts.saturating_sub(1) as usize;
                quarantined.extend(task.fragments.iter().map(|f| f.id));
            } else {
                retries += failing as usize;
            }
        }
        quarantined.sort_unstable();
        FaultForecast { retries, eager_retries: retries, quarantined_fragments: quarantined }
    }
}

/// Deterministic prediction of the recovery counters for a task list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultForecast {
    /// Total failure-triggered re-queues across all tasks.
    pub retries: usize,
    /// Retries scheduled at the first failed copy of an attempt. The
    /// executors always retry eagerly, so this equals
    /// [`FaultForecast::retries`]; it is forecast separately so a future
    /// opt-out (retry only after every copy reports) can diverge them
    /// without changing the executors' report shape.
    pub eager_retries: usize,
    /// Fragment ids that end up quarantined (sorted).
    pub quarantined_fragments: Vec<u32>,
}

/// How the executors recover from failures and stragglers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Total execution attempts per task before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Base re-queue delay after attempt 0 fails; doubles per attempt
    /// (seconds in the threaded runtime, time units in the simulator).
    pub backoff_base: f64,
    /// Straggler re-issue threshold: an in-flight task older than
    /// `factor x` the mean completed-task duration is duplicated to an
    /// idle leader. `None` disables re-issue. **On by default.**
    pub straggler_factor: Option<f64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, backoff_base: 1e-3, straggler_factor: Some(4.0) }
    }
}

impl RecoveryPolicy {
    /// Re-queue delay after attempt `attempt` failed: `base * 2^attempt`.
    pub fn backoff_after(&self, attempt: u32) -> f64 {
        self.backoff_base * f64::from(1u32 << attempt.min(16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::FragmentWorkItem;

    fn singleton_tasks(n: u32) -> Vec<Task> {
        (0..n).map(|i| Task { id: i, fragments: vec![FragmentWorkItem::new(i, 6)] }).collect()
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(!p.fragment_fails(0, 0));
        assert_eq!(p.latency_multiplier(0, 0, 0), 1.0);
        assert_eq!(p.death_after(3), None);
        let f = p.forecast(&singleton_tasks(10), &RecoveryPolicy::default());
        assert_eq!(f.retries, 0);
        assert_eq!(f.eager_retries, 0);
        assert!(f.quarantined_fragments.is_empty());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::with_failure_rate(7, 0.5);
        let b = FaultPlan::with_failure_rate(7, 0.5);
        let c = FaultPlan::with_failure_rate(8, 0.5);
        let same = (0..200u32).all(|f| a.fragment_fails(f, 0) == b.fragment_fails(f, 0));
        assert!(same, "same seed must give identical decisions");
        let diff = (0..200u32).any(|f| a.fragment_fails(f, 0) != c.fragment_fails(f, 0));
        assert!(diff, "different seeds must give different decisions");
    }

    #[test]
    fn failure_rate_is_roughly_respected() {
        let p = FaultPlan::with_failure_rate(3, 0.3);
        let n = 10_000u32;
        let fails = (0..n).filter(|&f| p.fragment_fails(f, 0)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn attempts_are_independent_decisions() {
        let p = FaultPlan::with_failure_rate(5, 0.5);
        let varied = (0..100u32).any(|f| p.fragment_fails(f, 0) != p.fragment_fails(f, 1));
        assert!(varied, "attempt index must enter the decision");
    }

    #[test]
    fn permanent_failures_always_fail() {
        let p = FaultPlan::none().permanent([4, 9]);
        assert!(p.is_active());
        for a in 0..10 {
            assert!(p.fragment_fails(4, a));
            assert!(p.fragment_fails(9, a));
            assert!(!p.fragment_fails(5, a));
        }
    }

    #[test]
    fn forecast_matches_manual_walk() {
        let p = FaultPlan::with_failure_rate(11, 0.4).permanent([2]);
        let rec = RecoveryPolicy { max_attempts: 3, ..Default::default() };
        let tasks = singleton_tasks(50);
        let f = p.forecast(&tasks, &rec);
        let mut retries = 0;
        let mut quarantined = Vec::new();
        for t in &tasks {
            let mut a = 0;
            while a < 3 && p.task_fails(t, a) {
                a += 1;
            }
            if a == 3 {
                retries += 2;
                quarantined.push(t.id);
            } else {
                retries += a as usize;
            }
        }
        assert_eq!(f.retries, retries);
        assert_eq!(f.eager_retries, retries, "every retry is eager under the protocol");
        assert_eq!(f.quarantined_fragments, quarantined);
        assert!(f.quarantined_fragments.contains(&2), "permanent failure must quarantine");
    }

    #[test]
    fn latency_copies_differ() {
        let p = FaultPlan::with_stragglers(1, 0.5, 10.0);
        let differs =
            (0..100u32).any(|t| p.latency_multiplier(t, 0, 0) != p.latency_multiplier(t, 0, 1));
        assert!(differs, "copy index must enter the latency decision");
        let hit = (0..100u32).filter(|&t| p.latency_multiplier(t, 0, 0) > 1.0).count();
        assert!((30..70).contains(&hit), "stretch rate wildly off: {hit}/100");
    }

    #[test]
    fn backoff_doubles() {
        let r = RecoveryPolicy { backoff_base: 0.5, ..Default::default() };
        assert_eq!(r.backoff_after(0), 0.5);
        assert_eq!(r.backoff_after(1), 1.0);
        assert_eq!(r.backoff_after(2), 2.0);
    }

    #[test]
    fn from_machine_pins_mtbf_conversion() {
        // ORISE: 6_000 nodes, MTBF 50_000 h. Over a 2 h run with 10_000
        // tasks the rate must equal
        // nodes * (1 - exp(-h/mtbf)) / n_tasks exactly.
        let m = crate::machine::MachineModel::orise();
        let p = FaultPlan::from_machine(&m, 2.0, 10_000, 42);
        let expect = 6_000.0 * (1.0 - (-2.0_f64 / 50_000.0).exp()) / 10_000.0;
        assert_eq!(p.failure_rate, expect);
        assert_eq!(p.seed, 42);
        assert!(p.is_active());
        // Sanity on magnitude: ~0.0024% per task attempt.
        assert!((expect - 2.4e-5).abs() < 1e-6, "rate {expect}");
        // A pathological run length cannot push the rate above 1.
        let extreme = FaultPlan::from_machine(&m, 1e9, 1, 0);
        assert!(extreme.failure_rate <= 1.0);
    }

    #[test]
    fn leader_death_schedule() {
        let p = FaultPlan::none().kill_leader_after(1, 3).kill_leader_after(0, 5);
        assert!(p.is_active());
        assert_eq!(p.death_after(0), Some(5));
        assert_eq!(p.death_after(1), Some(3));
        assert_eq!(p.death_after(2), None);
    }
}
