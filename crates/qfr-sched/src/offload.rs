//! Elastic workload offloading (Section V-C, Fig. 5).
//!
//! The premise: each DFPT GEMM is far too small to offload alone (the paper
//! measures ~0.01 CPU-seconds per call, dwarfed by launch overhead), but
//! *batched* by stride-32 size class the aggregate becomes profitable.
//! This module evaluates both execution strategies:
//!
//! - [`CpuAccelerator`] executes jobs for real (rayon pool) and reports
//!   measured wall time — the scattered-host baseline. Since PR 6 it is
//!   also the *production* dispatch point: the DFPT response hot path
//!   gathers kernel-tagged [`BatchJob`] streams and runs them through
//!   [`CpuAccelerator::execute_jobs`] (DESIGN.md §11);
//! - [`ModeledAccelerator`] prices executions against an accelerator cost
//!   model (launch overhead + FLOPs/rate + transfer bytes/bandwidth) built
//!   from a [`crate::machine::MachineModel`] — the substitution for the
//!   inaccessible GPUs (DESIGN.md);
//! - [`offload_comparison`] produces the scattered-vs-batched report behind
//!   the Fig. 9 elastic-offloading bars and the stride ablation.

use crate::machine::MachineModel;
use qfr_linalg::batch::{self, BatchGemmPlan, BatchJob, GemmJob, OffloadMode};
use qfr_linalg::{DMatrix, GemmPrecision};

/// Modeled host↔device traffic (operand + result bytes priced by the
/// accelerator cost model). Whole bytes, so the counter stays integral.
static OFFLOAD_BYTES_MOVED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("sched.offload.bytes_moved");

/// Kernel-tagged jobs actually *executed* through the offload dispatch
/// point (both modes) — the metrics gate pins this above zero so the real
/// offload path cannot silently fall out of the workload.
static OFFLOAD_EXECUTED_JOBS: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("sched.offload.executed_jobs");

/// Report of one scattered-vs-batched comparison.
#[derive(Debug, Clone, Copy)]
pub struct OffloadReport {
    /// Scattered execution cost (seconds; per-job launches).
    pub scattered_seconds: f64,
    /// Batched execution cost (seconds; one launch per size class).
    pub batched_seconds: f64,
    /// Number of jobs.
    pub jobs: usize,
    /// Number of batched launches (size classes).
    pub launches: usize,
    /// Padding FLOP overhead fraction introduced by the stride.
    pub padding_overhead: f64,
}

impl OffloadReport {
    /// Speedup of batching over scattered offloading.
    pub fn speedup(&self) -> f64 {
        if self.batched_seconds > 0.0 {
            self.scattered_seconds / self.batched_seconds
        } else {
            0.0
        }
    }
}

/// Real CPU execution with rayon: measures actual wall time.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuAccelerator;

impl CpuAccelerator {
    /// Executes GEMM jobs one at a time (scattered); returns results in
    /// job order plus wall seconds.
    pub fn execute_scattered(&self, jobs: &[GemmJob]) -> (Vec<DMatrix>, f64) {
        qfr_obs::timed("sched.offload.cpu_scattered", || batch::execute_scattered(jobs))
    }

    /// Executes GEMM jobs batched by size class; returns results in job
    /// order plus wall seconds.
    pub fn execute_batched(&self, jobs: &[GemmJob], stride: usize) -> (Vec<DMatrix>, f64) {
        qfr_obs::timed("sched.offload.cpu_batched", || batch::execute_batched(jobs, stride))
    }

    /// Executes jobs one at a time (scattered); returns wall seconds.
    pub fn scattered_seconds(&self, jobs: &[GemmJob]) -> f64 {
        self.execute_scattered(jobs).1
    }

    /// Executes jobs batched by size class; returns wall seconds.
    pub fn batched_seconds(&self, jobs: &[GemmJob], stride: usize) -> f64 {
        self.execute_batched(jobs, stride).1
    }

    /// Executes kernel-tagged jobs (GEMM + the SYRK/congruence family)
    /// under the given [`OffloadMode`]: the production dispatch point the
    /// DFPT response cycle routes through. Results come back in job-index
    /// order; both modes agree value for value.
    pub fn execute_jobs(&self, jobs: &[BatchJob], mode: OffloadMode) -> (Vec<DMatrix>, f64) {
        self.execute_jobs_prec(jobs, mode, GemmPrecision::F64)
    }

    /// [`Self::execute_jobs`] under an explicit [`GemmPrecision`] — the
    /// accelerator-side mixed-precision floor (DESIGN.md §15). Within one
    /// precision both offload modes still agree value for value.
    pub fn execute_jobs_prec(
        &self,
        jobs: &[BatchJob],
        mode: OffloadMode,
        prec: GemmPrecision,
    ) -> (Vec<DMatrix>, f64) {
        OFFLOAD_EXECUTED_JOBS.add(jobs.len() as u64);
        match mode {
            OffloadMode::Scattered => qfr_obs::timed("sched.offload.cpu_scattered", || {
                batch::execute_jobs_scattered_prec(jobs, prec)
            }),
            OffloadMode::Batched { stride } => qfr_obs::timed("sched.offload.cpu_batched", || {
                batch::execute_jobs_packed_prec(jobs, stride, prec)
            }),
        }
    }
}

/// Accelerator cost model: `launches · overhead + flops / rate +
/// bytes / bandwidth`, with the achieved rate degraded for small matrices
/// (low computational strength cannot saturate the device).
#[derive(Debug, Clone, Copy)]
pub struct ModeledAccelerator {
    /// Per-launch overhead (s).
    pub launch_overhead_s: f64,
    /// Peak FP64 TFLOPS.
    pub peak_tflops: f64,
    /// Host↔device bandwidth (GB/s).
    pub transfer_gbs: f64,
    /// Per-transfer setup latency (s) — the PCIe DMA setup cost the paper's
    /// *aggregated data transfer* optimization amortizes on ORISE.
    pub transfer_latency_s: f64,
    /// Aggregate all of a launch's operand blocks into one transfer
    /// (Section V-F, ORISE-only optimization).
    pub aggregated_transfer: bool,
    /// Overlap computation with data movement via double buffering + DMA
    /// (Section V-F, Sunway): transfer time hides behind compute,
    /// `t = max(compute, transfer)` instead of the sum.
    pub async_overlap: bool,
    /// Matrix dimension at which half the peak rate is achieved (the
    /// strength roofline knee).
    pub half_rate_dim: f64,
}

impl ModeledAccelerator {
    /// Builds the model from a machine description. The roofline knee is
    /// per-machine: Table I shows ORISE GPUs reaching ~54% of peak on this
    /// workload while Sunway's 384-core accelerators reach only ~30%, i.e.
    /// the same GEMM panels sit much further below Sunway's saturation
    /// point.
    pub fn from_machine(m: &MachineModel) -> Self {
        let sunway = m.name == "Sunway";
        Self {
            launch_overhead_s: m.launch_overhead_s,
            peak_tflops: m.accel_peak_tflops,
            transfer_gbs: m.transfer_gbs,
            transfer_latency_s: if sunway { 0.5e-6 } else { 8e-6 },
            // Section V-F: aggregated PCIe transfers on ORISE; on Sunway the
            // accelerator shares the host address space, and asynchronous
            // DMA double-buffering overlaps what movement remains.
            aggregated_transfer: !sunway,
            async_overlap: sunway,
            half_rate_dim: if sunway { 320.0 } else { 96.0 },
        }
    }

    /// Combines compute and transfer according to the async-overlap flag.
    fn combine(&self, compute: f64, transfer: f64) -> f64 {
        if self.async_overlap {
            compute.max(transfer)
        } else {
            compute + transfer
        }
    }

    /// Achieved rate for a characteristic matrix dimension `d`
    /// (saturating roofline: `peak · d / (d + half_rate_dim)`).
    pub fn achieved_tflops(&self, dim: f64) -> f64 {
        self.peak_tflops * dim / (dim + self.half_rate_dim)
    }

    fn job_bytes(job: &GemmJob) -> f64 {
        let (m, n) = job.out_shape();
        let k = job.a.cols();
        8.0 * (m * k + k * n + m * n) as f64
    }

    /// Modeled time for scattered execution: one launch per job, each at
    /// the rate its own size can achieve.
    pub fn scattered_seconds(&self, jobs: &[GemmJob]) -> f64 {
        let bytes: f64 = jobs.iter().map(Self::job_bytes).sum();
        OFFLOAD_BYTES_MOVED.add(bytes as u64);
        jobs.iter()
            .map(|job| {
                let (m, n) = job.out_shape();
                let k = job.a.cols();
                let dim = ((m * n * k) as f64).cbrt();
                let compute = job.flops() as f64 / (self.achieved_tflops(dim) * 1e12);
                let transfer =
                    self.transfer_latency_s + Self::job_bytes(job) / (self.transfer_gbs * 1e9);
                self.launch_overhead_s + self.combine(compute, transfer)
            })
            .sum()
    }

    /// Modeled time for batched execution: one launch per size class; the
    /// batch's *aggregate* work sets the achieved rate (this is exactly why
    /// batching pays: packed small GEMMs act like one big one), while
    /// padded FLOPs are charged in full.
    pub fn batched_seconds(&self, jobs: &[GemmJob], stride: usize) -> f64 {
        let plan = BatchGemmPlan::build(jobs, stride);
        let mut total = 0.0;
        for (class, indices) in plan.groups() {
            let batch_flops = class.padded_flops() as f64 * indices.len() as f64;
            // Effective dimension of the fused batch.
            let dim = batch_flops.cbrt() / 2.0_f64.cbrt();
            let bytes: f64 = indices.iter().map(|&i| Self::job_bytes(&jobs[i])).sum();
            OFFLOAD_BYTES_MOVED.add(bytes as u64);
            let compute = batch_flops / (self.achieved_tflops(dim) * 1e12);
            // Aggregated transfer (Section V-F): one DMA setup per launch
            // instead of one per operand block.
            let setups = if self.aggregated_transfer { 1.0 } else { indices.len() as f64 };
            let transfer = setups * self.transfer_latency_s + bytes / (self.transfer_gbs * 1e9);
            total += self.launch_overhead_s + self.combine(compute, transfer);
        }
        total
    }
}

/// Compares scattered vs batched offloading under the accelerator model.
pub fn offload_comparison(
    jobs: &[GemmJob],
    accel: &ModeledAccelerator,
    stride: usize,
) -> OffloadReport {
    let plan = BatchGemmPlan::build(jobs, stride);
    OffloadReport {
        scattered_seconds: accel.scattered_seconds(jobs),
        batched_seconds: accel.batched_seconds(jobs, stride),
        jobs: jobs.len(),
        launches: plan.launch_count(),
        padding_overhead: plan.padding_overhead(jobs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_linalg::DMatrix;

    fn sample(m: usize, n: usize, seed: u64) -> DMatrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        DMatrix::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    /// The paper's regime: many scattered small GEMMs of similar size.
    fn scattered_jobs(count: usize, dim: usize) -> Vec<GemmJob> {
        (0..count)
            .map(|i| GemmJob::new(sample(dim, dim, i as u64), sample(dim, dim, 1000 + i as u64)))
            .collect()
    }

    #[test]
    fn batching_profitable_for_small_gemms() {
        let jobs = scattered_jobs(256, 24);
        let accel = ModeledAccelerator::from_machine(&MachineModel::orise());
        let report = offload_comparison(&jobs, &accel, 32);
        assert!(
            report.speedup() > 2.0,
            "batching must pay off for tiny GEMMs: speedup {}",
            report.speedup()
        );
        assert_eq!(report.launches, 1, "uniform sizes collapse to one class");
        assert_eq!(report.jobs, 256);
    }

    #[test]
    fn batching_unprofitable_for_single_huge_gemm() {
        // One big GEMM gains nothing from batching (same launch count) and
        // can lose to padding.
        let jobs = vec![GemmJob::new(sample(500, 500, 1), sample(500, 500, 2))];
        let accel = ModeledAccelerator::from_machine(&MachineModel::orise());
        let report = offload_comparison(&jobs, &accel, 32);
        assert!(report.speedup() < 1.3, "no batch win expected: {}", report.speedup());
    }

    #[test]
    fn cpu_accelerator_runs_real_jobs() {
        let jobs = scattered_jobs(16, 16);
        let cpu = CpuAccelerator;
        let s = cpu.scattered_seconds(&jobs);
        let b = cpu.batched_seconds(&jobs, 32);
        assert!(s > 0.0 && b > 0.0);
    }

    #[test]
    fn cpu_accelerator_execute_variants_return_results() {
        let jobs = scattered_jobs(8, 12);
        let cpu = CpuAccelerator;
        let (rs, s) = cpu.execute_scattered(&jobs);
        let (rb, b) = cpu.execute_batched(&jobs, 32);
        assert!(s > 0.0 && b > 0.0);
        assert_eq!(rs.len(), jobs.len());
        for (a, b) in rs.iter().zip(&rb) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn cpu_accelerator_executes_tagged_jobs_both_modes() {
        let cpu = CpuAccelerator;
        let jobs = vec![
            BatchJob::gemm(sample(5, 7, 1), sample(7, 9, 2)),
            BatchJob::symmetric_product(sample(12, 6, 3), sample(12, 6, 3)),
            BatchJob::similarity(sample(6, 9, 4), {
                let mut m = sample(9, 9, 5);
                m.symmetrize_mut();
                m
            }),
        ];
        let before = OFFLOAD_EXECUTED_JOBS.get();
        let (scattered, _) = cpu.execute_jobs(&jobs, OffloadMode::Scattered);
        let (batched, _) = cpu.execute_jobs(&jobs, OffloadMode::Batched { stride: 32 });
        assert_eq!(OFFLOAD_EXECUTED_JOBS.get() - before, 2 * jobs.len() as u64);
        for (a, b) in scattered.iter().zip(&batched) {
            assert_eq!(a.as_slice(), b.as_slice(), "modes must agree bitwise");
        }
    }

    #[test]
    fn achieved_rate_saturates() {
        let accel = ModeledAccelerator::from_machine(&MachineModel::sunway());
        let small = accel.achieved_tflops(16.0);
        let large = accel.achieved_tflops(8.0 * accel.half_rate_dim);
        assert!(small < 0.2 * accel.peak_tflops);
        assert!(large > 0.85 * accel.peak_tflops);
        assert!(accel.achieved_tflops(96.0) > small && accel.achieved_tflops(96.0) < large);
        // The paper's Table I efficiencies: ORISE saturates much earlier.
        let orise = ModeledAccelerator::from_machine(&MachineModel::orise());
        assert!(orise.half_rate_dim < accel.half_rate_dim);
    }

    #[test]
    fn stride_tradeoff_monotonicity() {
        // Larger strides -> fewer launches but more padding waste.
        let mut jobs = scattered_jobs(64, 20);
        jobs.extend(scattered_jobs(64, 27));
        jobs.extend(scattered_jobs(64, 40));
        let accel = ModeledAccelerator::from_machine(&MachineModel::orise());
        let r8 = offload_comparison(&jobs, &accel, 8);
        let r32 = offload_comparison(&jobs, &accel, 32);
        let r128 = offload_comparison(&jobs, &accel, 128);
        assert!(r8.launches >= r32.launches);
        assert!(r32.launches >= r128.launches);
        assert!(r8.padding_overhead <= r32.padding_overhead + 1e-12);
        assert!(r32.padding_overhead <= r128.padding_overhead + 1e-12);
    }

    #[test]
    fn sunway_batches_cheaper_than_orise() {
        // Lower launch overhead + shared memory: the paper's reason the
        // aggregated-transfer optimization is ORISE-only.
        let jobs = scattered_jobs(128, 24);
        let orise = ModeledAccelerator::from_machine(&MachineModel::orise());
        let sunway = ModeledAccelerator::from_machine(&MachineModel::sunway());
        assert!(sunway.batched_seconds(&jobs, 32) < orise.batched_seconds(&jobs, 32));
    }

    #[test]
    fn aggregated_transfer_pays_on_orise() {
        let jobs = scattered_jobs(128, 24);
        let orise = ModeledAccelerator::from_machine(&MachineModel::orise());
        let mut no_agg = orise;
        no_agg.aggregated_transfer = false;
        assert!(
            orise.batched_seconds(&jobs, 32) < no_agg.batched_seconds(&jobs, 32),
            "aggregating 128 DMA setups into 1 must be faster"
        );
    }

    #[test]
    fn async_overlap_pays_on_sunway() {
        let jobs = scattered_jobs(128, 24);
        let sunway = ModeledAccelerator::from_machine(&MachineModel::sunway());
        let mut sync = sunway;
        sync.async_overlap = false;
        assert!(
            sunway.batched_seconds(&jobs, 32) <= sync.batched_seconds(&jobs, 32),
            "overlapping compute with DMA can only help"
        );
    }

    #[test]
    fn empty_jobs_are_free() {
        let accel = ModeledAccelerator::from_machine(&MachineModel::orise());
        let report = offload_comparison(&[], &accel, 32);
        assert_eq!(report.scattered_seconds, 0.0);
        assert_eq!(report.batched_seconds, 0.0);
        assert_eq!(report.speedup(), 0.0);
        assert_eq!(report.launches, 0);
    }
}
