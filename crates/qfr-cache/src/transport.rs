//! Response transport between members of a canonical equivalence class.
//!
//! Two fragments with the same canonical key agree in canonical
//! coordinates: `A_s (p_s − c_s) = A_r (p_r − c_r)` atom-for-atom through
//! the canonical order, where `A` stacks the frame axes as rows and `c` is
//! the centroid. The stored response is carried into the requesting frame
//! by the rotation `Q = A_rᵀ A_s` and the canonical-rank permutation:
//!
//! - Hessian atom blocks: `H_req = Q · H_stored · Qᵀ`,
//! - dipole derivatives (`3 × 3m`): `Q · B · Qᵀ` per atom block (both the
//!   dipole component index and the displacement index rotate),
//! - polarizability derivatives (`6 × 3m`): each compressed column block
//!   is expanded to the symmetric rank-3 object `T[a][b][c] = ∂α_ab/∂r_c`,
//!   rotated on all three indices, and re-compressed.
//!
//! Transported responses are numerically covariant (roundoff-level, not
//! bit-identical) — which is why near hits are opt-in while exact hits are
//! the default.

use qfr_fragment::{Canonical, FragmentResponse};
use qfr_geom::Vec3;
use qfr_linalg::DMatrix;

fn comp(v: Vec3, i: usize) -> f64 {
    match i {
        0 => v.x,
        1 => v.y,
        _ => v.z,
    }
}

/// `Q = A_reqᵀ · A_stored`: rotates stored-frame vectors into the
/// requesting frame.
fn rotation(stored: &Canonical, req: &Canonical) -> [[f64; 3]; 3] {
    let mut q = [[0.0; 3]; 3];
    for (i, row) in q.iter_mut().enumerate() {
        for (j, e) in row.iter_mut().enumerate() {
            *e = (0..3).map(|k| comp(req.axes[k], i) * comp(stored.axes[k], j)).sum();
        }
    }
    q
}

/// `Q · B · Qᵀ` for a `3 × 3` block.
fn rotate_block(q: &[[f64; 3]; 3], b: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let mut out = [[0.0; 3]; 3];
    for (a, row) in out.iter_mut().enumerate() {
        for (c, e) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (ap, brow) in b.iter().enumerate() {
                for (cp, &v) in brow.iter().enumerate() {
                    acc += q[a][ap] * q[c][cp] * v;
                }
            }
            *e = acc;
        }
    }
    out
}

/// Row index of the compressed symmetric-tensor layout (xx,yy,zz,xy,xz,yz).
fn sym_row(a: usize, b: usize) -> usize {
    match (a.min(b), a.max(b)) {
        (0, 0) => 0,
        (1, 1) => 1,
        (2, 2) => 2,
        (0, 1) => 3,
        (0, 2) => 4,
        _ => 5,
    }
}

/// Transports `stored`'s response into the requesting fragment's frame and
/// local atom order. `stored`/`req` must share a canonical key (same atom
/// count and canonical geometry); `n_atoms` is the fragment atom count.
pub fn transport_response(
    response: &FragmentResponse,
    stored: &Canonical,
    req: &Canonical,
    n_atoms: usize,
) -> FragmentResponse {
    assert_eq!(stored.key, req.key, "transport requires a shared canonical key");
    assert_eq!(stored.order.len(), n_atoms, "stored frame atom count");
    assert_eq!(req.order.len(), n_atoms, "requesting frame atom count");
    let q = rotation(stored, req);
    let dof = 3 * n_atoms;
    let mut hessian = DMatrix::zeros(dof, dof);
    let mut dmu = DMatrix::zeros(3, dof);
    let mut dalpha = DMatrix::zeros(6, dof);

    // perm: requester local atom index of canonical rank k is req.order[k],
    // the matching stored local atom is stored.order[k].
    for k in 0..n_atoms {
        let rk = req.order[k];
        let sk = stored.order[k];

        // Hessian blocks (rows of atom rk against every column atom).
        for l in 0..n_atoms {
            let rl = req.order[l];
            let sl = stored.order[l];
            let mut b = [[0.0; 3]; 3];
            for (a, row) in b.iter_mut().enumerate() {
                for (c, e) in row.iter_mut().enumerate() {
                    *e = response.hessian[(3 * sk + a, 3 * sl + c)];
                }
            }
            let rb = rotate_block(&q, &b);
            for (a, row) in rb.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    hessian[(3 * rk + a, 3 * rl + c)] = v;
                }
            }
        }

        // Dipole derivatives: component index × displacement index.
        let mut b = [[0.0; 3]; 3];
        for (a, row) in b.iter_mut().enumerate() {
            for (c, e) in row.iter_mut().enumerate() {
                *e = response.dmu[(a, 3 * sk + c)];
            }
        }
        let rb = rotate_block(&q, &b);
        for (a, row) in rb.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                dmu[(a, 3 * rk + c)] = v;
            }
        }

        // Polarizability derivatives: expand the 6 compressed rows of this
        // atom's column block to T[a][b][c], rotate all three indices,
        // re-compress.
        let mut t = [[[0.0; 3]; 3]; 3];
        for (a, plane) in t.iter_mut().enumerate() {
            for (b_i, row) in plane.iter_mut().enumerate() {
                for (c, e) in row.iter_mut().enumerate() {
                    *e = response.dalpha[(sym_row(a, b_i), 3 * sk + c)];
                }
            }
        }
        let mut tr = [[[0.0; 3]; 3]; 3];
        for (a, plane) in tr.iter_mut().enumerate() {
            for (b_i, row) in plane.iter_mut().enumerate() {
                for (c, e) in row.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (ap, p) in t.iter().enumerate() {
                        for (bp, r) in p.iter().enumerate() {
                            for (cp, &v) in r.iter().enumerate() {
                                acc += q[a][ap] * q[b_i][bp] * q[c][cp] * v;
                            }
                        }
                    }
                    *e = acc;
                }
            }
        }
        for a in 0..3 {
            for b_i in a..3 {
                for c in 0..3 {
                    dalpha[(sym_row(a, b_i), 3 * rk + c)] = tr[a][b_i][c];
                }
            }
        }
    }

    FragmentResponse { hessian, dalpha, dmu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{
        canonicalize, FragmentEngine, FragmentJob, FragmentStructure, JobKind, DEFAULT_KEY_TOL,
    };
    use qfr_geom::WaterBoxBuilder;
    use qfr_model::ForceFieldEngine;

    fn water_frag(n: usize, seed: u64, w: usize) -> FragmentStructure {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w },
            coefficient: 1.0,
            atoms: sys.water_atoms(w).to_vec(),
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    fn rigid_motion(
        frag: &FragmentStructure,
        axis: Vec3,
        angle: f64,
        shift: Vec3,
    ) -> FragmentStructure {
        let k = axis.normalized();
        let (s, c) = angle.sin_cos();
        let mut out = frag.clone();
        for p in &mut out.positions {
            let r = *p;
            *p = r * c + k.cross(r) * s + k * (k.dot(r) * (1.0 - c)) + shift;
        }
        out
    }

    /// The force-field engine is rotation-covariant (its energy is built
    /// from invariant internal coordinates), so a transported response
    /// must match a direct compute on the moved geometry to roundoff.
    #[test]
    fn transport_matches_direct_compute_under_rigid_motion() {
        let engine = ForceFieldEngine::new();
        let frag = water_frag(4, 7, 2);
        let moved =
            rigid_motion(&frag, Vec3::new(0.4, -1.1, 0.7), 0.93, Vec3::new(12.0, -5.0, 30.0));
        let stored_c = canonicalize(&frag, DEFAULT_KEY_TOL);
        let req_c = canonicalize(&moved, DEFAULT_KEY_TOL);
        assert_eq!(stored_c.key, req_c.key);
        let stored = engine.compute(&frag);
        let direct = engine.compute(&moved);
        let carried = transport_response(&stored, &stored_c, &req_c, frag.n_atoms());
        let scale = direct.hessian.max_abs().max(1.0);
        assert!(carried.hessian.max_abs_diff(&direct.hessian) < 1e-8 * scale);
        assert!(carried.dalpha.max_abs_diff(&direct.dalpha) < 1e-8);
        assert!(carried.dmu.max_abs_diff(&direct.dmu) < 1e-8);
    }

    /// Pure translation: Q is the identity up to roundoff, the permutation
    /// is trivial, and the transported response equals the stored one.
    #[test]
    fn translation_transport_is_near_exact() {
        let engine = ForceFieldEngine::new();
        let frag = water_frag(3, 8, 1);
        let mut moved = frag.clone();
        for p in &mut moved.positions {
            p.z += 42.0;
        }
        let stored_c = canonicalize(&frag, DEFAULT_KEY_TOL);
        let req_c = canonicalize(&moved, DEFAULT_KEY_TOL);
        let stored = engine.compute(&frag);
        let carried = transport_response(&stored, &stored_c, &req_c, frag.n_atoms());
        assert!(carried.hessian.max_abs_diff(&stored.hessian) < 1e-9);
        assert!(carried.dmu.max_abs_diff(&stored.dmu) < 1e-9);
    }

    /// Relabeled atoms: transport undoes the permutation.
    #[test]
    fn relabeling_transport_restores_local_order() {
        let engine = ForceFieldEngine::new();
        let frag = water_frag(3, 9, 0);
        // Swap the two hydrogens (local 1 and 2).
        let mut swapped = frag.clone();
        swapped.elements.swap(1, 2);
        swapped.positions.swap(1, 2);
        swapped.global_map.swap(1, 2);
        for b in &mut swapped.bonds {
            for e in [&mut b.i, &mut b.j] {
                *e = match *e {
                    1 => 2,
                    2 => 1,
                    other => other,
                };
            }
        }
        let stored_c = canonicalize(&frag, DEFAULT_KEY_TOL);
        let req_c = canonicalize(&swapped, DEFAULT_KEY_TOL);
        assert_eq!(stored_c.key, req_c.key);
        let stored = engine.compute(&frag);
        let direct = engine.compute(&swapped);
        let carried = transport_response(&stored, &stored_c, &req_c, frag.n_atoms());
        let scale = direct.hessian.max_abs().max(1.0);
        assert!(carried.hessian.max_abs_diff(&direct.hessian) < 1e-8 * scale);
        assert!(carried.dalpha.max_abs_diff(&direct.dalpha) < 1e-8);
        assert!(carried.dmu.max_abs_diff(&direct.dmu) < 1e-8);
    }
}
