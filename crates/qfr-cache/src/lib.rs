//! # qfr-cache
//!
//! Content-addressed fragment result cache. The paper's workloads are
//! dominated by millions of near-identical fragments (§VI-A: ~33M water
//! monomers and 128M water–water pairs in the 101M-atom box); this crate
//! lets one response be computed once and substituted for every equivalent
//! fragment, within a run (shared across scheduler workers and concurrent
//! spectrum requests) and across runs (checkpoints pre-warm a cache slice).
//!
//! ## Keys and substitution guarantees
//!
//! Entries are stored under the fragment's **exact key**
//! ([`qfr_fragment::exact_key`]): element kinds, link-hydrogen flags,
//! bonds, and the raw position bits in local order. Two fragments with the
//! same exact key get bit-identical responses from any deterministic
//! engine, so an exact hit substitutes without any tolerance argument —
//! cached spectra are bit-identical to uncached ones.
//!
//! With [`CacheConfig::near_hits`] enabled, a miss falls back to the
//! **canonical key** ([`qfr_fragment::canonical_key`]): fragments equal up
//! to rigid motion, relabeling, and sub-tolerance noise share it. The
//! stored response is transported into the requesting frame (rotation +
//! canonical-rank permutation, see [`transport`]) — numerically covariant
//! but *not* bit-identical, so near mode is opt-in and off by default.
//!
//! ## Single-compute semantics and counter determinism
//!
//! A miss installs a *pending* slot before computing; concurrent requests
//! for the same key block on it and count as hits once it resolves. Misses
//! are therefore exactly the number of distinct exact keys computed, and
//! `cache.hits`/`cache.misses`/`cache.bytes` are pure functions of the
//! workload — safe for the CI metrics gate — provided the working set fits
//! in `max_bytes` (evictions re-introduce misses in arrival order, which
//! is timing-dependent under parallelism) and near mode is off (a near hit
//! replaces a miss depending on arrival order; `cache.near_hits` is
//! timing-sensitive for the same reason).

#![forbid(unsafe_code)]

pub mod transport;

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use qfr_fragment::{canonicalize, exact_key, Canonical, FragmentStructure, GeomKey};
use qfr_obs::Counter;

static HITS: Counter = Counter::deterministic("cache.hits");
static MISSES: Counter = Counter::deterministic("cache.misses");
static BYTES: Counter = Counter::deterministic("cache.bytes");
static NEAR_HITS: Counter = Counter::timing_sensitive("cache.near_hits");
static EVICTIONS: Counter = Counter::timing_sensitive("cache.evictions");

/// Cache configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Resident-bytes bound; least-recently-used entries are evicted to
    /// stay under it. `0` means unbounded.
    pub max_bytes: usize,
    /// Enable canonical-key (rigid-motion / relabeling equivalent)
    /// fallback lookup with response transport. Off by default: near hits
    /// are numerically covariant, not bit-identical.
    pub near_hits: bool,
    /// Quantization tolerance (Å) for canonical keys in near mode.
    pub tol: f64,
    /// Number of independent shards (lock striping). Rounded up to 1.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_bytes: 256 << 20,
            near_hits: false,
            tol: qfr_fragment::DEFAULT_KEY_TOL,
            shards: 16,
        }
    }
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitKind {
    /// Exact-key hit: the returned response is bit-identical to what the
    /// engine would have produced.
    Exact,
    /// Canonical-key hit transported from an equivalent geometry:
    /// numerically covariant, not bit-identical.
    Near,
    /// The response was computed by this request (and inserted).
    Miss,
}

/// Point-in-time cache statistics (resident state; the monotone event
/// counts live in the `cache.*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Ready entries currently resident.
    pub entries: usize,
    /// Estimated resident payload bytes.
    pub resident_bytes: usize,
    /// Exact hits served since construction (this instance).
    pub hits: u64,
    /// Misses (unique computes) since construction (this instance).
    pub misses: u64,
    /// Near (transported) hits since construction (this instance).
    pub near_hits: u64,
    /// Evictions since construction (this instance).
    pub evictions: u64,
}

/// A stored response plus the canonical frame it was computed in (needed
/// to transport it to an equivalent requesting geometry in near mode).
struct Entry {
    response: Arc<qfr_fragment::FragmentResponse>,
    /// Canonical frame of the *stored* geometry; `None` when the cache
    /// runs exact-only (frames are only computed when near mode is on).
    canonical: Option<Arc<Canonical>>,
    bytes: usize,
    /// Lazy LRU stamp: the highest queue stamp issued for this key.
    stamp: u64,
}

enum Slot {
    /// A compute is in flight; waiters block on the shard condvar.
    Pending,
    Ready(Entry),
}

#[derive(Default)]
struct ShardState {
    map: HashMap<GeomKey, Slot>,
    /// Canonical key → exact key of a resident representative.
    canon: HashMap<GeomKey, GeomKey>,
    /// Lazy LRU queue of (exact key, stamp); stale stamps are skipped.
    lru: VecDeque<(GeomKey, u64)>,
    next_stamp: u64,
    resident_bytes: usize,
}

struct Shard {
    state: Mutex<ShardState>,
    ready: Condvar,
}

/// Content-addressed fragment result cache. Cheap to share: clone an
/// `Arc<FragmentCache>` into every worker / request.
pub struct FragmentCache {
    shards: Vec<Shard>,
    config: CacheConfig,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    near: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
}

/// Result of [`FragmentCache::lookup`].
pub enum Lookup<'a> {
    /// Served from the cache.
    Hit(Arc<qfr_fragment::FragmentResponse>, HitKind),
    /// The caller must compute and [`Ticket::fulfill`] (dropping the
    /// ticket unfulfilled releases the pending slot so another request
    /// retries the compute).
    MustCompute(Ticket<'a>),
}

/// Estimated payload bytes of a response for an `n`-atom fragment.
fn response_bytes(n_atoms: usize) -> usize {
    let d = 3 * n_atoms;
    (d * d + 6 * d + 3 * d) * std::mem::size_of::<f64>()
}

impl FragmentCache {
    /// A cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1);
        Self {
            shards: (0..n)
                .map(|_| Shard { state: Mutex::new(ShardState::default()), ready: Condvar::new() })
                .collect(),
            config,
            hits: Default::default(),
            misses: Default::default(),
            near: Default::default(),
            evictions: Default::default(),
        }
    }

    /// An exact-only cache bounded to `max_bytes` resident payload bytes.
    pub fn with_capacity(max_bytes: usize) -> Self {
        Self::new(CacheConfig { max_bytes, ..CacheConfig::default() })
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn shard(&self, key: GeomKey) -> &Shard {
        // High bits: FNV-1a mixes well; shard count is small.
        &self.shards[(key.0 >> 64) as usize % self.shards.len()]
    }

    /// Looks up `frag`; on a miss installs a pending slot and hands back a
    /// [`Ticket`] the caller must fulfill with the computed response.
    /// Concurrent lookups of the same key block until the ticket resolves
    /// and then count as hits, so misses are exactly the distinct keys
    /// computed.
    pub fn lookup(&self, frag: &FragmentStructure) -> Lookup<'_> {
        let key = exact_key(frag);
        let shard = self.shard(key);
        let mut st = shard.state.lock().expect("cache shard poisoned");
        loop {
            match st.map.get(&key) {
                Some(Slot::Ready(e)) => {
                    let resp = Arc::clone(&e.response);
                    self.touch(&mut st, key);
                    drop(st);
                    HITS.incr();
                    self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return Lookup::Hit(resp, HitKind::Exact);
                }
                Some(Slot::Pending) => {
                    st = shard.ready.wait(st).expect("cache shard poisoned");
                }
                None => break,
            }
        }
        // Near fallback: an equivalent geometry may be resident under a
        // different exact key. The canonical index may point at another
        // shard, so release this shard's lock for the probe and re-check
        // the exact slot after re-acquiring (ABA is benign: worst case we
        // compute a value someone else also computed).
        if self.config.near_hits {
            let canon = canonicalize(frag, self.config.tol);
            drop(st);
            if let Some(resp) = self.near_lookup(&canon, frag) {
                NEAR_HITS.incr();
                self.near.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                // Promote to an exact entry so later identical requests
                // exact-hit the transported response bit-identically.
                self.install(key, resp.clone(), Some(Arc::new(canon)), frag.n_atoms());
                return Lookup::Hit(resp, HitKind::Near);
            }
            st = shard.state.lock().expect("cache shard poisoned");
            loop {
                match st.map.get(&key) {
                    Some(Slot::Ready(e)) => {
                        let resp = Arc::clone(&e.response);
                        self.touch(&mut st, key);
                        drop(st);
                        HITS.incr();
                        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Lookup::Hit(resp, HitKind::Exact);
                    }
                    Some(Slot::Pending) => {
                        st = shard.ready.wait(st).expect("cache shard poisoned");
                    }
                    None => break,
                }
            }
            st.map.insert(key, Slot::Pending);
            drop(st);
            MISSES.incr();
            self.misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Lookup::MustCompute(Ticket {
                cache: self,
                key,
                canonical: Some(Arc::new(canon)),
                n_atoms: frag.n_atoms(),
                armed: true,
            });
        }
        st.map.insert(key, Slot::Pending);
        drop(st);
        MISSES.incr();
        self.misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Lookup::MustCompute(Ticket {
            cache: self,
            key,
            canonical: None,
            n_atoms: frag.n_atoms(),
            armed: true,
        })
    }

    /// Convenience wrapper: lookup, computing on a miss via `compute`.
    pub fn get_or_compute(
        &self,
        frag: &FragmentStructure,
        compute: impl FnOnce() -> qfr_fragment::FragmentResponse,
    ) -> (Arc<qfr_fragment::FragmentResponse>, HitKind) {
        match self.lookup(frag) {
            Lookup::Hit(resp, kind) => (resp, kind),
            Lookup::MustCompute(ticket) => (ticket.fulfill(compute()), HitKind::Miss),
        }
    }

    /// Inserts an externally computed response (checkpoint pre-warm).
    /// Counts toward `cache.bytes` but neither hits nor misses.
    pub fn insert_precomputed(
        &self,
        frag: &FragmentStructure,
        response: qfr_fragment::FragmentResponse,
    ) {
        let key = exact_key(frag);
        let canonical = if self.config.near_hits {
            Some(Arc::new(canonicalize(frag, self.config.tol)))
        } else {
            None
        };
        self.install(key, Arc::new(response), canonical, frag.n_atoms());
    }

    fn near_lookup(
        &self,
        canon: &Canonical,
        frag: &FragmentStructure,
    ) -> Option<Arc<qfr_fragment::FragmentResponse>> {
        let shard = self.shard(canon.key);
        let st = shard.state.lock().expect("cache shard poisoned");
        let rep_key = *st.canon.get(&canon.key)?;
        drop(st);
        let rep_shard = self.shard(rep_key);
        let st = rep_shard.state.lock().expect("cache shard poisoned");
        if let Some(Slot::Ready(e)) = st.map.get(&rep_key) {
            let stored = Arc::clone(e.canonical.as_ref()?);
            let resp = Arc::clone(&e.response);
            drop(st);
            Some(Arc::new(transport::transport_response(&resp, &stored, canon, frag.n_atoms())))
        } else {
            None
        }
    }

    /// Installs a Ready entry (resolving a pending slot if present),
    /// accounts bytes, registers the canonical alias, evicts over-budget
    /// LRU entries, and wakes waiters.
    fn install(
        &self,
        key: GeomKey,
        response: Arc<qfr_fragment::FragmentResponse>,
        canonical: Option<Arc<Canonical>>,
        n_atoms: usize,
    ) {
        let bytes = response_bytes(n_atoms);
        let canon_key = canonical.as_ref().map(|c| c.key);
        let shard = self.shard(key);
        let mut st = shard.state.lock().expect("cache shard poisoned");
        let prev = st.map.insert(key, Slot::Ready(Entry { response, canonical, bytes, stamp: 0 }));
        let first_insert = !matches!(prev, Some(Slot::Ready(_)));
        if let Some(Slot::Ready(e)) = prev {
            st.resident_bytes -= e.bytes;
        }
        st.resident_bytes += bytes;
        self.touch(&mut st, key);
        self.evict_over_budget(&mut st);
        drop(st);
        if first_insert {
            BYTES.add(bytes as u64);
        }
        shard.ready.notify_all();
        if let Some(ck) = canon_key {
            let cshard = self.shard(ck);
            let mut cst = cshard.state.lock().expect("cache shard poisoned");
            cst.canon.insert(ck, key);
        }
    }

    /// Marks `key` most-recently-used (lazy stamping).
    fn touch(&self, st: &mut ShardState, key: GeomKey) {
        st.next_stamp += 1;
        let stamp = st.next_stamp;
        if let Some(Slot::Ready(e)) = st.map.get_mut(&key) {
            e.stamp = stamp;
        }
        st.lru.push_back((key, stamp));
        // Lazy stamping leaves stale queue records behind on every touch;
        // compact once the queue outgrows the live set so hit-heavy runs
        // don't grow it unboundedly.
        if st.lru.len() > 4 * st.map.len() + 64 {
            let live: Vec<(GeomKey, u64)> = st
                .lru
                .iter()
                .copied()
                .filter(|&(k, s)| matches!(st.map.get(&k), Some(Slot::Ready(e)) if e.stamp == s))
                .collect();
            st.lru = live.into();
        }
    }

    /// Evicts least-recently-used Ready entries until this shard is under
    /// its share of the byte budget. Pending slots are never evicted.
    fn evict_over_budget(&self, st: &mut ShardState) {
        if self.config.max_bytes == 0 {
            return;
        }
        let budget = (self.config.max_bytes / self.shards.len()).max(1);
        while st.resident_bytes > budget {
            let Some((key, stamp)) = st.lru.pop_front() else { break };
            let stale = match st.map.get(&key) {
                Some(Slot::Ready(e)) => e.stamp != stamp,
                _ => true, // evicted already, or pending (re-stamped on install)
            };
            if stale {
                continue;
            }
            if let Some(Slot::Ready(e)) = st.map.remove(&key) {
                st.resident_bytes -= e.bytes;
                // Clean up the canonical alias when it lives in this shard;
                // cross-shard aliases go stale harmlessly (near_lookup
                // re-checks that the target entry is still Ready).
                if let Some(c) = &e.canonical {
                    let ck = c.key;
                    let same_shard = (ck.0 >> 64) as usize % self.shards.len()
                        == (key.0 >> 64) as usize % self.shards.len();
                    if same_shard && st.canon.get(&ck) == Some(&key) {
                        st.canon.remove(&ck);
                    }
                }
                EVICTIONS.incr();
                self.evictions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// Point-in-time statistics for this instance.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut resident = 0;
        for sh in &self.shards {
            let st = sh.state.lock().expect("cache shard poisoned");
            entries += st.map.values().filter(|s| matches!(s, Slot::Ready(_))).count();
            resident += st.resident_bytes;
        }
        use std::sync::atomic::Ordering::Relaxed;
        CacheStats {
            entries,
            resident_bytes: resident,
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            near_hits: self.near.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
        }
    }

    /// Resident Ready-entry count.
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// True when no Ready entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for FragmentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FragmentCache")
            .field("entries", &s.entries)
            .field("resident_bytes", &s.resident_bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

/// Permission (and obligation) to compute a missed entry. Fulfill with the
/// computed response; dropping the ticket unfulfilled (compute panicked or
/// was abandoned) releases the pending slot and wakes waiters so one of
/// them retries.
pub struct Ticket<'a> {
    cache: &'a FragmentCache,
    key: GeomKey,
    canonical: Option<Arc<Canonical>>,
    n_atoms: usize,
    armed: bool,
}

impl Ticket<'_> {
    /// The exact key this ticket will fill.
    pub fn key(&self) -> GeomKey {
        self.key
    }

    /// Stores the computed response, wakes waiters, and returns it.
    pub fn fulfill(
        mut self,
        response: qfr_fragment::FragmentResponse,
    ) -> Arc<qfr_fragment::FragmentResponse> {
        self.armed = false;
        let resp = Arc::new(response);
        self.cache.install(self.key, Arc::clone(&resp), self.canonical.take(), self.n_atoms);
        resp
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Abandoned compute: clear the pending slot so a waiter retries.
        let shard = self.cache.shard(self.key);
        let mut st = shard.state.lock().expect("cache shard poisoned");
        if matches!(st.map.get(&self.key), Some(Slot::Pending)) {
            st.map.remove(&self.key);
        }
        drop(st);
        shard.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{FragmentEngine, FragmentJob, JobKind};
    use qfr_geom::WaterBoxBuilder;
    use qfr_model::ForceFieldEngine;

    fn water_frag(n: usize, seed: u64, w: usize) -> FragmentStructure {
        let sys = WaterBoxBuilder::new(n).seed(seed).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w },
            coefficient: 1.0,
            atoms: sys.water_atoms(w).to_vec(),
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    #[test]
    fn exact_hit_is_bit_identical() {
        let cache = FragmentCache::with_capacity(64 << 20);
        let engine = ForceFieldEngine::new();
        let frag = water_frag(4, 1, 2);
        let (first, k1) = cache.get_or_compute(&frag, || engine.compute(&frag));
        assert_eq!(k1, HitKind::Miss);
        let (second, k2) = cache.get_or_compute(&frag, || panic!("must not recompute"));
        assert_eq!(k2, HitKind::Exact);
        assert_eq!(first.hessian.as_slice(), second.hessian.as_slice());
        assert_eq!(first.dalpha.as_slice(), second.dalpha.as_slice());
        assert_eq!(first.dmu.as_slice(), second.dmu.as_slice());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_geometries_do_not_collide() {
        let cache = FragmentCache::with_capacity(64 << 20);
        let engine = ForceFieldEngine::new();
        let a = water_frag(4, 1, 0);
        let b = water_frag(4, 1, 1);
        cache.get_or_compute(&a, || engine.compute(&a));
        let (_, kind) = cache.get_or_compute(&b, || engine.compute(&b));
        assert_eq!(kind, HitKind::Miss);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // One entry of a 3-atom water is 9*9+6*9+3*9 = 162 doubles = 1296 B.
        let one = response_bytes(3);
        let cache = FragmentCache::new(CacheConfig {
            max_bytes: 2 * one,
            shards: 1,
            ..CacheConfig::default()
        });
        let engine = ForceFieldEngine::new();
        let frags: Vec<_> = (0..3).map(|w| water_frag(3, 1, w)).collect();
        for f in &frags {
            cache.get_or_compute(f, || engine.compute(f));
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2, "third insert evicts the oldest");
        assert!(s.evictions >= 1);
        assert!(s.resident_bytes <= 2 * one);
        // frags[0] was evicted; re-requesting recomputes.
        let (_, kind) = cache.get_or_compute(&frags[0], || engine.compute(&frags[0]));
        assert_eq!(kind, HitKind::Miss);
    }

    #[test]
    fn touch_refreshes_lru_rank() {
        let one = response_bytes(3);
        let cache = FragmentCache::new(CacheConfig {
            max_bytes: 2 * one,
            shards: 1,
            ..CacheConfig::default()
        });
        let engine = ForceFieldEngine::new();
        let frags: Vec<_> = (0..3).map(|w| water_frag(3, 1, w)).collect();
        cache.get_or_compute(&frags[0], || engine.compute(&frags[0]));
        cache.get_or_compute(&frags[1], || engine.compute(&frags[1]));
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_compute(&frags[0], || panic!("hit expected"));
        cache.get_or_compute(&frags[2], || engine.compute(&frags[2]));
        let (_, kind) = cache.get_or_compute(&frags[0], || panic!("survivor expected"));
        assert_eq!(kind, HitKind::Exact);
        let (_, kind) = cache.get_or_compute(&frags[1], || engine.compute(&frags[1]));
        assert_eq!(kind, HitKind::Miss, "frags[1] was the eviction victim");
    }

    #[test]
    fn near_hit_transports_between_translated_copies() {
        let cache = FragmentCache::new(CacheConfig { near_hits: true, ..CacheConfig::default() });
        let engine = ForceFieldEngine::new();
        let frag = water_frag(4, 2, 1);
        let mut moved = frag.clone();
        for p in &mut moved.positions {
            p.x += 7.5;
            p.y -= 3.25;
        }
        cache.get_or_compute(&frag, || engine.compute(&frag));
        let (resp, kind) = cache.get_or_compute(&moved, || panic!("near hit expected"));
        assert_eq!(kind, HitKind::Near);
        // Translation leaves responses unchanged; transport must too
        // (rotation Q is orthogonal-identity up to roundoff here).
        let direct = engine.compute(&moved);
        assert!(resp.hessian.max_abs_diff(&direct.hessian) < 1e-9);
        assert!(resp.dalpha.max_abs_diff(&direct.dalpha) < 1e-9);
        assert!(resp.dmu.max_abs_diff(&direct.dmu) < 1e-9);
        // The transported response was promoted: an identical later
        // request exact-hits it bit-identically.
        let (again, kind) = cache.get_or_compute(&moved, || panic!("promoted entry expected"));
        assert_eq!(kind, HitKind::Exact);
        assert_eq!(again.hessian.as_slice(), resp.hessian.as_slice());
    }

    #[test]
    fn dropped_ticket_releases_pending_slot() {
        let cache = FragmentCache::with_capacity(64 << 20);
        let frag = water_frag(3, 3, 0);
        match cache.lookup(&frag) {
            Lookup::MustCompute(t) => drop(t),
            Lookup::Hit(..) => panic!("cold cache"),
        }
        // The slot was released: the next lookup is a fresh miss, not a
        // deadlocked wait on an abandoned pending entry.
        let engine = ForceFieldEngine::new();
        let (_, kind) = cache.get_or_compute(&frag, || engine.compute(&frag));
        assert_eq!(kind, HitKind::Miss);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(FragmentCache::with_capacity(64 << 20));
        let frag = Arc::new(water_frag(3, 4, 0));
        let computes = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let frag = Arc::clone(&frag);
                let computes = Arc::clone(&computes);
                std::thread::spawn(move || {
                    let engine = ForceFieldEngine::new();
                    let (resp, _) = cache.get_or_compute(&frag, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        engine.compute(&frag)
                    });
                    resp.hessian.as_slice().to_vec()
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-compute semantics");
        for r in &results[1..] {
            assert_eq!(r, &results[0], "all callers see the same bits");
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn precomputed_insert_hits_without_compute() {
        let cache = FragmentCache::with_capacity(64 << 20);
        let engine = ForceFieldEngine::new();
        let frag = water_frag(3, 5, 1);
        cache.insert_precomputed(&frag, engine.compute(&frag));
        let (_, kind) = cache.get_or_compute(&frag, || panic!("pre-warmed"));
        assert_eq!(kind, HitKind::Exact);
        let s = cache.stats();
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, 1);
    }
}
