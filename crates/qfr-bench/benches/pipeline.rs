//! Criterion benchmarks of the pipeline stages: decomposition, per-fragment
//! engine, Eq. (1) assembly, and the Lanczos/GAGQ spectral solve — the four
//! stages whose scaling Figs. 10–12 depend on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qfr_core::RamanWorkflow;
use qfr_fragment::{assemble, Decomposition, DecompositionParams, FragmentEngine, MassWeighted};
use qfr_geom::{ProteinBuilder, WaterBoxBuilder};
use qfr_model::ForceFieldEngine;
use qfr_solver::{raman_lanczos, RamanOptions};
use std::hint::black_box;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for &n in &[125usize, 512] {
        let sys = WaterBoxBuilder::new(n).seed(1).build();
        group.bench_with_input(BenchmarkId::new("water_box", n), &n, |b, _| {
            b.iter(|| Decomposition::new(black_box(&sys), DecompositionParams::default()))
        });
    }
    let protein = ProteinBuilder::new(100).seed(2).build();
    group.bench_function("protein_100res", |b| {
        b.iter(|| Decomposition::new(black_box(&protein), DecompositionParams::default()))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_field_engine");
    let protein = ProteinBuilder::new(5).seed(3).build();
    let d = Decomposition::new(&protein, DecompositionParams::default());
    let engine = ForceFieldEngine::new();
    let frag = d.jobs[0].structure(&protein);
    group.bench_function(format!("fragment_{}atoms", frag.n_atoms()), |b| {
        b.iter(|| engine.compute(black_box(&frag)))
    });
    group.finish();
}

fn bench_assembly_and_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembly_solver");
    let sys = WaterBoxBuilder::new(216).seed(4).build();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let engine = ForceFieldEngine::new();
    let responses: Vec<_> = d.jobs.iter().map(|j| engine.compute(&j.structure(&sys))).collect();
    group.bench_function("assemble_216_waters", |b| {
        b.iter(|| assemble::assemble(black_box(&d.jobs), black_box(&responses), sys.n_atoms()))
    });
    let asm = assemble::assemble(&d.jobs, &responses, sys.n_atoms());
    let mw = MassWeighted::new(&asm, &sys.masses());
    let opts = RamanOptions { lanczos_steps: 80, sigma: 20.0, ..Default::default() };
    group.bench_function("lanczos_gagq_216_waters", |b| {
        b.iter(|| raman_lanczos(black_box(&mw.hessian), black_box(&mw.dalpha), &opts))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let sys = WaterBoxBuilder::new(64).seed(5).build();
    group.bench_function("water64_full_pipeline", |b| {
        b.iter(|| RamanWorkflow::new(sys.clone()).sigma(20.0).run().unwrap())
    });
    group.finish();
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_decomposition, bench_engine, bench_assembly_and_solver, bench_end_to_end
);
criterion_main!(pipeline);
