//! Criterion microbenchmarks of the compute kernels behind the paper's
//! per-fragment DFPT cycle: GEMM variants, batched GEMM (elastic
//! offloading's compute primitive), sparse mat-vec (the Lanczos workhorse),
//! the FFT Poisson solver, and the symmetry-aware strength-reduction
//! expressions of Fig. 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qfr_linalg::batch::{execute_batched, execute_scattered, GemmJob};
use qfr_linalg::fft::Grid3;
use qfr_linalg::sparse::TripletBuilder;
use qfr_linalg::{blas, gemm, DMatrix};
use std::hint::black_box;

fn sample(m: usize, n: usize, seed: u64) -> DMatrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    DMatrix::from_fn(m, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 96, 192] {
        let a = sample(n, n, 1);
        let b = sample(n, n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = DMatrix::zeros(n, n);
                gemm::gemm_naive(&mut out, black_box(&a), black_box(&b), 1.0, 0.0);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = DMatrix::zeros(n, n);
                gemm::gemm_blocked(&mut out, black_box(&a), black_box(&b), 1.0, 0.0);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = DMatrix::zeros(n, n);
                gemm::gemm_parallel(&mut out, black_box(&a), black_box(&b), 1.0, 0.0);
                out
            })
        });
    }
    group.finish();
}

fn bench_batched_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_gemm");
    // The paper's regime: many scattered ~24x24 GEMMs.
    let jobs: Vec<GemmJob> =
        (0..128).map(|i| GemmJob::new(sample(24, 24, i), sample(24, 24, 500 + i))).collect();
    group.bench_function("scattered_128x24", |b| b.iter(|| execute_scattered(black_box(&jobs))));
    group.bench_function("batched_stride32_128x24", |b| {
        b.iter(|| execute_batched(black_box(&jobs), 32))
    });
    group.finish();
}

fn bench_strength_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_strength_reduction");
    let x = sample(256, 64, 7);
    let g = sample(256, 64, 8);
    let mut p = sample(64, 64, 9);
    p.symmetrize_mut();
    group.bench_function("cross_term_naive", |b| {
        b.iter(|| blas::cross_term_naive(black_box(&x), black_box(&g)))
    });
    group.bench_function("cross_term_reduced", |b| {
        b.iter(|| blas::symmetric_cross_term(black_box(&x), black_box(&g)))
    });
    group.bench_function("sandwich_naive", |b| {
        b.iter(|| blas::sandwich_naive(black_box(&x), black_box(&p), black_box(&g)))
    });
    group.bench_function("sandwich_reduced", |b| {
        b.iter(|| blas::symmetric_sandwich(black_box(&x), black_box(&p), black_box(&g)))
    });
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    // Banded Hessian-like matrix, 60k rows, ~90 nnz/row.
    let n = 60_000;
    let mut b = TripletBuilder::new(n, n);
    for i in 0..n {
        for off in 0..45usize {
            let j = (i + off * 7) % n;
            b.push(i, j, 1.0 / (1.0 + off as f64));
            b.push(j, i, 1.0 / (1.0 + off as f64));
        }
    }
    let m = b.build();
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
    let mut y = vec![0.0; n];
    group.bench_function("serial_60k", |bch| {
        bch.iter(|| m.spmv_serial(black_box(&x), black_box(&mut y)))
    });
    group.bench_function("parallel_60k", |bch| {
        bch.iter(|| m.spmv(black_box(&x), black_box(&mut y)))
    });
    group.finish();
}

fn bench_fft_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[16usize, 32] {
        let real: Vec<f64> = (0..n * n * n).map(|i| ((i * 7) % 23) as f64 - 11.0).collect();
        group.bench_with_input(BenchmarkId::new("grid3_roundtrip", n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = Grid3::from_real(n, n, n, black_box(&real));
                g.fft();
                g.ifft();
                g
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_batched_gemm, bench_strength_reduction, bench_spmv, bench_fft_poisson
);
criterion_main!(kernels);
