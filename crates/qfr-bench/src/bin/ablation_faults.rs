//! Ablation: fault-rate sweep through the discrete-event simulator.
//!
//! At the paper's scale (96,000 Sunway nodes, multi-hour runs) node and
//! task failures are routine — `MachineModel::expected_node_failures`
//! predicts tens per run — so the scheduler's recovery machinery is load-
//! bearing, not defensive. This study derives the injected per-attempt
//! failure rate from the ORISE machine's MTBF via
//! [`FaultPlan::from_machine`] (rate = nodes ×
//! `node_failure_probability(run_hours)` / tasks) over a sweep of run
//! lengths, and reports how retries, quarantine, and makespan respond,
//! plus a straggler re-issue on/off comparison at a fixed failure rate
//! using `work_complete_time` (the honest "workload done" clock — a
//! suppressed duplicate can keep one node busy past it).

use qfr_bench::{header, pct, row, scaled, write_record};
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::fault::{FaultPlan, RecoveryPolicy};
use qfr_sched::machine::MachineModel;
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::protein_workload;

fn main() {
    let n_frag = scaled(20_000, 1_000);
    let nodes = scaled(500, 50);
    let machine = MachineModel::orise();
    // Run lengths swept from a realistic campaign (hours) to a stress
    // regime (MTBF-scale) so the derived rate spans quiet to retry-bound.
    let run_hours = [0.0, 100.0, 1_000.0, 10_000.0, 50_000.0, 200_000.0];

    header(&format!(
        "Fault ablation — {n_frag} protein fragments on {nodes} nodes, \
         MTBF-derived failure rates ({}, MTBF {} h)",
        machine.name, machine.node_mtbf_hours
    ));
    row(
        &["run hours", "fail rate", "retries", "quarantined", "fragments", "makespan", "inflation"],
        &[10, 10, 9, 12, 10, 12, 10],
    );

    let base = SimConfig {
        n_leaders: nodes,
        recovery: RecoveryPolicy { max_attempts: 3, backoff_base: 0.5, ..Default::default() },
        ..Default::default()
    };
    let mut clean_makespan = 0.0;
    let mut records = Vec::new();
    for &hours in &run_hours {
        let plan = FaultPlan::from_machine(&machine, hours, n_frag, 2024);
        let rate = plan.failure_rate;
        let report = simulate(
            Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
            &SimConfig { faults: plan, ..base.clone() },
        );
        if hours == 0.0 {
            clean_makespan = report.makespan;
        }
        let inflation = report.makespan / clean_makespan - 1.0;
        row(
            &[
                &format!("{hours:.0}"),
                &format!("{rate:.4}"),
                &report.retries.to_string(),
                &report.quarantined_fragments.len().to_string(),
                &report.fragments.to_string(),
                &format!("{:.0}", report.makespan),
                &pct(inflation),
            ],
            &[10, 10, 9, 12, 10, 12, 10],
        );
        records.push(format!(
            "{{\"run_hours\":{hours},\"rate\":{rate},\"retries\":{},\"quarantined\":{},\"fragments\":{},\"makespan\":{},\"inflation\":{inflation}}}",
            report.retries,
            report.quarantined_fragments.len(),
            report.fragments,
            report.makespan,
        ));
    }

    // Straggler-only plan: mixing in attempt failures would hide the
    // re-issue effect, because a failing attempt fails on every copy and
    // its retry has to wait for the slowest copy to finish either way.
    header("Straggler re-issue on/off — 1% stragglers at 50x latency, no failures");
    let plan = FaultPlan::with_stragglers(7, 0.01, 50.0);
    let with = simulate(
        Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        &SimConfig { faults: plan.clone(), ..base.clone() },
    );
    let without = simulate(
        Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        &SimConfig {
            faults: plan,
            recovery: RecoveryPolicy { straggler_factor: None, ..base.recovery },
            ..base
        },
    );
    row(&["re-issue", "work done at", "makespan", "reissues", "suppressed"], &[10, 14, 12, 10, 12]);
    for (name, r) in [("on", &with), ("off", &without)] {
        row(
            &[
                name,
                &format!("{:.0}", r.work_complete_time),
                &format!("{:.0}", r.makespan),
                &r.reissues.to_string(),
                &r.duplicates_suppressed.to_string(),
            ],
            &[10, 14, 12, 10, 12],
        );
    }
    let gain = 1.0 - with.work_complete_time / without.work_complete_time;
    println!(
        "\nReading: the per-attempt rate follows the machine's node failure\n\
         probability (1 - exp(-h/MTBF)) spread over the task attempts;\n\
         realistic campaigns sit in the quiet regime and only MTBF-scale\n\
         runs stress recovery. Retries grow linearly in the rate while\n\
         quarantine stays rare until the rate approaches the retry budget;\n\
         makespan\n\
         inflation tracks the retry volume. Straggler re-issue finishes the\n\
         workload {} earlier (work_complete_time, not makespan: the\n\
         suppressed original still occupies its node to the end). With\n\
         attempt failures mixed in, the tail is retry-bound instead —\n\
         a failing attempt fails on every copy, so re-issue cannot\n\
         shortcut its retry.",
        pct(gain)
    );
    records.push(format!(
        "{{\"study\":\"straggler\",\"work_done_on\":{},\"work_done_off\":{},\"gain\":{gain}}}",
        with.work_complete_time, without.work_complete_time
    ));
    write_record("ablation_faults", &format!("[{}]", records.join(",")));
}
