//! Ablation: fault-rate sweep through the discrete-event simulator.
//!
//! At the paper's scale (96,000 Sunway nodes, multi-hour runs) node and
//! task failures are routine — `MachineModel::expected_node_failures`
//! predicts tens per run — so the scheduler's recovery machinery is load-
//! bearing, not defensive. This study derives the injected per-attempt
//! failure rate from the ORISE machine's MTBF via
//! [`FaultPlan::from_machine`] (rate = nodes ×
//! `node_failure_probability(run_hours)` / tasks) over a sweep of run
//! lengths, and reports how retries, quarantine, and makespan respond,
//! plus a straggler re-issue on/off comparison at a fixed failure rate
//! using `work_complete_time` (the honest "workload done" clock — a
//! suppressed duplicate can keep one node busy past it).

use qfr_bench::{header, pct, row, scaled, write_record};
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::fault::{FaultPlan, RecoveryPolicy};
use qfr_sched::machine::MachineModel;
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::protein_workload;

fn main() {
    let n_frag = scaled(20_000, 1_000);
    let nodes = scaled(500, 50);
    let machine = MachineModel::orise();
    // Run lengths swept from a realistic campaign (hours) to a stress
    // regime (MTBF-scale) so the derived rate spans quiet to retry-bound.
    let run_hours = [0.0, 100.0, 1_000.0, 10_000.0, 50_000.0, 200_000.0];

    header(&format!(
        "Fault ablation — {n_frag} protein fragments on {nodes} nodes, \
         MTBF-derived failure rates ({}, MTBF {} h)",
        machine.name, machine.node_mtbf_hours
    ));
    row(
        &["run hours", "fail rate", "retries", "quarantined", "fragments", "makespan", "inflation"],
        &[10, 10, 9, 12, 10, 12, 10],
    );

    let base = SimConfig {
        n_leaders: nodes,
        recovery: RecoveryPolicy { max_attempts: 3, backoff_base: 0.5, ..Default::default() },
        ..Default::default()
    };
    let mut clean_makespan = 0.0;
    let mut records = Vec::new();
    for &hours in &run_hours {
        let plan = FaultPlan::from_machine(&machine, hours, n_frag, 2024);
        let rate = plan.failure_rate;
        let report = simulate(
            Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
            &SimConfig { faults: plan, ..base.clone() },
        );
        if hours == 0.0 {
            clean_makespan = report.makespan;
        }
        let inflation = report.makespan / clean_makespan - 1.0;
        row(
            &[
                &format!("{hours:.0}"),
                &format!("{rate:.4}"),
                &report.retries.to_string(),
                &report.quarantined_fragments.len().to_string(),
                &report.fragments.to_string(),
                &format!("{:.0}", report.makespan),
                &pct(inflation),
            ],
            &[10, 10, 9, 12, 10, 12, 10],
        );
        records.push(format!(
            "{{\"run_hours\":{hours},\"rate\":{rate},\"retries\":{},\"quarantined\":{},\"fragments\":{},\"makespan\":{},\"inflation\":{inflation}}}",
            report.retries,
            report.quarantined_fragments.len(),
            report.fragments,
            report.makespan,
        ));
    }

    // Straggler-only plan: mixing in attempt failures would hide the
    // re-issue effect, because a failing attempt fails on every copy and
    // its retry has to wait for the slowest copy to finish either way.
    header("Straggler re-issue on/off — 1% stragglers at 50x latency, no failures");
    let plan = FaultPlan::with_stragglers(7, 0.01, 50.0);
    let with = simulate(
        Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        &SimConfig { faults: plan.clone(), ..base.clone() },
    );
    let without = simulate(
        Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        &SimConfig {
            faults: plan,
            recovery: RecoveryPolicy { straggler_factor: None, ..base.recovery },
            ..base
        },
    );
    row(&["re-issue", "work done at", "makespan", "reissues", "suppressed"], &[10, 14, 12, 10, 12]);
    for (name, r) in [("on", &with), ("off", &without)] {
        row(
            &[
                name,
                &format!("{:.0}", r.work_complete_time),
                &format!("{:.0}", r.makespan),
                &r.reissues.to_string(),
                &r.duplicates_suppressed.to_string(),
            ],
            &[10, 14, 12, 10, 12],
        );
    }
    let gain = 1.0 - with.work_complete_time / without.work_complete_time;
    println!(
        "\nReading: the per-attempt rate follows the machine's node failure\n\
         probability (1 - exp(-h/MTBF)) spread over the task attempts;\n\
         realistic campaigns sit in the quiet regime and only MTBF-scale\n\
         runs stress recovery. Retries grow linearly in the rate while\n\
         quarantine stays rare until the rate approaches the retry budget;\n\
         makespan\n\
         inflation tracks the retry volume. Straggler re-issue finishes the\n\
         workload {} earlier (work_complete_time, not makespan: the\n\
         suppressed original still occupies its node to the end). With\n\
         attempt failures mixed in, the tail is retry-bound instead —\n\
         a failing attempt fails on every copy, so re-issue cannot\n\
         shortcut its retry.",
        pct(gain)
    );
    records.push(format!(
        "{{\"study\":\"straggler\",\"work_done_on\":{},\"work_done_off\":{},\"gain\":{gain}}}",
        with.work_complete_time, without.work_complete_time
    ));

    // Checkpoint/restart sweep through the *real* workflow: kill a
    // checkpointed scheduled run at increasing completion fractions
    // (simulated by thinning the final checkpoint) and measure how much of
    // the engine stage the restart skips. The restarted spectrum is
    // asserted bit-identical to the uninterrupted one — restart is a pure
    // scheduling change, never a numerical one.
    header("Checkpoint/restart — engine work skipped vs kill point (water box, scheduled)");
    use qfr_core::{RamanWorkflow, ScheduledConfig};
    use qfr_geom::WaterBoxBuilder;
    let ckpt = std::env::temp_dir().join("qfr_ablation_restart.qfrc");
    std::fs::remove_file(&ckpt).ok();
    let wf = RamanWorkflow::new(WaterBoxBuilder::new(scaled(40, 10)).seed(11).build())
        .sigma(25.0)
        .lanczos_steps(60);
    let sched = || ScheduledConfig {
        runtime: qfr_sched::RuntimeConfig {
            n_leaders: 4,
            workers_per_leader: 2,
            ..Default::default()
        },
        checkpoint: Some(ckpt.clone()),
        checkpoint_interval: 8,
    };
    let reference = wf.run_scheduled_with(sched()).expect("reference run");
    let d = wf.decompose();
    let full = qfr_core::checkpoint::load_partial(&ckpt, &d, wf.system()).expect("load checkpoint");
    let n_jobs = full.len();
    row(&["kill at", "resumed", "recomputed", "engine s", "vs cold"], &[10, 9, 11, 10, 9]);
    let cold_engine = reference.timings.engine_s;
    for keep_pct in [0usize, 25, 50, 75, 90] {
        let keep = n_jobs * keep_pct / 100;
        let slots: Vec<_> =
            full.iter().enumerate().map(|(i, s)| if i < keep { s.clone() } else { None }).collect();
        qfr_core::checkpoint::save_partial(&ckpt, &d, wf.system(), &slots)
            .expect("partial checkpoint");
        let restarted = wf.run_scheduled_with(sched()).expect("restarted run");
        assert_eq!(
            restarted.spectrum.intensities, reference.spectrum.intensities,
            "restart must be bit-identical"
        );
        let rec = restarted.recovery.as_ref().expect("recovery block");
        row(
            &[
                &pct(keep_pct as f64 / 100.0),
                &rec.resumed_jobs.to_string(),
                &(n_jobs - rec.resumed_jobs).to_string(),
                &format!("{:.3}", restarted.timings.engine_s),
                &pct(restarted.timings.engine_s / cold_engine - 1.0),
            ],
            &[10, 9, 11, 10, 9],
        );
        records.push(format!(
            "{{\"study\":\"restart\",\"keep_pct\":{keep_pct},\"resumed\":{},\"recomputed\":{},\"engine_s\":{}}}",
            rec.resumed_jobs,
            n_jobs - rec.resumed_jobs,
            restarted.timings.engine_s,
        ));
    }
    std::fs::remove_file(&ckpt).ok();

    // Full-system sweep: kernel mode x MTBF-derived fault rate. The DFPT
    // engine is measured for real under each kernel mode (offload x
    // precision), then a campaign at that mode's measured speed is priced
    // through the recovery machinery — kernel speed, elastic offloading,
    // and failure recovery in one study. The f64 modes must agree
    // bit-identically; mixed must sit within its max-|Δ| spectrum
    // tolerance (DESIGN.md §15).
    header("Kernel mode x fault rate — measured DFPT speed priced through recovery");
    use qfr_core::EngineKind;
    use qfr_linalg::batch::OffloadMode;
    use qfr_linalg::GemmPrecision;
    let waters = scaled(3, 2);
    let dfpt = |offload: OffloadMode, prec: GemmPrecision| {
        RamanWorkflow::new(WaterBoxBuilder::new(waters).seed(11).build())
            .engine(EngineKind::ModelDfpt)
            .offload(offload)
            .precision(prec)
            .run()
            .expect("dfpt run")
    };
    let modes = [
        ("scattered-f64", OffloadMode::Scattered, GemmPrecision::F64),
        ("batched-f64", OffloadMode::default(), GemmPrecision::F64),
        ("batched-mixed", OffloadMode::default(), GemmPrecision::MixedF32),
    ];
    let runs: Vec<_> = modes.iter().map(|&(name, o, p)| (name, dfpt(o, p))).collect();
    assert_eq!(
        runs[0].1.spectrum.intensities, runs[1].1.spectrum.intensities,
        "f64 spectra must be bit-identical across offload modes"
    );
    let peak = runs[1].1.spectrum.intensities.iter().fold(0.0f64, |m, &i| m.max(i.abs()));
    let mixed_delta = runs[1]
        .1
        .spectrum
        .intensities
        .iter()
        .zip(&runs[2].1.spectrum.intensities)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(mixed_delta <= 1e-3 * peak, "mixed spectrum outside its tolerance");
    let base_engine = runs
        .iter()
        .find(|(name, _)| *name == "batched-f64")
        .map(|(_, r)| r.timings.engine_s)
        .expect("baseline mode");
    let sweep_cfg = SimConfig {
        n_leaders: nodes,
        recovery: RecoveryPolicy { max_attempts: 3, backoff_base: 0.5, ..Default::default() },
        ..Default::default()
    };
    let sweep_hours = [0.0, 10_000.0, 100_000.0];
    row(
        &["kernel mode", "engine s", "rel speed", "run hours", "retries", "makespan"],
        &[15, 10, 10, 10, 9, 12],
    );
    for (name, result) in &runs {
        let engine_s = result.timings.engine_s;
        // Scale every fragment's modeled cost by this mode's measured
        // engine time, so the simulated campaign runs at the mode's real
        // relative speed.
        let scale = if base_engine > 0.0 { engine_s / base_engine } else { 1.0 };
        for &hours in &sweep_hours {
            let plan = FaultPlan::from_machine(&machine, hours, n_frag, 77);
            let rate = plan.failure_rate;
            let workload: Vec<_> = protein_workload(n_frag, 1)
                .into_iter()
                .map(|f| {
                    let cost = f.cost() * scale;
                    f.with_cost_hint(cost)
                })
                .collect();
            let report = simulate(
                Box::new(SizeSensitivePolicy::with_defaults(workload)),
                &SimConfig { faults: plan, ..sweep_cfg.clone() },
            );
            row(
                &[
                    name,
                    &format!("{engine_s:.3}"),
                    &format!("{:.2}x", 1.0 / scale.max(f64::MIN_POSITIVE)),
                    &format!("{hours:.0}"),
                    &report.retries.to_string(),
                    &format!("{:.0}", report.makespan),
                ],
                &[15, 10, 10, 10, 9, 12],
            );
            records.push(format!(
                "{{\"study\":\"kernel_mode\",\"mode\":\"{name}\",\"engine_s\":{engine_s},\
                 \"run_hours\":{hours},\"rate\":{rate},\"retries\":{},\"makespan\":{}}}",
                report.retries, report.makespan,
            ));
        }
    }
    println!(
        "\nReading: makespan scales with the measured kernel speed at every\n\
         fault rate — a faster kernel mode buys the same relative margin in\n\
         the failure-bound regime as in the quiet one, so kernel speed,\n\
         offload, and recovery compose multiplicatively."
    );

    write_record("ablation_faults", &format!("[{}]", records.join(",")));
}
