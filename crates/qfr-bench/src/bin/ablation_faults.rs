//! Ablation: fault-rate sweep through the discrete-event simulator.
//!
//! At the paper's scale (96,000 Sunway nodes, multi-hour runs) node and
//! task failures are routine — `MachineModel::expected_node_failures`
//! predicts tens per run — so the scheduler's recovery machinery is load-
//! bearing, not defensive. This study sweeps the injected per-attempt
//! failure rate over a protein workload and reports how retries,
//! quarantine, and makespan respond, plus a straggler re-issue on/off
//! comparison at a fixed failure rate using `work_complete_time` (the
//! honest "workload done" clock — a suppressed duplicate can keep one
//! node busy past it).

use qfr_bench::{header, pct, row, write_record};
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::fault::{FaultPlan, RecoveryPolicy};
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::protein_workload;

fn main() {
    let n_frag = 20_000;
    let nodes = 500;
    let rates = [0.0, 1e-3, 1e-2, 0.05, 0.1, 0.2];

    header(&format!(
        "Fault ablation — {n_frag} protein fragments on {nodes} nodes, failure-rate sweep"
    ));
    row(
        &["fail rate", "retries", "quarantined", "fragments", "makespan", "inflation"],
        &[10, 9, 12, 10, 12, 10],
    );

    let base = SimConfig {
        n_leaders: nodes,
        recovery: RecoveryPolicy { max_attempts: 3, backoff_base: 0.5, ..Default::default() },
        ..Default::default()
    };
    let mut clean_makespan = 0.0;
    let mut records = Vec::new();
    for &rate in &rates {
        let report = simulate(
            Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
            &SimConfig { faults: FaultPlan::with_failure_rate(2024, rate), ..base.clone() },
        );
        if rate == 0.0 {
            clean_makespan = report.makespan;
        }
        let inflation = report.makespan / clean_makespan - 1.0;
        row(
            &[
                &format!("{rate:.3}"),
                &report.retries.to_string(),
                &report.quarantined_fragments.len().to_string(),
                &report.fragments.to_string(),
                &format!("{:.0}", report.makespan),
                &pct(inflation),
            ],
            &[10, 9, 12, 10, 12, 10],
        );
        records.push(format!(
            "{{\"rate\":{rate},\"retries\":{},\"quarantined\":{},\"fragments\":{},\"makespan\":{},\"inflation\":{inflation}}}",
            report.retries,
            report.quarantined_fragments.len(),
            report.fragments,
            report.makespan,
        ));
    }

    // Straggler-only plan: mixing in attempt failures would hide the
    // re-issue effect, because a failing attempt fails on every copy and
    // its retry has to wait for the slowest copy to finish either way.
    header("Straggler re-issue on/off — 1% stragglers at 50x latency, no failures");
    let plan = FaultPlan::with_stragglers(7, 0.01, 50.0);
    let with = simulate(
        Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        &SimConfig { faults: plan.clone(), ..base.clone() },
    );
    let without = simulate(
        Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        &SimConfig {
            faults: plan,
            recovery: RecoveryPolicy { straggler_factor: None, ..base.recovery },
            ..base
        },
    );
    row(&["re-issue", "work done at", "makespan", "reissues", "suppressed"], &[10, 14, 12, 10, 12]);
    for (name, r) in [("on", &with), ("off", &without)] {
        row(
            &[
                name,
                &format!("{:.0}", r.work_complete_time),
                &format!("{:.0}", r.makespan),
                &r.reissues.to_string(),
                &r.duplicates_suppressed.to_string(),
            ],
            &[10, 14, 12, 10, 12],
        );
    }
    let gain = 1.0 - with.work_complete_time / without.work_complete_time;
    println!(
        "\nReading: retries grow linearly in the failure rate while quarantine\n\
         stays rare until the rate approaches the retry budget; makespan\n\
         inflation tracks the retry volume. Straggler re-issue finishes the\n\
         workload {} earlier (work_complete_time, not makespan: the\n\
         suppressed original still occupies its node to the end). With\n\
         attempt failures mixed in, the tail is retry-bound instead —\n\
         a failing attempt fails on every copy, so re-issue cannot\n\
         shortcut its retry.",
        pct(gain)
    );
    records.push(format!(
        "{{\"study\":\"straggler\",\"work_done_on\":{},\"work_done_off\":{},\"gain\":{gain}}}",
        with.work_complete_time, without.work_complete_time
    ));
    write_record("ablation_faults", &format!("[{}]", records.join(",")));
}
