//! Ablation: the content-addressed fragment result cache.
//!
//! Three runs of the same workload — uncached, cold-cached (computes and
//! populates), warm-cached (served from memory) — plus a rigid-motion
//! reuse study in near-hit mode. The contract under test:
//!
//! - exact hits are **bit-identical**: all three spectra must match value
//!   for value, and the warm run's hit rate must be ≥ 90%;
//! - near (tolerance-quantized, transported) hits are *covariant, not
//!   bit-identical*: a rigidly translated copy of the system is served
//!   from the original's responses with spectra matching to solver
//!   accuracy.

use qfr_bench::{fast_mode, header, row, scaled, write_record};
use qfr_cache::{CacheConfig, FragmentCache};
use qfr_core::RamanWorkflow;
use qfr_geom::{MolecularSystem, WaterBoxBuilder};
use std::sync::Arc;
use std::time::Instant;

fn timed_run(wf: &RamanWorkflow) -> (qfr_core::RamanResult, f64) {
    let t = Instant::now();
    let result = wf.run().expect("workflow run");
    (result, t.elapsed().as_secs_f64())
}

fn main() {
    let n_waters = scaled(64usize, 16);
    let system = WaterBoxBuilder::new(n_waters).seed(29).build();
    let lanczos = scaled(120usize, 40);
    let workflow =
        |sys: MolecularSystem| RamanWorkflow::new(sys).sigma(25.0).lanczos_steps(lanczos);

    // Uncached baseline.
    let (uncached, t_uncached) = timed_run(&workflow(system.clone()));
    let n_jobs = uncached.stats.n_jobs;

    // Cold + warm through one cache.
    let cache = Arc::new(FragmentCache::new(CacheConfig::default()));
    let wf = workflow(system.clone()).with_cache(Arc::clone(&cache));
    let (cold, t_cold) = timed_run(&wf);
    let hits_before_warm = cache.stats().hits;
    let (warm, t_warm) = timed_run(&wf);
    let warm_hits = cache.stats().hits - hits_before_warm;
    let hit_rate = warm_hits as f64 / n_jobs as f64;

    for (name, run) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(
            run.spectrum.intensities, uncached.spectrum.intensities,
            "{name} cached spectrum must be bit-identical to the uncached baseline"
        );
        assert_eq!(run.ir.intensities, uncached.ir.intensities);
    }
    assert!(
        hit_rate >= 0.9,
        "warm-run hit rate {hit_rate:.3} below the 0.9 floor ({warm_hits}/{n_jobs})"
    );

    header(&format!("Fragment cache ablation ({} atoms, {n_jobs} jobs)", uncached.n_atoms));
    row(&["run", "wall(s)", "hits", "hit rate", "speedup"], &[10, 10, 8, 10, 10]);
    let line = |name: &str, t: f64, hits: u64, rate: f64| {
        row(
            &[
                name,
                &format!("{t:.4}"),
                &hits.to_string(),
                &format!("{:.1}%", 100.0 * rate),
                &format!("{:.2}x", t_uncached / t),
            ],
            &[10, 10, 8, 10, 10],
        );
    };
    line("uncached", t_uncached, 0, 0.0);
    line("cold", t_cold, 0, 0.0);
    line("warm", t_warm, warm_hits, hit_rate);

    // Near-hit mode: a rigidly translated copy of the whole box. Every
    // fragment canonicalizes to the same key as the original, so the
    // translated system is served by *transporting* stored responses —
    // no engine computes — and the spectrum agrees to solver accuracy.
    let near_cache =
        Arc::new(FragmentCache::new(CacheConfig { near_hits: true, ..CacheConfig::default() }));
    let (_orig, _) = timed_run(&workflow(system.clone()).with_cache(Arc::clone(&near_cache)));
    // Intra-box reuse: rigid copies of the same water template inside ONE
    // system already collapse onto a shared canonical key — the paper's
    // "33M near-identical water fragments" regime in miniature.
    let intra_near = near_cache.stats().near_hits;
    let mut moved = system;
    for atom in &mut moved.atoms {
        atom.position.x += 13.7;
        atom.position.y -= 4.1;
        atom.position.z += 8.9;
    }
    let (translated, _) = timed_run(&workflow(moved).with_cache(Arc::clone(&near_cache)));
    let near_stats = near_cache.stats();
    let translated_near = near_stats.near_hits - intra_near;
    let near_rate = translated_near as f64 / n_jobs as f64;
    let sim = translated.spectrum.cosine_similarity(&uncached.spectrum);
    assert!(
        near_rate >= 0.9,
        "translated system should be served without computes: rate {near_rate:.3}"
    );
    assert!(sim > 0.999999, "transported spectrum diverged: cosine {sim}");
    println!(
        "\nnear-hit mode: {intra_near}/{n_jobs} intra-box fragments shared a canonical key; \
         the translated copy was served {translated_near} by transport \
         (cosine similarity {sim:.9})"
    );
    println!(
        "\nReading: exact hits reuse stored responses bit-for-bit (the warm\n\
         run does no engine work); near mode additionally recognizes rigidly\n\
         moved fragments through the canonical geometry key and rotates the\n\
         stored tensors into the requesting frame."
    );

    write_record(
        "ablation_cache",
        &format!(
            "{{\"n_jobs\":{n_jobs},\"uncached_s\":{t_uncached},\"cold_s\":{t_cold},\
             \"warm_s\":{t_warm},\"warm_hits\":{warm_hits},\"warm_hit_rate\":{hit_rate},\
             \"warm_speedup\":{},\"near_hits\":{},\"near_hit_rate\":{near_rate},\
             \"translated_cosine\":{sim},\"fast\":{}}}",
            t_uncached / t_warm,
            near_stats.near_hits,
            fast_mode()
        ),
    );
}
