//! Section VI-A: decomposition statistics of the spike-protein system.
//!
//! Paper (7DF3 S protein + explicit water, 101,299,008 atoms, λ = 4 Å):
//! 3,171 conjugate caps, 11,394 generalized concaps, 3,088 residue–water
//! pairs within the threshold, and 128,341,476 water–water pairs.
//!
//! We build a synthetic 3,180-residue protein (the paper's residue count),
//! solvate a thin shell for the residue–water statistics, and measure a
//! bulk water box for the water–water pair *density*, which is then
//! extrapolated to the paper's 33.75M-water box (the full enumeration needs
//! the paper's 96,000 nodes, not one workstation — see DESIGN.md).

use qfr_bench::{arg_value, header, scaled, write_record};
use qfr_fragment::{Decomposition, DecompositionParams};
use qfr_geom::{ProteinBuilder, SolvatedSystem, WaterBoxBuilder};

fn main() {
    let n_residues: usize =
        arg_value("--residues").and_then(|v| v.parse().ok()).unwrap_or(scaled(3180, 300));

    header(&format!("Section VI-A — protein decomposition ({n_residues} residues)"));
    let protein = ProteinBuilder::new(n_residues).seed(73).build();
    println!("protein atoms: {}", protein.n_atoms());
    let d = Decomposition::new(&protein, DecompositionParams::default());
    println!("capped fragments     : {:>10}", d.stats.n_capped_fragments);
    println!(
        "conjugate caps       : {:>10}   (paper: 3,171 for 3,180 residues in 3 chains)",
        d.stats.n_cap_pairs
    );
    println!("generalized concaps  : {:>10}   (paper: 11,394)", d.stats.n_generalized_concaps);
    println!(
        "fragment sizes       : {:>4}..{:<4}  (paper: 9..68 atoms)",
        d.stats.min_size, d.stats.max_size
    );
    let runtime_spread = qfr_sched::cost_model(d.stats.max_size as u32)
        / qfr_sched::cost_model(d.stats.min_size as u32);
    println!(
        "runtime cost spread  : {runtime_spread:>9.1}x  (paper: ~19x; cubic FLOP spread {:.0}x)",
        d.stats.cost_spread()
    );

    header("Residue–water contacts (solvation shell sample)");
    let shell_residues = n_residues.min(300);
    let small = ProteinBuilder::new(shell_residues).seed(73).build();
    let solvated = SolvatedSystem::build(&small, 5.0, 3.1, 2.4, 7);
    let ds = Decomposition::new(&solvated, DecompositionParams::default());
    let per_residue = ds.stats.n_residue_water_pairs as f64 / shell_residues as f64;
    let extrapolated = per_residue * n_residues as f64;
    println!("sample: {} residues, {} waters", shell_residues, solvated.n_waters);
    println!("residue-water pairs  : {:>10}", ds.stats.n_residue_water_pairs);
    println!(
        "per residue          : {per_residue:>10.2}  -> {extrapolated:.0} at {n_residues} residues \
         (paper: 3,088; their protein is globular, ours is denser in solvent contact)"
    );

    header("Water–water pair density (bulk box sample)");
    let n_waters = scaled(8000, 1000);
    let bulk = WaterBoxBuilder::new(n_waters).seed(9).build();
    let db = Decomposition::new(&bulk, DecompositionParams::default());
    let per_water = db.stats.n_water_water_pairs as f64 / n_waters as f64;
    let paper_waters = 33_750_000.0; // 101,250,000 atoms / 3
    let extrapolated_ww = per_water * paper_waters;
    println!("sample: {n_waters} waters, {} ww pairs", db.stats.n_water_water_pairs);
    println!("pairs per water      : {per_water:>10.2}");
    println!(
        "extrapolated to 33.75M waters: {extrapolated_ww:.3e}  (paper: 1.283e8; \
         boundary effects make the bulk density the upper estimate)"
    );

    let json = format!(
        "{{\"residues\":{n_residues},\"caps\":{},\"concaps\":{},\"frag_min\":{},\"frag_max\":{},\
          \"res_water_per_residue\":{per_residue},\"ww_per_water\":{per_water},\
          \"ww_extrapolated\":{extrapolated_ww}}}",
        d.stats.n_cap_pairs, d.stats.n_generalized_concaps, d.stats.min_size, d.stats.max_size
    );
    write_record("stats_decomposition", &json);
}
