//! Ablation: elastic offloading executed for real.
//!
//! Earlier studies priced the batched offload with machine *models*
//! (`ablation_offload_stride`, the Fig. 9 bars). This one runs it: a
//! kernel-tagged job stream gathered from real DFPT response states is
//! executed twice through `CpuAccelerator` — scattered (one kernel call
//! per job) and batched (size-class packed panels, one launch per class)
//! — and the *measured* wall times are reported next to the modeled
//! ORISE/Sunway bars. A full polarizability is also run end-to-end in
//! both modes to confirm the bit-identity contract on the production
//! path.

use qfr_bench::{fast_mode, header, row, scaled, write_record};
use qfr_dfpt::displacement::n1_phase_gemm_jobs;
use qfr_dfpt::response::{polarizability, ResponseConfig};
use qfr_dfpt::scf::{ScfConfig, ScfResult, ScfSolver};
use qfr_fragment::{Decomposition, DecompositionParams, JobKind};
use qfr_geom::ProteinBuilder;
use qfr_linalg::batch::{BatchJob, OffloadMode};
use qfr_sched::machine::MachineModel;
use qfr_sched::offload::{offload_comparison, CpuAccelerator, ModeledAccelerator};

/// Gathers the kernel-tagged job stream one response cycle would issue
/// for this SCF state: phase-1 congruence + similarity, phase-2 panel
/// GEMMs, phase-4 symmetric products.
fn response_cycle_jobs(scf: &ScfResult, batch_size: usize) -> Vec<BatchJob> {
    let mut jobs = Vec::new();
    // Shared operands, as on the production path: one C/P per state, one X
    // per batch, referenced by every job that reads them.
    let c = std::sync::Arc::new(scf.c.clone());
    let p = std::sync::Arc::new(scf.p.clone());
    let dipole = scf.basis.dipole();
    for d in &dipole {
        jobs.push(BatchJob::congruence(c.clone(), d.scaled(-1.0)));
        jobs.push(BatchJob::similarity(c.clone(), d.scaled(-1.0)));
    }
    for b in scf.grid.batches(batch_size) {
        let x = std::sync::Arc::new(scf.basis.evaluate(&scf.grid.points[b.clone()]));
        jobs.push(BatchJob::gemm(x.clone(), p.clone()));
        let mut xw = (*x).clone();
        for (row, gi) in b.enumerate() {
            let w = scf.density[gi] * scf.grid.dv;
            for v in xw.row_mut(row) {
                *v *= w;
            }
        }
        jobs.push(BatchJob::symmetric_product(xw, x));
    }
    jobs
}

fn main() {
    // Real SCF states at three fragment sizes (one in fast mode).
    let mut scfs = Vec::new();
    for n_res in scaled(vec![3usize, 5, 7], vec![3usize]) {
        let sys = ProteinBuilder::new(n_res).seed(50 + n_res as u64).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = d
            .jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::CappedFragment { .. }))
            .max_by_key(|j| j.size())
            .expect("fragment");
        let frag = job.structure(&sys);
        scfs.push(
            ScfSolver {
                config: ScfConfig { max_grid_dim: 16, grid_spacing: 0.5, ..Default::default() },
            }
            .solve(&frag),
        );
    }
    let jobs: Vec<BatchJob> = scfs.iter().flat_map(|s| response_cycle_jobs(s, 48)).collect();
    println!("job stream: {} kernel-tagged jobs from {} SCF states", jobs.len(), scfs.len());

    // Measured: min-of-reps wall time through the real accelerator, with
    // the two modes interleaved rep-by-rep so machine drift during the
    // run cancels out of the comparison instead of biasing one block.
    let cpu = CpuAccelerator;
    let reps = scaled(5, 2);
    let (mut scattered_s, mut batched_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        scattered_s = scattered_s.min(cpu.execute_jobs(&jobs, OffloadMode::Scattered).1);
        batched_s = batched_s.min(cpu.execute_jobs(&jobs, OffloadMode::Batched { stride: 32 }).1);
    }
    let (out_s, _) = cpu.execute_jobs(&jobs, OffloadMode::Scattered);
    let (out_b, _) = cpu.execute_jobs(&jobs, OffloadMode::Batched { stride: 32 });
    let identical = out_s.iter().zip(&out_b).all(|(a, b)| a.as_slice() == b.as_slice());
    assert!(identical, "batched execution must be bit-identical to scattered");

    // Modeled Fig. 9 bars on the matching plain-GEMM stream, for context.
    let gemm_jobs: Vec<_> = scfs
        .iter()
        .flat_map(|s| {
            let p1 = qfr_linalg::DMatrix::identity(s.basis.len());
            n1_phase_gemm_jobs(s, &p1, 48)
        })
        .collect();
    let orise = offload_comparison(
        &gemm_jobs,
        &ModeledAccelerator::from_machine(&MachineModel::orise()),
        32,
    );
    let sunway = offload_comparison(
        &gemm_jobs,
        &ModeledAccelerator::from_machine(&MachineModel::sunway()),
        32,
    );

    header("Elastic offloading: measured vs modeled (stride 32)");
    row(&["path", "scattered(s)", "batched(s)", "speedup"], &[16, 14, 14, 10]);
    row(
        &[
            "CPU measured",
            &format!("{scattered_s:.4}"),
            &format!("{batched_s:.4}"),
            &format!("{:.2}x", scattered_s / batched_s),
        ],
        &[16, 14, 14, 10],
    );
    row(&["ORISE model", "-", "-", &format!("{:.2}x", orise.speedup())], &[16, 14, 14, 10]);
    row(&["Sunway model", "-", "-", &format!("{:.2}x", sunway.speedup())], &[16, 14, 14, 10]);

    // End-to-end: one polarizability per mode on the smallest state.
    let scf = &scfs[0];
    let run = |mode: OffloadMode| {
        let cfg = ResponseConfig { offload: mode, ..Default::default() };
        let t = std::time::Instant::now();
        let (alpha, _) = polarizability(scf, &cfg);
        (alpha, t.elapsed().as_secs_f64())
    };
    let (alpha_s, e2e_scattered) = run(OffloadMode::Scattered);
    let (alpha_b, e2e_batched) = run(OffloadMode::Batched { stride: 32 });
    assert_eq!(
        alpha_s.as_slice(),
        alpha_b.as_slice(),
        "polarizability must be bit-identical across offload modes"
    );
    println!(
        "\nend-to-end polarizability: scattered {e2e_scattered:.4}s, batched {e2e_batched:.4}s \
         (bit-identical tensors)"
    );
    if !fast_mode() && batched_s >= scattered_s {
        println!("WARNING: batched path not faster on this machine/stream");
    }
    println!(
        "\nReading: the measured speedup comes from launch amortization and\n\
         contiguous packed panels (one rayon launch per size class instead\n\
         of one kernel call per job); the modeled bars price the same\n\
         batching on the paper's accelerators, where kernel-launch overhead\n\
         is far higher — hence the larger modeled gain."
    );
    write_record(
        "ablation_offload_real",
        &format!(
            "{{\"jobs\":{},\"cpu_scattered_s\":{scattered_s},\"cpu_batched_s\":{batched_s},\
             \"cpu_speedup\":{},\"orise_speedup\":{},\"sunway_speedup\":{},\
             \"e2e_scattered_s\":{e2e_scattered},\"e2e_batched_s\":{e2e_batched}}}",
            jobs.len(),
            scattered_s / batched_s,
            orise.speedup(),
            sunway.speedup()
        ),
    );
}
