//! CI perf-floor gate: `bench_gate -- --check baselines/bench_floors.json`.
//!
//! The bench binaries print tables and write `BENCH_*.json` records, but a
//! table nobody reads is not a regression gate. This binary turns the
//! records into enforcement: it loads a floors file — a list of
//! `{record, metric, min?/max?}` bounds — resolves each metric from the
//! freshly produced `target/experiments/BENCH_{record}.json`, and exits
//! non-zero on any violation. The floors shipped in
//! `baselines/bench_floors.json` pin the paper-relevant invariants:
//! batched-offload speedup >= 1, warm cache hit rate >= 0.9, kernel-level
//! symmetry FLOP saving >= 25%, and sharded-vs-in-core spectrum deviation
//! == 0 (bit identity, not a tolerance).
//!
//! Two staleness defenses:
//!
//! - every record carries the `git_sha` it was produced at
//!   ([`qfr_bench::write_record`]); the gate refuses a record set whose
//!   SHAs disagree with each other or with the current checkout, so a
//!   leftover record from an older commit can never green-light HEAD;
//! - CI deletes `target/experiments` before the bench loop, so the gate
//!   only ever sees records from the same workflow run.
//!
//! Refreshing floors after an intentional perf change: rerun the bench
//! binaries at HEAD, read the new values from `target/experiments`, and
//! edit `baselines/bench_floors.json` deliberately — never loosen a floor
//! just to make CI pass (see DESIGN.md §13).

use serde_json::Value;
use std::path::Path;

/// One enforced bound. `min`: the metric must be >= it; `max`: <= it.
struct Floor {
    record: String,
    metric: String,
    min: Option<f64>,
    max: Option<f64>,
}

fn parse_floors(text: &str) -> Result<Vec<Floor>, String> {
    let v = serde_json::from_str(text).map_err(|e| format!("floors file: {e}"))?;
    let list = v
        .get("floors")
        .and_then(|f| f.as_array())
        .ok_or("floors file needs a top-level \"floors\" array")?;
    let mut floors = Vec::new();
    for (i, f) in list.iter().enumerate() {
        let field = |k: &str| {
            f.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or(format!("floor {i}: missing \"{k}\""))
        };
        let floor = Floor {
            record: field("record")?,
            metric: field("metric")?,
            min: f.get("min").and_then(|v| v.as_f64()),
            max: f.get("max").and_then(|v| v.as_f64()),
        };
        if floor.min.is_none() && floor.max.is_none() {
            return Err(format!("floor {i}: needs \"min\" and/or \"max\""));
        }
        floors.push(floor);
    }
    Ok(floors)
}

/// Resolves `metric` from a record's `data` payload.
///
/// - a derived metric (`kernel_flop_saving`) computes from its inputs;
/// - a scalar field on an object record reads directly;
/// - on an *array* record the metric folds across entries, keeping the
///   *worst* value for the bound being checked (`worst_is_max` = a `max`
///   bound is enforced, so the largest entry is the binding one).
fn resolve(data: &Value, metric: &str, worst_is_max: bool) -> Option<f64> {
    if metric == "kernel_flop_saving" {
        let e = data
            .as_array()?
            .iter()
            .find(|e| e.get("level").and_then(|l| l.as_str()) == Some("kernel"))?;
        let scattered = e.get("flops_scattered")?.as_f64()?;
        let reduced = e.get("flops_reduced")?.as_f64()?;
        return if scattered > 0.0 { Some(1.0 - reduced / scattered) } else { None };
    }
    if let Some(v) = data.get(metric).and_then(|v| v.as_f64()) {
        return Some(v);
    }
    data.as_array()?.iter().filter_map(|e| e.get(metric).and_then(|v| v.as_f64())).fold(
        None,
        |acc: Option<f64>, v| {
            Some(match acc {
                None => v,
                Some(a) if worst_is_max => a.max(v),
                Some(a) => a.min(v),
            })
        },
    )
}

fn check(floors: &[Floor], experiments: &Path) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    let mut shas: Vec<(String, String)> = Vec::new();
    for floor in floors {
        let path = experiments.join(format!("BENCH_{}.json", floor.record));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e} (run the bench binaries first)", path.display()))?;
        let record = serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let sha = record
            .get("git_sha")
            .and_then(|s| s.as_str())
            .ok_or(format!("{}: record not git-SHA stamped", path.display()))?
            .to_string();
        if !shas.iter().any(|(r, _)| *r == floor.record) {
            shas.push((floor.record.clone(), sha));
        }
        let data = record.get("data").ok_or(format!("{}: no \"data\" payload", path.display()))?;
        let worst_is_max = floor.max.is_some();
        let Some(value) = resolve(data, &floor.metric, worst_is_max) else {
            return Err(format!("{}: metric \"{}\" not resolvable", path.display(), floor.metric));
        };
        let bound = |b: Option<f64>, ok: bool, sym: &str, lim: f64| {
            if b.is_some() && !ok {
                Some(format!("{}.{} = {value} (required {sym} {lim})", floor.record, floor.metric))
            } else {
                None
            }
        };
        violations.extend(bound(
            floor.min,
            floor.min.is_none_or(|m| value >= m),
            ">=",
            floor.min.unwrap_or(0.0),
        ));
        violations.extend(bound(
            floor.max,
            floor.max.is_none_or(|m| value <= m),
            "<=",
            floor.max.unwrap_or(0.0),
        ));
        println!(
            "  {:<22} {:<20} = {value:<12} [{}]",
            floor.record,
            floor.metric,
            if violations
                .iter()
                .any(|v| v.starts_with(&format!("{}.{}", floor.record, floor.metric)))
            {
                "FAIL"
            } else {
                "ok"
            }
        );
    }
    // Staleness defense: every record must come from one commit, and from
    // *this* commit when the gate runs inside a checkout.
    let head = qfr_bench::git_sha();
    for (record, sha) in &shas {
        if shas[0].1 != *sha {
            violations.push(format!(
                "record set spans commits: {record} at {sha}, {} at {}",
                shas[0].0, shas[0].1
            ));
        }
        if head != "unknown" && *sha != "unknown" && *sha != head {
            violations.push(format!("stale record: {record} produced at {sha}, HEAD is {head}"));
        }
    }
    Ok(violations)
}

fn main() {
    let Some(floors_path) = qfr_bench::arg_value("--check") else {
        eprintln!("usage: bench_gate --check baselines/bench_floors.json [--experiments DIR]");
        std::process::exit(2);
    };
    let experiments = qfr_bench::arg_value("--experiments")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(qfr_bench::experiments_dir);
    let text = std::fs::read_to_string(&floors_path).unwrap_or_else(|e| {
        eprintln!("error: {floors_path}: {e}");
        std::process::exit(2);
    });
    let floors = parse_floors(&text).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!("bench_gate: {} floors from {floors_path}", floors.len());
    match check(&floors, &experiments) {
        Ok(v) if v.is_empty() => println!("bench_gate: all floors hold"),
        Ok(violations) => {
            for v in &violations {
                eprintln!("FLOOR VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_floor_list() {
        let floors = parse_floors(
            r#"{"floors":[{"record":"a","metric":"m","min":1.0},
                          {"record":"b","metric":"n","max":0.0}]}"#,
        )
        .unwrap();
        assert_eq!(floors.len(), 2);
        assert_eq!(floors[0].min, Some(1.0));
        assert_eq!(floors[1].max, Some(0.0));
        assert!(parse_floors(r#"{"floors":[{"record":"a","metric":"m"}]}"#).is_err());
        assert!(parse_floors(r#"{"x":1}"#).is_err());
    }

    #[test]
    fn resolves_scalar_and_array_metrics() {
        let obj = serde_json::from_str(r#"{"cpu_speedup":1.4}"#).unwrap();
        assert_eq!(resolve(&obj, "cpu_speedup", false), Some(1.4));
        let arr = serde_json::from_str(r#"[{"max_abs_diff":0.0},{"max_abs_diff":2.5}]"#).unwrap();
        // For a max bound, the largest entry is binding; for min, smallest.
        assert_eq!(resolve(&arr, "max_abs_diff", true), Some(2.5));
        assert_eq!(resolve(&arr, "max_abs_diff", false), Some(0.0));
        assert_eq!(resolve(&obj, "absent", true), None);
    }

    #[test]
    fn resolves_derived_kernel_flop_saving() {
        let sym = serde_json::from_str(
            r#"[{"level":"kernel","flops_scattered":200,"flops_reduced":100},
                {"level":"engine","flops_scattered":7,"flops_reduced":7}]"#,
        )
        .unwrap();
        let saving = resolve(&sym, "kernel_flop_saving", false).unwrap();
        assert!((saving - 0.5).abs() < 1e-12);
        let no_kernel = serde_json::from_str(r#"[{"level":"engine"}]"#).unwrap();
        assert_eq!(resolve(&no_kernel, "kernel_flop_saving", false), None);
    }

    #[test]
    fn violations_detected_end_to_end() {
        let dir = std::env::temp_dir().join("qfr_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let sha = qfr_bench::git_sha();
        std::fs::write(
            dir.join("BENCH_demo.json"),
            format!("{{\"git_sha\":\"{sha}\",\"data\":{{\"speedup\":1.2}}}}"),
        )
        .unwrap();
        let floors =
            parse_floors(r#"{"floors":[{"record":"demo","metric":"speedup","min":1.0}]}"#).unwrap();
        assert!(check(&floors, &dir).unwrap().is_empty(), "1.2 >= 1.0 must pass");
        let strict =
            parse_floors(r#"{"floors":[{"record":"demo","metric":"speedup","min":1000.0}]}"#)
                .unwrap();
        let violations = check(&strict, &dir).unwrap();
        assert_eq!(violations.len(), 1, "synthetic floor must fail: {violations:?}");
        assert!(violations[0].contains("speedup"));
        // A record from a different commit is stale even if the value passes.
        std::fs::write(
            dir.join("BENCH_demo.json"),
            "{\"git_sha\":\"0000000000000000000000000000000000000000\",\
             \"data\":{\"speedup\":1.2}}",
        )
        .unwrap();
        let violations = check(&floors, &dir).unwrap();
        assert!(
            sha == "unknown" || !violations.is_empty(),
            "mixed-commit record must be rejected: {violations:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
