//! Packed-panel GEMM microkernel ablation (DESIGN.md §15).
//!
//! Sweeps fragment-realistic GEMM shapes across the four kernel modes —
//! slice-tiled blocked (the pre-PR floor), packed serial, packed parallel,
//! and packed mixed-precision — reporting achieved GFLOP/s per mode plus
//! the mixed-mode max error against the f64 reference and its analytic
//! tolerance. Ends with an end-to-end check: a model-DFPT Raman spectrum
//! computed under `GemmPrecision::MixedF32` must stay within a max-|Δ|
//! tolerance of the f64 spectrum (the contract `qfr spectrum --precision
//! mixed` ships under).
//!
//! Floor-gated metrics (`baselines/bench_floors.json`):
//! - `speedup_packed_large` — packed vs blocked GFLOP/s, worst of the
//!   256/512 size classes, must stay ≥ 1.0 (measured ≥ 1.3 on the CI
//!   host);
//! - `mixed_err_ratio` / `e2e_err_ratio` — measured mixed error over its
//!   tolerance, must stay ≤ 1.0.

use qfr_bench::{fast_mode, header, row, scaled, write_record};
use qfr_core::{EngineKind, RamanWorkflow};
use qfr_geom::WaterBoxBuilder;
use qfr_linalg::flops;
use qfr_linalg::gemm::{gemm_blocked, gemm_packed, gemm_packed_parallel, gemm_packed_prec};
use qfr_linalg::{DMatrix, GemmPrecision};
use std::time::Instant;

fn sample(m: usize, n: usize, seed: u64) -> DMatrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    DMatrix::from_fn(m, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// Best-of-`reps` wall seconds for one kernel invocation.
fn best_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct ShapeResult {
    label: &'static str,
    large: bool,
    gflops_blocked: f64,
    gflops_packed: f64,
    gflops_packed_par: f64,
    gflops_mixed: f64,
    mixed_err: f64,
    mixed_tol: f64,
}

fn sweep_shape(label: &'static str, m: usize, n: usize, k: usize, large: bool) -> ShapeResult {
    // Best-of-N wall time; even fast mode takes best-of-3 — the
    // `speedup_packed_large` floor sits on these numbers and a single
    // noisy rep on a loaded CI host could breach it spuriously.
    let reps = scaled(5, 3);
    let a = sample(m, k, 1);
    let b = sample(k, n, 2);
    let gf = flops::gemm_flops(m, n, k) as f64 / 1e9;
    let mut c = DMatrix::zeros(m, n);
    let s_blocked = best_seconds(reps, || gemm_blocked(&mut c, &a, &b, 1.0, 0.0));
    let mut c_packed = DMatrix::zeros(m, n);
    let s_packed = best_seconds(reps, || gemm_packed(&mut c_packed, &a, &b, 1.0, 0.0));
    let mut c_par = DMatrix::zeros(m, n);
    let s_par = best_seconds(reps, || gemm_packed_parallel(&mut c_par, &a, &b, 1.0, 0.0));
    let mut c_mixed = DMatrix::zeros(m, n);
    let s_mixed = best_seconds(reps, || {
        gemm_packed_prec(&mut c_mixed, &a, &b, 1.0, 0.0, GemmPrecision::MixedF32)
    });
    // f64 packed kernels are value-identical to blocked; pin that here so
    // the speedup numbers are never comparing different results.
    assert_eq!(c.as_slice(), c_packed.as_slice(), "packed f64 diverged from blocked");
    assert_eq!(c.as_slice(), c_par.as_slice(), "packed parallel diverged from blocked");
    // Mixed mode: two f32 operand roundings per product, k products per
    // entry, f64 accumulation exact relative to that.
    let mixed_tol = 3.0 * (f32::EPSILON as f64) * k as f64 * a.max_abs() * b.max_abs();
    let mixed_err = c.max_abs_diff(&c_mixed);
    ShapeResult {
        label,
        large,
        gflops_blocked: gf / s_blocked,
        gflops_packed: gf / s_packed,
        gflops_packed_par: gf / s_par,
        gflops_mixed: gf / s_mixed,
        mixed_err,
        mixed_tol,
    }
}

/// Max-|Δ| between two intensity vectors sampled on the same grid.
fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

fn main() {
    header("ablation: packed-panel GEMM microkernels + mixed precision");
    let shapes: &[(&str, usize, usize, usize, bool)] = &[
        ("64^3", 64, 64, 64, false),
        ("128^3", 128, 128, 128, false),
        ("256^3", 256, 256, 256, true),
        ("512^3", 512, 512, 512, true),
        ("grid-panel 512x32x32", 512, 32, 32, false),
        ("fock 64x64x512", 64, 64, 512, false),
    ];
    let widths = [22, 9, 9, 9, 9, 9, 12];
    row(&["shape", "blocked", "packed", "pack-par", "mixed", "speedup", "mix-err/tol"], &widths);
    let mut results = Vec::new();
    for &(label, m, n, k, large) in shapes {
        let r = sweep_shape(label, m, n, k, large);
        row(
            &[
                r.label,
                &format!("{:.2}", r.gflops_blocked),
                &format!("{:.2}", r.gflops_packed),
                &format!("{:.2}", r.gflops_packed_par),
                &format!("{:.2}", r.gflops_mixed),
                &format!("{:.2}x", r.gflops_packed / r.gflops_blocked),
                &format!("{:.3}", r.mixed_err / r.mixed_tol),
            ],
            &widths,
        );
        results.push(r);
    }
    let speedup_large = results
        .iter()
        .filter(|r| r.large)
        .map(|r| r.gflops_packed / r.gflops_blocked)
        .fold(f64::INFINITY, f64::min);
    let mixed_err_ratio = results.iter().map(|r| r.mixed_err / r.mixed_tol).fold(0.0, f64::max);
    println!("\npacked speedup (worst large class): {speedup_large:.2}x");
    println!("mixed error / tolerance (worst shape): {mixed_err_ratio:.3}");

    // End-to-end: the mixed-precision floor under a whole model-DFPT Raman
    // spectrum. Tolerance scales the f64 spectrum's peak intensity by the
    // relative error the kernel sweep bounds — rounding at every gathered
    // GEMM/SYRK cannot move any spectral sample by more than a small
    // multiple of f32 epsilon times the dynamic range.
    header("end-to-end: qfr spectrum --precision mixed vs f64");
    let waters = scaled(3, 2);
    let system = WaterBoxBuilder::new(waters).seed(11).build();
    let run = |prec: GemmPrecision| {
        RamanWorkflow::new(WaterBoxBuilder::new(waters).seed(11).build())
            .engine(EngineKind::ModelDfpt)
            .precision(prec)
            .run()
            .expect("workflow")
            .spectrum
    };
    let spec_f64 = run(GemmPrecision::F64);
    let spec_mixed = run(GemmPrecision::MixedF32);
    let peak = spec_f64.intensities.iter().fold(0.0f64, |m, &i| m.max(i.abs()));
    let e2e_delta = max_abs_diff(&spec_f64.intensities, &spec_mixed.intensities);
    // The DFPT cycle iterates the rounded products through SCF + response
    // self-consistency, so the end-to-end amplification factor is much
    // larger than a single kernel's k·ε bound; 1e-3 relative to the peak
    // is the contract the CLI documents.
    let e2e_tol = 1e-3 * peak;
    let e2e_err_ratio = e2e_delta / e2e_tol;
    println!(
        "waters={} atoms={}: max|Δ| = {:.3e} (tol {:.3e}, ratio {:.3})",
        waters,
        system.n_atoms(),
        e2e_delta,
        e2e_tol,
        e2e_err_ratio
    );
    assert_eq!(spec_f64.wavenumbers, spec_mixed.wavenumbers, "frequency grids must match");

    let shape_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"shape\":\"{}\",\"gflops_blocked\":{:.4},\"gflops_packed\":{:.4},\
                 \"gflops_packed_par\":{:.4},\"gflops_mixed\":{:.4},\
                 \"mixed_err\":{:.6e},\"mixed_tol\":{:.6e}}}",
                r.label,
                r.gflops_blocked,
                r.gflops_packed,
                r.gflops_packed_par,
                r.gflops_mixed,
                r.mixed_err,
                r.mixed_tol
            )
        })
        .collect();
    write_record(
        "ablation_gemm",
        &format!(
            "{{\"fast\":{},\"shapes\":[{}],\"speedup_packed_large\":{:.4},\
             \"mixed_err_ratio\":{:.6},\"e2e_max_delta\":{:.6e},\"e2e_tol\":{:.6e},\
             \"e2e_err_ratio\":{:.6}}}",
            fast_mode(),
            shape_json.join(","),
            speedup_large,
            mixed_err_ratio,
            e2e_delta,
            e2e_tol,
            e2e_err_ratio
        ),
    );
}
