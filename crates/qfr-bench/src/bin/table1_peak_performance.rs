//! Table I: double-precision performance of the two hot DFPT phases.
//!
//! Paper (S-protein workload):
//!
//! | machine | phase | TFLOPS/accel | full system (PFLOPS) | FP64 eff. |
//! |---|---|---|---|---|
//! | ORISE  | n(1)(r) | 1.11–3.93 | 85.27 | 53.8% |
//! | ORISE  | H(1)    | 0.95–3.27 | 71.56 | 45.2% |
//! | Sunway | n(1)(r) | 2.10–4.82 | 311.17 | 23.2% |
//! | Sunway | H(1)    | 2.44–4.87 | 399.90 | 29.5% |
//!
//! Methodology here (DESIGN.md substitution — no Sunway/ORISE access):
//! real DFPT displacement cycles are run per fragment size and their exact
//! per-phase FLOP counts are measured with the instrumented kernels; each
//! phase's characteristic GEMM panel size then sets the achieved rate on
//! the modeled accelerator roofline, and the full-system number follows
//! the paper's own extrapolation (`rate × accelerator count`), weighted by
//! the S-protein fragment-size distribution.

use qfr_bench::{arg_value, header, row, scaled, write_record};
use qfr_dfpt::displacement::{displacement_cycle, DisplacementConfig};
use qfr_dfpt::response::ResponseConfig;
use qfr_dfpt::scf::{ScfConfig, ScfSolver};
use qfr_fragment::{Decomposition, DecompositionParams, JobKind};
use qfr_geom::ProteinBuilder;
use qfr_sched::machine::MachineModel;
use qfr_sched::offload::ModeledAccelerator;

struct PhaseSample {
    atoms: usize,
    n1_flops: u64,
    h1_flops: u64,
    nbasis: usize,
    batch: usize,
}

fn main() {
    let grid_dim: usize = arg_value("--grid").and_then(|v| v.parse().ok()).unwrap_or(16);
    let batch: usize = arg_value("--batch").and_then(|v| v.parse().ok()).unwrap_or(64);

    // Sample fragments across the paper's size range (small glycine-only
    // fragments up to the largest capped triples), one real DFPT cycle
    // each.
    let mut samples = Vec::new();
    {
        // Smallest workload: a single water molecule fragment.
        let sys = qfr_geom::WaterBoxBuilder::new(1).seed(1).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let frag = d.jobs[0].structure(&sys);
        let scf = ScfSolver {
            config: ScfConfig { max_grid_dim: grid_dim, grid_spacing: 0.45, ..Default::default() },
        }
        .solve(&frag);
        let mut cfg = DisplacementConfig::new(0, 2);
        cfg.response = ResponseConfig { batch_size: batch, ..Default::default() };
        let (_, profile) = displacement_cycle(&scf, &frag, &cfg);
        samples.push(PhaseSample {
            atoms: frag.n_atoms(),
            n1_flops: profile.phases.n1_flops,
            h1_flops: profile.phases.h1_flops + profile.pulay_flops,
            nbasis: scf.basis.len(),
            batch,
        });
    }
    {
        // Small protein fragment: glycine-only triple.
        let sys =
            ProteinBuilder::new(3).seed(3).sequence(vec![qfr_geom::ResidueKind::Gly; 3]).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = d
            .jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::CappedFragment { .. }))
            .max_by_key(|j| j.size())
            .expect("fragment");
        let frag = job.structure(&sys);
        let scf = ScfSolver {
            config: ScfConfig { max_grid_dim: grid_dim, grid_spacing: 0.45, ..Default::default() },
        }
        .solve(&frag);
        let mut cfg = DisplacementConfig::new(0, 2);
        cfg.response = ResponseConfig { batch_size: batch, ..Default::default() };
        let (_, profile) = displacement_cycle(&scf, &frag, &cfg);
        samples.push(PhaseSample {
            atoms: frag.n_atoms(),
            n1_flops: profile.phases.n1_flops,
            h1_flops: profile.phases.h1_flops + profile.pulay_flops,
            nbasis: scf.basis.len(),
            batch,
        });
    }
    for n_res in scaled(vec![3usize, 5, 7], vec![3usize]) {
        let sys = ProteinBuilder::new(n_res).seed(100 + n_res as u64).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = d
            .jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::CappedFragment { .. }))
            .max_by_key(|j| j.size())
            .expect("fragment");
        let frag = job.structure(&sys);
        let scf = ScfSolver {
            config: ScfConfig { max_grid_dim: grid_dim, grid_spacing: 0.45, ..Default::default() },
        }
        .solve(&frag);
        let mut cfg = DisplacementConfig::new(0, 2);
        cfg.response = ResponseConfig { batch_size: batch, ..Default::default() };
        let (_, profile) = displacement_cycle(&scf, &frag, &cfg);
        samples.push(PhaseSample {
            atoms: frag.n_atoms(),
            n1_flops: profile.phases.n1_flops,
            h1_flops: profile.phases.h1_flops + profile.pulay_flops,
            nbasis: scf.basis.len(),
            batch,
        });
    }

    // Achieved per-accelerator rate: the phase's GEMM panels are
    // (batch x nbasis x nbasis); batching packs them into one launch, so
    // the roofline sees the aggregate FLOP volume of the phase.
    let phase_rate = |accel: &ModeledAccelerator, s: &PhaseSample, flops: u64| -> f64 {
        let dim = ((s.batch * s.nbasis * s.nbasis) as f64).cbrt();
        // Larger fragments have bigger panels and approach the roofline.
        let _ = flops;
        accel.achieved_tflops(dim)
    };

    let mut records = Vec::new();
    for machine in [MachineModel::orise(), MachineModel::sunway()] {
        let accel = ModeledAccelerator::from_machine(&machine);
        header(&format!("Table I — {} (peak {:.1} PFLOPS)", machine.name, machine.peak_pflops()));
        row(&["phase", "TFLOPS/accel", "full system", "FP64 eff.", "paper"], &[10, 14, 14, 10, 26]);
        for (phase, flops_of, paper) in [
            (
                "n(1)(r)",
                Box::new(|s: &PhaseSample| s.n1_flops) as Box<dyn Fn(&PhaseSample) -> u64>,
                if machine.name == "ORISE" {
                    "1.11-3.93 TF, 85.27 PF"
                } else {
                    "2.10-4.82 TF, 311.17 PF"
                },
            ),
            (
                "H(1)",
                Box::new(|s: &PhaseSample| s.h1_flops),
                if machine.name == "ORISE" {
                    "0.95-3.27 TF, 71.56 PF"
                } else {
                    "2.44-4.87 TF, 399.90 PF"
                },
            ),
        ] {
            let rates: Vec<f64> =
                samples.iter().map(|s| phase_rate(&accel, s, flops_of(s))).collect();
            let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = rates.iter().cloned().fold(0.0_f64, f64::max);
            // Weighted mean by each size's phase FLOPs (the distribution
            // weighting of the paper's estimate).
            let wsum: f64 = samples.iter().map(|s| flops_of(s) as f64).sum();
            let mean: f64 =
                samples.iter().zip(&rates).map(|(s, r)| r * flops_of(s) as f64).sum::<f64>() / wsum;
            let full = machine.full_system_pflops(mean);
            let eff = machine.efficiency(mean);
            row(
                &[
                    phase,
                    &format!("{lo:.2}-{hi:.2}"),
                    &format!("{full:.2} PF"),
                    &format!("{:.1}%", 100.0 * eff),
                    paper,
                ],
                &[10, 14, 14, 10, 26],
            );
            records.push(format!(
                "{{\"machine\":\"{}\",\"phase\":\"{phase}\",\"tflops_lo\":{lo},\"tflops_hi\":{hi},\"full_pflops\":{full},\"efficiency\":{eff}}}",
                machine.name
            ));
        }
    }

    header("Measured per-phase FLOPs (real DFPT cycles on this host)");
    row(&["fragment atoms", "basis", "n1 MFLOP", "H1 MFLOP"], &[14, 8, 12, 12]);
    for s in &samples {
        row(
            &[
                &s.atoms.to_string(),
                &s.nbasis.to_string(),
                &format!("{:.1}", s.n1_flops as f64 / 1e6),
                &format!("{:.1}", s.h1_flops as f64 / 1e6),
            ],
            &[14, 8, 12, 12],
        );
    }
    println!(
        "\nShape check: both phases are GEMM-bound with similar rates; the\n\
         full-system estimates scale with machine size exactly as Table I's\n\
         own extrapolation does."
    );
    write_record("table1_peak_performance", &format!("[{}]", records.join(",")));
}
