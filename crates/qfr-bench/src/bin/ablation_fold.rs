//! Ablation: chain fold geometry vs decomposition statistics.
//!
//! The number of generalized concaps — and hence the two-body workload —
//! depends on the protein's fold, not just its sequence. This study
//! compares the serpentine globule (default) with an α-helix-like coil:
//! the helix produces the physical i→i+3/i+4 backbone contacts, while the
//! globule's contacts come from packing distant rows. The paper's 7DF3
//! count (11,394 concaps for 3,180 residues ≈ 3.6/residue) sits between
//! the two, as a real tertiary structure mixes both motifs.

use qfr_bench::{header, row, scaled, write_record};
use qfr_fragment::{Decomposition, DecompositionParams, JobKind};
use qfr_geom::{FoldStyle, ProteinBuilder};

fn main() {
    let n_residues = scaled(600, 100);
    header(&format!("Fold ablation — {n_residues} residues, λ = 4 Å"));
    row(&["fold", "concaps", "per residue", "|i-j| in 3..=4", "|i-j| > 8"], &[12, 10, 12, 15, 10]);

    let mut records = Vec::new();
    for (label, style) in
        [("serpentine", FoldStyle::Serpentine), ("alpha-helix", FoldStyle::alpha_helix())]
    {
        let sys = ProteinBuilder::new(n_residues).seed(5).fold_style(style).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let (mut short, mut long) = (0usize, 0usize);
        for job in &d.jobs {
            if let JobKind::ConcapDimer { i, j } = job.kind {
                if j - i <= 4 {
                    short += 1;
                } else if j - i > 8 {
                    long += 1;
                }
            }
        }
        let concaps = d.stats.n_generalized_concaps;
        row(
            &[
                label,
                &concaps.to_string(),
                &format!("{:.2}", concaps as f64 / n_residues as f64),
                &short.to_string(),
                &long.to_string(),
            ],
            &[12, 10, 12, 15, 10],
        );
        records.push(format!(
            "{{\"fold\":\"{label}\",\"concaps\":{concaps},\"short_range\":{short},\"long_range\":{long}}}"
        ));
    }

    println!(
        "\nReading: the helix's concaps are short-range (the i→i+3/4 hydrogen\n\
         bond ladder), the globule's are long-range (row packing); the\n\
         paper's spike protein (≈3.6 concaps/residue) mixes both. The\n\
         balancer is insensitive to which — two-body jobs are small and\n\
         uniform — so fold mainly sets the two-body job *count*."
    );
    write_record("ablation_fold", &format!("[{}]", records.join(",")));
}
