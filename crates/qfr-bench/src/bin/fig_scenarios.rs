//! Scenario sweep: the graph-decomposition path end to end on the three
//! non-chain systems (protein + aromatic ligand, disulfide-bridged
//! two-chain protein, polymer melt).
//!
//! The paper's QF fragmentation is demonstrated on a single solvated
//! chain; this sweep is the generalization check: for each scenario the
//! covalent graph is partitioned under the atom budget, the Eq. (1)
//! coverage invariant is verified *exactly* (every real atom counted
//! once), the full Raman workflow runs, and the spectrum is checked for
//! the band each system's chemistry predicts — C–H stretch for the
//! alkane melt, the ≈510 cm⁻¹ S–S stretch for the disulfide bridge, ring
//! modes for the aromatic ligand.
//!
//! `--scenario NAME` restricts the sweep; sizes scale down under
//! `QFR_BENCH_FAST=1` / `--fast`.

use qfr_bench::{arg_value, header, scaled, write_record};
use qfr_core::RamanWorkflow;
use qfr_fragment::{Decomposition, DecompositionParams};
use qfr_geom::scenario::{disulfide_dimer, polymer_melt, protein_ligand};
use qfr_geom::MolecularSystem;
use qfr_solver::RamanSpectrum;

/// Max normalized intensity inside a wavenumber window.
fn window_max(spec: &RamanSpectrum, lo: f64, hi: f64) -> f64 {
    let mut s = spec.clone();
    s.normalize_max();
    s.wavenumbers
        .iter()
        .zip(&s.intensities)
        .filter(|(&w, _)| (lo..hi).contains(&w))
        .map(|(_, &i)| i)
        .fold(0.0_f64, f64::max)
}

struct Scenario {
    name: &'static str,
    build: fn() -> MolecularSystem,
    /// (label, lo, hi) band windows this system's chemistry predicts.
    bands: &'static [(&'static str, f64, f64)],
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "protein-ligand",
        build: || protein_ligand(scaled(40, 10), Some(4.0), 21),
        bands: &[("ring modes", 1000.0, 1600.0), ("C-H stretch", 2800.0, 3050.0)],
    },
    Scenario {
        name: "disulfide",
        build: || disulfide_dimer(scaled(30, 9), 22),
        bands: &[("S-S stretch", 400.0, 620.0), ("C-H stretch", 2800.0, 3050.0)],
    },
    Scenario {
        name: "polymer-melt",
        build: || polymer_melt(scaled(12, 5), scaled(24, 12), 23),
        bands: &[("C-C skeletal", 950.0, 1250.0), ("C-H stretch", 2800.0, 3050.0)],
    },
];

fn main() {
    let only = arg_value("--scenario");
    let lanczos = scaled(120, 40);
    let mut records = Vec::new();

    for sc in SCENARIOS {
        if only.as_deref().is_some_and(|o| o != sc.name) {
            continue;
        }
        let sys = (sc.build)();
        header(&format!("scenario {} — {} atoms", sc.name, sys.n_atoms()));

        let d = Decomposition::new(&sys, DecompositionParams::default());
        println!("{}", d.stats.summary());
        assert!(d.stats.n_graph_partitions > 0, "{} must take the graph path", sc.name);
        // The Eq. (1) invariant, exactly: integer-valued coefficient sums.
        let coverage_exact = d.atom_coverage(sys.n_atoms()).iter().all(|&c| c == 1.0);
        assert!(coverage_exact, "{}: atom coverage must be exactly 1", sc.name);
        println!("atom coverage: exactly 1.0 on all {} atoms", sys.n_atoms());

        let n_atoms = sys.n_atoms();
        let result = RamanWorkflow::new(sys)
            .sigma(20.0)
            .lanczos_steps(lanczos)
            .run()
            .expect("scenario workflow");
        println!("{}", result.summary());

        let mut band_json = Vec::new();
        for &(label, lo, hi) in sc.bands {
            let rel = window_max(&result.spectrum, lo, hi);
            println!("  {label:<14} {lo:>5.0}-{hi:<5.0} cm-1 | rel. intensity {rel:.4}");
            band_json.push(format!(
                "{{\"band\":\"{label}\",\"lo\":{lo},\"hi\":{hi},\"rel_intensity\":{rel}}}"
            ));
        }

        records.push(format!(
            "{{\"scenario\":\"{}\",\"n_atoms\":{n_atoms},\
             \"graph_partitions\":{},\"bonds_cut\":{},\
             \"coverage_ok\":{},\"lanczos\":{lanczos},\"bands\":[{}]}}",
            sc.name,
            d.stats.n_graph_partitions,
            d.stats.n_bonds_cut,
            if coverage_exact { "1.0" } else { "0.0" },
            band_json.join(",")
        ));
    }

    write_record("fig_scenarios", &format!("[{}]", records.join(",")));
}
