//! Ablation: batching stride of the elastic offloading scheme.
//!
//! The paper pads GEMM operands to multiples of 32 before batching. This
//! study sweeps the stride over {1, 8, 32, 128} on a realistic mixed GEMM
//! stream (a DFPT n(1)-phase job list), showing the trade-off: small
//! strides leave many size classes (many launches), large strides burn
//! FLOPs on padding. Both real-CPU timing and the two machine models are
//! reported.

use qfr_bench::{header, row, scaled, write_record};
use qfr_dfpt::displacement::n1_phase_gemm_jobs;
use qfr_dfpt::scf::{ScfConfig, ScfSolver};
use qfr_fragment::{Decomposition, DecompositionParams, JobKind};
use qfr_geom::ProteinBuilder;
use qfr_linalg::DMatrix;
use qfr_sched::machine::MachineModel;
use qfr_sched::offload::{offload_comparison, CpuAccelerator, ModeledAccelerator};

fn main() {
    // A mixed-size job stream: n(1) panels from three fragment sizes.
    let mut jobs = Vec::new();
    for n_res in scaled(vec![3usize, 5, 7], vec![3usize]) {
        let sys = ProteinBuilder::new(n_res).seed(50 + n_res as u64).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = d
            .jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::CappedFragment { .. }))
            .max_by_key(|j| j.size())
            .expect("fragment");
        let frag = job.structure(&sys);
        let scf = ScfSolver {
            config: ScfConfig { max_grid_dim: 16, grid_spacing: 0.5, ..Default::default() },
        }
        .solve(&frag);
        let p1 = DMatrix::identity(scf.basis.len());
        jobs.extend(n1_phase_gemm_jobs(&scf, &p1, 48));
    }
    println!("job stream: {} scattered GEMMs", jobs.len());

    let orise = ModeledAccelerator::from_machine(&MachineModel::orise());
    let sunway = ModeledAccelerator::from_machine(&MachineModel::sunway());
    let cpu = CpuAccelerator;

    header("Offload stride ablation");
    row(
        &["stride", "launches", "padding", "ORISE speedup", "Sunway speedup", "CPU batched(s)"],
        &[8, 10, 10, 14, 14, 14],
    );
    let mut records = Vec::new();
    for stride in [1usize, 8, 32, 128] {
        let ro = offload_comparison(&jobs, &orise, stride);
        let rs = offload_comparison(&jobs, &sunway, stride);
        let cpu_s = cpu.batched_seconds(&jobs, stride);
        row(
            &[
                &stride.to_string(),
                &ro.launches.to_string(),
                &format!("{:.0}%", 100.0 * ro.padding_overhead),
                &format!("{:.1}x", ro.speedup()),
                &format!("{:.1}x", rs.speedup()),
                &format!("{cpu_s:.4}"),
            ],
            &[8, 10, 10, 14, 14, 14],
        );
        records.push(format!(
            "{{\"stride\":{stride},\"launches\":{},\"padding\":{},\"orise_speedup\":{},\"sunway_speedup\":{}}}",
            ro.launches,
            ro.padding_overhead,
            ro.speedup(),
            rs.speedup()
        ));
    }
    println!(
        "\nReading: the launch-count/padding knee depends on the matrix-size\n\
         mixture. Our model basis keeps panels small, so stride 8 already\n\
         folds most classes; the paper's NAO matrices are ~10x larger, which\n\
         is why their knee sits at 32. Stride 128 is past the knee for both:\n\
         padding dominates."
    );
    write_record("ablation_offload_stride", &format!("[{}]", records.join(",")));
}
