//! Ablation: symmetry-aware strength reduction (Section V-D) on the DFPT
//! hot path.
//!
//! Two levels are measured on identical inputs:
//!
//! 1. **Kernel level** — symmetric products (`A Aᵀ`, `Xᵀdiag(w)X`,
//!    `L M Lᵀ`) through the general GEMM ("scattered") vs the triangle-only
//!    `syrk` family ("reduced"): accounted FLOPs, wall time, and value
//!    agreement.
//! 2. **Engine level** — the finite-difference derivative sweep with
//!    `dalpha_fd` + `dmu_fd` re-solving every displaced geometry
//!    ("scattered") vs the merged `displaced_sweep` sharing one SCF per
//!    geometry ("merged"): displaced-SCF solve counts
//!    (`dfpt.engine.scf_solves`), FLOPs, and the final Raman spectra, which
//!    must agree to 1e-10 (they are in fact bit-identical).
//!
//! `--fast` (or `QFR_BENCH_FAST=1`) runs the scaled-down CI smoke version.

use qfr_bench::{header, row, scaled, write_record};
use qfr_dfpt::engine::DfptEngine;
use qfr_fragment::{FragmentJob, FragmentStructure, JobKind};
use qfr_geom::WaterBoxBuilder;
use qfr_linalg::flops::FlopScope;
use qfr_linalg::{gemm, syrk, DMatrix};
use qfr_solver::{raman_lanczos, RamanOptions};

fn sample(m: usize, n: usize, seed: u64) -> DMatrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    DMatrix::from_fn(m, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn water_fragment() -> FragmentStructure {
    let sys = WaterBoxBuilder::new(1).seed(1).build();
    FragmentJob {
        kind: JobKind::WaterMonomer { w: 0 },
        coefficient: 1.0,
        atoms: vec![0, 1, 2],
        link_hydrogens: vec![],
    }
    .structure(&sys)
}

/// Rows of a `6 x dof` derivative matrix as the per-component vectors the
/// Raman solver consumes.
fn dalpha_rows(d: &DMatrix) -> [Vec<f64>; 6] {
    std::array::from_fn(|c| d.row(c).to_vec())
}

fn main() {
    let mut records = Vec::new();

    // ---------------- Part 1: kernel-level strength reduction ----------
    let n = scaled(512, 96);
    let k = scaled(384, 64);
    header(&format!("Kernel ablation — symmetric products at n={n}, k={k}"));
    let a = sample(n, k, 7);
    let l = sample(n, n, 8);
    let mut m_sym = sample(n, n, 9);
    m_sym.symmetrize_mut();

    // Scattered: everything through the general GEMM.
    let scope = FlopScope::start();
    let (scattered_vals, t_scattered) = qfr_obs::timed("bench.symmetry.scattered", || {
        let aat = gemm::matmul(&a, &a.transpose());
        let lm = gemm::matmul(&l, &m_sym);
        let lml = gemm::matmul(&lm, &l.transpose());
        (aat, lml)
    });
    let flops_scattered = scope.finish().flops;

    // Reduced: triangle-only syrk family on the same inputs.
    let scope = FlopScope::start();
    let (reduced_vals, t_reduced) = qfr_obs::timed("bench.symmetry.reduced", || {
        let mut aat = DMatrix::zeros(n, n);
        syrk::syrk(gemm::Trans::No, 1.0, &a, 0.0, &mut aat);
        let lml = syrk::similarity_transform(&l, &m_sym);
        (aat, lml)
    });
    let flops_reduced = scope.finish().flops;

    let diff_aat = scattered_vals.0.max_abs_diff(&reduced_vals.0);
    let diff_lml = scattered_vals.1.max_abs_diff(&reduced_vals.1);
    let kernel_saving = 1.0 - flops_reduced as f64 / flops_scattered as f64;
    row(&["path", "GEMM FLOPs", "wall (s)"], &[12, 16, 12]);
    row(&["scattered", &flops_scattered.to_string(), &format!("{t_scattered:.3}")], &[12, 16, 12]);
    row(&["reduced", &flops_reduced.to_string(), &format!("{t_reduced:.3}")], &[12, 16, 12]);
    println!(
        "\nFLOP saving {:.1}% · max value drift: AAT {diff_aat:.2e}, LML {diff_lml:.2e}",
        100.0 * kernel_saving
    );
    assert!(diff_aat < 1e-9 && diff_lml < 1e-9, "reduced kernels changed the values");
    assert!(
        kernel_saving >= 0.25,
        "strength reduction must save >= 25% accounted GEMM FLOPs, got {:.1}%",
        100.0 * kernel_saving
    );
    records.push(format!(
        "{{\"level\":\"kernel\",\"n\":{n},\"k\":{k},\
         \"flops_scattered\":{flops_scattered},\"flops_reduced\":{flops_reduced},\
         \"seconds_scattered\":{t_scattered},\"seconds_reduced\":{t_reduced}}}"
    ));

    // ---------------- Part 2: engine-level shared-SCF sweep -------------
    header("Engine ablation — scattered dalpha_fd+dmu_fd vs merged displaced_sweep");
    let engine = DfptEngine::new();
    let frag = water_fragment();
    let dof = frag.dof();
    let solves = || qfr_obs::counter::value_of("dfpt.engine.scf_solves").unwrap_or(0);

    let before = solves();
    let scope = FlopScope::start();
    let ((da_ref, _dm_ref), t_scat) = qfr_obs::timed("bench.symmetry.engine_scattered", || {
        (engine.dalpha_fd(&frag), engine.dmu_fd(&frag))
    });
    let engine_flops_scattered = scope.finish().flops;
    let solves_scattered = solves() - before;

    let before = solves();
    let scope = FlopScope::start();
    let ((da, _dm), t_merged) =
        qfr_obs::timed("bench.symmetry.engine_merged", || engine.displaced_sweep(&frag));
    let engine_flops_merged = scope.finish().flops;
    let solves_merged = solves() - before;

    row(&["path", "SCF solves", "FLOPs", "wall (s)"], &[12, 12, 16, 12]);
    row(
        &[
            "scattered",
            &solves_scattered.to_string(),
            &engine_flops_scattered.to_string(),
            &format!("{t_scat:.2}"),
        ],
        &[12, 12, 16, 12],
    );
    row(
        &[
            "merged",
            &solves_merged.to_string(),
            &engine_flops_merged.to_string(),
            &format!("{t_merged:.2}"),
        ],
        &[12, 12, 16, 12],
    );
    let solve_ratio = solves_scattered as f64 / solves_merged as f64;
    assert!(
        solve_ratio >= 1.5,
        "merged sweep must cut SCF solves by >= 1.5x, got {solve_ratio:.2}x \
         ({solves_scattered} vs {solves_merged})"
    );

    // Spectra from both derivative sets must agree to 1e-10 (the merged
    // sweep is bit-identical, so the spectra are too).
    let hessian = {
        let mut h = engine.hessian_fd(&frag);
        h.symmetrize_mut();
        h
    };
    let opts = RamanOptions { lanczos_steps: scaled(60, 20), sigma: 20.0, ..Default::default() };
    let spec_scattered = raman_lanczos(&hessian, &dalpha_rows(&da_ref), &opts);
    let spec_merged = raman_lanczos(&hessian, &dalpha_rows(&da), &opts);
    let spec_diff = spec_scattered
        .intensities
        .iter()
        .zip(&spec_merged.intensities)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nSCF-solve reduction {solve_ratio:.2}x ({solves_scattered} -> {solves_merged}, \
         dof = {dof}) · spectra max |Δ| = {spec_diff:.2e}"
    );
    assert!(spec_diff < 1e-10, "spectra diverged: max |delta| = {spec_diff:.2e}");

    let syrk_calls = qfr_obs::counter::value_of("linalg.syrk.calls").unwrap_or(0);
    let flops_saved = qfr_obs::counter::value_of("linalg.gemm.flops_saved_symmetry").unwrap_or(0);
    println!("syrk calls so far: {syrk_calls} · FLOPs saved by symmetry: {flops_saved}");
    assert!(syrk_calls > 0 && flops_saved > 0, "symmetric kernels must be on the hot path");

    records.push(format!(
        "{{\"level\":\"engine\",\"dof\":{dof},\
         \"scf_solves_scattered\":{solves_scattered},\"scf_solves_merged\":{solves_merged},\
         \"flops_scattered\":{engine_flops_scattered},\"flops_merged\":{engine_flops_merged},\
         \"seconds_scattered\":{t_scat},\"seconds_merged\":{t_merged},\
         \"spectra_max_abs_diff\":{spec_diff},\
         \"syrk_calls\":{syrk_calls},\"flops_saved_symmetry\":{flops_saved}}}"
    ));

    println!(
        "\nReading: the merged sweep removes the duplicated displaced-geometry\n\
         SCF solves (a clean 2x) and the syrk family halves every symmetric\n\
         product's FLOPs, with spectra unchanged to the last bit — the\n\
         Section V-D claim reproduced end to end."
    );
    write_record("ablation_symmetry", &format!("[{}]", records.join(",")));
}
