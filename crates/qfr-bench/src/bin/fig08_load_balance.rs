//! Fig. 8: execution-time variation across massive computing nodes.
//!
//! The paper measures, for each node, the deviation of its execution time
//! from the average, under the system-size-sensitive load balancer:
//!
//! - ORISE water dimer (uniform 6-atom fragments) and protein (9–35-atom
//!   fragments) at 750 / 1,500 / 3,000 / 6,000 nodes — protein variation
//!   −1%..+1.5% at 750 nodes growing to −9.2%..+12.7% at 6,000;
//! - Sunway mixed workload at 12,000 / 24,000 / 48,000 / 96,000 nodes —
//!   −0.4%..+0.4% at 12,000, worst case −2.3%..+3.2%.
//!
//! We regenerate the same quantities with the discrete-event simulator
//! driving the identical balancer implementation (DESIGN.md substitution).
//! The paper's water-dimer study deliberately disables prefetch "for the
//! purpose of showcasing its effects"; we do the same.

use qfr_bench::{fast_mode, header, pct, row, write_record};
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::{protein_workload, water_dimer_workload, FragmentWorkItem};

fn mixed_workload(n: usize, seed: u64) -> Vec<FragmentWorkItem> {
    // Sunway co-locates protein and water-dimer fragments (the paper credits
    // this for the better balance).
    let mut frags = protein_workload(n / 4, seed);
    let mut water = water_dimer_workload(n - n / 4);
    for (i, f) in water.iter_mut().enumerate() {
        f.id = (n / 4 + i) as u32;
    }
    frags.extend(water);
    frags
}

struct Study {
    label: &'static str,
    nodes: Vec<usize>,
    fragments_per_node: usize,
    prefetch: bool,
    paper_worst: Vec<(f64, f64)>,
    kind: fn(usize, u64) -> Vec<FragmentWorkItem>,
}

fn main() {
    let mut records = Vec::new();

    let mut studies = [
        Study {
            label: "ORISE / protein (prefetch on)",
            nodes: vec![750, 1500, 3000, 6000],
            fragments_per_node: 118, // 88,800 fragments on 750 nodes
            prefetch: true,
            paper_worst: vec![(-0.01, 0.015), (-0.021, 0.032), (-0.043, 0.062), (-0.092, 0.127)],
            kind: |n, seed| protein_workload(n, seed),
        },
        Study {
            label: "ORISE / water dimer (prefetch disabled, as in the paper)",
            nodes: vec![750, 1500, 3000, 6000],
            fragments_per_node: 4458, // 3,343,536 fragments on 750 nodes
            prefetch: false,
            paper_worst: vec![(-0.02, 0.02), (-0.03, 0.03), (-0.05, 0.05), (-0.1, 0.1)],
            kind: |n, _| water_dimer_workload(n),
        },
        Study {
            label: "Sunway / mixed protein+water",
            nodes: vec![12_000, 24_000, 48_000, 96_000],
            fragments_per_node: 346, // 4,151,294 fragments on 12,000 nodes
            prefetch: true,
            paper_worst: vec![(-0.004, 0.004), (-0.01, 0.015), (-0.015, 0.025), (-0.023, 0.032)],
            kind: mixed_workload,
        },
    ];

    if fast_mode() {
        // Smoke version: first two node counts at 1/10 scale with a
        // proportionally thinner workload.
        for study in &mut studies {
            study.nodes = study.nodes.iter().take(2).map(|&n| (n / 10).max(1)).collect();
            study.paper_worst.truncate(2);
            study.fragments_per_node = (study.fragments_per_node / 10).max(4);
        }
    }

    for study in &studies {
        header(&format!("Fig. 8 — {}", study.label));
        row(&["nodes", "fragments", "measured var", "paper var"], &[8, 12, 22, 22]);
        for (i, &nodes) in study.nodes.iter().enumerate() {
            // Paper: fixed per-node workload density within each study row
            // would be weak scaling; Fig. 8 keeps the first row's total.
            let n_frag = study.fragments_per_node * study.nodes[0];
            let frags = (study.kind)(n_frag, 42 + i as u64);
            let report = simulate(
                Box::new(SizeSensitivePolicy::with_defaults(frags)),
                &SimConfig {
                    n_leaders: nodes,
                    prefetch: study.prefetch,
                    speed_jitter: 0.01,
                    seed: 7 + i as u64,
                    ..Default::default()
                },
            );
            let (lo, hi) = report.busy_variation();
            let (plo, phi) = study.paper_worst[i];
            row(
                &[
                    &nodes.to_string(),
                    &n_frag.to_string(),
                    &format!("{}..{}", pct(lo), pct(hi)),
                    &format!("{}..{}", pct(plo), pct(phi)),
                ],
                &[8, 12, 22, 22],
            );
            records.push(format!(
                "{{\"study\":\"{}\",\"nodes\":{},\"fragments\":{},\"var_lo\":{},\"var_hi\":{}}}",
                study.label, nodes, n_frag, lo, hi
            ));
        }
    }

    header("Shape check");
    println!(
        "Expected (paper): variation grows with node count; Sunway's mixed\n\
         workload balances better than ORISE's protein-only one. Both trends\n\
         are visible in the measured columns above."
    );
    write_record("fig08_load_balance", &format!("[{}]", records.join(",")));
}
