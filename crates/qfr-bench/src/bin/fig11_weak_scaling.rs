//! Fig. 11: weak scaling — nodes and fragments doubled together.
//!
//! Paper results (throughput in fragments/second and weak-scaling
//! efficiency):
//!
//! - ORISE water dimer: 2,406.3 fr/s on 750 nodes → 4,772.2 / 9,546.6 /
//!   18,445.1 at 1,500 / 3,000 / 6,000 nodes (99.1 / 99.1 / 99.0%);
//! - ORISE protein: 93.2 fr/s on 750 nodes, efficiencies 99.8 / 99.4 /
//!   99.3%;
//! - Sunway mixed: 1,661.3 fr/s on 12,000 nodes → 3,324.3 / 6,626.9 /
//!   13,239.8 (100.0 / 99.7 / 99.6%).
//!
//! The simulator's time unit is calibrated per study so the smallest-scale
//! throughput matches the paper's absolute number; every larger scale is
//! then a genuine prediction of the balancer + simulator.

use qfr_bench::{fast_mode, header, row, write_record};
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::{protein_workload, water_dimer_workload, FragmentWorkItem};

struct Study {
    label: &'static str,
    nodes: Vec<usize>,
    fragments: Vec<usize>,
    paper_throughput: Vec<f64>,
    kind: fn(usize, u64) -> Vec<FragmentWorkItem>,
}

fn mixed(n: usize, seed: u64) -> Vec<FragmentWorkItem> {
    let mut frags = protein_workload(n / 4, seed);
    let mut water = water_dimer_workload(n - n / 4);
    for (i, f) in water.iter_mut().enumerate() {
        f.id = (n / 4 + i) as u32;
    }
    frags.extend(water);
    frags
}

fn main() {
    let mut studies = [
        Study {
            label: "ORISE / water dimer",
            nodes: vec![750, 1500, 3000, 6000],
            fragments: vec![3_343_536, 6_691_536, 13_387_536, 25_885_440],
            paper_throughput: vec![2406.3, 4772.2, 9546.6, 18445.1],
            kind: |n, _| water_dimer_workload(n),
        },
        Study {
            label: "ORISE / protein",
            nodes: vec![750, 1500, 3000, 6000],
            fragments: vec![88_800, 177_600, 355_200, 710_400],
            paper_throughput: vec![93.2, 186.0, 370.6, 740.2],
            kind: |n, seed| protein_workload(n, seed),
        },
        Study {
            label: "Sunway / mixed",
            nodes: vec![12_000, 24_000, 48_000, 96_000],
            fragments: vec![4_151_294, 8_302_588, 16_605_176, 33_210_352],
            paper_throughput: vec![1661.3, 3324.3, 6626.9, 13239.8],
            kind: mixed,
        },
    ];

    if fast_mode() {
        // Smoke version: first two scales at 1/100 workload, 1/10 nodes
        // (weak scaling only needs the fragments/node ratio held fixed).
        for study in &mut studies {
            study.nodes = study.nodes.iter().take(2).map(|&n| (n / 10).max(1)).collect();
            study.fragments = study.fragments.iter().take(2).map(|&f| (f / 100).max(10)).collect();
            study.paper_throughput.truncate(2);
        }
    }

    let mut records = Vec::new();
    for study in &studies {
        header(&format!("Fig. 11 — {}", study.label));
        row(
            &["nodes", "fragments", "fr/s", "eff.", "paper fr/s", "paper eff."],
            &[8, 12, 12, 8, 12, 10],
        );
        let mut calibration = None;
        let mut base_throughput = None;
        for (i, (&nodes, &nfr)) in study.nodes.iter().zip(&study.fragments).enumerate() {
            let frags = (study.kind)(nfr, 11 + i as u64);
            let report = simulate(
                Box::new(SizeSensitivePolicy::with_defaults(frags)),
                &SimConfig { n_leaders: nodes, seed: 3 + i as u64, ..Default::default() },
            );
            let raw = report.throughput();
            // Calibrate time units on the first row to the paper's
            // absolute throughput.
            let scale = *calibration.get_or_insert(study.paper_throughput[0] / raw);
            let fr_s = raw * scale;
            let base = *base_throughput.get_or_insert(fr_s / nodes as f64);
            let eff = fr_s / nodes as f64 / base;
            let paper_eff = study.paper_throughput[i]
                / study.nodes[i] as f64
                / (study.paper_throughput[0] / study.nodes[0] as f64);
            row(
                &[
                    &nodes.to_string(),
                    &nfr.to_string(),
                    &format!("{fr_s:.1}"),
                    &format!("{:.1}%", 100.0 * eff),
                    &format!("{:.1}", study.paper_throughput[i]),
                    &format!("{:.1}%", 100.0 * paper_eff),
                ],
                &[8, 12, 12, 8, 12, 10],
            );
            records.push(format!(
                "{{\"study\":\"{}\",\"nodes\":{},\"fragments\":{},\"throughput\":{},\"efficiency\":{}}}",
                study.label, nodes, nfr, fr_s, eff
            ));
        }
    }

    header("Shape check");
    println!(
        "Expected (paper): throughput doubles with node count at ≥99%\n\
         efficiency in all three studies (first rows are calibration\n\
         points; later rows are predictions)."
    );
    write_record("fig11_weak_scaling", &format!("[{}]", records.join(",")));
}
