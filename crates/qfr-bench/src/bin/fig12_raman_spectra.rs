//! Fig. 12: Raman spectra of (a) the gas-phase protein and (b) pure water
//! and the solvated protein.
//!
//! Paper (PBE + "light" basis, smearing 5 cm⁻¹ gas phase / 20 cm⁻¹
//! solvated):
//!
//! - (a) gas-phase spike protein: characteristic bands at ≈1030 cm⁻¹ (Phe
//!   ring breathing), ≈1450 cm⁻¹ (CH₂ bending), amide III 1200–1360 cm⁻¹,
//!   amide I region, C–H stretches ≈2900 cm⁻¹;
//! - (b) water (101,250,000 atoms): O–H bending and stretching bands plus
//!   emergent low-frequency intermolecular features; protein + water
//!   (101,299,008 atoms): water obscures the protein signal except the
//!   C–H stretch region, which stays discernible.
//!
//! Defaults are workstation-sized (hundreds of residues, thousands of
//! waters); `--residues N` / `--waters N` scale up. The full 10⁸-atom runs
//! need the paper's 96,000 nodes; our largest runs exercise the identical
//! code path (see EXPERIMENTS.md).

use qfr_bench::{arg_value, header, scaled, write_record};
use qfr_core::RamanWorkflow;
use qfr_geom::{ProteinBuilder, SolvatedSystem, WaterBoxBuilder};
use qfr_solver::RamanSpectrum;

fn band_table(spec: &RamanSpectrum, bands: &[(&str, f64, f64)]) {
    let mut s = spec.clone();
    s.normalize_max();
    let peaks = s.peaks_above(0.01);
    for &(name, lo, hi) in bands {
        let found: Vec<f64> =
            peaks.iter().cloned().filter(|p| (lo..hi).contains(p)).map(|p| p.round()).collect();
        // Band intensity: max normalized intensity inside the window.
        let intensity = s
            .wavenumbers
            .iter()
            .zip(&s.intensities)
            .filter(|(&w, _)| (lo..hi).contains(&w))
            .map(|(_, &i)| i)
            .fold(0.0_f64, f64::max);
        println!(
            "  {name:<24} {lo:>5.0}-{hi:<5.0} | rel. intensity {intensity:>6.3} | peaks {found:?}"
        );
    }
}

fn main() {
    let n_residues: usize =
        arg_value("--residues").and_then(|v| v.parse().ok()).unwrap_or(scaled(200, 30));
    let n_waters: usize =
        arg_value("--waters").and_then(|v| v.parse().ok()).unwrap_or(scaled(3000, 200));
    let lanczos = scaled(160, 60);
    let mut records = Vec::new();

    // ---------------------------------------------------------------
    // (a) gas-phase protein, sigma = 5 cm-1.
    // ---------------------------------------------------------------
    header(&format!("Fig. 12(a) — gas-phase protein ({n_residues} residues)"));
    let protein = ProteinBuilder::new(n_residues).seed(7).build();
    println!("atoms: {}", protein.n_atoms());
    let gas = RamanWorkflow::new(protein.clone())
        .sigma(5.0)
        .lanczos_steps(lanczos)
        .run()
        .expect("gas-phase run");
    println!("{}", gas.summary());
    println!("\npaper band check (present = local peak inside the window):");
    band_table(
        &gas.spectrum,
        &[
            ("Phe ring breathing", 980.0, 1100.0),
            ("amide III", 1200.0, 1360.0),
            ("CH2 bending", 1400.0, 1520.0),
            ("amide I", 1580.0, 1750.0),
            ("C-H stretch", 2800.0, 3050.0),
        ],
    );
    records.push(format!("{{\"panel\":\"a-gas\",\"record\":{}}}", gas.to_json()));

    // ---------------------------------------------------------------
    // (b) pure water, sigma = 20 cm-1.
    // ---------------------------------------------------------------
    header(&format!("Fig. 12(b) — pure water ({n_waters} molecules)"));
    let water = WaterBoxBuilder::new(n_waters).seed(9).build();
    println!("atoms: {}", water.n_atoms());
    let water_run =
        RamanWorkflow::new(water).sigma(20.0).lanczos_steps(lanczos).run().expect("water run");
    println!("{}", water_run.summary());
    band_table(
        &water_run.spectrum,
        &[
            ("low-frequency (2-body)", 50.0, 400.0),
            ("libration", 400.0, 1000.0),
            ("O-H bending", 1550.0, 1850.0),
            ("O-H stretch", 3200.0, 3650.0),
        ],
    );
    records.push(format!("{{\"panel\":\"b-water\",\"record\":{}}}", water_run.to_json()));

    // ---------------------------------------------------------------
    // (b) protein + explicit water, sigma = 20 cm-1.
    // ---------------------------------------------------------------
    header("Fig. 12(b) — protein with explicit water");
    let solvated = SolvatedSystem::build(&protein, 6.0, 3.1, 2.4, 13);
    println!(
        "atoms: {} ({} protein + {} waters)",
        solvated.n_atoms(),
        protein.n_atoms(),
        solvated.n_waters
    );
    let wet = RamanWorkflow::new(solvated)
        .sigma(20.0)
        .lanczos_steps(lanczos)
        .run()
        .expect("solvated run");
    println!("{}", wet.summary());
    band_table(
        &wet.spectrum,
        &[
            ("amide I (obscured?)", 1580.0, 1750.0),
            ("O-H bending (water)", 1550.0, 1850.0),
            ("C-H stretch (visible)", 2800.0, 3050.0),
            ("O-H stretch (water)", 3200.0, 3650.0),
        ],
    );
    records.push(format!("{{\"panel\":\"b-solvated\",\"record\":{}}}", wet.to_json()));

    // ---------------------------------------------------------------
    // Shape checks mirroring the paper's discussion.
    // ---------------------------------------------------------------
    header("Shape checks");
    let mut wetn = wet.spectrum.clone();
    wetn.normalize_max();
    let window_max = |s: &RamanSpectrum, lo: f64, hi: f64| {
        s.wavenumbers
            .iter()
            .zip(&s.intensities)
            .filter(|(&w, _)| (lo..hi).contains(&w))
            .map(|(_, &i)| i)
            .fold(0.0_f64, f64::max)
    };
    let ch = window_max(&wetn, 2800.0, 3050.0);
    let oh = window_max(&wetn, 3200.0, 3650.0);
    println!(
        "solvated: C-H stretch {:.4} vs O-H stretch {:.4} -> C-H {} discernible next to water",
        ch,
        oh,
        if ch > 0.001 { "remains" } else { "is NOT" }
    );
    let mut gasn = gas.spectrum.clone();
    gasn.normalize_max();
    let amide_gas = window_max(&gasn, 1580.0, 1750.0);
    let amide_wet = window_max(&wetn, 1580.0, 1750.0) - 0.0;
    println!(
        "amide I relative intensity: gas {:.3} -> solvated window dominated by water bend ({:.3})",
        amide_gas, amide_wet
    );
    println!("\ngas-phase spectrum:\n{}", gasn.ascii_plot(30, 55));
    println!("solvated spectrum:\n{}", wetn.ascii_plot(30, 55));

    write_record("fig12_raman_spectra", &format!("[{}]", records.join(",")));
}
