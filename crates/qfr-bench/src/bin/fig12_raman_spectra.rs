//! Fig. 12: Raman spectra of (a) the gas-phase protein and (b) pure water
//! and the solvated protein.
//!
//! Paper (PBE + "light" basis, smearing 5 cm⁻¹ gas phase / 20 cm⁻¹
//! solvated):
//!
//! - (a) gas-phase spike protein: characteristic bands at ≈1030 cm⁻¹ (Phe
//!   ring breathing), ≈1450 cm⁻¹ (CH₂ bending), amide III 1200–1360 cm⁻¹,
//!   amide I region, C–H stretches ≈2900 cm⁻¹;
//! - (b) water (101,250,000 atoms): O–H bending and stretching bands plus
//!   emergent low-frequency intermolecular features; protein + water
//!   (101,299,008 atoms): water obscures the protein signal except the
//!   C–H stretch region, which stays discernible.
//!
//! Defaults are workstation-sized (hundreds of residues, thousands of
//! waters); `--residues N` / `--waters N` scale up. The full 10⁸-atom runs
//! need the paper's 96,000 nodes; our largest runs exercise the identical
//! code path (see EXPERIMENTS.md).

use qfr_bench::{arg_value, has_flag, header, peak_rss_kb, scaled, write_record};
use qfr_core::{RamanWorkflow, ShardConfig};
use qfr_geom::{ProteinBuilder, SolvatedSystem, WaterBoxBuilder};
use qfr_solver::RamanSpectrum;

/// `--huge`: the out-of-core scaling demonstration. One large water box
/// runs through the sharded assembly (`--shards K`, spill files on disk,
/// tile-streamed SpMV) and the peak RSS is printed and recorded; with
/// `--unsharded` the same box runs the in-core path instead. CI runs both
/// variants under a hard `ulimit -v` cap sized so the sharded path fits
/// and the in-core path cannot — the enforcement teeth of the paper's
/// "the 10⁸-atom run never holds the full Hessian" claim.
fn run_huge() {
    let n_waters: usize =
        arg_value("--waters").and_then(|v| v.parse().ok()).unwrap_or(scaled(20_000, 4_000));
    let k: usize = arg_value("--shards").and_then(|v| v.parse().ok()).unwrap_or(8);
    let tile_rows: usize =
        arg_value("--tile-rows").and_then(|v| v.parse().ok()).unwrap_or(scaled(1024, 256));
    let lanczos = scaled(120, 40);
    let unsharded = has_flag("--unsharded");
    let mode = if unsharded { "in-core" } else { "sharded" };
    header(&format!("Fig. 12 --huge — {n_waters} waters, {mode} assembly"));

    let system = WaterBoxBuilder::new(n_waters).seed(9).build();
    let n_atoms = system.n_atoms();
    println!("atoms: {n_atoms} ({} dof)", 3 * n_atoms);
    let wf = RamanWorkflow::new(system).sigma(20.0).lanczos_steps(lanczos);
    let spilled0 = qfr_obs::counter::value_of("shard.bytes_spilled").unwrap_or(0);
    let result = if unsharded {
        wf.run().expect("in-core run")
    } else {
        let spill = arg_value("--spill")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| qfr_bench::experiments_dir().join("fig12_huge_spill"));
        let _ = std::fs::remove_dir_all(&spill);
        let run =
            wf.run_sharded(ShardConfig::new(k, &spill).tile_rows(tile_rows)).expect("sharded run");
        let _ = std::fs::remove_dir_all(&spill);
        run
    };
    let spilled = qfr_obs::counter::value_of("shard.bytes_spilled").unwrap_or(0) - spilled0;
    let rss_kb = peak_rss_kb();
    println!("{}", result.summary());
    println!(
        "peak RSS: {:.1} MiB ({mode}; {} B spilled across {} shards)",
        rss_kb as f64 / 1024.0,
        spilled,
        if unsharded { 0 } else { k }
    );
    write_record(
        "fig12_huge",
        &format!(
            "{{\"mode\":\"{mode}\",\"n_atoms\":{n_atoms},\"shards\":{},\
             \"tile_rows\":{tile_rows},\"lanczos\":{lanczos},\
             \"peak_rss_kb\":{rss_kb},\"bytes_spilled\":{spilled},\
             \"hessian_nnz\":{}}}",
            if unsharded { 0 } else { k },
            result.hessian_nnz
        ),
    );
}

fn band_table(spec: &RamanSpectrum, bands: &[(&str, f64, f64)]) {
    let mut s = spec.clone();
    s.normalize_max();
    let peaks = s.peaks_above(0.01);
    for &(name, lo, hi) in bands {
        let found: Vec<f64> =
            peaks.iter().cloned().filter(|p| (lo..hi).contains(p)).map(|p| p.round()).collect();
        // Band intensity: max normalized intensity inside the window.
        let intensity = s
            .wavenumbers
            .iter()
            .zip(&s.intensities)
            .filter(|(&w, _)| (lo..hi).contains(&w))
            .map(|(_, &i)| i)
            .fold(0.0_f64, f64::max);
        println!(
            "  {name:<24} {lo:>5.0}-{hi:<5.0} | rel. intensity {intensity:>6.3} | peaks {found:?}"
        );
    }
}

fn main() {
    if has_flag("--huge") {
        run_huge();
        return;
    }
    let n_residues: usize =
        arg_value("--residues").and_then(|v| v.parse().ok()).unwrap_or(scaled(200, 30));
    let n_waters: usize =
        arg_value("--waters").and_then(|v| v.parse().ok()).unwrap_or(scaled(3000, 200));
    let lanczos = scaled(160, 60);
    let mut records = Vec::new();

    // ---------------------------------------------------------------
    // (a) gas-phase protein, sigma = 5 cm-1.
    // ---------------------------------------------------------------
    header(&format!("Fig. 12(a) — gas-phase protein ({n_residues} residues)"));
    let protein = ProteinBuilder::new(n_residues).seed(7).build();
    println!("atoms: {}", protein.n_atoms());
    let gas = RamanWorkflow::new(protein.clone())
        .sigma(5.0)
        .lanczos_steps(lanczos)
        .run()
        .expect("gas-phase run");
    println!("{}", gas.summary());
    println!("\npaper band check (present = local peak inside the window):");
    band_table(
        &gas.spectrum,
        &[
            ("Phe ring breathing", 980.0, 1100.0),
            ("amide III", 1200.0, 1360.0),
            ("CH2 bending", 1400.0, 1520.0),
            ("amide I", 1580.0, 1750.0),
            ("C-H stretch", 2800.0, 3050.0),
        ],
    );
    records.push(format!("{{\"panel\":\"a-gas\",\"record\":{}}}", gas.to_json()));

    // ---------------------------------------------------------------
    // (b) pure water, sigma = 20 cm-1.
    // ---------------------------------------------------------------
    header(&format!("Fig. 12(b) — pure water ({n_waters} molecules)"));
    let water = WaterBoxBuilder::new(n_waters).seed(9).build();
    println!("atoms: {}", water.n_atoms());
    let water_run =
        RamanWorkflow::new(water).sigma(20.0).lanczos_steps(lanczos).run().expect("water run");
    println!("{}", water_run.summary());
    band_table(
        &water_run.spectrum,
        &[
            ("low-frequency (2-body)", 50.0, 400.0),
            ("libration", 400.0, 1000.0),
            ("O-H bending", 1550.0, 1850.0),
            ("O-H stretch", 3200.0, 3650.0),
        ],
    );
    records.push(format!("{{\"panel\":\"b-water\",\"record\":{}}}", water_run.to_json()));

    // ---------------------------------------------------------------
    // (b) protein + explicit water, sigma = 20 cm-1.
    // ---------------------------------------------------------------
    header("Fig. 12(b) — protein with explicit water");
    let solvated = SolvatedSystem::build(&protein, 6.0, 3.1, 2.4, 13);
    println!(
        "atoms: {} ({} protein + {} waters)",
        solvated.n_atoms(),
        protein.n_atoms(),
        solvated.n_waters
    );
    let wet = RamanWorkflow::new(solvated)
        .sigma(20.0)
        .lanczos_steps(lanczos)
        .run()
        .expect("solvated run");
    println!("{}", wet.summary());
    band_table(
        &wet.spectrum,
        &[
            ("amide I (obscured?)", 1580.0, 1750.0),
            ("O-H bending (water)", 1550.0, 1850.0),
            ("C-H stretch (visible)", 2800.0, 3050.0),
            ("O-H stretch (water)", 3200.0, 3650.0),
        ],
    );
    records.push(format!("{{\"panel\":\"b-solvated\",\"record\":{}}}", wet.to_json()));

    // ---------------------------------------------------------------
    // Shape checks mirroring the paper's discussion.
    // ---------------------------------------------------------------
    header("Shape checks");
    let mut wetn = wet.spectrum.clone();
    wetn.normalize_max();
    let window_max = |s: &RamanSpectrum, lo: f64, hi: f64| {
        s.wavenumbers
            .iter()
            .zip(&s.intensities)
            .filter(|(&w, _)| (lo..hi).contains(&w))
            .map(|(_, &i)| i)
            .fold(0.0_f64, f64::max)
    };
    let ch = window_max(&wetn, 2800.0, 3050.0);
    let oh = window_max(&wetn, 3200.0, 3650.0);
    println!(
        "solvated: C-H stretch {:.4} vs O-H stretch {:.4} -> C-H {} discernible next to water",
        ch,
        oh,
        if ch > 0.001 { "remains" } else { "is NOT" }
    );
    let mut gasn = gas.spectrum.clone();
    gasn.normalize_max();
    let amide_gas = window_max(&gasn, 1580.0, 1750.0);
    let amide_wet = window_max(&wetn, 1580.0, 1750.0) - 0.0;
    println!(
        "amide I relative intensity: gas {:.3} -> solvated window dominated by water bend ({:.3})",
        amide_gas, amide_wet
    );
    println!("\ngas-phase spectrum:\n{}", gasn.ascii_plot(30, 55));
    println!("solvated spectrum:\n{}", wetn.ascii_plot(30, 55));

    write_record("fig12_raman_spectra", &format!("[{}]", records.join(",")));
}
