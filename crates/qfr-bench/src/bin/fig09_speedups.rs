//! Fig. 9: step-by-step speedups of symmetry-aware strength reduction
//! (Section V-D) then elastic workload offloading (Section V-C).
//!
//! Paper results, per-fragment DFPT cycle across 9–68-atom fragments:
//!
//! - strength reduction alone: 3.0–4.4x on ORISE (avg 3.7x), up to 6.0x on
//!   Sunway (avg 3.7x);
//! - plus elastic offloading: 6.3–11.6x on ORISE (avg 8.2x), up to 16.2x on
//!   Sunway (avg 11.2x); GEMMs batched with stride 32.
//!
//! Here the DFPT mini-engine runs real displacement cycles on real
//! fragments; the naive-vs-reduced comparison is *measured* (identical
//! outputs, FLOP-verified), while the offloading stage prices the cycle's
//! scattered GEMM stream against the modeled ORISE/Sunway accelerators
//! (DESIGN.md substitution: no GPUs in this environment).

use qfr_bench::{arg_value, header, row, scaled, write_record};
use qfr_dfpt::displacement::{displacement_cycle, n1_phase_gemm_jobs, DisplacementConfig};
use qfr_dfpt::response::ResponseConfig;
use qfr_dfpt::scf::{ScfConfig, ScfSolver};
use qfr_fragment::{Decomposition, DecompositionParams, JobKind};
use qfr_geom::{ProteinBuilder, WaterBoxBuilder};
use qfr_sched::machine::MachineModel;
use qfr_sched::offload::ModeledAccelerator;

fn main() {
    let grid_dim: usize = arg_value("--grid").and_then(|v| v.parse().ok()).unwrap_or(16);
    let batch: usize = arg_value("--batch").and_then(|v| v.parse().ok()).unwrap_or(64);

    // Fragments spanning the paper's size range: a water dimer (6), then
    // capped protein fragments of growing size.
    let mut fragments = Vec::new();
    {
        let sys = WaterBoxBuilder::new(2).seed(1).spacing(2.9).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = d
            .jobs
            .iter()
            .find(|j| matches!(j.kind, JobKind::WaterWaterDimer { .. }))
            .expect("dimer");
        fragments.push(("water dimer".to_string(), job.structure(&sys)));
    }
    for n_res in scaled(vec![3usize, 5, 7], vec![3usize]) {
        let sys = ProteinBuilder::new(n_res).seed(n_res as u64).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = d
            .jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::CappedFragment { .. }))
            .max_by_key(|j| j.size())
            .expect("fragment");
        fragments.push((format!("{}-atom fragment", job.size()), job.structure(&sys)));
    }

    let orise = ModeledAccelerator::from_machine(&MachineModel::orise());
    let sunway = ModeledAccelerator::from_machine(&MachineModel::sunway());

    header("Fig. 9 — per-fragment DFPT cycle speedups");
    row(
        &["fragment", "atoms", "BLAS-opt", "+offload(ORISE)", "+offload(Sunway)"],
        &[18, 6, 10, 16, 16],
    );

    let mut blas_speedups = Vec::new();
    let mut orise_speedups = Vec::new();
    let mut sunway_speedups = Vec::new();
    let mut records = Vec::new();

    for (label, frag) in &fragments {
        let scf = ScfSolver {
            config: ScfConfig { max_grid_dim: grid_dim, grid_spacing: 0.45, ..Default::default() },
        }
        .solve(frag);

        let mut cfg = DisplacementConfig::new(0, 0);
        cfg.response = ResponseConfig { batch_size: batch, ..Default::default() };

        // --- naive path (no strength reduction) ---
        cfg.response.use_symmetry_reduction = false;
        let (resp_naive, prof_naive) = displacement_cycle(&scf, frag, &cfg);
        // --- reduced path ---
        cfg.response.use_symmetry_reduction = true;
        let (resp_fast, prof_fast) = displacement_cycle(&scf, frag, &cfg);
        assert!(
            resp_naive.h1.max_abs_diff(&resp_fast.h1) < 1e-8,
            "optimization changed the physics"
        );
        // FLOP-based speedup of the GEMM-bearing work (wall times at this
        // scale are noise-dominated; FLOPs are exact).
        let gemm_naive =
            prof_naive.phases.n1_flops + prof_naive.phases.h1_flops + prof_naive.pulay_flops;
        let gemm_fast =
            prof_fast.phases.n1_flops + prof_fast.phases.h1_flops + prof_fast.pulay_flops;
        let blas_speedup = gemm_naive as f64 / gemm_fast as f64;

        // --- elastic offloading of the reduced cycle's GEMM stream ---
        // Offload gain = scattered-host time vs batched-accelerator time
        // for the cycle's real GEMM job stream (stride 32, as in the
        // paper).
        let jobs = n1_phase_gemm_jobs(&scf, &resp_fast.p1, batch);
        let host_seconds = |j: &qfr_linalg::batch::GemmJob| j.flops() as f64 / 30e9; // ~30 GFLOPS host core
        let scattered_host: f64 = jobs.iter().map(host_seconds).sum::<f64>().max(1e-12);
        let gain_orise = scattered_host / orise.batched_seconds(&jobs, 32).max(1e-12);
        let gain_sunway = scattered_host / sunway.batched_seconds(&jobs, 32).max(1e-12);
        // Amdahl combination with the paper's measured GEMM time share
        // (Section IV-B: 85% of the Hamiltonian phase; ~93% across the
        // whole cycle once the density phase is included).
        const GEMM_TIME_SHARE: f64 = 0.93;
        let combined = |gain: f64| {
            let t_opt = (1.0 - GEMM_TIME_SHARE) + GEMM_TIME_SHARE / blas_speedup / gain.max(1e-12);
            1.0 / t_opt
        };
        let orise_combined = combined(gain_orise);
        let sunway_combined = combined(gain_sunway);

        blas_speedups.push(blas_speedup);
        orise_speedups.push(orise_combined);
        sunway_speedups.push(sunway_combined);
        row(
            &[
                label,
                &frag.n_atoms().to_string(),
                &format!("{blas_speedup:.1}x"),
                &format!("{orise_combined:.1}x"),
                &format!("{sunway_combined:.1}x"),
            ],
            &[18, 6, 10, 16, 16],
        );
        records.push(format!(
            "{{\"fragment\":\"{label}\",\"atoms\":{},\"blas_speedup\":{blas_speedup},\"orise\":{orise_combined},\"sunway\":{sunway_combined}}}",
            frag.n_atoms()
        ));
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    header("Averages vs paper");
    println!(
        "BLAS-opt speedup   : avg {:.1}x   (paper ORISE 3.7x avg, 3.0-4.4x)",
        avg(&blas_speedups)
    );
    println!("+offload on ORISE  : avg {:.1}x   (paper 8.2x avg, 6.3-11.6x)", avg(&orise_speedups));
    println!(
        "+offload on Sunway : avg {:.1}x   (paper 11.2x avg, up to 16.2x)",
        avg(&sunway_speedups)
    );
    write_record("fig09_speedups", &format!("[{}]", records.join(",")));
}
