//! Sharding ablation: the out-of-core assembly must be a pure memory
//! optimization — the spectrum for every shard count `K` has to be
//! **bit-identical** to the in-core run (max |Δ| exactly 0.0, not small).
//!
//! For K ∈ {1, 4, 16} the same water box runs through
//! `RamanWorkflow::run_sharded` against a fresh spill directory; the
//! record pins the max absolute spectrum/IR deviation from the in-core
//! reference together with the deterministic spill counters, and
//! `bench_gate` enforces `max_abs_diff == 0` as a CI floor.
//!
//! `--fast` (or `QFR_BENCH_FAST=1`) runs the scaled-down CI smoke version.

use qfr_bench::{header, row, scaled, write_record};
use qfr_core::{RamanWorkflow, ShardConfig};
use qfr_geom::WaterBoxBuilder;

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "grid mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0_f64, f64::max)
}

fn counter(name: &str) -> u64 {
    qfr_obs::counter::value_of(name).unwrap_or(0)
}

fn main() {
    let n_waters: usize = scaled(600, 60);
    let lanczos = scaled(120, 50);
    let tile_rows: usize = scaled(256, 32);
    header(&format!("Sharding ablation — {n_waters} waters, K in {{1, 4, 16}}"));

    let system = WaterBoxBuilder::new(n_waters).seed(17).build();
    let wf = RamanWorkflow::new(system).sigma(20.0).lanczos_steps(lanczos);
    let in_core = wf.run().expect("in-core reference run");
    println!("in-core reference: {}", in_core.summary());

    let spill_root = qfr_bench::experiments_dir().join("ablation_shards_spill");
    let _ = std::fs::remove_dir_all(&spill_root); // stale spills must not resume
    let mut records = Vec::new();
    println!();
    row(
        &["K", "max|dRaman|", "max|dIR|", "nnz", "spilled(B)", "tiles streamed"],
        &[4, 12, 12, 10, 12, 14],
    );
    for k in [1usize, 4, 16] {
        let spilled0 = counter("shard.bytes_spilled");
        let streamed0 = counter("shard.tiles_streamed");
        let cfg = ShardConfig::new(k, spill_root.join(format!("k{k}"))).tile_rows(tile_rows);
        let sharded = wf.run_sharded(cfg).expect("sharded run");
        let d_raman = max_abs_diff(&sharded.spectrum.intensities, &in_core.spectrum.intensities);
        let d_ir = max_abs_diff(&sharded.ir.intensities, &in_core.ir.intensities);
        let spilled = counter("shard.bytes_spilled") - spilled0;
        let streamed = counter("shard.tiles_streamed") - streamed0;
        assert_eq!(sharded.hessian_nnz, in_core.hessian_nnz, "K={k} changed the sparsity");
        assert_eq!(d_raman, 0.0, "K={k} broke Raman bit-identity (max |d| = {d_raman:e})");
        assert_eq!(d_ir, 0.0, "K={k} broke IR bit-identity (max |d| = {d_ir:e})");
        row(
            &[
                &k.to_string(),
                &format!("{d_raman:.1e}"),
                &format!("{d_ir:.1e}"),
                &sharded.hessian_nnz.to_string(),
                &spilled.to_string(),
                &streamed.to_string(),
            ],
            &[4, 12, 12, 10, 12, 14],
        );
        records.push(format!(
            "{{\"k\":{k},\"tile_rows\":{tile_rows},\"max_abs_diff\":{},\
             \"max_abs_diff_ir\":{d_ir},\"hessian_nnz\":{},\
             \"bytes_spilled\":{spilled},\"tiles_streamed\":{streamed}}}",
            d_raman, sharded.hessian_nnz
        ));
    }
    let _ = std::fs::remove_dir_all(&spill_root);

    println!(
        "\nReading: every K replays the global job order restricted to its\n\
         rows, the triplet sort is stable, and the solver streams the same\n\
         CSR rows in the same order — so resharding cannot move a single\n\
         bit of the spectrum, only the peak residency (O(n/K) per shard)."
    );
    write_record("ablation_shards", &format!("[{}]", records.join(",")));
}
