//! CI counter-based performance-regression gate.
//!
//! Runs a set of **pinned deterministic workloads** — a scheduled Raman
//! run with injected faults, one real DFPT displacement cycle, a modeled
//! offload pricing pass, and a simulator fault run — then snapshots the
//! deterministic counter registry (`qfr_obs::counter::deterministic_json`).
//!
//! - `--write FILE` stores the snapshot as the committed baseline;
//! - `--check FILE` compares against the baseline and exits non-zero on
//!   any drift, printing a per-counter diff;
//! - no flag prints the snapshot.
//!
//! Because the gate compares *deterministic counters* (FLOPs, GEMM
//! launches, Lanczos steps, task lifecycle counts) rather than wall-clock,
//! it is immune to machine noise: a diff means an algorithmic change
//! (different work performed), which is exactly what a perf gate should
//! flag. Refresh procedure: DESIGN.md §8.

use qfr_bench::arg_value;
use qfr_core::RamanWorkflow;
use qfr_dfpt::displacement::{displacement_cycle, n1_phase_gemm_jobs, DisplacementConfig};
use qfr_dfpt::scf::{ScfConfig, ScfSolver};
use qfr_fragment::{Decomposition, DecompositionParams};
use qfr_geom::WaterBoxBuilder;
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::fault::{FaultPlan, RecoveryPolicy};
use qfr_sched::machine::MachineModel;
use qfr_sched::offload::{CpuAccelerator, ModeledAccelerator};
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::protein_workload;

/// The pinned workloads. Every input is a fixed seed or constant; every
/// code path consulted is deterministic for fixed inputs, so the counter
/// snapshot is a pure function of the source code.
fn run_pinned_workloads() {
    // 1. Scheduled Raman run with injected failures and a permanent
    //    (quarantining) fragment: exercises the workflow stages, the
    //    threaded master/leader runtime, the recovery path, and the
    //    solver counters. Exactly-once slot locking in `run_scheduled`
    //    keeps the engine-side counters independent of scheduling races.
    let system = WaterBoxBuilder::new(20).seed(7).build();
    let result = RamanWorkflow::new(system)
        .sigma(25.0)
        .run_scheduled(qfr_sched::RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 2,
            recovery: RecoveryPolicy { max_attempts: 2, backoff_base: 1e-4, ..Default::default() },
            faults: FaultPlan::with_failure_rate(2024, 0.05).permanent([3]),
            ..Default::default()
        })
        .expect("scheduled run");
    assert!(result.recovery.is_some(), "scheduled run must report recovery");

    // 2. One real DFPT displacement cycle on a water monomer: exercises
    //    SCF, Poisson/FFT, the four response phases, and the GEMM/FLOP
    //    counters of the instrumented kernels.
    let sys = WaterBoxBuilder::new(1).seed(1).build();
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let frag = d.jobs[0].structure(&sys);
    let scf = ScfSolver {
        config: ScfConfig { max_grid_dim: 16, grid_spacing: 0.5, ..Default::default() },
    }
    .solve(&frag);
    let cfg = DisplacementConfig::new(0, 2);
    let (resp, _profile) = displacement_cycle(&scf, &frag, &cfg);

    // 3. Modeled offload pricing over the cycle's real GEMM stream:
    //    exercises the bytes-moved counter for both scattered and batched
    //    execution.
    let jobs = n1_phase_gemm_jobs(&scf, &resp.p1, 48);
    let accel = ModeledAccelerator::from_machine(&MachineModel::orise());
    let _ = accel.scattered_seconds(&jobs);
    let _ = accel.batched_seconds(&jobs, 32);
    let _ = CpuAccelerator.batched_seconds(&jobs, 32);

    // 4. Simulator fault run with an MTBF-derived failure rate (an
    //    800-hour ORISE campaign over 2,000 tasks ≈ 4.8% per attempt —
    //    enough retries and quarantines to pin the recovery counters
    //    without degenerating into all-fail): exercises the
    //    discrete-event executor's (shared) lifecycle counters.
    let n_frag = 2_000;
    let plan = FaultPlan::from_machine(&MachineModel::orise(), 800.0, n_frag, 11);
    let _report = simulate(
        Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        &SimConfig {
            n_leaders: 100,
            faults: plan,
            recovery: RecoveryPolicy { max_attempts: 3, backoff_base: 0.5, ..Default::default() },
            ..Default::default()
        },
    );

    // 5. Checkpoint/restart cycle: a checkpointed scheduled run, a
    //    simulated kill (every third job survives in the checkpoint), and
    //    a same-seed restart. Pins `core.checkpoint.saves`,
    //    `core.checkpoint.jobs_resumed`, and — through the exactly-once
    //    slot locking — that the restart recomputes only the missing jobs
    //    (`model.engine.fragments`).
    let ckpt = std::env::temp_dir().join("qfr_metrics_baseline.qfrc");
    std::fs::remove_file(&ckpt).ok();
    let wf =
        RamanWorkflow::new(WaterBoxBuilder::new(10).seed(11).build()).sigma(25.0).lanczos_steps(40);
    let sched = || qfr_core::ScheduledConfig {
        runtime: qfr_sched::RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 2,
            ..Default::default()
        },
        checkpoint: Some(ckpt.clone()),
        checkpoint_interval: 4,
    };
    wf.run_scheduled_with(sched()).expect("checkpointed run");
    let d = wf.decompose();
    let mut slots =
        qfr_core::checkpoint::load_partial(&ckpt, &d, wf.system()).expect("load checkpoint");
    for (i, slot) in slots.iter_mut().enumerate() {
        if i % 3 != 0 {
            *slot = None;
        }
    }
    qfr_core::checkpoint::save_partial(&ckpt, &d, wf.system(), &slots).expect("partial checkpoint");
    let restarted = wf.run_scheduled_with(sched()).expect("restarted run");
    assert!(
        restarted.recovery.as_ref().is_some_and(|r| r.resumed_jobs > 0),
        "restart must resume from the checkpoint"
    );
    std::fs::remove_file(&ckpt).ok();

    // 6. Content-addressed cache cycle: a cold + warm cached run. Misses
    //    equal the distinct fragment keys of the cold run, warm-run hits
    //    equal the job count, and `cache.bytes` the resident payload —
    //    all deterministic because the working set fits capacity and
    //    near mode is off. Pins `cache.hits` / `cache.misses` /
    //    `cache.bytes` in the gate (and the gate asserts hits > 0 below).
    let cache = std::sync::Arc::new(qfr_cache::FragmentCache::new(Default::default()));
    let wf = RamanWorkflow::new(WaterBoxBuilder::new(12).seed(13).build())
        .sigma(25.0)
        .lanczos_steps(40)
        .with_cache(cache);
    let cold = wf.run().expect("cold cached run");
    let warm = wf.run().expect("warm cached run");
    assert_eq!(
        warm.spectrum.intensities, cold.spectrum.intensities,
        "cache must preserve bit-identity"
    );

    // 7. Graph decomposition of the three non-chain scenarios (ligand,
    //    disulfide bridge, polymer melt): pins the covalent partitioner's
    //    `fragment.graph.partitions` / `fragment.graph.bonds_cut`
    //    counters — a drift means the bond scoring, bridge detection or
    //    tree partitioning changed the cuts it makes.
    for (name, seed) in [("protein-ligand", 3), ("disulfide", 5), ("polymer-melt", 7)] {
        let sys = qfr_geom::build_scenario(name, seed).expect("known scenario");
        let d = Decomposition::new(&sys, DecompositionParams::default());
        assert!(d.stats.n_graph_partitions > 0, "{name} must take the graph path");
    }

    // 8. Packed-panel kernels + the opt-in mixed-precision floor
    //    (DESIGN.md §15): one fixed-seed GEMM through the packed f64
    //    driver and one mixed model-DFPT spectrum. Pins
    //    `linalg.gemm.packed_calls` and `linalg.gemm.flops_f32` (and the
    //    gate asserts both are nonzero below). The mixed run bypasses the
    //    fragment cache and checkpointing by construction, so it adds no
    //    nondeterministic counter traffic.
    let a = qfr_linalg::DMatrix::from_fn(96, 64, |i, j| ((i * 31 + j * 7) % 17) as f64 - 8.0);
    let b = qfr_linalg::DMatrix::from_fn(64, 80, |i, j| ((i * 13 + j * 5) % 19) as f64 - 9.0);
    let mut c = qfr_linalg::DMatrix::zeros(96, 80);
    qfr_linalg::gemm::gemm_packed(&mut c, &a, &b, 1.0, 0.0);
    let mixed = RamanWorkflow::new(WaterBoxBuilder::new(2).seed(11).build())
        .sigma(25.0)
        .lanczos_steps(40)
        .engine(qfr_core::EngineKind::ModelDfpt)
        .precision(qfr_linalg::GemmPrecision::MixedF32)
        .run()
        .expect("mixed-precision run");
    assert!(!mixed.spectrum.intensities.is_empty(), "mixed run must produce a spectrum");
}

/// Parses the compact `{"name":value,...}` object the counter registry
/// emits. Hand-rolled on purpose: counter names contain no escapes.
fn parse_counters(json: &str) -> Vec<(String, u64)> {
    let inner = json.trim().trim_start_matches('{').trim_end_matches('}');
    inner
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (name, value) = pair.split_once(':').expect("malformed counter pair");
            (name.trim().trim_matches('"').to_string(), value.trim().parse().expect("count"))
        })
        .collect()
}

fn main() {
    qfr_obs::reset_all();
    qfr_linalg::flops::reset();
    run_pinned_workloads();
    let snapshot = qfr_obs::counter::deterministic_json();

    // The pinned workloads traverse the DFPT hot path, so the symmetry
    // strength reduction must have fired: a zero here means the symmetric
    // call sites regressed to the general GEMM.
    let saved = qfr_obs::counter::value_of("linalg.gemm.flops_saved_symmetry").unwrap_or(0);
    assert!(saved > 0, "linalg.gemm.flops_saved_symmetry must be > 0 on the pinned workload");
    let syrk_calls = qfr_obs::counter::value_of("linalg.syrk.calls").unwrap_or(0);
    assert!(syrk_calls > 0, "linalg.syrk.calls must be > 0 on the pinned workload");
    // The DFPT hot loops must really dispatch through the accelerator: a
    // zero here means the gather points regressed to direct kernel calls.
    let offloaded = qfr_obs::counter::value_of("sched.offload.executed_jobs").unwrap_or(0);
    assert!(offloaded > 0, "sched.offload.executed_jobs must be > 0 on the pinned workload");
    // The cached workload's warm run must actually be served from the
    // cache: a zero here means the workflow stopped routing fragment
    // computes through it.
    let cache_hits = qfr_obs::counter::value_of("cache.hits").unwrap_or(0);
    assert!(cache_hits > 0, "cache.hits must be > 0 on the pinned workload");
    // The scenario workload must route through the graph partitioner and
    // actually cut bonds somewhere (the disulfide chains exceed the
    // fragment budget): zeros mean the fallback routing regressed.
    let graph_parts = qfr_obs::counter::value_of("fragment.graph.partitions").unwrap_or(0);
    assert!(graph_parts > 0, "fragment.graph.partitions must be > 0 on the pinned workload");
    let bonds_cut = qfr_obs::counter::value_of("fragment.graph.bonds_cut").unwrap_or(0);
    assert!(bonds_cut > 0, "fragment.graph.bonds_cut must be > 0 on the pinned workload");
    // The packed-panel driver and the mixed-precision floor must both have
    // fired: zeros mean the packed dispatch or the f32 FLOP accounting
    // regressed (DESIGN.md §15).
    let packed_calls = qfr_obs::counter::value_of("linalg.gemm.packed_calls").unwrap_or(0);
    assert!(packed_calls > 0, "linalg.gemm.packed_calls must be > 0 on the pinned workload");
    let flops_f32 = qfr_obs::counter::value_of("linalg.gemm.flops_f32").unwrap_or(0);
    assert!(flops_f32 > 0, "linalg.gemm.flops_f32 must be > 0 on the pinned workload");

    if let Some(path) = arg_value("--write") {
        std::fs::write(&path, format!("{snapshot}\n")).expect("write baseline");
        println!("baseline written to {path}");
        return;
    }
    if let Some(path) = arg_value("--check") {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        if baseline.trim() == snapshot.trim() {
            println!("metrics gate PASS: counters match {path}");
            return;
        }
        eprintln!("metrics gate FAIL: deterministic counters drifted from {path}");
        let old: std::collections::BTreeMap<_, _> = parse_counters(&baseline).into_iter().collect();
        let new: std::collections::BTreeMap<_, _> = parse_counters(&snapshot).into_iter().collect();
        for name in old.keys().chain(new.keys()).collect::<std::collections::BTreeSet<_>>() {
            match (old.get(name), new.get(name)) {
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => eprintln!("  {name}: baseline {a} -> current {b}"),
                (Some(a), None) => eprintln!("  {name}: baseline {a} -> (missing)"),
                (None, Some(b)) => eprintln!("  {name}: (new) -> current {b}"),
                (None, None) => unreachable!(),
            }
        }
        eprintln!(
            "\nIf the change is intentional, refresh with:\n  \
             cargo run --release -p qfr-bench --bin metrics_baseline -- --write {path}"
        );
        std::process::exit(1);
    }
    println!("{snapshot}");
}
