//! Ablation: the GAGQ augmentation, the Lanczos step count, and the KPM
//! baseline.
//!
//! Section V-E claims "the Lanczos algorithm with GAGQ is more accurate
//! than the standard Lanczos algorithm, with negligible additional cost".
//! This study measures the claim directly: spectrum accuracy (cosine
//! similarity vs dense diagonalization) as a function of the step count k,
//! with and without the augmentation, plus the extra cost of the
//! (2k−1)-point rule. The Kernel Polynomial Method — the standard
//! alternative for matrix spectral densities — runs on the same Hessian at
//! matched matvec budgets as the external baseline.

use qfr_bench::{header, row, scaled, write_record};
use qfr_core::RamanWorkflow;
use qfr_geom::WaterBoxBuilder;
use qfr_solver::RamanOptions;

fn main() {
    let n_waters = scaled(40, 12);
    let system = WaterBoxBuilder::new(n_waters).seed(3).build();
    println!("system: {} atoms ({} dof)", system.n_atoms(), system.dof());

    let base = RamanWorkflow::new(system).sigma(25.0);
    let dense = base.run_dense_reference().expect("dense reference");

    header("GAGQ ablation — accuracy vs Lanczos steps");
    row(&["k", "Gauss sim.", "GAGQ sim.", "Gauss t(s)", "GAGQ t(s)"], &[6, 12, 12, 12, 12]);
    let mut records = Vec::new();
    for k in scaled(vec![5usize, 10, 20, 40, 80, 160], vec![5usize, 10, 20]) {
        let opts = |gagq: bool| RamanOptions {
            lanczos_steps: k,
            sigma: 25.0,
            use_gagq: gagq,
            ..Default::default()
        };
        let (plain, t_plain) =
            qfr_obs::timed("bench.gagq.plain", || base.clone().raman_options(opts(false)).run());
        let plain = plain.expect("plain");
        let (gagq, t_gagq) =
            qfr_obs::timed("bench.gagq.gagq", || base.clone().raman_options(opts(true)).run());
        let gagq = gagq.expect("gagq");
        let sim_plain = plain.spectrum.cosine_similarity(&dense.spectrum);
        let sim_gagq = gagq.spectrum.cosine_similarity(&dense.spectrum);
        row(
            &[
                &k.to_string(),
                &format!("{sim_plain:.5}"),
                &format!("{sim_gagq:.5}"),
                &format!("{t_plain:.2}"),
                &format!("{t_gagq:.2}"),
            ],
            &[6, 12, 12, 12, 12],
        );
        records.push(format!(
            "{{\"k\":{k},\"gauss_similarity\":{sim_plain},\"gagq_similarity\":{sim_gagq},\"gauss_s\":{t_plain},\"gagq_s\":{t_gagq}}}"
        ));
    }
    println!(
        "\nReading: at every truncated k, GAGQ similarity >= plain Gauss at\n\
         essentially identical cost (one extra small tridiagonal eigensolve),\n\
         matching the paper's 'more accurate ... with negligible additional\n\
         cost'."
    );

    // ----- KPM baseline at matched matvec budgets -----
    header("KPM baseline (Jackson-damped Chebyshev) vs Lanczos/GAGQ");
    {
        use qfr_fragment::{
            assemble, Decomposition, DecompositionParams, FragmentEngine, MassWeighted,
        };
        use qfr_model::ForceFieldEngine;
        let sys = qfr_geom::WaterBoxBuilder::new(n_waters).seed(3).build();
        let engine = ForceFieldEngine::new();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let responses: Vec<_> = d.jobs.iter().map(|j| engine.compute(&j.structure(&sys))).collect();
        let asm = assemble::assemble(&d.jobs, &responses, sys.n_atoms());
        let mw = MassWeighted::new(&asm, &sys.masses());
        let dense_opts = RamanOptions { sigma: 25.0, ..Default::default() };
        let dense_ref =
            qfr_solver::raman_dense_reference(&mw.hessian.to_dense(), &mw.dalpha, &dense_opts);
        row(&["matvecs/vector", "Lanczos+GAGQ sim.", "KPM sim."], &[14, 18, 12]);
        for budget in scaled(vec![32usize, 64, 128, 256], vec![16usize, 32]) {
            let lz_opts = RamanOptions { lanczos_steps: budget, sigma: 25.0, ..Default::default() };
            let lz = qfr_solver::raman_lanczos(&mw.hessian, &mw.dalpha, &lz_opts)
                .cosine_similarity(&dense_ref);
            let kpm = qfr_solver::raman_kpm(&mw.hessian, &mw.dalpha, budget, &lz_opts)
                .cosine_similarity(&dense_ref);
            row(&[&budget.to_string(), &format!("{lz:.5}"), &format!("{kpm:.5}")], &[14, 18, 12]);
            records.push(format!("{{\"budget\":{budget},\"lanczos_gagq\":{lz},\"kpm\":{kpm}}}"));
        }
        println!(
            "\nReading: at equal matvec budgets the Lanczos/GAGQ nodes adapt to\n\
             the spectral measure and win; KPM's uniform kernel over-broadens\n\
             low-frequency features on the wavenumber axis — the quantified\n\
             justification for the paper's Section V-E solver choice."
        );
    }
    write_record("ablation_gagq", &format!("[{}]", records.join(",")));
}
