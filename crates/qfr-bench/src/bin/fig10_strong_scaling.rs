//! Fig. 10: strong scaling on both supercomputers.
//!
//! Paper results (parallel efficiency vs the smallest node count):
//!
//! - ORISE water dimer: 99.1% at 1,500 nodes, "remains satisfying" at
//!   3,000 and 6,000;
//! - ORISE protein: 96.7% / 95.4% / 91.1% at 1,500 / 3,000 / 6,000 nodes;
//! - Sunway mixed: 99.9% / 98.7% / 96.2% at 24,000 / 48,000 / 96,000 nodes.
//!
//! Regenerated with the discrete-event simulator over the same
//! system-size-sensitive balancer. A fixed total workload is re-scheduled
//! at each node count.

use qfr_bench::{header, row, scaled, write_record};
use qfr_sched::balancer::SizeSensitivePolicy;
use qfr_sched::simulator::{parallel_efficiency, strong_scaling_sweep, SimConfig};
use qfr_sched::task::{protein_workload, water_dimer_workload, FragmentWorkItem};

fn mixed_workload(n: usize) -> Vec<FragmentWorkItem> {
    let mut frags = protein_workload(n / 4, 5);
    let mut water = water_dimer_workload(n - n / 4);
    for (i, f) in water.iter_mut().enumerate() {
        f.id = (n / 4 + i) as u32;
    }
    frags.extend(water);
    frags
}

fn run_study(
    label: &str,
    workload: impl Fn() -> Vec<FragmentWorkItem>,
    nodes: &[usize],
    paper_eff: &[f64],
    records: &mut Vec<String>,
) {
    header(&format!("Fig. 10 — {label}"));
    let sweep = strong_scaling_sweep(
        || Box::new(SizeSensitivePolicy::with_defaults(workload())),
        nodes,
        &SimConfig::default(),
    );
    let eff = parallel_efficiency(&sweep);
    row(&["nodes", "speedup", "efficiency", "paper eff."], &[8, 10, 12, 12]);
    for (i, ((&(n, t), e), pe)) in sweep.iter().zip(&eff).zip(paper_eff).enumerate() {
        let speedup = sweep[0].1 / t;
        row(
            &[
                &n.to_string(),
                &format!("{speedup:.2}x"),
                &format!("{:.1}%", 100.0 * e),
                &format!("{:.1}%", 100.0 * pe),
            ],
            &[8, 10, 12, 12],
        );
        records.push(format!(
            "{{\"study\":\"{label}\",\"nodes\":{n},\"efficiency\":{e},\"paper\":{pe}}}"
        ));
        let _ = i;
    }
}

fn main() {
    let mut records = Vec::new();
    // Fast mode shrinks workload and machine together (same ~4.5k
    // fragments/node density), keeping the efficiency trend visible.
    let wd_frags = scaled(3_343_536, 30_000);
    let prot_frags = scaled(88_800, 8_000);
    let mixed_frags = scaled(4_151_294, 40_000);
    let orise_nodes = scaled(vec![750, 1500, 3000, 6000], vec![75, 150, 300]);
    let sunway_nodes = scaled(vec![12_000, 24_000, 48_000, 96_000], vec![120, 240, 480]);
    run_study(
        "ORISE / water dimer",
        || water_dimer_workload(wd_frags),
        &orise_nodes,
        &[1.0, 0.991, 0.99, 0.99],
        &mut records,
    );
    run_study(
        "ORISE / protein",
        || protein_workload(prot_frags, 3),
        &orise_nodes,
        &[1.0, 0.967, 0.954, 0.911],
        &mut records,
    );
    run_study(
        "Sunway / mixed",
        || mixed_workload(mixed_frags),
        &sunway_nodes,
        &[1.0, 0.999, 0.987, 0.962],
        &mut records,
    );

    header("Shape check");
    println!(
        "Expected (paper): near-linear speedup; protein efficiency degrades\n\
         faster than water dimer (size variance); Sunway mixed stays above\n\
         96% out to the full machine."
    );
    write_record("fig10_strong_scaling", &format!("[{}]", records.join(",")));
}
