//! Ablation: scheduling-policy comparison.
//!
//! DESIGN.md calls out the system-size-sensitive balancer as a key design
//! choice; this study quantifies it against three baselines on the Fig. 8
//! protein workload: random chunking, arrival-order chunking, and sorted
//! singletons (LPT — best balance, maximal master traffic). Metrics:
//! busy-time variation (the Fig. 8 ordinate), makespan, and master
//! round-trips (task count).

use qfr_bench::{header, pct, row, scaled, write_record};
use qfr_sched::balancer::{
    Policy, RandomPolicy, RoundRobinPolicy, SizeSensitivePolicy, SortedSingletonPolicy,
};
use qfr_sched::simulator::{simulate, SimConfig};
use qfr_sched::task::protein_workload;

fn main() {
    let n_frag = scaled(88_800, 2_000);
    let nodes = scaled(3000, 100);
    header(&format!("Balancer ablation — {n_frag} protein fragments on {nodes} nodes"));
    row(&["policy", "variation", "makespan", "tasks", "norm. makespan"], &[18, 18, 12, 10, 15]);

    let cfg = SimConfig { n_leaders: nodes, ..Default::default() };
    let policies: Vec<(&str, Box<dyn Policy>)> = vec![
        (
            "size-sensitive",
            Box::new(SizeSensitivePolicy::with_defaults(protein_workload(n_frag, 1))),
        ),
        ("sorted-singleton", Box::new(SortedSingletonPolicy::new(protein_workload(n_frag, 1)))),
        ("round-robin", Box::new(RoundRobinPolicy::new(protein_workload(n_frag, 1), 8))),
        ("random-chunks", Box::new(RandomPolicy::new(protein_workload(n_frag, 1), 8, 5))),
    ];

    let mut best = f64::INFINITY;
    let mut results = Vec::new();
    for (name, policy) in policies {
        let report = simulate(policy, &cfg);
        let (lo, hi) = report.busy_variation();
        best = best.min(report.makespan);
        results.push((name, lo, hi, report.makespan, report.tasks));
    }
    let mut records = Vec::new();
    for (name, lo, hi, makespan, tasks) in &results {
        row(
            &[
                name,
                &format!("{}..{}", pct(*lo), pct(*hi)),
                &format!("{makespan:.0}"),
                &tasks.to_string(),
                &format!("{:.3}", makespan / best),
            ],
            &[18, 18, 12, 10, 15],
        );
        records.push(format!(
            "{{\"policy\":\"{name}\",\"var_lo\":{lo},\"var_hi\":{hi},\"makespan\":{makespan},\"tasks\":{tasks}}}"
        ));
    }

    println!(
        "\nReading: sorted singletons (LPT) give the flattest balance but one\n\
         master round-trip per fragment; size-insensitive chunking saves\n\
         traffic but costs ~20% makespan. The size-sensitive policy stays\n\
         within a few percent of LPT's makespan at roughly half the\n\
         round-trips, and the gap widens with packing-friendlier workloads."
    );
    write_record("ablation_balancer", &format!("[{}]", records.join(",")));
}
