//! # qfr-bench
//!
//! The experiment harness: one binary per table/figure of the QF-RAMAN
//! paper's evaluation (see DESIGN.md §5 for the experiment index), plus
//! ablation studies and Criterion microbenchmarks.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig08_load_balance` | Fig. 8 execution-time variation across nodes |
//! | `fig09_speedups` | Fig. 9 step-by-step optimization speedups |
//! | `fig10_strong_scaling` | Fig. 10 strong scaling on both machines |
//! | `fig11_weak_scaling` | Fig. 11 weak scaling throughput |
//! | `table1_peak_performance` | Table I FP64 rates |
//! | `fig12_raman_spectra` | Fig. 12 Raman spectra (gas / water / solvated) |
//! | `fig_scenarios` | graph-decomposition scenarios (ligand / disulfide / polymer) + band checks |
//! | `stats_decomposition` | Section VI-A decomposition statistics |
//! | `ablation_balancer` | policy ablation (design-choice study) |
//! | `ablation_offload_stride` | batch-stride ablation |
//! | `ablation_gagq` | GAGQ vs plain Gauss vs dense accuracy + KPM baseline |
//! | `ablation_fold` | chain fold vs concap statistics |
//! | `ablation_faults` | failure-rate sweep + straggler re-issue study |
//! | `ablation_symmetry` | Section V-D strength reduction: syrk kernels + merged displaced-SCF sweep |
//! | `ablation_cache` | content-addressed fragment cache: exact-hit bit-identity + near-hit transport |
//!
//! Every binary prints a human-readable table comparing measured values to
//! the paper's reported ones and writes a JSON record under
//! `target/experiments/`.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

/// Output directory for experiment records (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("cannot create experiments dir");
    dir
}

/// The git commit the workspace is checked out at (`"unknown"` outside a
/// git checkout). Stamped into every experiment record so a floor gate can
/// refuse to compare records produced by different commits.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Writes a JSON record for an experiment as `BENCH_{name}.json` (the
/// `BENCH_` prefix is what CI globs when uploading artifacts). The payload
/// is wrapped as `{"git_sha": ..., "data": <json>}` so every record
/// carries the commit that produced it — `bench_gate` rejects mixed-commit
/// record sets, which is what makes "stale record passes the gate"
/// impossible.
pub fn write_record(name: &str, json: &str) {
    let path = experiments_dir().join(format!("BENCH_{name}.json"));
    let stamped = format!("{{\"git_sha\":\"{}\",\"data\":{json}}}", git_sha());
    fs::write(&path, stamped).expect("cannot write experiment record");
    println!("\n[record written to {}]", path.display());
}

/// Peak resident set size of this process so far, in KiB (Linux `VmHWM`
/// from `/proc/self/status`; 0 on other platforms). The bounded-memory
/// experiments print and record this so CI can assert the sharded path's
/// residency stays under a cap the in-core path exceeds.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// True when the binary should run a scaled-down smoke version of its
/// experiment: `--fast` on the command line or `QFR_BENCH_FAST=1` in the
/// environment (how the CI bench-smoke job invokes every binary).
pub fn fast_mode() -> bool {
    has_flag("--fast") || std::env::var("QFR_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// Picks the full-size or fast-mode value of an experiment parameter.
pub fn scaled<T>(full: T, fast: T) -> T {
    if fast_mode() {
        fast
    } else {
        full
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Simple fixed-width row printer.
pub fn row(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} ", w = w));
    }
    println!("{line}");
}

/// Parses a `--flag value` style argument.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// True if `--flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_exists_after_call() {
        let d = experiments_dir();
        assert!(d.exists());
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.015), "+1.5%");
        assert_eq!(pct(-0.092), "-9.2%");
    }
}
