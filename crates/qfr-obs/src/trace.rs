//! Chrome trace-event JSON export.
//!
//! Disabled by default; [`enable`] arms a global event buffer that spans
//! and subsystems append to. [`export_chrome_json`] renders the buffer in
//! the Chrome trace-event format, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Three event kinds are emitted:
//!
//! - `"B"` / `"E"` — duration begin/end pairs (spans). Guards close in
//!   LIFO order per thread, so pairs nest correctly per `tid`.
//! - `"i"` — instant events (task lifecycle markers: retry, quarantine,
//!   straggler re-issue, leader death), thread-scoped (`"s":"t"`).
//!
//! Timestamps are microseconds since the trace epoch, which is set by
//! [`enable`]/[`clear`], so a fresh trace always starts near zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Instant,
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    phase: Phase,
    /// Microseconds since the trace epoch.
    ts_us: u64,
    tid: u64,
    /// Pre-rendered JSON object for `"args"`, e.g. `{"task":3}`; empty = omitted.
    args: String,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn now_us() -> u64 {
    let mut epoch = EPOCH.lock().expect("trace epoch poisoned");
    let e = epoch.get_or_insert_with(Instant::now);
    e.elapsed().as_micros() as u64
}

fn push(name: &str, phase: Phase, args: String) {
    let ev =
        TraceEvent { name: name.to_string(), phase, ts_us: now_us(), tid: TID.with(|t| *t), args };
    EVENTS.lock().expect("trace buffer poisoned").push(ev);
}

/// Arms the trace buffer and resets the epoch. Events recorded before
/// `enable` are kept only if `clear` was not called; call [`clear`] first
/// for a fresh capture.
pub fn enable() {
    *EPOCH.lock().expect("trace epoch poisoned") = Some(Instant::now());
    ENABLED.store(true, Ordering::Release);
}

/// Disarms the trace buffer; buffered events remain exportable.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether events are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Drops all buffered events and resets the epoch.
pub fn clear() {
    EVENTS.lock().expect("trace buffer poisoned").clear();
    *EPOCH.lock().expect("trace epoch poisoned") = None;
}

/// Number of buffered events.
pub fn len() -> usize {
    EVENTS.lock().expect("trace buffer poisoned").len()
}

/// True when no events are buffered.
pub fn is_empty() -> bool {
    len() == 0
}

/// Records a duration-begin event (no-op when disabled). Pair with [`end`]
/// on the same thread; [`crate::span()`] does this automatically.
pub fn begin(name: &str) {
    if is_enabled() {
        push(name, Phase::Begin, String::new());
    }
}

/// Records the duration-end event matching the innermost open [`begin`]
/// with this name on this thread.
pub fn end(name: &str) {
    if is_enabled() {
        push(name, Phase::End, String::new());
    }
}

/// Records a thread-scoped instant event. `args` are rendered as a JSON
/// object of string-keyed integers, e.g. `&[("task", 3), ("attempt", 1)]`.
pub fn instant(name: &str, args: &[(&str, i64)]) {
    if is_enabled() {
        let mut rendered = String::new();
        if !args.is_empty() {
            rendered.push('{');
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    rendered.push(',');
                }
                rendered.push_str(&format!("\"{}\":{}", escape(k), v));
            }
            rendered.push('}');
        }
        push(name, Phase::Instant, rendered);
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the buffered events as Chrome trace-event JSON (the "JSON
/// object format": `{"traceEvents":[...],"displayTimeUnit":"ms"}`).
pub fn export_chrome_json() -> String {
    let events = EVENTS.lock().expect("trace buffer poisoned");
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match ev.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            escape(&ev.name),
            ph,
            ev.ts_us,
            ev.tid
        ));
        if ev.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() {
            out.push_str(&format!(",\"args\":{}", ev.args));
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Writes [`export_chrome_json`] to `path`.
pub fn save(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export_chrome_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global and the harness runs tests in
    // parallel; serialize every test that toggles it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_records_nothing() {
        let _g = GUARD.lock().unwrap();
        disable();
        clear();
        begin("test.trace.noop");
        end("test.trace.noop");
        instant("test.trace.noop", &[]);
        assert!(is_empty());
    }

    #[test]
    fn begin_end_pair_exports_in_order() {
        let _g = GUARD.lock().unwrap();
        clear();
        enable();
        begin("test.trace.pair");
        end("test.trace.pair");
        disable();
        let json = export_chrome_json();
        clear();
        let b = json.find("\"ph\":\"B\"").expect("begin event");
        let e = json.find("\"ph\":\"E\"").expect("end event");
        assert!(b < e, "begin precedes end");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn instant_carries_args_and_scope() {
        let _g = GUARD.lock().unwrap();
        clear();
        enable();
        instant("test.trace.retry", &[("task", 7), ("attempt", 2)]);
        disable();
        let json = export_chrome_json();
        clear();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"task\":7,\"attempt\":2}"));
    }

    #[test]
    fn names_are_escaped() {
        let _g = GUARD.lock().unwrap();
        clear();
        enable();
        instant("quote\"back\\slash", &[]);
        disable();
        let json = export_chrome_json();
        clear();
        assert!(json.contains("quote\\\"back\\\\slash"));
    }
}
