//! Hierarchical span timers with thread-safe aggregation.
//!
//! A span is a scoped wall-clock timer: [`span`] returns a guard that
//! records elapsed time on drop. Nesting is tracked per thread — a span
//! opened while another is active aggregates under the joined path
//! (`parent/child`), so the per-phase report shows the call hierarchy
//! without any global coordination on the hot path (one mutex acquisition
//! per span *end*, nothing per iteration).
//!
//! When [`crate::trace`] is enabled, every span additionally emits a
//! begin/end event pair into the Chrome trace buffer.

use crate::trace;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed executions.
    pub count: u64,
    /// Total wall-clock seconds across executions.
    pub total_s: f64,
    /// Longest single execution (seconds).
    pub max_s: f64,
}

static AGG: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`span`]; records the elapsed time when dropped.
#[must_use = "binding the guard keeps the span open for the scope"]
pub struct SpanGuard {
    path: String,
    start: Instant,
}

/// Opens a span named `name` (dotted lowercase, e.g. `"dfpt.poisson"`).
/// The returned guard closes it on drop:
///
/// ```
/// {
///     let _s = qfr_obs::span("doc.phase");
///     // ... measured work ...
/// } // span recorded here
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join("/")
    });
    if trace::is_enabled() {
        trace::begin(name);
    }
    SpanGuard { path, start: Instant::now() }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if trace::is_enabled() {
            trace::end(leaf(&self.path));
        }
        let mut agg = AGG.lock().expect("span aggregate poisoned");
        let stat = agg.entry(std::mem::take(&mut self.path)).or_default();
        stat.count += 1;
        stat.total_s += elapsed;
        stat.max_s = stat.max_s.max(elapsed);
    }
}

fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Runs `f` under a span and returns its result with the elapsed seconds —
/// the registry-integrated replacement for hand-rolled `Instant` timing in
/// the bench binaries.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let _guard = span(name);
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Snapshot of all span aggregates, keyed by path (sorted — `BTreeMap`).
pub fn snapshot() -> BTreeMap<String, SpanStat> {
    AGG.lock().expect("span aggregate poisoned").clone()
}

/// The aggregate for one exact path, if recorded.
pub fn stat_of(path: &str) -> Option<SpanStat> {
    AGG.lock().expect("span aggregate poisoned").get(path).copied()
}

/// Clears all span aggregates.
pub fn reset() {
    AGG.lock().expect("span aggregate poisoned").clear();
}

/// Plain-text per-phase report: path, execution count, total and mean
/// milliseconds. Wall-clock values — indicative, never asserted on in CI.
pub fn report() -> String {
    let snap = snapshot();
    let mut out = String::from("-- spans (wall clock, indicative) --\n");
    if snap.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    let width = snap.keys().map(|k| k.len()).max().unwrap_or(0).max(4);
    out.push_str(&format!(
        "{:<width$} {:>9} {:>12} {:>12}\n",
        "span", "count", "total ms", "mean ms"
    ));
    for (path, stat) in &snap {
        let mean_ms = if stat.count > 0 { stat.total_s * 1e3 / stat.count as f64 } else { 0.0 };
        out.push_str(&format!(
            "{:<width$} {:>9} {:>12.3} {:>12.4}\n",
            path,
            stat.count,
            stat.total_s * 1e3,
            mean_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        {
            let _s = span("test.span.outer");
        }
        let stat = stat_of("test.span.outer").expect("recorded");
        assert!(stat.count >= 1);
        assert!(stat.total_s >= 0.0);
        assert!(stat.max_s <= stat.total_s + 1e-12);
    }

    #[test]
    fn nested_spans_aggregate_under_joined_path() {
        {
            let _outer = span("test.span.parent");
            {
                let _inner = span("test.span.child");
            }
        }
        assert!(stat_of("test.span.parent").is_some());
        assert!(stat_of("test.span.parent/test.span.child").is_some());
    }

    #[test]
    fn timed_returns_result_and_elapsed() {
        let (value, secs) = timed("test.span.timed", || 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
        assert!(stat_of("test.span.timed").is_some());
    }

    #[test]
    fn report_lists_paths() {
        {
            let _s = span("test.span.report");
        }
        let r = report();
        assert!(r.contains("test.span.report"));
        assert!(r.contains("count"));
    }

    #[test]
    fn spans_on_other_threads_do_not_nest_under_this_one() {
        let _outer = span("test.span.main-thread");
        std::thread::spawn(|| {
            let _s = span("test.span.worker");
        })
        .join()
        .expect("worker thread");
        assert!(stat_of("test.span.worker").is_some(), "worker span is top-level on its thread");
    }
}
