//! # qfr-obs
//!
//! Deterministic observability for the QF-RAMAN workspace: hierarchical
//! span timers, a global counter registry, and Chrome trace-event export.
//! Zero dependencies (std only) so every crate in the workspace — down to
//! `qfr-linalg` — can instrument its hot paths without widening the
//! vendored dependency set.
//!
//! The layer has three parts, designed around one constraint: **CI must be
//! able to assert on the numbers**. Wall-clock timings are noisy on shared
//! runners, so the substrate separates what is repeatable from what is not:
//!
//! - [`counter`] — named global counters, each tagged [`Determinism`]:
//!   *deterministic* counters (FLOPs, GEMM calls, Lanczos steps, tasks
//!   retried, …) are pure functions of the workload and seed and are
//!   byte-identically reproducible, so `baselines/metrics.json` can pin
//!   them; *timing-sensitive* counters (straggler re-issues, suppressed
//!   duplicates) depend on thread/event races and are reported but never
//!   gated on.
//! - [`span()`] — lightweight scoped timers (`let _s = qfr_obs::span("x")`)
//!   with thread-safe aggregation into a per-phase report; nesting is
//!   tracked per thread, so `dfpt.scf/dfpt.poisson` shows up as its own
//!   row.
//! - [`trace`] — an optional global event buffer exporting the Chrome
//!   trace-event JSON format (`chrome://tracing`, <https://ui.perfetto.dev>);
//!   spans emit begin/end pairs and subsystems can add instant events
//!   (task lifecycle, retries, quarantines).
//!
//! Naming convention: dotted lowercase paths, `<crate area>.<unit>.<what>`
//! — e.g. `linalg.gemm.calls`, `dfpt.scf.iterations`,
//! `sched.tasks.retried`. See DESIGN.md §8 for the full catalogue.

#![forbid(unsafe_code)]

pub mod counter;
pub mod span;
pub mod trace;

pub use counter::{Counter, Determinism};
pub use span::{span, timed, SpanGuard};

/// Resets counters, span aggregates, and the trace buffer in one call —
/// the standard preamble of a measured section.
pub fn reset_all() {
    counter::reset();
    span::reset();
    trace::clear();
}

/// The combined plain-text report: span aggregation (wall clock,
/// indicative) followed by the full counter listing.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str(&span::report());
    out.push_str(&counter::report());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static T_A: Counter = Counter::deterministic("test.lib.a");

    #[test]
    fn combined_report_contains_both_sections() {
        T_A.add(1);
        {
            let _s = span("test.lib.span");
        }
        let r = report();
        assert!(r.contains("test.lib.a"));
        assert!(r.contains("test.lib.span"));
    }
}
