//! Global counter registry with a determinism contract.
//!
//! Counters are `static` atomics declared at their use site and registered
//! lazily on first increment, so the hot path is one relaxed `fetch_add`
//! plus one relaxed load. Each counter declares whether its value is a
//! pure function of the workload and seed ([`Determinism::Deterministic`])
//! or can vary run-to-run with thread/event timing
//! ([`Determinism::TimingSensitive`]). Only deterministic counters appear
//! in [`deterministic_report`], which is the byte-identical artifact the
//! CI metrics gate compares against `baselines/metrics.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Whether a counter's value is reproducible for a fixed workload + seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Pure in the workload and seed: safe to pin in a CI baseline.
    Deterministic,
    /// Depends on scheduling races (straggler re-issue, duplicate
    /// suppression): reported, never gated on.
    TimingSensitive,
}

/// A named global counter. Declare as a `static` and bump with
/// [`Counter::add`] / [`Counter::incr`]:
///
/// ```
/// use qfr_obs::Counter;
/// static GEMM_CALLS: Counter = Counter::deterministic("doc.gemm.calls");
/// GEMM_CALLS.incr();
/// assert!(GEMM_CALLS.get() >= 1);
/// ```
pub struct Counter {
    name: &'static str,
    determinism: Determinism,
    value: AtomicU64,
    registered: AtomicBool,
}

static REGISTRY: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

impl Counter {
    /// A counter whose value is pure in the workload and seed.
    pub const fn deterministic(name: &'static str) -> Self {
        Self {
            name,
            determinism: Determinism::Deterministic,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// A counter whose value may vary with thread/event timing.
    pub const fn timing_sensitive(name: &'static str) -> Self {
        Self {
            name,
            determinism: Determinism::TimingSensitive,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n` to the counter (relaxed; registers on first use).
    pub fn add(&'static self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    /// Increments the counter by one.
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Raises the counter to `n` if `n` exceeds the current value
    /// (high-water gauges, e.g. peak concurrent service requests).
    pub fn record_max(&'static self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The counter's determinism class.
    pub fn determinism(&self) -> Determinism {
        self.determinism
    }

    fn register(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            REGISTRY.lock().expect("counter registry poisoned").push(self);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("name", &self.name)
            .field("determinism", &self.determinism)
            .field("value", &self.get())
            .finish()
    }
}

/// One row of a [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    /// Registry name (dotted path).
    pub name: &'static str,
    /// Determinism class.
    pub determinism: Determinism,
    /// Value at snapshot time.
    pub value: u64,
}

/// All registered counters, sorted by name (registration order is
/// timing-dependent; the sort restores determinism).
pub fn snapshot() -> Vec<CounterValue> {
    let reg = REGISTRY.lock().expect("counter registry poisoned");
    let mut out: Vec<CounterValue> = reg
        .iter()
        .map(|c| CounterValue { name: c.name, determinism: c.determinism, value: c.get() })
        .collect();
    out.sort_by_key(|c| c.name);
    out
}

/// Zeroes every registered counter (they stay registered).
pub fn reset() {
    let reg = REGISTRY.lock().expect("counter registry poisoned");
    for c in reg.iter() {
        c.value.store(0, Ordering::Relaxed);
    }
}

/// The value of a registered counter by name, if it has been touched.
pub fn value_of(name: &str) -> Option<u64> {
    let reg = REGISTRY.lock().expect("counter registry poisoned");
    reg.iter().find(|c| c.name == name).map(|c| c.get())
}

/// The byte-identical report of deterministic counters only: one
/// `name = value` line per counter, sorted by name. Two runs of the same
/// workload with the same seed produce the same bytes — this is what the
/// `qfr --metrics` flag prints and the CI metrics gate diffs.
pub fn deterministic_report() -> String {
    let mut out = String::new();
    for c in snapshot() {
        if c.determinism == Determinism::Deterministic {
            out.push_str(&format!("{} = {}\n", c.name, c.value));
        }
    }
    out
}

/// The full counter listing, timing-sensitive rows marked with `~`.
pub fn report() -> String {
    let mut out = String::from("-- counters (~ marks timing-sensitive) --\n");
    for c in snapshot() {
        let mark = if c.determinism == Determinism::TimingSensitive { "~" } else { " " };
        out.push_str(&format!("{mark} {} = {}\n", c.name, c.value));
    }
    out
}

/// Deterministic counters as a compact JSON object (sorted keys), for the
/// `baselines/metrics.json` gate and `BENCH_*.json` records.
pub fn deterministic_json() -> String {
    let mut out = String::from("{");
    let mut first = true;
    for c in snapshot() {
        if c.determinism == Determinism::Deterministic {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", c.name, c.value));
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static A: Counter = Counter::deterministic("test.counter.a");
    static B: Counter = Counter::timing_sensitive("test.counter.b");

    #[test]
    fn add_and_snapshot() {
        A.add(3);
        B.incr();
        let snap = snapshot();
        let a = snap.iter().find(|c| c.name == "test.counter.a").expect("registered");
        assert!(a.value >= 3);
        assert_eq!(a.determinism, Determinism::Deterministic);
        let b = snap.iter().find(|c| c.name == "test.counter.b").expect("registered");
        assert_eq!(b.determinism, Determinism::TimingSensitive);
    }

    #[test]
    fn snapshot_is_sorted() {
        A.incr();
        B.incr();
        let snap = snapshot();
        for w in snap.windows(2) {
            assert!(w[0].name <= w[1].name, "{} > {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn deterministic_report_excludes_timing_sensitive() {
        A.incr();
        B.incr();
        let det = deterministic_report();
        assert!(det.contains("test.counter.a"));
        assert!(!det.contains("test.counter.b"));
        let full = report();
        assert!(full.contains("~ test.counter.b"));
    }

    #[test]
    fn deterministic_json_is_an_object() {
        A.incr();
        let json = deterministic_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"test.counter.a\":"));
        assert!(!json.contains("test.counter.b\":"));
    }

    #[test]
    fn record_max_is_a_high_water_mark() {
        static HW: Counter = Counter::timing_sensitive("test.counter.hw");
        HW.record_max(5);
        HW.record_max(3); // lower values never regress the gauge
        assert_eq!(HW.get(), 5);
        HW.record_max(9);
        assert_eq!(HW.get(), 9);
        assert!(value_of("test.counter.hw").is_some(), "record_max registers");
    }

    #[test]
    fn value_of_finds_touched_counters() {
        A.add(2);
        assert!(value_of("test.counter.a").expect("touched") >= 2);
        assert_eq!(value_of("test.counter.never-touched"), None);
    }
}
