//! Checkpoint/restart integration tests for the scheduled runtime.
//!
//! These exercise the v2 partial-checkpoint format end to end: a run is
//! "killed" after a partial save (simulated by blanking slots of a saved
//! checkpoint — byte-wise exactly what a periodic mid-run save writes),
//! then rerun with the same seed. The deterministic engine counter
//! (`model.engine.fragments`) proves that *only* the missing and
//! quarantined jobs re-execute, and the final spectrum must be
//! bit-identical to an uninterrupted run.
//!
//! Counter stores are process globals, so every test takes `GUARD` and
//! resets them inside the critical section (same pattern as the
//! observability suite) — exact-count assertions are safe here.

use qfr_core::checkpoint::{load_partial, save_partial};
use qfr_core::{RamanWorkflow, ScheduledConfig};
use qfr_geom::WaterBoxBuilder;
use std::path::PathBuf;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn workflow() -> RamanWorkflow {
    let system = WaterBoxBuilder::new(10).seed(11).build();
    RamanWorkflow::new(system).sigma(25.0).lanczos_steps(40)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qfr_restart_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn engine_fragments() -> u64 {
    qfr_obs::counter::value_of("model.engine.fragments").unwrap_or(0)
}

fn sched_cfg(checkpoint: PathBuf) -> ScheduledConfig {
    ScheduledConfig {
        runtime: qfr_sched::RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 2,
            ..Default::default()
        },
        checkpoint: Some(checkpoint),
        checkpoint_interval: 4,
    }
}

#[test]
fn restart_recomputes_only_missing_jobs_and_reproduces_the_spectrum() {
    let _g = lock();
    qfr_obs::reset_all();
    let path = temp_path("partial_resume.qfrc");
    std::fs::remove_file(&path).ok();

    // Uninterrupted checkpointed run: the reference spectrum, and every
    // job computed exactly once.
    let wf = workflow();
    let n_jobs = wf.decompose().jobs.len();
    let reference = wf.run_scheduled_with(sched_cfg(path.clone())).expect("reference run");
    assert_eq!(engine_fragments(), n_jobs as u64, "each job computed exactly once");
    assert_eq!(reference.recovery.as_ref().unwrap().resumed_jobs, 0, "cold start resumes nothing");

    // "Kill" the run after a partial save: blank every other job from the
    // complete checkpoint — byte-wise the same file a periodic save writes
    // when half the jobs are still outstanding.
    let wf = workflow();
    let d = wf.decompose();
    let mut slots = load_partial(&path, &d, wf.system()).expect("load complete checkpoint");
    for (i, slot) in slots.iter_mut().enumerate() {
        if i % 2 == 0 {
            *slot = None;
        }
    }
    let missing = slots.iter().filter(|s| s.is_none()).count();
    let present = n_jobs - missing;
    assert!(missing > 0 && present > 0, "partial scenario must have both kinds");
    save_partial(&path, &d, wf.system(), &slots).expect("write partial checkpoint");

    // Same-seed rerun: only the missing jobs may reach the engine.
    let before = engine_fragments();
    let restarted = wf.run_scheduled_with(sched_cfg(path.clone())).expect("restarted run");
    let recomputed = engine_fragments() - before;
    assert_eq!(recomputed, missing as u64, "exactly the missing jobs re-execute");
    let rec = restarted.recovery.as_ref().unwrap();
    assert_eq!(rec.resumed_jobs, present);
    assert!(rec.is_complete());

    // The spectrum from resumed + recomputed responses is bit-identical.
    assert_eq!(restarted.spectrum.wavenumbers, reference.spectrum.wavenumbers);
    assert_eq!(restarted.spectrum.intensities, reference.spectrum.intensities);
    assert_eq!(restarted.ir.intensities, reference.ir.intensities);
    assert_eq!(restarted.hessian_nnz, reference.hessian_nnz);

    std::fs::remove_file(&path).ok();
    qfr_obs::reset_all();
}

#[test]
fn restart_reattempts_quarantined_jobs() {
    let _g = lock();
    qfr_obs::reset_all();
    let path = temp_path("quarantine_resume.qfrc");
    std::fs::remove_file(&path).ok();

    // Fault-free reference spectrum (no checkpoint involved).
    let reference = workflow()
        .run_scheduled(qfr_sched::RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 2,
            ..Default::default()
        })
        .expect("reference run");
    let n_jobs = reference.stats.n_jobs;

    // Checkpointed run with a permanently failing fragment: its task
    // quarantines, and the final save must *exclude* the quarantined
    // jobs' salvaged responses so a restart re-attempts them.
    let mut cfg = sched_cfg(path.clone());
    cfg.runtime.faults = qfr_sched::FaultPlan::none().permanent([0]);
    cfg.runtime.recovery = qfr_sched::RecoveryPolicy {
        max_attempts: 2,
        backoff_base: 1e-4,
        straggler_factor: Some(4.0),
    };
    let faulty = workflow().run_scheduled_with(cfg).expect("faulty run");
    let quarantined = faulty.recovery.as_ref().unwrap().quarantined_jobs;
    assert!(quarantined > 0, "the permanent failure must quarantine its task");
    assert!(!faulty.recovery.as_ref().unwrap().is_complete());

    // Fault-free same-seed restart: only the quarantined jobs re-execute
    // and the run completes with the reference spectrum, bit for bit.
    let before = engine_fragments();
    let restarted = workflow().run_scheduled_with(sched_cfg(path.clone())).expect("restarted run");
    let recomputed = engine_fragments() - before;
    assert_eq!(recomputed, quarantined as u64, "exactly the quarantined jobs re-execute");
    let rec = restarted.recovery.as_ref().unwrap();
    assert_eq!(rec.resumed_jobs, n_jobs - quarantined);
    assert!(rec.is_complete());
    assert_eq!(restarted.spectrum.wavenumbers, reference.spectrum.wavenumbers);
    assert_eq!(restarted.spectrum.intensities, reference.spectrum.intensities);

    std::fs::remove_file(&path).ok();
    qfr_obs::reset_all();
}

#[test]
fn same_seed_restart_sequences_emit_identical_counter_reports() {
    let _g = lock();
    let path = temp_path("determinism_resume.qfrc");

    // One full "kill and resume" sequence, returning the deterministic
    // counter report it produced.
    let sequence = || {
        qfr_obs::reset_all();
        std::fs::remove_file(&path).ok();
        let wf = workflow();
        wf.run_scheduled_with(sched_cfg(path.clone())).expect("first run");
        let d = wf.decompose();
        let mut slots = load_partial(&path, &d, wf.system()).expect("load checkpoint");
        for (i, slot) in slots.iter_mut().enumerate() {
            if i % 3 != 0 {
                *slot = None;
            }
        }
        save_partial(&path, &d, wf.system(), &slots).expect("write partial checkpoint");
        wf.run_scheduled_with(sched_cfg(path.clone())).expect("restarted run");
        (qfr_obs::counter::deterministic_report(), qfr_obs::counter::deterministic_json())
    };

    let (report_a, json_a) = sequence();
    let (report_b, json_b) = sequence();
    assert_eq!(report_a, report_b, "deterministic counter report must be byte-identical");
    assert_eq!(json_a, json_b);
    assert!(report_a.contains("core.checkpoint.saves"), "saves counter missing:\n{report_a}");
    assert!(report_a.contains("core.checkpoint.jobs_resumed"));
    assert!(report_a.contains("model.engine.fragments"));

    std::fs::remove_file(&path).ok();
    qfr_obs::reset_all();
}
