//! Scenario end-to-end tests: the graph-decomposition path driven through
//! the public workflow API on systems the residue-chain fast path cannot
//! handle — a protein with a non-covalent ligand, a disulfide-bridged
//! two-chain protein, and a residue-free polymer melt — plus
//! band-assignment checks that the spectra produced from graph fragments
//! carry the chemistry expected of each system.

use qfr_core::{normal_modes, RamanWorkflow};
use qfr_fragment::{Decomposition, DecompositionParams};
use qfr_geom::scenario::{disulfide_dimer, polymer_melt, protein_ligand};
use qfr_geom::system::BondClass;
use qfr_geom::{build_scenario, SCENARIO_NAMES};
use qfr_model::ForceFieldEngine;

#[test]
fn every_scenario_runs_the_full_workflow() {
    for &name in SCENARIO_NAMES {
        let sys = build_scenario(name, 17).expect("known scenario name");
        let d = Decomposition::new(&sys, DecompositionParams::default());
        assert!(d.stats.n_graph_partitions > 0, "{name} must take the graph path");
        for (a, &c) in d.atom_coverage(sys.n_atoms()).iter().enumerate() {
            assert!(c == 1.0, "{name}: atom {a} covered {c} times (should be exactly 1)");
        }
        let result =
            RamanWorkflow::new(sys).sigma(25.0).lanczos_steps(40).run().expect("workflow runs");
        assert!(result.stats.n_graph_partitions > 0, "{name}: workflow decomposition is graph");
        assert!(result.spectrum.intensities.iter().all(|x| x.is_finite()), "{name}: finite");
        assert!(result.spectrum.peak().is_some(), "{name} must produce a non-empty spectrum");
    }
}

#[test]
fn polymer_ch_window_is_pure_ch_stretch() {
    // Small gas-phase melt so the dense diagonalization stays cheap.
    let sys = polymer_melt(2, 6, 3);
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let modes = normal_modes(&sys, &d, &ForceFieldEngine::new());
    let ch = modes.modes_in_window(2800.0, 3100.0);
    assert!(!ch.is_empty(), "an alkane melt must have C-H stretch modes");
    for &p in &ch {
        let (class, _) = modes.dominant_stretch(&sys, p).expect("stretch character");
        assert_eq!(class, BondClass::CH, "mode {p} in the C-H window is not a C-H stretch");
    }
}

#[test]
fn disulfide_bridge_shows_the_ss_stretch_band() {
    let sys = disulfide_dimer(5, 11);
    let d = Decomposition::new(&sys, DecompositionParams::default());
    assert!(d.stats.n_graph_partitions >= 2, "two chains cannot be one partition");
    let modes = normal_modes(&sys, &d, &ForceFieldEngine::new());
    // The S-S stretch (k = 2.50 mdyn/Å, two sulfur masses) sits near
    // 510 cm⁻¹; at least one mode in that window must be S-S dominated.
    let window = modes.modes_in_window(350.0, 700.0);
    assert!(!window.is_empty());
    let ss_mode = window
        .iter()
        .find(|&&p| matches!(modes.dominant_stretch(&sys, p), Some((BondClass::SSBond, _))));
    assert!(ss_mode.is_some(), "no S-S dominated mode in the 350-700 cm⁻¹ window");
}

#[test]
fn ligand_ring_modes_survive_fragmentation() {
    // Gas-phase protein + ligand: the aromatic ring is never cut, so its
    // ring-stretch modes must appear with C-C aromatic character.
    let sys = protein_ligand(4, None, 7);
    let d = Decomposition::new(&sys, DecompositionParams::default());
    let modes = normal_modes(&sys, &d, &ForceFieldEngine::new());
    let aromatic = (0..modes.frequencies.len())
        .find(|&p| matches!(modes.dominant_stretch(&sys, p), Some((BondClass::CCAromatic, _))));
    assert!(aromatic.is_some(), "no mode dominated by the ligand's aromatic ring");
}

#[test]
fn unknown_scenario_is_rejected() {
    assert!(build_scenario("no-such-scenario", 1).is_none());
    assert_eq!(SCENARIO_NAMES.len(), 3);
}
