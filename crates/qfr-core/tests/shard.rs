//! Out-of-core shard spill/restart integration tests.
//!
//! These exercise the QFRS v1 spill format end to end through the public
//! workflow API: a scheduled sharded run is killed by fault injection (a
//! permanently failing shard build quarantines and its spill file is
//! deleted), then rerun against the same spill directory. The deterministic
//! `shard.shards_built` / `shard.shards_resumed` counters prove that *only*
//! the missing shard rebuilds, and the restarted spectrum must be
//! bit-identical to an in-core [`RamanWorkflow::run`].
//!
//! Counter stores are process globals, so every test takes `GUARD` and
//! reads deltas inside the critical section (same pattern as the restart
//! suite) — exact-count assertions are safe here.

use proptest::prelude::*;
use qfr_core::shard::{shard_path, ShardPlan};
use qfr_core::{RamanWorkflow, ShardConfig};
use qfr_geom::WaterBoxBuilder;
use std::path::PathBuf;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn workflow() -> RamanWorkflow {
    let system = WaterBoxBuilder::new(10).seed(29).build();
    RamanWorkflow::new(system).sigma(25.0).lanczos_steps(40)
}

fn temp_spill(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qfr_shard_tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn shards_built() -> u64 {
    qfr_obs::counter::value_of("shard.shards_built").unwrap_or(0)
}

fn shards_resumed() -> u64 {
    qfr_obs::counter::value_of("shard.shards_resumed").unwrap_or(0)
}

fn runtime() -> qfr_sched::RuntimeConfig {
    qfr_sched::RuntimeConfig { n_leaders: 2, workers_per_leader: 2, ..Default::default() }
}

#[test]
fn killed_shard_build_restarts_from_spill() {
    let _g = lock();
    let spill = temp_spill("killed_build");
    let k = 4;

    // In-core reference spectrum: the restarted sharded run must match it
    // bit for bit.
    let reference = workflow().run().expect("in-core reference");

    // Scheduled sharded run where shard 0's build fails on every attempt:
    // the runtime injects the fault *after* the workload, so the task
    // quarantines even though a file was written — and run_sharded must
    // then distrust and delete that file so a restart recomputes it.
    let mut rt = runtime();
    rt.faults = qfr_sched::FaultPlan::none().permanent([0]);
    rt.recovery = qfr_sched::RecoveryPolicy {
        max_attempts: 2,
        backoff_base: 1e-4,
        straggler_factor: Some(4.0),
    };
    let before_built = shards_built();
    let faulty = workflow()
        .run_sharded(ShardConfig::new(k, &spill).tile_rows(7).scheduled(rt))
        .expect("faulty sharded run");
    let built = shards_built() - before_built;
    let recovery = faulty.recovery.as_ref().expect("scheduled run reports recovery");
    // Quarantine is task-granular: shard 0's permanent failure condemns
    // every shard packed into the same task, so anywhere from one to all
    // k shards may quarantine — and each quarantined shard's spill file
    // must be deleted while every healthy shard's file survives.
    assert!(recovery.quarantined_jobs >= 1, "shard 0 must quarantine: {recovery:?}");
    assert!(!recovery.is_complete());
    // Retries find the first attempt's file already valid and skip the
    // rebuild, so every shard builds exactly once.
    assert_eq!(built, k as u64, "each shard builds exactly once despite retries");
    assert!(!shard_path(&spill, 0).exists(), "the quarantined shard's spill file must be deleted");
    let missing: usize = (0..k).filter(|&s| !shard_path(&spill, s).exists()).count();
    assert_eq!(missing, recovery.quarantined_jobs, "deleted files == quarantined shards");

    // Fault-free restart against the same spill directory: only the
    // quarantined shards rebuild, the rest resume from disk, and the
    // spectrum now matches the in-core reference exactly.
    let (before_built, before_resumed) = (shards_built(), shards_resumed());
    let restarted = workflow()
        .run_sharded(ShardConfig::new(k, &spill).tile_rows(7))
        .expect("restarted sharded run");
    assert_eq!(shards_built() - before_built, missing as u64, "only missing shards rebuild");
    assert_eq!(shards_resumed() - before_resumed, (k - missing) as u64);
    assert_eq!(restarted.spectrum.wavenumbers, reference.spectrum.wavenumbers);
    assert_eq!(restarted.spectrum.intensities, reference.spectrum.intensities);
    assert_eq!(restarted.ir.intensities, reference.ir.intensities);
    assert_eq!(restarted.hessian_nnz, reference.hessian_nnz);

    std::fs::remove_dir_all(&spill).ok();
}

#[test]
fn truncated_spill_file_rebuilds_only_that_shard() {
    let _g = lock();
    let spill = temp_spill("truncated");
    let k = 4;

    let reference =
        workflow().run_sharded(ShardConfig::new(k, &spill).tile_rows(7)).expect("cold sharded run");

    // Truncate one shard mid-payload — byte-wise what a crash during an
    // unbuffered write would leave behind without the atomic temp-name
    // save. The resume validity check must reject it.
    let victim = shard_path(&spill, 2);
    let bytes = std::fs::read(&victim).expect("read shard file");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate shard file");

    let (before_built, before_resumed) = (shards_built(), shards_resumed());
    let rerun = workflow()
        .run_sharded(ShardConfig::new(k, &spill).tile_rows(7))
        .expect("rerun over truncated spill");
    assert_eq!(shards_built() - before_built, 1, "only the truncated shard rebuilds");
    assert_eq!(shards_resumed() - before_resumed, (k - 1) as u64);
    assert_eq!(rerun.spectrum.intensities, reference.spectrum.intensities);
    assert_eq!(rerun.ir.intensities, reference.ir.intensities);
    assert_eq!(rerun.hessian_nnz, reference.hessian_nnz);

    std::fs::remove_dir_all(&spill).ok();
}

#[test]
fn foreign_geometry_spill_is_rejected_and_rebuilt() {
    let _g = lock();
    let spill = temp_spill("foreign_geometry");
    let k = 2;

    // Spill written for one geometry must never be resumed for another:
    // the fingerprint folds the checkpoint geometry hash, so a different
    // seed invalidates every shard file.
    workflow().run_sharded(ShardConfig::new(k, &spill).tile_rows(7)).expect("first geometry");

    let other =
        RamanWorkflow::new(WaterBoxBuilder::new(10).seed(30).build()).sigma(25.0).lanczos_steps(40);
    let reference = other.run().expect("in-core reference, second geometry");
    let (before_built, before_resumed) = (shards_built(), shards_resumed());
    let sharded = other
        .run_sharded(ShardConfig::new(k, &spill).tile_rows(7))
        .expect("second geometry over stale spill");
    assert_eq!(shards_built() - before_built, k as u64, "every stale shard rebuilds");
    assert_eq!(shards_resumed() - before_resumed, 0, "no stale shard may resume");
    assert_eq!(sharded.spectrum.intensities, reference.spectrum.intensities);
    assert_eq!(sharded.hessian_nnz, reference.hessian_nnz);

    std::fs::remove_dir_all(&spill).ok();
}

proptest! {
    /// A shard plan is an exact cover of `0..n_atoms` for any (n, k):
    /// ranges are contiguous, ordered, collectively exhaustive, mutually
    /// exclusive, balanced to within one atom, and `shard_of` inverts them.
    #[test]
    fn shard_plan_is_an_exact_cover(n_atoms in 1usize..5000, k in 1usize..64) {
        let plan = ShardPlan::new(n_atoms, k);
        let ranges = plan.ranges();
        prop_assert_eq!(ranges.len(), k);
        let mut next = 0usize;
        let (lo, hi) = (n_atoms / k, n_atoms / k + 1);
        for (s, r) in ranges.iter().enumerate() {
            prop_assert_eq!(r.start, next, "shard {} must start where {} ended", s, s.wrapping_sub(1));
            prop_assert!(r.len() == lo || r.len() == hi, "shard {} unbalanced: {:?}", s, r);
            for atom in r.clone() {
                prop_assert_eq!(plan.shard_of(atom), s);
            }
            next = r.end;
        }
        prop_assert_eq!(next, n_atoms, "ranges must tile the whole system");
    }
}
