//! End-to-end cache correctness: spectra must be bit-identical with the
//! content-addressed fragment cache on or off, the deterministic counter
//! contract must hold (same-seed cached sequences emit byte-identical
//! reports), and the checkpoint ↔ cache composition must work both ways.
//!
//! Counter stores are process globals, so every test takes `GUARD` and
//! resets them inside the critical section (same pattern as the restart
//! and observability suites).

use qfr_cache::{CacheConfig, FragmentCache};
use qfr_core::{RamanWorkflow, ScheduledConfig};
use qfr_geom::WaterBoxBuilder;
use std::sync::{Arc, Mutex};

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn workflow() -> RamanWorkflow {
    let system = WaterBoxBuilder::new(10).seed(17).build();
    RamanWorkflow::new(system).sigma(25.0).lanczos_steps(40)
}

fn fresh_cache() -> Arc<FragmentCache> {
    Arc::new(FragmentCache::new(CacheConfig::default()))
}

#[test]
fn cached_spectra_bit_identical_to_uncached() {
    let _g = lock();
    qfr_obs::reset_all();

    let uncached = workflow().run().expect("uncached run");

    let cache = fresh_cache();
    let wf = workflow().with_cache(Arc::clone(&cache));
    let cold = wf.run().expect("cold cached run");
    let warm = wf.run().expect("warm cached run");

    for (name, run) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(
            run.spectrum.intensities, uncached.spectrum.intensities,
            "{name} cached spectrum must be bit-identical to the uncached run"
        );
        assert_eq!(run.ir.intensities, uncached.ir.intensities);
        assert_eq!(run.hessian_nnz, uncached.hessian_nnz);
    }

    let n_jobs = uncached.stats.n_jobs;
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, n_jobs, "cold run computes every distinct fragment");
    assert_eq!(stats.hits as usize, n_jobs, "warm run is served entirely from the cache");
    assert_eq!(qfr_obs::counter::value_of("cache.hits"), Some(n_jobs as u64));
    assert!(qfr_obs::counter::value_of("cache.bytes").unwrap_or(0) > 0);

    qfr_obs::reset_all();
}

#[test]
fn same_seed_cached_sequences_emit_identical_counter_reports() {
    let _g = lock();

    // One cold + warm cached sequence on a fresh cache and fresh
    // counters, returning the deterministic report it produced. The
    // cache counters qualify for the deterministic gate because the
    // working set fits capacity and near mode is off.
    let sequence = || {
        qfr_obs::reset_all();
        let wf = workflow().with_cache(fresh_cache());
        wf.run().expect("cold run");
        wf.run().expect("warm run");
        (qfr_obs::counter::deterministic_report(), qfr_obs::counter::deterministic_json())
    };

    let (report_a, json_a) = sequence();
    let (report_b, json_b) = sequence();
    assert_eq!(report_a, report_b, "deterministic counter report must be byte-identical");
    assert_eq!(json_a, json_b);
    for name in ["cache.hits", "cache.misses", "cache.bytes"] {
        assert!(report_a.contains(name), "{name} missing from report:\n{report_a}");
    }

    qfr_obs::reset_all();
}

#[test]
fn loaded_checkpoint_prewarms_the_cache() {
    let _g = lock();
    qfr_obs::reset_all();
    let dir = std::env::temp_dir().join("qfr_cache_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.qfrc");
    std::fs::remove_file(&path).ok();

    // First run computes and writes the checkpoint (no cache attached).
    let reference = workflow().run_with_checkpoint(&path).expect("checkpointing run");
    let n_jobs = reference.stats.n_jobs;

    // Second run loads the checkpoint with a *fresh* cache attached: the
    // loaded responses must be installed as a pre-warmed cache slice.
    let cache = fresh_cache();
    let wf = workflow().with_cache(Arc::clone(&cache));
    let resumed = wf.run_with_checkpoint(&path).expect("resumed run");
    assert_eq!(resumed.spectrum.intensities, reference.spectrum.intensities);
    assert_eq!(cache.len(), n_jobs, "every checkpointed response pre-warms the cache");
    assert_eq!(cache.stats().misses, 0, "pre-warming is not a compute");

    // A plain (checkpoint-free) run sharing that cache now hits on every
    // fragment instead of recomputing.
    let before = qfr_obs::counter::value_of("model.engine.fragments").unwrap_or(0);
    let served = wf.run().expect("cache-served run");
    let computed = qfr_obs::counter::value_of("model.engine.fragments").unwrap_or(0) - before;
    assert_eq!(computed, 0, "the pre-warmed cache must satisfy every fragment");
    assert_eq!(cache.stats().hits as usize, n_jobs);
    assert_eq!(served.spectrum.intensities, reference.spectrum.intensities);

    std::fs::remove_file(&path).ok();
    qfr_obs::reset_all();
}

#[test]
fn scheduled_runs_report_per_request_cache_hits() {
    let _g = lock();
    qfr_obs::reset_all();

    let cache = fresh_cache();
    let wf = workflow().with_cache(Arc::clone(&cache));
    let sched = || ScheduledConfig {
        runtime: qfr_sched::RuntimeConfig {
            n_leaders: 2,
            workers_per_leader: 2,
            ..Default::default()
        },
        ..ScheduledConfig::default()
    };
    let cold = wf.run_scheduled_with(sched()).expect("cold scheduled run");
    let warm = wf.run_scheduled_with(sched()).expect("warm scheduled run");
    let n_jobs = cold.stats.n_jobs;
    assert_eq!(cold.recovery.as_ref().unwrap().cache_hits, 0, "cold run hits nothing");
    assert_eq!(
        warm.recovery.as_ref().unwrap().cache_hits as usize,
        n_jobs,
        "warm run is served entirely from the cache"
    );
    assert_eq!(warm.spectrum.intensities, cold.spectrum.intensities);

    qfr_obs::reset_all();
}
