//! Checkpoint / restart of per-fragment engine results.
//!
//! The engine stage dominates wall time for large systems (millions of
//! fragment jobs); on the paper's machines such runs checkpoint as a matter
//! of course. This module persists the per-job [`FragmentResponse`] blocks
//! in a compact binary format keyed by a fingerprint of the decomposition,
//! so a re-run with the same system and λ resumes directly at assembly.
//!
//! Format v3 (little-endian): magic `QFRC`, version u32 (= 3), fingerprint
//! u64, total job count u64, present-job count u64, then a presence bitmap
//! of `ceil(total/8)` bytes (bit `j` of byte `j / 8` = job `j` present),
//! followed by one block per *present* job in ascending job order: `m`
//! (u32, atoms incl. link H), the `3m×3m` Hessian, `6×3m` ∂α/∂ξ and
//! `3×3m` ∂μ/∂ξ as f64 arrays. A *partial* save simply flips fewer bitmap
//! bits and appends fewer blocks — the header and bitmap sizes depend only
//! on the decomposition, so successive saves of a filling run grow the file
//! monotonically (append-friendly), while each save stays an atomic
//! temp-file + rename (cleanup of the temp on *any* failed save is a drop
//! guard, so write/sync/rename errors and panics leave no droppings).
//!
//! v3 shares v2's layout; the version bump marks the fingerprint change:
//! v1/v2 fingerprints hashed only atom indices, counts, and coefficients —
//! geometry-blind, so a checkpoint taken before atoms moved (or elements /
//! link-hydrogen placements changed) still validated and silently
//! resurrected stale responses. The v3 fingerprint folds every fragment's
//! [`qfr_fragment::exact_key`] (elements, link-H flags, bonds, raw position
//! bits) into the digest. v1/v2 files are still read, checked against the
//! legacy fingerprint — their format guarantee is unchanged, which is
//! exactly why new saves are v3.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use qfr_fragment::{exact_key, Decomposition, FragmentResponse};
use qfr_geom::MolecularSystem;
use qfr_linalg::DMatrix;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: &[u8; 4] = b"QFRC";
const VERSION: u32 = 3;

/// Per-process temp-file sequence number: together with the pid it makes
/// concurrent savers targeting the same checkpoint path collision-free.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Not a checkpoint file, or an incompatible version.
    Format(String),
    /// The checkpoint belongs to a different system/decomposition.
    FingerprintMismatch {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the current decomposition.
        expected: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::FingerprintMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different run (fingerprint {found:#x}, expected {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Geometry-aware FNV-1a fingerprint of a decomposition (format v3): per
/// job it folds the atom indices, the coefficient, and the materialized
/// fragment's [`exact_key`] — elements, link-hydrogen flags, bonds, and
/// the raw position bits. A checkpoint taken before atoms moved, elements
/// changed, or link hydrogens were re-placed therefore no longer
/// validates (it did under the legacy index-only fingerprint).
pub fn fingerprint(decomposition: &Decomposition, sys: &MolecularSystem) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(sys.n_atoms() as u64);
    mix(decomposition.jobs.len() as u64);
    for job in &decomposition.jobs {
        mix(job.atoms.len() as u64);
        mix(job.link_hydrogens.len() as u64);
        mix(job.coefficient.to_bits());
        for &a in &job.atoms {
            mix(a as u64);
        }
        let key = exact_key(&job.structure(sys)).0;
        mix(key as u64);
        mix((key >> 64) as u64);
    }
    h
}

/// The geometry-blind v1/v2 fingerprint (atom indices, counts and
/// coefficients only), kept to validate legacy files on read.
pub fn fingerprint_legacy(decomposition: &Decomposition, n_atoms: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(n_atoms as u64);
    mix(decomposition.jobs.len() as u64);
    for job in &decomposition.jobs {
        mix(job.atoms.len() as u64);
        mix(job.link_hydrogens.len() as u64);
        mix(job.coefficient.to_bits());
        for &a in &job.atoms {
            mix(a as u64);
        }
    }
    h
}

fn put_matrix(buf: &mut BytesMut, m: &DMatrix) {
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
}

fn get_matrix(buf: &mut Bytes, rows: usize, cols: usize) -> Result<DMatrix, CheckpointError> {
    let need = rows * cols * 8;
    if buf.remaining() < need {
        return Err(CheckpointError::Format("truncated matrix data".into()));
    }
    let data = (0..rows * cols).map(|_| buf.get_f64_le()).collect();
    Ok(DMatrix::from_vec(rows, cols, data))
}

/// Checks every matrix of a response against the shapes implied by the
/// job size `m`: `3m×3m` Hessian, `6×3m` ∂α/∂ξ, `3×3m` ∂μ/∂ξ. A malformed
/// response must be rejected *before* serialization — the reader trusts
/// these shapes, so a bad block would misparse every block after it.
fn validate_response(m: usize, resp: &FragmentResponse) -> Result<(), CheckpointError> {
    let checks = [
        ("hessian", resp.hessian.shape(), (3 * m, 3 * m)),
        ("dalpha", resp.dalpha.shape(), (6, 3 * m)),
        ("dmu", resp.dmu.shape(), (3, 3 * m)),
    ];
    for (name, got, want) in checks {
        if got != want {
            return Err(CheckpointError::Format(format!(
                "response {name} shape {got:?} does not match job size {m} (want {want:?})"
            )));
        }
    }
    Ok(())
}

/// Removes the temp file on drop unless the write was completed by the
/// rename. Covers every failure exit of [`atomic_write`] — short write,
/// failed sync, failed rename, and unwinding panics — where the previous
/// hand-rolled cleanup only covered the rename error and orphaned
/// `.{name}.{pid}.{seq}.tmp` files on the others.
struct TmpGuard {
    tmp: PathBuf,
    committed: bool,
}

impl Drop for TmpGuard {
    fn drop(&mut self) {
        if !self.committed {
            std::fs::remove_file(&self.tmp).ok();
        }
    }
}

/// Atomically replaces `path` with `contents`: write to a per-process
/// unique temp file in the same directory, fsync, rename. The pid+sequence
/// temp name means concurrent runs sharing a checkpoint path cannot clobber
/// each other mid-write — the last rename wins, and both renames are of
/// complete files.
pub(crate) fn atomic_write(path: &Path, contents: &[u8]) -> Result<(), CheckpointError> {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("checkpoint");
    let tmp = path.with_file_name(format!(".{name}.{}.{seq}.tmp", std::process::id()));
    let mut guard = TmpGuard { tmp, committed: false };
    {
        let mut f = std::fs::File::create(&guard.tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&guard.tmp, path)?;
    guard.committed = true;
    Ok(())
}

/// Saves a *partial* result set: `slots[j]` is `Some` iff job `j` has
/// completed. Writes the full v2 header + presence bitmap and one block per
/// present job, atomically. Call repeatedly as a run fills in — each save
/// is a superset rewrite, so a crash between saves loses at most the work
/// since the previous save.
pub fn save_partial(
    path: &Path,
    decomposition: &Decomposition,
    sys: &MolecularSystem,
    slots: &[Option<FragmentResponse>],
) -> Result<(), CheckpointError> {
    assert_eq!(decomposition.jobs.len(), slots.len(), "one slot per job");
    let total = slots.len();
    let present = slots.iter().filter(|s| s.is_some()).count();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(fingerprint(decomposition, sys));
    buf.put_u64_le(total as u64);
    buf.put_u64_le(present as u64);
    let mut bitmap = vec![0u8; total.div_ceil(8)];
    for (j, slot) in slots.iter().enumerate() {
        if slot.is_some() {
            bitmap[j / 8] |= 1 << (j % 8);
        }
    }
    buf.put_slice(&bitmap);
    for (job, slot) in decomposition.jobs.iter().zip(slots) {
        let Some(resp) = slot else { continue };
        let m = job.size();
        validate_response(m, resp)?;
        buf.put_u32_le(m as u32);
        put_matrix(&mut buf, &resp.hessian);
        put_matrix(&mut buf, &resp.dalpha);
        put_matrix(&mut buf, &resp.dmu);
    }
    atomic_write(path, &buf)
}

/// Saves a complete response set (every job present); see [`save_partial`].
pub fn save_responses(
    path: &Path,
    decomposition: &Decomposition,
    sys: &MolecularSystem,
    responses: &[FragmentResponse],
) -> Result<(), CheckpointError> {
    assert_eq!(decomposition.jobs.len(), responses.len(), "one response per job");
    let slots: Vec<Option<FragmentResponse>> = responses.iter().cloned().map(Some).collect();
    save_partial(path, decomposition, sys, &slots)
}

/// Loads a (possibly partial) checkpoint: `slots[j]` is `Some` iff the file
/// holds job `j`'s response. Verifies the fingerprint against the current
/// decomposition *and geometry* (v3); v1/v2 files (bitmap-less v1, bitmap
/// v2) are still read, checked against the legacy index-only fingerprint.
pub fn load_partial(
    path: &Path,
    decomposition: &Decomposition,
    sys: &MolecularSystem,
) -> Result<Vec<Option<FragmentResponse>>, CheckpointError> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 4 + 4 + 8 + 8 {
        return Err(CheckpointError::Format("file too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if !(1..=3).contains(&version) {
        return Err(CheckpointError::Format(format!("unsupported version {version}")));
    }
    let found = buf.get_u64_le();
    let expected = if version >= 3 {
        fingerprint(decomposition, sys)
    } else {
        fingerprint_legacy(decomposition, sys.n_atoms())
    };
    if found != expected {
        return Err(CheckpointError::FingerprintMismatch { found, expected });
    }
    let total = buf.get_u64_le() as usize;
    if total != decomposition.jobs.len() {
        return Err(CheckpointError::Format(format!(
            "job count {total} does not match decomposition {}",
            decomposition.jobs.len()
        )));
    }
    let present: Vec<bool> = if version >= 2 {
        if buf.remaining() < 8 {
            return Err(CheckpointError::Format("truncated v2 header".into()));
        }
        let present_count = buf.get_u64_le() as usize;
        let bitmap_len = total.div_ceil(8);
        if buf.remaining() < bitmap_len {
            return Err(CheckpointError::Format("truncated presence bitmap".into()));
        }
        let mut bitmap = vec![0u8; bitmap_len];
        buf.copy_to_slice(&mut bitmap);
        let present: Vec<bool> = (0..total).map(|j| bitmap[j / 8] & (1 << (j % 8)) != 0).collect();
        if present.iter().filter(|&&p| p).count() != present_count {
            return Err(CheckpointError::Format(
                "presence bitmap disagrees with present-job count".into(),
            ));
        }
        present
    } else {
        vec![true; total]
    };
    let mut out = Vec::with_capacity(total);
    for (job, &is_present) in decomposition.jobs.iter().zip(&present) {
        if !is_present {
            out.push(None);
            continue;
        }
        if buf.remaining() < 4 {
            return Err(CheckpointError::Format("truncated job header".into()));
        }
        let m = buf.get_u32_le() as usize;
        if m != job.size() {
            return Err(CheckpointError::Format(format!(
                "job size {m} does not match decomposition {}",
                job.size()
            )));
        }
        out.push(Some(FragmentResponse {
            hessian: get_matrix(&mut buf, 3 * m, 3 * m)?,
            dalpha: get_matrix(&mut buf, 6, 3 * m)?,
            dmu: get_matrix(&mut buf, 3, 3 * m)?,
        }));
    }
    Ok(out)
}

/// Loads a checkpoint that must be complete; errors if any job is missing.
pub fn load_responses(
    path: &Path,
    decomposition: &Decomposition,
    sys: &MolecularSystem,
) -> Result<Vec<FragmentResponse>, CheckpointError> {
    let slots = load_partial(path, decomposition, sys)?;
    let missing = slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(CheckpointError::Format(format!(
            "checkpoint is partial: {missing} of {} jobs missing",
            slots.len()
        )));
    }
    Ok(slots.into_iter().map(|s| s.expect("checked complete")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{DecompositionParams, FragmentEngine};
    use qfr_geom::WaterBoxBuilder;
    use qfr_model::ForceFieldEngine;

    fn setup() -> (qfr_geom::MolecularSystem, Decomposition, Vec<FragmentResponse>) {
        let sys = WaterBoxBuilder::new(6).seed(1).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let engine = ForceFieldEngine::new();
        let responses = d.jobs.iter().map(|j| engine.compute(&j.structure(&sys))).collect();
        (sys, d, responses)
    }

    #[test]
    fn round_trip_bitexact() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("responses.qfrc");
        save_responses(&path, &d, &sys, &responses).unwrap();
        let loaded = load_responses(&path, &d, &sys).unwrap();
        assert_eq!(loaded.len(), responses.len());
        for (a, b) in loaded.iter().zip(&responses) {
            assert_eq!(a.hessian.max_abs_diff(&b.hessian), 0.0, "bit-exact hessian");
            assert_eq!(a.dalpha.max_abs_diff(&b.dalpha), 0.0);
            assert_eq!(a.dmu.max_abs_diff(&b.dmu), 0.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_rejects_other_system() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_fp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("responses.qfrc");
        save_responses(&path, &d, &sys, &responses).unwrap();
        // A different box has a different decomposition.
        let other_sys = WaterBoxBuilder::new(7).seed(2).build();
        let other = Decomposition::new(&other_sys, DecompositionParams::default());
        let err = load_responses(&path, &other, &other_sys).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let dir = std::env::temp_dir().join("qfr_ckpt_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.qfrc");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let (sys, d, _) = setup();
        let err = load_responses(&path, &d, &sys).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("responses.qfrc");
        save_responses(&path, &d, &sys, &responses).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_responses(&path, &d, &sys).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_deterministic_and_sensitive() {
        let (sys, d, _) = setup();
        let f1 = fingerprint(&d, &sys);
        let f2 = fingerprint(&d, &sys);
        assert_eq!(f1, f2);
        // Geometry sensitivity: nudging one atom changes the fingerprint
        // even though indices, counts and coefficients are untouched.
        let mut moved = sys.clone();
        moved.atoms[0].position.x += 1e-6;
        assert_ne!(f1, fingerprint(&d, &moved));
        // Element sensitivity likewise.
        let mut mutated = sys.clone();
        mutated.atoms[1].element = qfr_geom::Element::O;
        assert_ne!(f1, fingerprint(&d, &mutated));
        // The legacy fingerprint is blind to both — that was the bug.
        assert_eq!(fingerprint_legacy(&d, sys.n_atoms()), fingerprint_legacy(&d, moved.n_atoms()));
    }

    #[test]
    fn partial_round_trip_preserves_presence() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_partial");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("partial.qfrc");
        // Every other job present.
        let slots: Vec<Option<FragmentResponse>> =
            responses.iter().enumerate().map(|(j, r)| (j % 2 == 0).then(|| r.clone())).collect();
        save_partial(&path, &d, &sys, &slots).unwrap();
        let loaded = load_partial(&path, &d, &sys).unwrap();
        assert_eq!(loaded.len(), slots.len());
        for (j, (a, b)) in loaded.iter().zip(&slots).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.hessian.max_abs_diff(&b.hessian), 0.0, "job {j}");
                    assert_eq!(a.dalpha.max_abs_diff(&b.dalpha), 0.0, "job {j}");
                    assert_eq!(a.dmu.max_abs_diff(&b.dmu), 0.0, "job {j}");
                }
                (None, None) => {}
                _ => panic!("presence mismatch at job {j}"),
            }
        }
        // A partial file must refuse to load as a complete one.
        let err = load_responses(&path, &d, &sys).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_file_still_loads() {
        let (sys, d, responses) = setup();
        // Hand-roll a version-1 file: no present count, no bitmap.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u64_le(fingerprint_legacy(&d, sys.n_atoms()));
        buf.put_u64_le(responses.len() as u64);
        for (job, resp) in d.jobs.iter().zip(&responses) {
            buf.put_u32_le(job.size() as u32);
            put_matrix(&mut buf, &resp.hessian);
            put_matrix(&mut buf, &resp.dalpha);
            put_matrix(&mut buf, &resp.dmu);
        }
        let dir = std::env::temp_dir().join("qfr_ckpt_test_v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.qfrc");
        std::fs::write(&path, &buf[..]).unwrap();
        let loaded = load_responses(&path, &d, &sys).unwrap();
        assert_eq!(loaded.len(), responses.len());
        for (a, b) in loaded.iter().zip(&responses) {
            assert_eq!(a.hessian.max_abs_diff(&b.hessian), 0.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_response_shapes_rejected_before_write() {
        let (sys, d, mut responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_shape");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.qfrc");
        // Corrupt dalpha: the old writer validated only the hessian, wrote
        // the file, and the reader misparsed every later block.
        responses[0].dalpha = DMatrix::zeros(5, 5);
        let err = save_responses(&path, &d, &sys, &responses).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        assert!(!path.exists(), "a rejected save must not leave a file behind");
        // Same for dmu.
        let (_, _, mut responses) = setup();
        responses[1].dmu = DMatrix::zeros(1, 1);
        let err = save_responses(&path, &d, &sys, &responses).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_names_are_unique_per_write() {
        // The fixed `.tmp` suffix let two concurrent runs clobber each
        // other's half-written temp file; the pid+sequence name may never
        // repeat within a process either.
        let a = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let b = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        assert_ne!(a, b);
        // And a successful save leaves no temp droppings in the directory.
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_tmpname");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.qfrc");
        save_responses(&path, &d, &sys, &responses).unwrap();
        save_responses(&path, &d, &sys, &responses).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression for the geometry-blind fingerprint: a checkpoint saved
    /// before atoms moved used to load cleanly (indices, counts and
    /// coefficients are unchanged by a displacement) and silently
    /// resurrect stale responses. It must be rejected with
    /// `FingerprintMismatch`.
    #[test]
    fn displaced_geometry_checkpoint_rejected() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_displaced");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("displaced.qfrc");
        save_responses(&path, &d, &sys, &responses).unwrap();
        // Displace the geometry; the decomposition's job list (indices,
        // coefficients, link-H count) is structurally identical.
        let mut moved = sys.clone();
        for a in &mut moved.atoms {
            a.position.x += 0.25;
            a.position.y -= 0.1;
        }
        let d_moved = Decomposition::new(&moved, DecompositionParams::default());
        assert_eq!(d_moved.jobs.len(), d.jobs.len(), "same job structure");
        assert_eq!(
            fingerprint_legacy(&d_moved, moved.n_atoms()),
            fingerprint_legacy(&d, sys.n_atoms()),
            "the legacy fingerprint cannot tell these runs apart — the bug"
        );
        let err = load_responses(&path, &d_moved, &moved).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A v2 file (legacy fingerprint, bitmap layout) written by the
    /// previous release still loads.
    #[test]
    fn v2_file_still_loads() {
        let (sys, d, responses) = setup();
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(2);
        buf.put_u64_le(fingerprint_legacy(&d, sys.n_atoms()));
        buf.put_u64_le(responses.len() as u64);
        buf.put_u64_le(responses.len() as u64);
        let mut bitmap = vec![0u8; responses.len().div_ceil(8)];
        for j in 0..responses.len() {
            bitmap[j / 8] |= 1 << (j % 8);
        }
        buf.put_slice(&bitmap);
        for (job, resp) in d.jobs.iter().zip(&responses) {
            buf.put_u32_le(job.size() as u32);
            put_matrix(&mut buf, &resp.hessian);
            put_matrix(&mut buf, &resp.dalpha);
            put_matrix(&mut buf, &resp.dmu);
        }
        let dir = std::env::temp_dir().join("qfr_ckpt_test_v2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.qfrc");
        std::fs::write(&path, &buf[..]).unwrap();
        let loaded = load_responses(&path, &d, &sys).unwrap();
        assert_eq!(loaded.len(), responses.len());
        for (a, b) in loaded.iter().zip(&responses) {
            assert_eq!(a.hessian.max_abs_diff(&b.hessian), 0.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A failed save must leave no `.{name}.{pid}.{seq}.tmp` droppings:
    /// the drop guard cleans the temp on every error exit, here a rename
    /// failure forced by saving onto a path that is a directory.
    #[test]
    fn failed_save_leaves_no_temp_files() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_failsave");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // The target path is an existing non-empty directory: the temp
        // file writes fine, the rename onto it fails.
        let target = dir.join("is_a_dir.qfrc");
        std::fs::create_dir_all(target.join("occupied")).unwrap();
        let err = save_responses(&target, &d, &sys, &responses).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "failed save must clean its temp: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
