//! Checkpoint / restart of per-fragment engine results.
//!
//! The engine stage dominates wall time for large systems (millions of
//! fragment jobs); on the paper's machines such runs checkpoint as a matter
//! of course. This module persists the per-job [`FragmentResponse`] blocks
//! in a compact binary format keyed by a fingerprint of the decomposition,
//! so a re-run with the same system and λ resumes directly at assembly.
//!
//! Format (little-endian): magic `QFRC`, version u32, fingerprint u64,
//! job count u64, then per job: `m` (u32, atoms incl. link H) followed by
//! the `3m×3m` Hessian, `6×3m` ∂α/∂ξ and `3×3m` ∂μ/∂ξ as f64 arrays.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use qfr_fragment::{Decomposition, FragmentResponse};
use qfr_linalg::DMatrix;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"QFRC";
const VERSION: u32 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Not a checkpoint file, or an incompatible version.
    Format(String),
    /// The checkpoint belongs to a different system/decomposition.
    FingerprintMismatch {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the current decomposition.
        expected: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::FingerprintMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different run (fingerprint {found:#x}, expected {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a fingerprint of a decomposition: job kinds are implied by the atom
/// lists and coefficients, which is what assembly consumes.
pub fn fingerprint(decomposition: &Decomposition, n_atoms: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(n_atoms as u64);
    mix(decomposition.jobs.len() as u64);
    for job in &decomposition.jobs {
        mix(job.atoms.len() as u64);
        mix(job.link_hydrogens.len() as u64);
        mix(job.coefficient.to_bits());
        for &a in &job.atoms {
            mix(a as u64);
        }
    }
    h
}

fn put_matrix(buf: &mut BytesMut, m: &DMatrix) {
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
}

fn get_matrix(buf: &mut Bytes, rows: usize, cols: usize) -> Result<DMatrix, CheckpointError> {
    let need = rows * cols * 8;
    if buf.remaining() < need {
        return Err(CheckpointError::Format("truncated matrix data".into()));
    }
    let data = (0..rows * cols).map(|_| buf.get_f64_le()).collect();
    Ok(DMatrix::from_vec(rows, cols, data))
}

/// Saves responses to `path`, atomically (write to a temp file + rename).
pub fn save_responses(
    path: &Path,
    decomposition: &Decomposition,
    n_atoms: usize,
    responses: &[FragmentResponse],
) -> Result<(), CheckpointError> {
    assert_eq!(decomposition.jobs.len(), responses.len(), "one response per job");
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(fingerprint(decomposition, n_atoms));
    buf.put_u64_le(responses.len() as u64);
    for (job, resp) in decomposition.jobs.iter().zip(responses) {
        let m = job.size();
        resp.hessian
            .shape()
            .eq(&(3 * m, 3 * m))
            .then_some(())
            .ok_or_else(|| CheckpointError::Format("response shape mismatch".into()))?;
        buf.put_u32_le(m as u32);
        put_matrix(&mut buf, &resp.hessian);
        put_matrix(&mut buf, &resp.dalpha);
        put_matrix(&mut buf, &resp.dmu);
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads responses from `path`, verifying the fingerprint against the
/// current decomposition.
pub fn load_responses(
    path: &Path,
    decomposition: &Decomposition,
    n_atoms: usize,
) -> Result<Vec<FragmentResponse>, CheckpointError> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 4 + 4 + 8 + 8 {
        return Err(CheckpointError::Format("file too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::Format(format!("unsupported version {version}")));
    }
    let found = buf.get_u64_le();
    let expected = fingerprint(decomposition, n_atoms);
    if found != expected {
        return Err(CheckpointError::FingerprintMismatch { found, expected });
    }
    let count = buf.get_u64_le() as usize;
    if count != decomposition.jobs.len() {
        return Err(CheckpointError::Format(format!(
            "job count {count} does not match decomposition {}",
            decomposition.jobs.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for job in &decomposition.jobs {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Format("truncated job header".into()));
        }
        let m = buf.get_u32_le() as usize;
        if m != job.size() {
            return Err(CheckpointError::Format(format!(
                "job size {m} does not match decomposition {}",
                job.size()
            )));
        }
        out.push(FragmentResponse {
            hessian: get_matrix(&mut buf, 3 * m, 3 * m)?,
            dalpha: get_matrix(&mut buf, 6, 3 * m)?,
            dmu: get_matrix(&mut buf, 3, 3 * m)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{DecompositionParams, FragmentEngine};
    use qfr_geom::WaterBoxBuilder;
    use qfr_model::ForceFieldEngine;

    fn setup() -> (qfr_geom::MolecularSystem, Decomposition, Vec<FragmentResponse>) {
        let sys = WaterBoxBuilder::new(6).seed(1).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let engine = ForceFieldEngine::new();
        let responses = d.jobs.iter().map(|j| engine.compute(&j.structure(&sys))).collect();
        (sys, d, responses)
    }

    #[test]
    fn round_trip_bitexact() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("responses.qfrc");
        save_responses(&path, &d, sys.n_atoms(), &responses).unwrap();
        let loaded = load_responses(&path, &d, sys.n_atoms()).unwrap();
        assert_eq!(loaded.len(), responses.len());
        for (a, b) in loaded.iter().zip(&responses) {
            assert_eq!(a.hessian.max_abs_diff(&b.hessian), 0.0, "bit-exact hessian");
            assert_eq!(a.dalpha.max_abs_diff(&b.dalpha), 0.0);
            assert_eq!(a.dmu.max_abs_diff(&b.dmu), 0.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_rejects_other_system() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_fp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("responses.qfrc");
        save_responses(&path, &d, sys.n_atoms(), &responses).unwrap();
        // A different box has a different decomposition.
        let other_sys = WaterBoxBuilder::new(7).seed(2).build();
        let other = Decomposition::new(&other_sys, DecompositionParams::default());
        let err = load_responses(&path, &other, other_sys.n_atoms()).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let dir = std::env::temp_dir().join("qfr_ckpt_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.qfrc");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let (sys, d, _) = setup();
        let err = load_responses(&path, &d, sys.n_atoms()).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let (sys, d, responses) = setup();
        let dir = std::env::temp_dir().join("qfr_ckpt_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("responses.qfrc");
        save_responses(&path, &d, sys.n_atoms(), &responses).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_responses(&path, &d, sys.n_atoms()).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_deterministic_and_sensitive() {
        let (sys, d, _) = setup();
        let f1 = fingerprint(&d, sys.n_atoms());
        let f2 = fingerprint(&d, sys.n_atoms());
        assert_eq!(f1, f2);
        assert_ne!(f1, fingerprint(&d, sys.n_atoms() + 1));
    }
}
