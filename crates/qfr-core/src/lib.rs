//! # qfr-core — QF-RAMAN in Rust
//!
//! End-to-end *ab initio*-style Raman spectra for large (bio)molecular
//! systems via Quantum Fragmentation, reproducing the pipeline of
//! "Pushing the Limit of Quantum Mechanical Simulation to the Raman
//! Spectra of a Biological System with 100 Million Atoms" (SC 2024):
//!
//! 1. build or load a system ([`qfr_geom`]: synthetic proteins, water
//!    boxes, solvated systems);
//! 2. decompose it into capped fragments, cap pairs and generalized
//!    concaps ([`qfr_fragment`], Eq. (1));
//! 3. run a per-fragment engine — the calibrated analytic force-field /
//!    bond-polarizability engine ([`qfr_model`]) or the model DFPT engine
//!    ([`qfr_dfpt`]) — in parallel over fragments;
//! 4. assemble the mass-weighted Hessian and polarizability-derivative
//!    vectors;
//! 5. evaluate `I(ω) ∝ dᵀ δ(ω − H) d` with the Lanczos/GAGQ solver
//!    ([`qfr_solver`], Section V-E) — no diagonalization of the global
//!    matrix.
//!
//! ```
//! use qfr_core::RamanWorkflow;
//! use qfr_geom::WaterBoxBuilder;
//!
//! let system = WaterBoxBuilder::new(8).seed(7).build();
//! let result = RamanWorkflow::new(system).sigma(20.0).run().unwrap();
//! assert!(result.spectrum.peak().is_some());
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index loops over dof blocks

pub mod checkpoint;
pub mod modes;
pub mod report;
pub mod service;
pub mod shard;
pub mod streamed;
pub mod workflow;

pub use modes::{normal_modes, NormalModes};
pub use report::{RamanResult, RecoverySummary, StageTimings};
pub use service::{RequestHandle, ServiceConfig, ServiceError, SpectrumRequest, SpectrumService};
pub use shard::{ShardError, ShardPlan, ShardStore};
pub use streamed::StreamedHessian;
pub use workflow::{EngineKind, RamanWorkflow, ScheduledConfig, ShardConfig, WorkflowError};
