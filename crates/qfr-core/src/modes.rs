//! Normal-mode analysis and band assignment.
//!
//! The paper assigns its Fig. 12 bands by literature correspondence ("the
//! Raman band around 1030 cm⁻¹ is related to the breathing modes of
//! phenylalanine residues"). This module *verifies* such assignments on our
//! systems: diagonalize the assembled mass-weighted Hessian (dense;
//! workstation-sized systems), then project each normal mode onto
//! bond-stretch internal coordinates to obtain its character — e.g. "the
//! modes under the 2900 cm⁻¹ band are C–H stretches" becomes a measurable
//! statement, tested in this module and exercised by the band-assignment
//! integration tests.

use qfr_fragment::{assemble, Decomposition, FragmentEngine, FragmentResponse, MassWeighted};
use qfr_geom::system::BondClass;
use qfr_geom::MolecularSystem;
use qfr_linalg::eigen::symmetric_eigen;
use qfr_linalg::DMatrix;
use std::collections::HashMap;

/// Full normal-mode decomposition of a system (dense path).
#[derive(Debug, Clone)]
pub struct NormalModes {
    /// Harmonic frequencies in cm⁻¹, ascending (negative = imaginary).
    pub frequencies: Vec<f64>,
    /// Mass-weighted mode vectors as columns (`3N x 3N`).
    pub vectors: DMatrix,
    /// Atom count.
    pub n_atoms: usize,
}

/// Computes normal modes by direct diagonalization. Dense `O((3N)³)`:
/// intended for systems up to a few thousand atoms.
pub fn normal_modes(
    system: &MolecularSystem,
    decomposition: &Decomposition,
    engine: &dyn FragmentEngine,
) -> NormalModes {
    let responses: Vec<FragmentResponse> =
        decomposition.jobs.iter().map(|j| engine.compute(&j.structure(system))).collect();
    let asm = assemble::assemble(&decomposition.jobs, &responses, system.n_atoms());
    let mw = MassWeighted::new(&asm, &system.masses());
    let eig = symmetric_eigen(&mw.hessian.to_dense());
    let frequencies =
        eig.eigenvalues.iter().map(|&l| qfr_model::eigenvalue_to_wavenumber(l)).collect();
    NormalModes { frequencies, vectors: eig.eigenvectors, n_atoms: system.n_atoms() }
}

impl NormalModes {
    /// Indices of modes inside a wavenumber window.
    pub fn modes_in_window(&self, lo: f64, hi: f64) -> Vec<usize> {
        self.frequencies
            .iter()
            .enumerate()
            .filter(|(_, &nu)| nu >= lo && nu < hi)
            .map(|(i, _)| i)
            .collect()
    }

    /// Participation ratio of mode `p`: `1 / (N Σ w_a²)` with `w_a` the
    /// per-atom weight — 1/N for a mode localized on one atom, →1 for a
    /// fully delocalized mode.
    pub fn participation_ratio(&self, p: usize) -> f64 {
        let mut weights = vec![0.0f64; self.n_atoms];
        for a in 0..self.n_atoms {
            for c in 0..3 {
                let v = self.vectors[(3 * a + c, p)];
                weights[a] += v * v;
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let sum_sq: f64 = weights.iter().map(|w| (w / total) * (w / total)).sum();
        1.0 / (self.n_atoms as f64 * sum_sq)
    }

    /// Projects mode `p` onto the bond-stretch internal coordinates of the
    /// system, returning the squared projection weight per bond class
    /// (normalized so the weights over all classes sum to the total stretch
    /// fraction of the mode; the remainder is bend/torsion/translation
    /// character).
    pub fn stretch_character(&self, system: &MolecularSystem, p: usize) -> HashMap<BondClass, f64> {
        let masses = system.masses();
        // Convert the mass-weighted mode back to Cartesian displacements.
        let cart: Vec<f64> =
            (0..3 * self.n_atoms).map(|i| self.vectors[(i, p)] / masses[i / 3].sqrt()).collect();
        let norm: f64 = cart.iter().map(|x| x * x).sum();
        let mut out: HashMap<BondClass, f64> = HashMap::new();
        // A NaN norm (degenerate eigenvector) must bail out here too;
        // a bare `norm <= 0.0` would let it through.
        if norm.is_nan() || norm <= 0.0 {
            return out;
        }
        for b in &system.bonds {
            let u = (system.atoms[b.j].position - system.atoms[b.i].position).try_normalized();
            let Some(u) = u else { continue };
            let ua = u.to_array();
            // Stretch coordinate derivative: û on atom j, −û on atom i.
            let mut proj = 0.0;
            for c in 0..3 {
                proj += ua[c] * (cart[3 * b.j + c] - cart[3 * b.i + c]);
            }
            // Each bond's squared stretch amplitude relative to the total
            // Cartesian norm (÷2 for the two-atom support overlap).
            *out.entry(b.class).or_insert(0.0) += proj * proj / (2.0 * norm);
        }
        out
    }

    /// Dominant stretch class of mode `p`, if any bond moves at all.
    pub fn dominant_stretch(&self, system: &MolecularSystem, p: usize) -> Option<(BondClass, f64)> {
        self.stretch_character(system, p).into_iter().max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::DecompositionParams;
    use qfr_geom::{ProteinBuilder, ResidueKind, WaterBoxBuilder};
    use qfr_model::ForceFieldEngine;

    fn modes_of(system: &MolecularSystem) -> NormalModes {
        let d = Decomposition::new(system, DecompositionParams::default());
        normal_modes(system, &d, &ForceFieldEngine::new())
    }

    #[test]
    fn water_stretch_band_is_oh_character() {
        let sys = WaterBoxBuilder::new(4).seed(1).build();
        let modes = modes_of(&sys);
        let stretch_modes = modes.modes_in_window(3100.0, 3800.0);
        assert!(!stretch_modes.is_empty(), "no O-H stretch modes found");
        for &p in &stretch_modes {
            let (class, w) = modes.dominant_stretch(&sys, p).unwrap();
            assert_eq!(class, BondClass::OH, "mode {p} at {} cm-1", modes.frequencies[p]);
            assert!(w > 0.2, "weak O-H character {w}");
        }
    }

    #[test]
    fn ch_band_in_alanine_is_ch_character() {
        let sys = ProteinBuilder::new(3).seed(2).sequence(vec![ResidueKind::Ala; 3]).build();
        let modes = modes_of(&sys);
        let ch_modes = modes.modes_in_window(2800.0, 3100.0);
        assert!(!ch_modes.is_empty(), "no C-H stretch modes");
        let mut ch_dominant = 0;
        for &p in &ch_modes {
            if let Some((BondClass::CH, _)) = modes.dominant_stretch(&sys, p) {
                ch_dominant += 1;
            }
        }
        assert!(
            ch_dominant * 2 > ch_modes.len(),
            "only {ch_dominant}/{} modes are C-H stretches",
            ch_modes.len()
        );
    }

    #[test]
    fn phe_ring_band_has_aromatic_character() {
        // The paper's 1030 cm⁻¹ assignment: Phe ring breathing.
        let sys = ProteinBuilder::new(3)
            .seed(3)
            .sequence(vec![ResidueKind::Gly, ResidueKind::Phe, ResidueKind::Gly])
            .build();
        let modes = modes_of(&sys);
        let window = modes.modes_in_window(950.0, 1150.0);
        assert!(!window.is_empty(), "no modes near 1030 cm-1");
        // Ring breathing distributes over six C-C stretch coordinates with
        // heavy mixing into the skeleton; a few-percent aromatic weight in
        // this window is the signature (the strong ring C=C stretches sit
        // near 1600-1700 cm-1 in this model, as in real benzene).
        let aromatic_present = window.iter().any(|&p| {
            modes.stretch_character(&sys, p).get(&BondClass::CCAromatic).copied().unwrap_or(0.0)
                > 0.02
        });
        assert!(aromatic_present, "no aromatic ring character in the 1030 cm-1 window");
    }

    #[test]
    fn acoustic_modes_are_delocalized_stretches_localized() {
        let sys = WaterBoxBuilder::new(6).seed(4).build();
        let modes = modes_of(&sys);
        // The lowest (acoustic/translational) modes spread over the system.
        let pr_low = modes.participation_ratio(0);
        // An O-H stretch mode lives on one molecule.
        let stretch = *modes.modes_in_window(3100.0, 3800.0).first().unwrap();
        let pr_stretch = modes.participation_ratio(stretch);
        assert!(pr_low > pr_stretch, "acoustic PR {pr_low} should exceed stretch PR {pr_stretch}");
        assert!(pr_stretch < 0.35, "stretch should be localized: {pr_stretch}");
    }

    #[test]
    fn degenerate_mode_vectors_do_not_panic() {
        // Regression: a zero or NaN mode vector made the mode's Cartesian
        // norm 0 or NaN, `proj*proj / (2*norm)` NaN, and `dominant_stretch`
        // panicked via `partial_cmp(...).expect("weights are finite")`.
        let sys = WaterBoxBuilder::new(1).seed(6).build();
        let dof = sys.dof();
        let mut zero_modes = NormalModes {
            frequencies: vec![0.0; dof],
            vectors: qfr_linalg::DMatrix::zeros(dof, dof),
            n_atoms: sys.n_atoms(),
        };
        assert_eq!(zero_modes.dominant_stretch(&sys, 0), None, "zero mode has no stretch");
        for i in 0..dof {
            zero_modes.vectors[(i, 0)] = f64::NAN;
        }
        assert_eq!(zero_modes.dominant_stretch(&sys, 0), None, "NaN mode has no stretch");
    }

    #[test]
    fn frequencies_sorted_and_finite() {
        let sys = WaterBoxBuilder::new(3).seed(5).build();
        let modes = modes_of(&sys);
        assert_eq!(modes.frequencies.len(), sys.dof());
        for w in modes.frequencies.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        assert!(modes.frequencies.iter().all(|f| f.is_finite()));
    }
}
