//! The end-to-end Raman workflow builder.

use crate::report::{RamanResult, RecoverySummary, StageTimings};
use qfr_cache::{FragmentCache, HitKind};
use qfr_fragment::{
    assemble, Decomposition, DecompositionParams, FragmentEngine, FragmentResponse, MassWeighted,
};
use qfr_geom::MolecularSystem;
use qfr_model::ForceFieldEngine;
use qfr_solver::{ir_lanczos, raman_dense_reference, raman_lanczos, RamanOptions};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// Checkpoint lifecycle counters. Save counts trigger on the exact number of
// first-time slot fills (each job fills its slot exactly once, whatever the
// scheduling), and resume counts are a pure function of the checkpoint
// contents — both are deterministic and CI-gated.
static CHECKPOINT_SAVES: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("core.checkpoint.saves");
static CHECKPOINT_JOBS_RESUMED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("core.checkpoint.jobs_resumed");

/// Configuration of a fault-tolerant scheduled run
/// ([`RamanWorkflow::run_scheduled_with`]): the scheduler shape plus the
/// optional incremental checkpoint.
#[derive(Debug, Clone)]
pub struct ScheduledConfig {
    /// Scheduler shape and fault/recovery policy.
    pub runtime: qfr_sched::RuntimeConfig,
    /// When set, completed per-job responses are persisted here
    /// periodically (format v2, partial saves) and on completion; on the
    /// next run with the same system/λ, only jobs missing from the
    /// checkpoint — plus any that were quarantined, whose responses are
    /// excluded from the final save — are re-enqueued.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Persist after every `checkpoint_interval` newly completed jobs
    /// (0 disables periodic saves; the final save still happens).
    pub checkpoint_interval: usize,
}

impl Default for ScheduledConfig {
    /// Default runtime shape, no checkpoint, save every 64 completions.
    fn default() -> Self {
        Self {
            runtime: qfr_sched::RuntimeConfig::default(),
            checkpoint: None,
            checkpoint_interval: 64,
        }
    }
}

/// Configuration of an out-of-core sharded run
/// ([`RamanWorkflow::run_sharded`]): the atom partition, the spill
/// directory, the solver tile height, and an optional scheduler shape for
/// fault-tolerant shard building.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of contiguous atom-range shards `K`.
    pub shards: usize,
    /// Directory receiving one `shard-NNNNN.qfrs` spill file per shard
    /// (created if absent). Re-running with the same directory resumes:
    /// shards whose file is valid for this system/λ/K/tiling are skipped.
    pub spill: std::path::PathBuf,
    /// Dof rows per solver tile (peak solver residency is one tile).
    pub tile_rows: usize,
    /// When set, shard builds run through the fault-tolerant
    /// master/leader/worker scheduler (one work item per missing shard,
    /// cost linear in owned atoms); quarantined shards' spill files are
    /// deleted — untrusted — and their rows stream as zero, the same
    /// partial-spectrum semantics as [`RamanWorkflow::run_scheduled`].
    pub runtime: Option<qfr_sched::RuntimeConfig>,
}

impl ShardConfig {
    /// `K` shards spilling under `spill`, default tiling (512 dof rows),
    /// sequential shard builds.
    pub fn new(shards: usize, spill: impl Into<std::path::PathBuf>) -> Self {
        Self { shards, spill: spill.into(), tile_rows: 512, runtime: None }
    }

    /// Overrides the solver tile height.
    pub fn tile_rows(mut self, rows: usize) -> Self {
        self.tile_rows = rows;
        self
    }

    /// Builds missing shards through the scheduler.
    pub fn scheduled(mut self, runtime: qfr_sched::RuntimeConfig) -> Self {
        self.runtime = Some(runtime);
        self
    }
}

/// Which per-fragment engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Calibrated analytic force field + bond polarizability (fast; the
    /// production path for large systems).
    ForceField,
    /// Model DFPT engine (computationally faithful; `O((3m)²)` energy
    /// evaluations per fragment — small systems only).
    ModelDfpt,
}

/// Errors a workflow run can report.
#[derive(Debug)]
pub enum WorkflowError {
    /// The system contains no atoms.
    EmptySystem,
    /// System validation failed (inconsistent bonds/spans).
    InvalidSystem(Vec<String>),
    /// The DFPT engine was requested for a system too large for it.
    DfptTooLarge {
        /// Atom count of the largest fragment.
        largest_fragment: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Spill I/O or format failure in an out-of-core sharded run.
    Spill(crate::shard::ShardError),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::EmptySystem => write!(f, "system has no atoms"),
            WorkflowError::InvalidSystem(errs) => {
                write!(f, "invalid system: {}", errs.join("; "))
            }
            WorkflowError::DfptTooLarge { largest_fragment, cap } => write!(
                f,
                "model-DFPT engine capped at {cap}-atom fragments, largest is {largest_fragment}"
            ),
            WorkflowError::Spill(e) => write!(f, "shard spill error: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Builder + driver for one Raman computation.
#[derive(Debug, Clone)]
pub struct RamanWorkflow {
    system: MolecularSystem,
    decomposition: DecompositionParams,
    engine: EngineKind,
    raman: RamanOptions,
    parallel: bool,
    /// Cap on fragment size when the DFPT engine is selected.
    dfpt_fragment_cap: usize,
    /// How the DFPT engine executes its gathered dense-algebra job
    /// streams (ignored by the force-field engine).
    offload: qfr_linalg::batch::OffloadMode,
    /// Element width the DFPT engine's batch kernels run at — `F64`
    /// (default) or the opt-in `MixedF32` floor (DESIGN.md §15).
    precision: qfr_linalg::GemmPrecision,
    /// Content-addressed fragment result cache shared across runs (and,
    /// through [`crate::SpectrumService`], across concurrent requests).
    cache: Option<Arc<FragmentCache>>,
}

impl RamanWorkflow {
    /// Workflow over a system with the paper's defaults (λ = 4 Å, σ = 5
    /// cm⁻¹, force-field engine, GAGQ solver).
    pub fn new(system: MolecularSystem) -> Self {
        Self {
            system,
            decomposition: DecompositionParams::default(),
            engine: EngineKind::ForceField,
            raman: RamanOptions::default(),
            parallel: true,
            dfpt_fragment_cap: 12,
            offload: qfr_linalg::batch::OffloadMode::default(),
            precision: qfr_linalg::GemmPrecision::default(),
            cache: None,
        }
    }

    /// Sets the two-body distance threshold λ (Å).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.decomposition.lambda = lambda;
        self
    }

    /// Sets the Gaussian smearing σ (cm⁻¹; paper: 5 gas phase, 20
    /// solvated).
    pub fn sigma(mut self, sigma: f64) -> Self {
        self.raman.sigma = sigma;
        self
    }

    /// Sets the number of Lanczos steps per starting vector.
    pub fn lanczos_steps(mut self, k: usize) -> Self {
        self.raman.lanczos_steps = k;
        self
    }

    /// Selects the per-fragment engine.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Toggles GAGQ augmentation (ablation).
    pub fn use_gagq(mut self, on: bool) -> Self {
        self.raman.use_gagq = on;
        self
    }

    /// Overrides the full Raman solver options.
    pub fn raman_options(mut self, opts: RamanOptions) -> Self {
        self.raman = opts;
        self
    }

    /// Disables rayon fragment parallelism (profiling/debugging).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Selects how the model-DFPT engine executes its gathered
    /// dense-algebra job streams (batched size-class launches by default;
    /// scattered per-job execution for ablations). Results are
    /// bit-identical in both modes.
    pub fn offload(mut self, mode: qfr_linalg::batch::OffloadMode) -> Self {
        self.offload = mode;
        self
    }

    /// Selects the element width the model-DFPT engine's gathered batch
    /// kernels run at. `F64` (the default) is bit-identical to the
    /// reference kernels; `MixedF32` packs `f32` operand panels with `f64`
    /// accumulation — the opt-in accelerator floor, validated by max-|Δ|
    /// tolerance against the f64 spectrum rather than bit parity
    /// (DESIGN.md §15). Ignored by the force-field engine.
    pub fn precision(mut self, prec: qfr_linalg::GemmPrecision) -> Self {
        self.precision = prec;
        self
    }

    /// Attaches a content-addressed fragment result cache. Every engine
    /// compute is then routed through the cache: a fragment whose exact
    /// geometry key is already resident is served from memory (the
    /// response is bit-identical to a fresh compute), and misses populate
    /// it for later runs. Pass the same `Arc` to several workflows to
    /// share results across systems and requests.
    pub fn with_cache(mut self, cache: Arc<FragmentCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached fragment cache, if any.
    pub fn cache(&self) -> Option<&Arc<FragmentCache>> {
        self.cache.as_ref()
    }

    /// Read access to the system.
    pub fn system(&self) -> &MolecularSystem {
        &self.system
    }

    /// Runs decomposition only.
    pub fn decompose(&self) -> Decomposition {
        Decomposition::new(&self.system, self.decomposition)
    }

    fn make_engine(&self) -> Box<dyn FragmentEngine> {
        match self.engine {
            EngineKind::ForceField => Box::new(ForceFieldEngine::new()),
            EngineKind::ModelDfpt => {
                let mut config = qfr_dfpt::DfptEngineConfig::default();
                config.scf.offload = self.offload;
                config.response.offload = self.offload;
                config.scf.precision = self.precision;
                config.response.precision = self.precision;
                Box::new(qfr_dfpt::DfptEngine { config })
            }
        }
    }

    /// One fragment response, served from the cache when one is attached
    /// (counting a hit into `hits`) and computed by `engine` otherwise.
    /// Exact hits are bit-identical to a fresh compute, so every run mode
    /// produces the same spectrum with and without a cache.
    fn compute_response(
        &self,
        engine: &dyn FragmentEngine,
        job: &qfr_fragment::FragmentJob,
        hits: &AtomicU64,
    ) -> FragmentResponse {
        let frag = job.structure(&self.system);
        // Cache keys are geometry-only, so responses computed at different
        // element widths would collide under one key. F64 is the only
        // precision the cache (and checkpoint pre-warm) serves; mixed runs
        // always compute fresh.
        let cache = match self.precision {
            qfr_linalg::GemmPrecision::F64 => &self.cache,
            qfr_linalg::GemmPrecision::MixedF32 => &None,
        };
        match cache {
            Some(cache) => {
                let (resp, kind) = cache.get_or_compute(&frag, || engine.compute(&frag));
                if kind != HitKind::Miss {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                (*resp).clone()
            }
            None => engine.compute(&frag),
        }
    }

    /// Treats checkpointed responses as a pre-warmed cache slice: each one
    /// is installed under its fragment's exact geometry key so later jobs
    /// (and later requests sharing the cache) hit instead of recomputing.
    fn prewarm_cache(&self, jobs: &[qfr_fragment::FragmentJob], responses: &[FragmentResponse]) {
        let Some(cache) = &self.cache else { return };
        for (job, resp) in jobs.iter().zip(responses) {
            cache.insert_precomputed(&job.structure(&self.system), resp.clone());
        }
    }

    fn validate(&self, decomposition: &Decomposition) -> Result<(), WorkflowError> {
        if self.system.n_atoms() == 0 {
            return Err(WorkflowError::EmptySystem);
        }
        let errs = self.system.validate();
        if !errs.is_empty() {
            return Err(WorkflowError::InvalidSystem(errs));
        }
        if self.engine == EngineKind::ModelDfpt {
            let largest = decomposition.jobs.iter().map(|j| j.size()).max().unwrap_or(0);
            if largest > self.dfpt_fragment_cap {
                return Err(WorkflowError::DfptTooLarge {
                    largest_fragment: largest,
                    cap: self.dfpt_fragment_cap,
                });
            }
        }
        Ok(())
    }

    /// Runs the full pipeline with the Lanczos/GAGQ solver.
    pub fn run(&self) -> Result<RamanResult, WorkflowError> {
        self.run_inner(false)
    }

    /// Like [`run`](Self::run), but loads per-fragment responses from
    /// `checkpoint` when a valid one exists for this system/λ, and writes
    /// one after computing otherwise — the restart path for long engine
    /// stages.
    pub fn run_with_checkpoint(
        &self,
        checkpoint: &std::path::Path,
    ) -> Result<RamanResult, WorkflowError> {
        // Checkpoint fingerprints cover geometry, not element width: a
        // mixed-precision run must neither resurrect f64 responses nor
        // write mixed ones an f64 resume would pick up. Mixed runs skip
        // the checkpoint machinery entirely.
        if self.precision == qfr_linalg::GemmPrecision::MixedF32 {
            return self.run();
        }
        let mut timings = StageTimings::default();
        let (decomposition, dt) = qfr_obs::timed("workflow.decompose", || self.decompose());
        timings.decompose_s = dt;
        self.validate(&decomposition)?;
        let engine = self.make_engine();

        let engine_span = qfr_obs::span("workflow.engine");
        let t = Instant::now();
        let hits = AtomicU64::new(0);
        let responses =
            match crate::checkpoint::load_responses(checkpoint, &decomposition, &self.system) {
                Ok(r) => {
                    // A loaded checkpoint is a pre-warmed cache slice: expose
                    // its responses to every other run sharing the cache.
                    self.prewarm_cache(&decomposition.jobs, &r);
                    r
                }
                Err(_) => {
                    let r: Vec<FragmentResponse> = if self.parallel {
                        decomposition
                            .jobs
                            .par_iter()
                            .map(|job| self.compute_response(engine.as_ref(), job, &hits))
                            .collect()
                    } else {
                        decomposition
                            .jobs
                            .iter()
                            .map(|job| self.compute_response(engine.as_ref(), job, &hits))
                            .collect()
                    };
                    // A failed save must not fail the run; the result is
                    // complete either way.
                    let _ = crate::checkpoint::save_responses(
                        checkpoint,
                        &decomposition,
                        &self.system,
                        &r,
                    );
                    r
                }
            };
        timings.engine_s = t.elapsed().as_secs_f64();
        drop(engine_span);

        let (mw, dt) = qfr_obs::timed("workflow.assemble", || {
            let assembled =
                assemble::assemble(&decomposition.jobs, &responses, self.system.n_atoms());
            MassWeighted::new(&assembled, &self.system.masses())
        });
        timings.assemble_s = dt;

        let ((spectrum, ir), dt) = qfr_obs::timed("workflow.solver", || {
            let spectrum = raman_lanczos(&mw.hessian, &mw.dalpha, &self.raman);
            let ir = ir_lanczos(&mw.hessian, &mw.dmu, &self.raman);
            (spectrum, ir)
        });
        timings.solver_s = dt;

        Ok(RamanResult {
            spectrum,
            ir,
            stats: decomposition.stats,
            n_atoms: self.system.n_atoms(),
            dof: self.system.dof(),
            hessian_nnz: mw.hessian.nnz(),
            engine: engine.name().to_string(),
            timings,
            recovery: None,
        })
    }

    /// Runs the pipeline with the dense-diagonalization reference solver
    /// (small systems; validation and the Fig. 12 cross-checks).
    pub fn run_dense_reference(&self) -> Result<RamanResult, WorkflowError> {
        self.run_inner(true)
    }

    /// Runs the pipeline with the engine stage executed through the
    /// fault-tolerant master/leader/worker scheduler of `qfr-sched`
    /// instead of the plain rayon map.
    ///
    /// Each decomposition job becomes one scheduler work item (its id is
    /// the job index). The run **always** produces a result: jobs
    /// quarantined after exhausting their retry budget — or abandoned
    /// because every leader died — are simply left out of the assembly,
    /// yielding a *partial* spectrum, and the scheduler's recovery
    /// counters are reported in [`RamanResult::recovery`]. A response
    /// computed during an attempt that later failed is still salvaged
    /// unless its job was quarantined (best-effort semantics).
    pub fn run_scheduled(
        &self,
        sched: qfr_sched::RuntimeConfig,
    ) -> Result<RamanResult, WorkflowError> {
        self.run_scheduled_with(ScheduledConfig { runtime: sched, ..ScheduledConfig::default() })
    }

    /// [`run_scheduled`](Self::run_scheduled) with incremental
    /// checkpointing: when [`ScheduledConfig::checkpoint`] is set, a valid
    /// checkpoint for this system/λ pre-fills the per-job result slots and
    /// only the *missing* jobs are enqueued into the scheduler; completed
    /// responses are persisted every `checkpoint_interval` first-time
    /// completions and once more at the end. The final save is
    /// **quarantine-aware**: a quarantined job's salvaged response is
    /// excluded, so the next run re-attempts it instead of trusting it.
    pub fn run_scheduled_with(&self, cfg: ScheduledConfig) -> Result<RamanResult, WorkflowError> {
        use qfr_sched::{run_master_leader_worker, FragmentWorkItem, SizeSensitivePolicy};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let mut timings = StageTimings::default();
        let (decomposition, dt) = qfr_obs::timed("workflow.decompose", || self.decompose());
        timings.decompose_s = dt;
        self.validate(&decomposition)?;
        let engine = self.make_engine();
        let n_atoms = self.system.n_atoms();

        let engine_span = qfr_obs::span("workflow.engine");
        let t = Instant::now();
        let jobs = &decomposition.jobs;

        // Resume: a loadable checkpoint pre-fills slots; an absent,
        // mismatched or corrupt file simply means a cold start.
        let resumed: Vec<Option<FragmentResponse>> = match &cfg.checkpoint {
            Some(path) => crate::checkpoint::load_partial(path, &decomposition, &self.system)
                .unwrap_or_else(|_| vec![None; jobs.len()]),
            None => vec![None; jobs.len()],
        };
        let resumed_jobs = resumed.iter().filter(|s| s.is_some()).count();
        if resumed_jobs > 0 {
            CHECKPOINT_JOBS_RESUMED.add(resumed_jobs as u64);
            qfr_obs::trace::instant("checkpoint.resume", &[("jobs", resumed_jobs as i64)]);
            // Checkpoint-as-cache-slice: resumed responses also warm the
            // attached cache so sibling runs can hit on them.
            if let Some(cache) = &self.cache {
                for (job, slot) in jobs.iter().zip(&resumed) {
                    if let Some(resp) = slot {
                        cache.insert_precomputed(&job.structure(&self.system), resp.clone());
                    }
                }
            }
        }
        let slots: Vec<Mutex<Option<FragmentResponse>>> =
            resumed.into_iter().map(Mutex::new).collect();

        // Only jobs without a checkpointed response enter the scheduler;
        // item ids stay the job indices.
        let items: Vec<FragmentWorkItem> = jobs
            .iter()
            .enumerate()
            .filter(|(i, _)| slots[*i].lock().expect("slot poisoned").is_none())
            .map(|(i, job)| FragmentWorkItem::new(i as u32, job.size() as u32))
            .collect();

        let filled = AtomicUsize::new(0);
        let hits = AtomicU64::new(0);
        let save_snapshot = |reason: &str| {
            let Some(path) = cfg.checkpoint.as_deref() else { return };
            CHECKPOINT_SAVES.incr();
            qfr_obs::trace::instant("checkpoint.save", &[]);
            // try_lock: a slot whose engine call is still running is simply
            // absent from this snapshot — the save *count* stays a pure
            // function of the completion count either way.
            let snapshot: Vec<Option<FragmentResponse>> =
                slots.iter().map(|s| s.try_lock().ok().and_then(|g| g.clone())).collect();
            if let Err(e) =
                crate::checkpoint::save_partial(path, &decomposition, &self.system, &snapshot)
            {
                // A failed save must not fail the run.
                eprintln!("warning: {reason} checkpoint save failed: {e}");
            }
        };
        let report = run_master_leader_worker(
            Box::new(SizeSensitivePolicy::with_defaults(items)),
            |item| {
                // Exactly-once compute: the slot lock is held across the
                // engine call, so a retry or straggler re-issue of an
                // already-computed fragment blocks until the first copy
                // fills the slot, then skips the recompute. This keeps the
                // engine-level counters (fragments, SCF solves, FLOPs)
                // deterministic under scheduling: each fragment is computed
                // exactly once no matter how many copies were dispatched.
                let mut slot = slots[item.id as usize].lock().expect("slot poisoned");
                if slot.is_none() {
                    let job = &jobs[item.id as usize];
                    *slot = Some(self.compute_response(engine.as_ref(), job, &hits));
                    drop(slot);
                    // fetch_add hands every first fill a unique count, so
                    // the set of counts hitting the interval — and hence
                    // the number of periodic saves — is deterministic.
                    let count = filled.fetch_add(1, Ordering::SeqCst) + 1;
                    if cfg.checkpoint_interval > 0 && count % cfg.checkpoint_interval == 0 {
                        save_snapshot("periodic");
                    }
                }
                true
            },
            cfg.runtime,
        );
        timings.engine_s = t.elapsed().as_secs_f64();
        drop(engine_span);

        // Partial assembly: keep every job with a computed response whose
        // task was not quarantined.
        let assemble_span = qfr_obs::span("workflow.assemble");
        let t = Instant::now();
        let quarantined: std::collections::HashSet<u32> =
            report.quarantined_fragments.iter().copied().collect();
        let final_slots: Vec<Option<FragmentResponse>> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                if quarantined.contains(&(i as u32)) {
                    None // salvaged but untrusted: recompute on restart
                } else {
                    slot.into_inner().expect("slot poisoned")
                }
            })
            .collect();
        if cfg.checkpoint.is_some() {
            let Some(path) = cfg.checkpoint.as_deref() else { unreachable!() };
            CHECKPOINT_SAVES.incr();
            qfr_obs::trace::instant("checkpoint.save", &[]);
            if let Err(e) =
                crate::checkpoint::save_partial(path, &decomposition, &self.system, &final_slots)
            {
                eprintln!("warning: final checkpoint save failed: {e}");
            }
        }
        let mut kept_jobs = Vec::new();
        let mut kept_responses = Vec::new();
        for (job, slot) in jobs.iter().zip(final_slots) {
            if let Some(resp) = slot {
                kept_jobs.push(job.clone());
                kept_responses.push(resp);
            }
        }
        let assembled = assemble::assemble(&kept_jobs, &kept_responses, n_atoms);
        let mw = MassWeighted::new(&assembled, &self.system.masses());
        timings.assemble_s = t.elapsed().as_secs_f64();
        drop(assemble_span);

        let ((spectrum, ir), dt) = qfr_obs::timed("workflow.solver", || {
            let spectrum = raman_lanczos(&mw.hessian, &mw.dalpha, &self.raman);
            let ir = ir_lanczos(&mw.hessian, &mw.dmu, &self.raman);
            (spectrum, ir)
        });
        timings.solver_s = dt;

        Ok(RamanResult {
            spectrum,
            ir,
            stats: decomposition.stats,
            n_atoms,
            dof: self.system.dof(),
            hessian_nnz: mw.hessian.nnz(),
            engine: engine.name().to_string(),
            timings,
            recovery: Some(RecoverySummary {
                retries: report.retries,
                eager_retries: report.eager_retries,
                resumed_jobs,
                reissues: report.reissues,
                duplicates_suppressed: report.duplicates_suppressed,
                quarantined_jobs: report.quarantined_fragments.len(),
                unfinished_jobs: report.unfinished_fragments,
                leaders_died: report.leaders_died,
                cache_hits: hits.load(Ordering::Relaxed),
            }),
        })
    }

    /// Runs the pipeline in matrix-free streaming mode: the Hessian is
    /// never materialized — every Lanczos matvec recomputes the fragment
    /// blocks through [`crate::StreamedHessian`] — and the derivative
    /// vectors are accumulated in a single engine pass. Memory scales with
    /// the job *descriptions* only, which is what makes the paper's
    /// 10⁸-atom regime approachable (their trade: recompute across 96,000
    /// nodes; ours: recompute across rayon threads).
    pub fn run_streamed(&self) -> Result<RamanResult, WorkflowError> {
        let mut timings = StageTimings::default();
        let (decomposition, dt) = qfr_obs::timed("workflow.decompose", || self.decompose());
        timings.decompose_s = dt;
        self.validate(&decomposition)?;
        let engine = self.make_engine();

        // Single accumulation pass for the derivative vectors (no stored
        // per-fragment responses).
        let engine_span = qfr_obs::span("workflow.engine");
        let t = Instant::now();
        let dof = self.system.dof();
        let inv_sqrt: Vec<f64> = self.system.masses().iter().map(|m| 1.0 / m.sqrt()).collect();
        let zero = || {
            (
                std::array::from_fn::<Vec<f64>, 6, _>(|_| vec![0.0; dof]),
                std::array::from_fn::<Vec<f64>, 3, _>(|_| vec![0.0; dof]),
            )
        };
        let merge = |mut a: ([Vec<f64>; 6], [Vec<f64>; 3]), b: ([Vec<f64>; 6], [Vec<f64>; 3])| {
            for c in 0..6 {
                for (x, y) in a.0[c].iter_mut().zip(&b.0[c]) {
                    *x += y;
                }
            }
            for c in 0..3 {
                for (x, y) in a.1[c].iter_mut().zip(&b.1[c]) {
                    *x += y;
                }
            }
            a
        };
        let accumulate = |mut acc: ([Vec<f64>; 6], [Vec<f64>; 3]),
                          job: &qfr_fragment::FragmentJob| {
            let resp = engine.compute(&job.structure(&self.system));
            for (la, &ga) in job.atoms.iter().enumerate() {
                for da in 0..3 {
                    let col = 3 * ga + da;
                    let w = inv_sqrt[ga];
                    for c in 0..6 {
                        acc.0[c][col] += job.coefficient * w * resp.dalpha[(c, 3 * la + da)];
                    }
                    for c in 0..3 {
                        acc.1[c][col] += job.coefficient * w * resp.dmu[(c, 3 * la + da)];
                    }
                }
            }
            acc
        };
        let (dalpha_mw, dmu_mw) = if self.parallel {
            decomposition.jobs.par_iter().fold(zero, &accumulate).reduce(zero, merge)
        } else {
            decomposition.jobs.iter().fold(zero(), accumulate)
        };
        timings.engine_s = t.elapsed().as_secs_f64();
        drop(engine_span);

        let ((spectrum, ir), dt) = qfr_obs::timed("workflow.solver", || {
            let streamed =
                crate::StreamedHessian::new(&self.system, &decomposition, engine.as_ref());
            let spectrum = raman_lanczos(&streamed, &dalpha_mw, &self.raman);
            let ir = ir_lanczos(&streamed, &dmu_mw, &self.raman);
            (spectrum, ir)
        });
        timings.solver_s = dt;

        Ok(RamanResult {
            spectrum,
            ir,
            stats: decomposition.stats,
            n_atoms: self.system.n_atoms(),
            dof,
            hessian_nnz: 0, // never materialized
            engine: engine.name().to_string(),
            timings,
            recovery: None,
        })
    }

    /// Runs the pipeline out of core: the Eq. (1) assembly is sharded by
    /// contiguous atom ranges ([`crate::ShardPlan`]), each shard's
    /// mass-weighted Hessian rows and ∂α/∂μ spans are spilled to one file
    /// under [`ShardConfig::spill`], and the Lanczos/GAGQ solver streams
    /// the SpMV tile-by-tile over the spill files — peak residency is one
    /// shard during the build and one tile (plus the Lanczos vectors)
    /// during the solve, `O(n/K + window)` instead of `O(n)`.
    ///
    /// The spectrum is **bit-identical** for every `K` (including the
    /// in-core `run()` when every job succeeds): rows partition exactly by
    /// shard, each shard replays the global job order restricted to its
    /// rows, the triplet sort is stable, mass weighting applies the same
    /// factors in the same order, and the streamed SpMV computes the same
    /// per-row dot products — `ablation_shards` pins this in CI.
    ///
    /// Re-running with the same spill directory resumes: shards whose file
    /// matches this system/λ/K/tiling are skipped (`shard.shards_resumed`
    /// counts them) and only missing or stale shards rebuild. With
    /// [`ShardConfig::runtime`] set, builds go through the fault-tolerant
    /// scheduler; a shard quarantined after exhausting its retry budget
    /// has its file deleted and its rows stream as zero (partial
    /// spectrum), mirroring [`run_scheduled`](Self::run_scheduled).
    pub fn run_sharded(&self, cfg: ShardConfig) -> Result<RamanResult, WorkflowError> {
        use crate::shard::{self, ShardPlan};
        use qfr_solver::ShardedOperator;

        let mut timings = StageTimings::default();
        let (decomposition, dt) = qfr_obs::timed("workflow.decompose", || self.decompose());
        timings.decompose_s = dt;
        self.validate(&decomposition)?;
        let engine = self.make_engine();
        let n_atoms = self.system.n_atoms();
        let plan = ShardPlan::new(n_atoms, cfg.shards);
        let base = crate::checkpoint::fingerprint(&decomposition, &self.system);
        let fp = |s: usize| shard::shard_fingerprint(base, &plan, s, cfg.tile_rows);
        let path = |s: usize| shard::shard_path(&cfg.spill, s);
        std::fs::create_dir_all(&cfg.spill)
            .map_err(|e| WorkflowError::Spill(shard::ShardError::Io(e)))?;

        // Resume: shards whose spill file is complete and keyed to this
        // exact system/λ/K/tiling are skipped; anything else rebuilds.
        let valid: Vec<bool> = (0..plan.k())
            .map(|s| shard::shard_file_valid(&path(s), &plan, s, cfg.tile_rows, fp(s)))
            .collect();
        let resumed_shards = valid.iter().filter(|&&v| v).count();
        shard::note_shards_resumed(resumed_shards);
        if resumed_shards > 0 {
            qfr_obs::trace::instant("shard.resume", &[("shards", resumed_shards as i64)]);
        }

        let engine_span = qfr_obs::span("workflow.engine");
        let t = Instant::now();
        let hits = AtomicU64::new(0);
        let jobs = &decomposition.jobs;
        let build_one = |s: usize| {
            shard::build_shard(
                &path(s),
                &self.system,
                jobs,
                &plan,
                s,
                cfg.tile_rows,
                fp(s),
                |job| self.compute_response(engine.as_ref(), job, &hits),
            )
        };
        let recovery = match &cfg.runtime {
            None => {
                // Sequential shard loop: exactly one shard's builders and
                // one live response resident at a time.
                for s in 0..plan.k() {
                    if !valid[s] {
                        build_one(s).map_err(WorkflowError::Spill)?;
                    }
                }
                None
            }
            Some(runtime) => {
                use qfr_sched::{
                    run_master_leader_worker, shard_range_workload, SizeSensitivePolicy,
                };
                // One work item per *missing* shard; item id == shard index,
                // cost linear in owned atoms.
                let items: Vec<_> = shard_range_workload(&plan.ranges())
                    .into_iter()
                    .filter(|item| !valid[item.id as usize])
                    .collect();
                let guards: Vec<std::sync::Mutex<()>> =
                    (0..plan.k()).map(|_| std::sync::Mutex::new(())).collect();
                let report = run_master_leader_worker(
                    Box::new(SizeSensitivePolicy::with_defaults(items)),
                    |item| {
                        let s = item.id as usize;
                        // Exactly-once build: the guard serializes copies of
                        // the same shard, and a retry or straggler re-issue
                        // finds the first copy's file already valid and
                        // skips the rebuild — `shard.shards_built` stays a
                        // pure function of the missing-shard set.
                        let _g = guards[s].lock().expect("shard guard poisoned");
                        if shard::shard_file_valid(&path(s), &plan, s, cfg.tile_rows, fp(s)) {
                            return true;
                        }
                        match build_one(s) {
                            Ok(()) => true,
                            Err(e) => {
                                eprintln!("warning: shard {s} build failed: {e}");
                                false
                            }
                        }
                    },
                    runtime.clone(),
                );
                // A quarantined shard's file is untrusted (its attempts kept
                // failing): delete it so this solve streams its rows as zero
                // and a restart recomputes it — the same recompute-on-restart
                // contract the scheduled checkpoint path applies to
                // quarantined jobs.
                for &s in &report.quarantined_fragments {
                    let _ = std::fs::remove_file(path(s as usize));
                }
                Some(RecoverySummary {
                    retries: report.retries,
                    eager_retries: report.eager_retries,
                    resumed_jobs: resumed_shards,
                    reissues: report.reissues,
                    duplicates_suppressed: report.duplicates_suppressed,
                    quarantined_jobs: report.quarantined_fragments.len(),
                    unfinished_jobs: report.unfinished_fragments,
                    leaders_died: report.leaders_died,
                    cache_hits: hits.load(Ordering::Relaxed),
                })
            }
        };
        timings.engine_s = t.elapsed().as_secs_f64();
        drop(engine_span);

        // "Assembly" is now just opening the spill directory: headers and
        // derivative spans load; the Hessian tiles stay on disk.
        let assemble_span = qfr_obs::span("workflow.assemble");
        let t = Instant::now();
        let store = shard::ShardStore::open(&cfg.spill, plan, cfg.tile_rows, base)
            .map_err(WorkflowError::Spill)?;
        let hessian_nnz = store.nnz();
        timings.assemble_s = t.elapsed().as_secs_f64();
        drop(assemble_span);

        let ((spectrum, ir), dt) = qfr_obs::timed("workflow.solver", || {
            let op = ShardedOperator::new(&store);
            let spectrum = raman_lanczos(&op, store.dalpha(), &self.raman);
            let ir = ir_lanczos(&op, store.dmu(), &self.raman);
            (spectrum, ir)
        });
        timings.solver_s = dt;

        Ok(RamanResult {
            spectrum,
            ir,
            stats: decomposition.stats,
            n_atoms,
            dof: self.system.dof(),
            hessian_nnz,
            engine: engine.name().to_string(),
            timings,
            recovery,
        })
    }

    fn run_inner(&self, dense: bool) -> Result<RamanResult, WorkflowError> {
        let mut timings = StageTimings::default();

        let (decomposition, dt) = qfr_obs::timed("workflow.decompose", || self.decompose());
        timings.decompose_s = dt;
        self.validate(&decomposition)?;

        let engine = self.make_engine();
        let engine_span = qfr_obs::span("workflow.engine");
        let t = Instant::now();
        let hits = AtomicU64::new(0);
        let responses: Vec<FragmentResponse> = if self.parallel {
            decomposition
                .jobs
                .par_iter()
                .map(|job| self.compute_response(engine.as_ref(), job, &hits))
                .collect()
        } else {
            decomposition
                .jobs
                .iter()
                .map(|job| self.compute_response(engine.as_ref(), job, &hits))
                .collect()
        };
        timings.engine_s = t.elapsed().as_secs_f64();
        drop(engine_span);

        let (mw, dt) = qfr_obs::timed("workflow.assemble", || {
            let assembled =
                assemble::assemble(&decomposition.jobs, &responses, self.system.n_atoms());
            MassWeighted::new(&assembled, &self.system.masses())
        });
        timings.assemble_s = dt;

        let ((spectrum, ir), dt) = qfr_obs::timed("workflow.solver", || {
            let spectrum = if dense {
                raman_dense_reference(&mw.hessian.to_dense(), &mw.dalpha, &self.raman)
            } else {
                raman_lanczos(&mw.hessian, &mw.dalpha, &self.raman)
            };
            let ir = ir_lanczos(&mw.hessian, &mw.dmu, &self.raman);
            (spectrum, ir)
        });
        timings.solver_s = dt;

        Ok(RamanResult {
            spectrum,
            ir,
            stats: decomposition.stats,
            n_atoms: self.system.n_atoms(),
            dof: self.system.dof(),
            hessian_nnz: mw.hessian.nnz(),
            engine: engine.name().to_string(),
            timings,
            recovery: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_geom::{ProteinBuilder, ResidueKind, WaterBoxBuilder};

    #[test]
    fn water_box_end_to_end() {
        let system = WaterBoxBuilder::new(27).seed(1).build();
        let result = RamanWorkflow::new(system).sigma(20.0).run().unwrap();
        assert_eq!(result.n_atoms, 81);
        assert!(result.hessian_nnz > 0);
        assert_eq!(result.engine, "force-field");
        // Water bands: bend near 1640 and the stretch band near 3400.
        let peaks = result.spectrum.peaks_above(0.05);
        assert!(peaks.iter().any(|&p| (1400.0..1900.0).contains(&p)), "no bend band in {peaks:?}");
        assert!(
            peaks.iter().any(|&p| (3100.0..3800.0).contains(&p)),
            "no stretch band in {peaks:?}"
        );
    }

    #[test]
    fn lanczos_matches_dense_reference_small() {
        let system = WaterBoxBuilder::new(6).seed(2).build();
        let wf = RamanWorkflow::new(system).sigma(30.0).lanczos_steps(60);
        let fast = wf.run().unwrap();
        let dense = wf.run_dense_reference().unwrap();
        let sim = fast.spectrum.cosine_similarity(&dense.spectrum);
        assert!(sim > 0.995, "cosine similarity {sim}");
    }

    #[test]
    fn protein_gas_phase_has_ch_band() {
        let system = ProteinBuilder::new(6).seed(3).sequence(vec![ResidueKind::Ala; 6]).build();
        let result = RamanWorkflow::new(system).sigma(10.0).run().unwrap();
        let peaks = result.spectrum.peaks_above(0.05);
        assert!(
            peaks.iter().any(|&p| (2800.0..3100.0).contains(&p)),
            "C-H stretch missing: {peaks:?}"
        );
    }

    #[test]
    fn empty_system_rejected() {
        let err = RamanWorkflow::new(Default::default()).run().unwrap_err();
        assert!(matches!(err, WorkflowError::EmptySystem));
        assert!(err.to_string().contains("no atoms"));
    }

    #[test]
    fn dfpt_engine_cap_enforced() {
        let system = ProteinBuilder::new(4).seed(4).build();
        let err = RamanWorkflow::new(system).engine(EngineKind::ModelDfpt).run().unwrap_err();
        assert!(matches!(err, WorkflowError::DfptTooLarge { .. }));
    }

    #[test]
    fn sequential_matches_parallel() {
        let system = WaterBoxBuilder::new(8).seed(5).build();
        let par = RamanWorkflow::new(system.clone()).run().unwrap();
        let seq = RamanWorkflow::new(system).sequential().run().unwrap();
        let sim = par.spectrum.cosine_similarity(&seq.spectrum);
        assert!(sim > 0.999999, "parallelism changed the physics: {sim}");
    }

    #[test]
    fn lambda_controls_pair_terms() {
        let system = WaterBoxBuilder::new(27).seed(6).build();
        let tight = RamanWorkflow::new(system.clone()).lambda(0.5).run().unwrap();
        let loose = RamanWorkflow::new(system).lambda(4.0).run().unwrap();
        assert_eq!(tight.stats.n_water_water_pairs, 0);
        assert!(loose.stats.n_water_water_pairs > 0);
        assert!(loose.hessian_nnz > tight.hessian_nnz);
    }

    #[test]
    fn ir_spectrum_has_water_bands() {
        let system = WaterBoxBuilder::new(12).seed(9).build();
        let result = RamanWorkflow::new(system).sigma(20.0).run().unwrap();
        let mut ir = result.ir.clone();
        ir.normalize_max();
        let window_max = |lo: f64, hi: f64| {
            ir.wavenumbers
                .iter()
                .zip(&ir.intensities)
                .filter(|(&w, _)| (lo..hi).contains(&w))
                .map(|(_, &i)| i)
                .fold(0.0_f64, f64::max)
        };
        // Water IR: the bend is famously strong; the stretch region too.
        assert!(window_max(1550.0, 1850.0) > 0.2, "IR bend missing");
        assert!(window_max(3200.0, 3650.0) > 0.05, "IR stretch missing");
        // Raman and IR differ (different selection weights).
        let sim = result.ir.cosine_similarity(&result.spectrum);
        assert!(sim < 0.999, "IR identical to Raman is suspicious: {sim}");
    }

    #[test]
    fn streamed_run_matches_assembled_run() {
        let system = WaterBoxBuilder::new(10).seed(21).build();
        let wf = RamanWorkflow::new(system).sigma(25.0).lanczos_steps(60);
        let assembled = wf.run().unwrap();
        let streamed = wf.run_streamed().unwrap();
        assert_eq!(streamed.hessian_nnz, 0, "streaming must not materialize");
        let sim = assembled.spectrum.cosine_similarity(&streamed.spectrum);
        assert!(sim > 0.99999, "streamed spectrum diverged: {sim}");
        let sim_ir = assembled.ir.cosine_similarity(&streamed.ir);
        assert!(sim_ir > 0.99999, "streamed IR diverged: {sim_ir}");
    }

    #[test]
    fn checkpoint_restart_matches_fresh_run() {
        let system = WaterBoxBuilder::new(9).seed(33).build();
        let dir = std::env::temp_dir().join("qfr_wf_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.qfrc");
        let wf = RamanWorkflow::new(system).sigma(25.0);
        let fresh = wf.run().unwrap();
        let first = wf.run_with_checkpoint(&path).unwrap(); // computes + saves
        assert!(path.exists(), "checkpoint written");
        let resumed = wf.run_with_checkpoint(&path).unwrap(); // loads
        for other in [&first, &resumed] {
            let sim = fresh.spectrum.cosine_similarity(&other.spectrum);
            assert!(sim > 0.999999, "checkpointed spectrum diverged: {sim}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scheduled_run_matches_plain_run() {
        let system = WaterBoxBuilder::new(10).seed(41).build();
        let wf = RamanWorkflow::new(system).sigma(25.0);
        let plain = wf.run().unwrap();
        let scheduled = wf
            .run_scheduled(qfr_sched::RuntimeConfig {
                n_leaders: 3,
                workers_per_leader: 2,
                ..Default::default()
            })
            .unwrap();
        let recovery = scheduled.recovery.as_ref().expect("scheduled runs report recovery");
        assert!(recovery.is_complete(), "fault-free run must be complete: {recovery:?}");
        assert_eq!(recovery.retries, 0);
        let sim = plain.spectrum.cosine_similarity(&scheduled.spectrum);
        assert!(sim > 0.999999, "scheduler changed the physics: {sim}");
    }

    #[test]
    fn scheduled_run_with_quarantine_yields_partial_spectrum() {
        let system = WaterBoxBuilder::new(12).seed(42).build();
        let wf = RamanWorkflow::new(system).sigma(25.0);
        // Job 0 fails on every attempt: its whole task is quarantined and
        // the run still returns a (partial) spectrum instead of hanging.
        let result = wf
            .run_scheduled(qfr_sched::RuntimeConfig {
                n_leaders: 2,
                workers_per_leader: 1,
                recovery: qfr_sched::RecoveryPolicy {
                    max_attempts: 2,
                    backoff_base: 1e-4,
                    ..Default::default()
                },
                faults: qfr_sched::FaultPlan::none().permanent([0]),
                ..Default::default()
            })
            .unwrap();
        let recovery = result.recovery.as_ref().unwrap();
        assert!(recovery.quarantined_jobs >= 1, "job 0 must be quarantined: {recovery:?}");
        assert!(!recovery.is_complete());
        assert!(recovery.retries >= 1, "the failing task retries before quarantine");
        let total: f64 = result.spectrum.intensities.iter().sum();
        assert!(total > 0.0, "partial spectrum must still carry signal");
    }

    #[test]
    fn sharded_run_bit_identical_to_in_core() {
        let system = WaterBoxBuilder::new(10).seed(51).build();
        let wf = RamanWorkflow::new(system).sigma(25.0).lanczos_steps(40);
        let in_core = wf.run().unwrap();
        let dir = std::env::temp_dir().join("qfr_wf_shard_test");
        for k in [1, 4, 16] {
            let spill = dir.join(format!("k{k}"));
            let result = wf.run_sharded(ShardConfig::new(k, &spill).tile_rows(7)).unwrap();
            // Bit-identity, not cosine similarity: stable triplet sort +
            // row-partitioned streaming makes every f64 op identical.
            assert_eq!(result.spectrum.intensities, in_core.spectrum.intensities, "K={k}");
            assert_eq!(result.ir.intensities, in_core.ir.intensities, "K={k}");
            assert_eq!(result.hessian_nnz, in_core.hessian_nnz, "K={k}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_resume_skips_valid_shards() {
        let system = WaterBoxBuilder::new(8).seed(52).build();
        let wf = RamanWorkflow::new(system).sigma(25.0).lanczos_steps(40);
        let dir = std::env::temp_dir().join("qfr_wf_shard_resume_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = || ShardConfig::new(3, &dir);
        let built = qfr_obs::counter::value_of("shard.shards_built").unwrap_or(0);
        let first = wf.run_sharded(cfg()).unwrap();
        assert_eq!(qfr_obs::counter::value_of("shard.shards_built"), Some(built + 3));
        let resumed = qfr_obs::counter::value_of("shard.shards_resumed").unwrap_or(0);
        let second = wf.run_sharded(cfg()).unwrap();
        // Nothing rebuilt, all three resumed, same bits out.
        assert_eq!(qfr_obs::counter::value_of("shard.shards_built"), Some(built + 3));
        assert_eq!(qfr_obs::counter::value_of("shard.shards_resumed"), Some(resumed + 3));
        assert_eq!(first.spectrum.intensities, second.spectrum.intensities);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timings_populated() {
        let system = WaterBoxBuilder::new(8).seed(7).build();
        let result = RamanWorkflow::new(system).run().unwrap();
        assert!(result.timings.engine_s >= 0.0);
        assert!(result.timings.total() >= result.timings.solver_s);
    }
}
