//! Long-running concurrent spectrum service.
//!
//! The batch workflows in [`crate::workflow`] run one system to completion
//! and exit. [`SpectrumService`] is the multi-tenant front end the ROADMAP
//! asks for on top of the content-addressed fragment cache: many
//! concurrent spectrum requests share
//!
//! - one [`qfr_sched::WorkerPool`] — every request's fragment computes run
//!   on the same fixed set of cores instead of oversubscribing the machine
//!   with per-request thread pools;
//! - one [`FragmentCache`] — a fragment computed for any request is served
//!   from memory to every other request with the same exact geometry key
//!   (bit-identical responses, so results never depend on *which* request
//!   computed a fragment first);
//! - a shared pending queue with **cross-request batching**: pool workers
//!   drain rounds of up to [`ServiceConfig::batch_window`] fragments that
//!   freely mix requests, so overlapping requests fill rounds that a
//!   single small request could not (and, under the model-DFPT engine,
//!   each fragment's dense algebra rides the existing kernel-tagged
//!   `BatchJob` batched dispatch inside the engine).
//!
//! Admission control is deliberately simple: at most
//! [`ServiceConfig::max_active`] requests compute at once, at most
//! [`ServiceConfig::max_queued`] more wait, and anything beyond that is
//! rejected *at submission* with [`ServiceError::Saturated`] — the caller
//! sheds load instead of the service buffering unboundedly.
//!
//! Isolation contract: requests share only the cache and the pool. Each
//! request assembles its spectrum exclusively from its own per-slot
//! responses (written by index into a per-request slot table), so
//! concurrent requests cannot bleed results into each other; the
//! no-bleed test pins this by checking service results bit-identical to
//! solo runs.

use crate::report::{RamanResult, RecoverySummary, StageTimings};
use crate::workflow::{EngineKind, WorkflowError};
use qfr_cache::{CacheConfig, FragmentCache, HitKind};
use qfr_fragment::{
    assemble, Decomposition, DecompositionParams, FragmentEngine, FragmentResponse,
    FragmentStructure, MassWeighted,
};
use qfr_geom::MolecularSystem;
use qfr_solver::{ir_lanczos, raman_lanczos, RamanOptions};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

// Accepted requests and enqueued fragments are pure functions of the
// submitted workload (when nothing is rejected), so they sit in the
// deterministic CI gate; rejections, peak concurrency and round counts
// depend on request overlap and stay timing-sensitive.
static REQUESTS: qfr_obs::Counter = qfr_obs::Counter::deterministic("service.requests");
static FRAGMENTS: qfr_obs::Counter = qfr_obs::Counter::deterministic("service.fragments");
static REJECTED: qfr_obs::Counter = qfr_obs::Counter::timing_sensitive("service.rejected");
static PEAK_IN_FLIGHT: qfr_obs::Counter =
    qfr_obs::Counter::timing_sensitive("service.peak_in_flight");
static BATCH_ROUNDS: qfr_obs::Counter = qfr_obs::Counter::timing_sensitive("service.batch_rounds");

/// One spectrum request: a system plus the decomposition and solver
/// options a standalone [`crate::RamanWorkflow`] would use.
#[derive(Debug, Clone)]
pub struct SpectrumRequest {
    /// The molecular system.
    pub system: MolecularSystem,
    /// Fragmentation parameters (λ etc.).
    pub params: DecompositionParams,
    /// Solver options (σ, Lanczos steps, GAGQ).
    pub raman: RamanOptions,
}

impl SpectrumRequest {
    /// A request with the workflow defaults.
    pub fn new(system: MolecularSystem) -> Self {
        Self { system, params: DecompositionParams::default(), raman: RamanOptions::default() }
    }

    /// Sets the two-body distance threshold λ (Å).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.params.lambda = lambda;
        self
    }

    /// Sets the Gaussian smearing σ (cm⁻¹).
    pub fn sigma(mut self, sigma: f64) -> Self {
        self.raman.sigma = sigma;
        self
    }

    /// Sets the number of Lanczos steps per starting vector.
    pub fn lanczos_steps(mut self, k: usize) -> Self {
        self.raman.lanczos_steps = k;
        self
    }
}

/// Service shape: pool size, admission limits, batching window, engine
/// and the shared cache.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads in the shared compute pool.
    pub workers: usize,
    /// Requests computing concurrently; further admitted requests wait.
    pub max_active: usize,
    /// Admitted-but-waiting requests beyond `max_active`; past this,
    /// submission returns [`ServiceError::Saturated`].
    pub max_queued: usize,
    /// Fragments per cross-request dispatch round.
    pub batch_window: usize,
    /// Per-fragment engine shared by all requests.
    pub engine: EngineKind,
    /// Shared fragment cache; `None` builds a fresh default-config cache
    /// owned by the service.
    pub cache: Option<Arc<FragmentCache>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_active: 4,
            max_queued: 16,
            batch_window: 32,
            engine: EngineKind::ForceField,
            cache: None,
        }
    }
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("max_active", &self.max_active)
            .field("max_queued", &self.max_queued)
            .field("batch_window", &self.batch_window)
            .field("engine", &self.engine)
            .field("shared_cache", &self.cache.is_some())
            .finish()
    }
}

/// Errors a service interaction can produce.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control rejected the request: `in_flight` requests were
    /// already admitted against a capacity of `capacity`
    /// (`max_active + max_queued`).
    Saturated {
        /// Requests admitted and not yet finished at rejection time.
        in_flight: usize,
        /// The admission capacity.
        capacity: usize,
    },
    /// The request's workflow failed validation.
    Workflow(WorkflowError),
    /// The serving thread disappeared without a result (a bug or a
    /// panicked engine).
    Lost,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Saturated { in_flight, capacity } => {
                write!(f, "service saturated: {in_flight} in flight, capacity {capacity}")
            }
            ServiceError::Workflow(e) => write!(f, "workflow error: {e}"),
            ServiceError::Lost => write!(f, "request lost: serving thread died"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A pending request's result slot: wait on it to get the spectrum.
#[derive(Debug)]
pub struct RequestHandle {
    id: u64,
    rx: mpsc::Receiver<Result<RamanResult, ServiceError>>,
}

impl RequestHandle {
    /// The request's service-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request finishes.
    pub fn wait(self) -> Result<RamanResult, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Lost))
    }
}

/// Per-request result table the dispatch rounds write into. Slots are
/// written by index, each exactly once, so no other request's responses
/// can land here.
struct RequestSlots {
    state: Mutex<SlotState>,
    done_cv: Condvar,
    /// Cache hits (exact + near) attributed to this request.
    hits: AtomicU64,
}

struct SlotState {
    responses: Vec<Option<FragmentResponse>>,
    remaining: usize,
}

/// One fragment awaiting compute: the geometry plus where its response
/// goes.
struct PendingItem {
    frag: FragmentStructure,
    out: Arc<RequestSlots>,
    index: usize,
}

struct Admission {
    /// Admitted, not yet finished (computing + waiting).
    in_flight: usize,
    /// Currently computing (≤ `max_active`).
    running: usize,
}

struct ServiceInner {
    config: ServiceConfig,
    cache: Arc<FragmentCache>,
    engine: Box<dyn FragmentEngine + Send + Sync>,
    pool: qfr_sched::WorkerPool,
    pending: Mutex<VecDeque<PendingItem>>,
    admission: Mutex<Admission>,
    admission_cv: Condvar,
    next_id: AtomicU64,
}

/// The concurrent spectrum service. Cheap to clone handles are not
/// provided; share it behind an `Arc` if several submitters need it.
pub struct SpectrumService {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for SpectrumService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpectrumService").field("config", &self.inner.config).finish()
    }
}

impl SpectrumService {
    /// Builds the service: spawns the shared pool and (unless one was
    /// passed in) the shared cache.
    pub fn new(config: ServiceConfig) -> Self {
        let cache = config
            .cache
            .clone()
            .unwrap_or_else(|| Arc::new(FragmentCache::new(CacheConfig::default())));
        let engine: Box<dyn FragmentEngine + Send + Sync> = match config.engine {
            EngineKind::ForceField => Box::new(qfr_model::ForceFieldEngine::new()),
            EngineKind::ModelDfpt => {
                Box::new(qfr_dfpt::DfptEngine { config: qfr_dfpt::DfptEngineConfig::default() })
            }
        };
        let pool = qfr_sched::WorkerPool::new(config.workers);
        Self {
            inner: Arc::new(ServiceInner {
                config,
                cache,
                engine,
                pool,
                pending: Mutex::new(VecDeque::new()),
                admission: Mutex::new(Admission { in_flight: 0, running: 0 }),
                admission_cv: Condvar::new(),
                next_id: AtomicU64::new(0),
            }),
        }
    }

    /// The shared fragment cache (inspect hit rates, pre-warm, or hand it
    /// to a batch [`crate::RamanWorkflow`] so offline runs and the service
    /// reuse each other's fragments).
    pub fn cache(&self) -> &Arc<FragmentCache> {
        &self.inner.cache
    }

    /// Requests admitted and not yet finished.
    pub fn in_flight(&self) -> usize {
        self.inner.admission.lock().expect("admission poisoned").in_flight
    }

    /// Submits a request. Returns immediately: either a handle to wait
    /// on, or [`ServiceError::Saturated`] when admission control sheds it.
    pub fn submit(&self, request: SpectrumRequest) -> Result<RequestHandle, ServiceError> {
        let capacity = self.inner.config.max_active + self.inner.config.max_queued;
        {
            let mut adm = self.inner.admission.lock().expect("admission poisoned");
            if adm.in_flight >= capacity {
                REJECTED.incr();
                return Err(ServiceError::Saturated { in_flight: adm.in_flight, capacity });
            }
            adm.in_flight += 1;
            PEAK_IN_FLIGHT.record_max(adm.in_flight as u64);
        }
        REQUESTS.incr();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("qfr-serve-{id}"))
            .spawn(move || {
                // Hold a running slot while computing; admitted requests
                // beyond `max_active` wait here.
                {
                    let mut adm = inner.admission.lock().expect("admission poisoned");
                    while adm.running >= inner.config.max_active {
                        adm = inner.admission_cv.wait(adm).expect("admission poisoned");
                    }
                    adm.running += 1;
                }
                let result = ServiceInner::serve(&inner, request);
                // Release the admission slots *before* publishing the
                // result, so a caller who saw its request finish also
                // sees the capacity freed.
                {
                    let mut adm = inner.admission.lock().expect("admission poisoned");
                    adm.running -= 1;
                    adm.in_flight -= 1;
                }
                inner.admission_cv.notify_all();
                let _ = tx.send(result);
            })
            .expect("spawn request coordinator");
        Ok(RequestHandle { id, rx })
    }
}

impl ServiceInner {
    fn validate(&self, request: &SpectrumRequest, d: &Decomposition) -> Result<(), WorkflowError> {
        if request.system.n_atoms() == 0 {
            return Err(WorkflowError::EmptySystem);
        }
        let errs = request.system.validate();
        if !errs.is_empty() {
            return Err(WorkflowError::InvalidSystem(errs));
        }
        if self.config.engine == EngineKind::ModelDfpt {
            let cap = 12; // same cap RamanWorkflow applies
            let largest = d.jobs.iter().map(|j| j.size()).max().unwrap_or(0);
            if largest > cap {
                return Err(WorkflowError::DfptTooLarge { largest_fragment: largest, cap });
            }
        }
        Ok(())
    }

    /// Serves one request end to end on its coordinator thread; only the
    /// fragment computes go through the shared pool (as drain rounds), so
    /// coordinators can block on their slots without starving the pool.
    fn serve(inner: &Arc<Self>, request: SpectrumRequest) -> Result<RamanResult, ServiceError> {
        let mut timings = StageTimings::default();
        let (decomposition, dt) = qfr_obs::timed("service.decompose", || {
            Decomposition::new(&request.system, request.params)
        });
        timings.decompose_s = dt;
        inner.validate(&request, &decomposition).map_err(ServiceError::Workflow)?;

        let jobs = &decomposition.jobs;
        FRAGMENTS.add(jobs.len() as u64);
        let engine_span = qfr_obs::span("service.engine");
        let t = Instant::now();
        let out = Arc::new(RequestSlots {
            state: Mutex::new(SlotState {
                responses: vec![None; jobs.len()],
                remaining: jobs.len(),
            }),
            done_cv: Condvar::new(),
            hits: AtomicU64::new(0),
        });

        // Enqueue every fragment, then submit enough drain rounds to
        // cover them. A round takes up to `batch_window` items from the
        // *front* of the shared queue, so overlapping requests mix into
        // common rounds (cross-request batching); cumulative round
        // capacity covers every enqueued item, so none is stranded.
        {
            let mut pending = inner.pending.lock().expect("pending poisoned");
            for (index, job) in jobs.iter().enumerate() {
                pending.push_back(PendingItem {
                    frag: job.structure(&request.system),
                    out: Arc::clone(&out),
                    index,
                });
            }
        }
        let window = inner.config.batch_window.max(1);
        for _ in 0..jobs.len().div_ceil(window) {
            let worker = Arc::clone(inner);
            inner.pool.submit(move || worker.drain_round());
        }

        // Wait for this request's slots; rounds for other requests keep
        // flowing on the pool meanwhile.
        let responses: Vec<FragmentResponse> = {
            let mut st = out.state.lock().expect("slots poisoned");
            while st.remaining > 0 {
                st = out.done_cv.wait(st).expect("slots poisoned");
            }
            st.responses.iter_mut().map(|s| s.take().expect("slot filled")).collect()
        };
        timings.engine_s = t.elapsed().as_secs_f64();
        drop(engine_span);

        let n_atoms = request.system.n_atoms();
        let (mw, dt) = qfr_obs::timed("service.assemble", || {
            let assembled = assemble::assemble(jobs, &responses, n_atoms);
            MassWeighted::new(&assembled, &request.system.masses())
        });
        timings.assemble_s = dt;

        let ((spectrum, ir), dt) = qfr_obs::timed("service.solver", || {
            let spectrum = raman_lanczos(&mw.hessian, &mw.dalpha, &request.raman);
            let ir = ir_lanczos(&mw.hessian, &mw.dmu, &request.raman);
            (spectrum, ir)
        });
        timings.solver_s = dt;

        Ok(RamanResult {
            spectrum,
            ir,
            stats: decomposition.stats,
            n_atoms,
            dof: request.system.dof(),
            hessian_nnz: mw.hessian.nnz(),
            engine: inner.engine.name().to_string(),
            timings,
            recovery: Some(RecoverySummary {
                cache_hits: out.hits.load(Ordering::Relaxed),
                ..RecoverySummary::default()
            }),
        })
    }

    /// One cross-request dispatch round: take up to `batch_window`
    /// pending fragments — from any mix of requests — and resolve each
    /// through the shared cache, computing on a miss.
    fn drain_round(&self) {
        let batch: Vec<PendingItem> = {
            let mut pending = self.pending.lock().expect("pending poisoned");
            let take = pending.len().min(self.config.batch_window.max(1));
            pending.drain(..take).collect()
        };
        if batch.is_empty() {
            return;
        }
        BATCH_ROUNDS.incr();
        for item in batch {
            let (resp, kind) =
                self.cache.get_or_compute(&item.frag, || self.engine.compute(&item.frag));
            if kind != HitKind::Miss {
                item.out.hits.fetch_add(1, Ordering::Relaxed);
            }
            let mut st = item.out.state.lock().expect("slots poisoned");
            st.responses[item.index] = Some((*resp).clone());
            st.remaining -= 1;
            if st.remaining == 0 {
                item.out.done_cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamanWorkflow;
    use qfr_geom::{ProteinBuilder, WaterBoxBuilder};

    #[test]
    fn concurrent_requests_do_not_bleed() {
        // Three different systems in flight at once on a shared pool and
        // cache; each result must be *bit-identical* to a solo batch run
        // of the same system — any cross-request mixing of responses
        // would shift the spectra.
        let systems = [
            WaterBoxBuilder::new(8).seed(1).build(),
            WaterBoxBuilder::new(12).seed(2).build(),
            ProteinBuilder::new(5).seed(3).build(),
        ];
        let solo: Vec<_> = systems
            .iter()
            .map(|s| RamanWorkflow::new(s.clone()).sigma(20.0).run().unwrap())
            .collect();

        let service = SpectrumService::new(ServiceConfig {
            workers: 4,
            max_active: 3,
            batch_window: 8, // small window forces many mixed rounds
            ..ServiceConfig::default()
        });
        let handles: Vec<_> = systems
            .iter()
            .map(|s| service.submit(SpectrumRequest::new(s.clone()).sigma(20.0)).unwrap())
            .collect();
        for (handle, solo) in handles.into_iter().zip(&solo) {
            let served = handle.wait().unwrap();
            assert_eq!(served.n_atoms, solo.n_atoms);
            assert_eq!(
                served.spectrum.intensities, solo.spectrum.intensities,
                "service spectrum must be bit-identical to the solo run"
            );
            assert_eq!(served.ir.intensities, solo.ir.intensities);
            assert!(served.recovery.is_some(), "service reports per-request recovery");
        }
        assert_eq!(service.in_flight(), 0);
    }

    #[test]
    fn repeat_request_hits_the_shared_cache() {
        let system = WaterBoxBuilder::new(10).seed(7).build();
        let service = SpectrumService::new(ServiceConfig::default());
        let first = service.submit(SpectrumRequest::new(system.clone())).unwrap().wait().unwrap();
        let again = service.submit(SpectrumRequest::new(system)).unwrap().wait().unwrap();
        let r1 = first.recovery.unwrap();
        let r2 = again.recovery.unwrap();
        assert_eq!(r1.cache_hits, 0, "cold cache: every fragment computes");
        assert_eq!(
            r2.cache_hits as usize, first.stats.n_jobs,
            "identical repeat must be served entirely from the cache"
        );
        assert_eq!(first.spectrum.intensities, again.spectrum.intensities);
    }

    #[test]
    fn admission_control_sheds_load() {
        let service = SpectrumService::new(ServiceConfig {
            workers: 2,
            max_active: 1,
            max_queued: 0,
            ..ServiceConfig::default()
        });
        let big = WaterBoxBuilder::new(27).seed(11).build();
        let admitted = service.submit(SpectrumRequest::new(big.clone())).unwrap();
        let shed = service.submit(SpectrumRequest::new(big));
        match shed {
            Err(ServiceError::Saturated { in_flight, capacity }) => {
                assert_eq!(in_flight, 1);
                assert_eq!(capacity, 1);
            }
            other => panic!("expected saturation, got {other:?}"),
        }
        assert!(admitted.wait().is_ok(), "the admitted request still completes");
    }

    #[test]
    fn invalid_request_reports_workflow_error() {
        let service = SpectrumService::new(ServiceConfig::default());
        let handle = service.submit(SpectrumRequest::new(MolecularSystem::default())).unwrap();
        match handle.wait() {
            Err(ServiceError::Workflow(WorkflowError::EmptySystem)) => {}
            other => panic!("expected empty-system rejection, got {other:?}"),
        }
    }

    #[test]
    fn service_and_batch_workflow_share_one_cache() {
        // A batch run warms the cache; a service sharing that cache then
        // serves the same system without any engine computes.
        let system = WaterBoxBuilder::new(9).seed(5).build();
        let cache = Arc::new(FragmentCache::new(CacheConfig::default()));
        let batch =
            RamanWorkflow::new(system.clone()).with_cache(Arc::clone(&cache)).run().unwrap();
        let service =
            SpectrumService::new(ServiceConfig { cache: Some(cache), ..Default::default() });
        let served = service.submit(SpectrumRequest::new(system)).unwrap().wait().unwrap();
        assert_eq!(served.recovery.unwrap().cache_hits as usize, batch.stats.n_jobs);
        assert_eq!(served.spectrum.intensities, batch.spectrum.intensities);
    }
}
