//! Result and reporting types (serde-serializable for the bench harness).

use qfr_fragment::DecompositionStats;
use qfr_solver::RamanSpectrum;
use serde::Serialize;

/// Wall-clock seconds per pipeline stage.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StageTimings {
    /// Fragmentation + pair enumeration.
    pub decompose_s: f64,
    /// Per-fragment engine (all fragments).
    pub engine_s: f64,
    /// Global assembly + mass weighting.
    pub assemble_s: f64,
    /// Lanczos/GAGQ (or dense) spectral solve.
    pub solver_s: f64,
}

impl StageTimings {
    /// Total pipeline seconds.
    pub fn total(&self) -> f64 {
        self.decompose_s + self.engine_s + self.assemble_s + self.solver_s
    }
}

/// Recovery counters of a fault-tolerant scheduled engine stage
/// ([`crate::RamanWorkflow::run_scheduled`]). Mirrors
/// `qfr_sched::RunReport`'s recovery fields at the workflow level, where
/// each scheduled "fragment" is one decomposition job.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoverySummary {
    /// Failure-triggered re-queues during the engine stage.
    pub retries: usize,
    /// Retries scheduled eagerly at the *first* failed copy of an attempt
    /// (equals `retries` under the always-eager protocol).
    pub eager_retries: usize,
    /// Jobs restored from the checkpoint instead of recomputed (0 for
    /// uncheckpointed runs).
    pub resumed_jobs: usize,
    /// Straggler duplicates issued to idle leaders.
    pub reissues: usize,
    /// Completions discarded because another copy already won.
    pub duplicates_suppressed: usize,
    /// Jobs that exhausted their attempts; their contributions are missing
    /// from the (partial) spectrum.
    pub quarantined_jobs: usize,
    /// Jobs abandoned because every leader died.
    pub unfinished_jobs: usize,
    /// Leaders that died during the engine stage.
    pub leaders_died: usize,
    /// Fragment responses served from the content-addressed cache instead
    /// of the engine (0 when no cache is attached). Exact hits plus
    /// transported near hits, counted per request.
    pub cache_hits: u64,
}

impl RecoverySummary {
    /// Whether every job contributed to the result.
    pub fn is_complete(&self) -> bool {
        self.quarantined_jobs == 0 && self.unfinished_jobs == 0
    }
}

/// Everything a Raman run produces.
#[derive(Debug, Clone)]
pub struct RamanResult {
    /// The broadened Raman spectrum (Eq. (4) orientation average).
    pub spectrum: RamanSpectrum,
    /// The companion IR absorption spectrum from the same Hessian and the
    /// assembled dipole derivatives.
    pub ir: RamanSpectrum,
    /// Decomposition statistics (fragment/cap/concap counts).
    pub stats: DecompositionStats,
    /// System size.
    pub n_atoms: usize,
    /// Cartesian degrees of freedom.
    pub dof: usize,
    /// Stored nonzeros of the mass-weighted Hessian.
    pub hessian_nnz: usize,
    /// Engine name used.
    pub engine: String,
    /// Per-stage wall times.
    pub timings: StageTimings,
    /// Recovery counters when the engine stage ran through the
    /// fault-tolerant scheduler (`None` for the plain rayon path).
    pub recovery: Option<RecoverySummary>,
}

impl RamanResult {
    /// Serializes the run metadata + spectrum to pretty JSON (used by the
    /// bench harness to record EXPERIMENTS.md provenance).
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Record<'a> {
            n_atoms: usize,
            dof: usize,
            hessian_nnz: usize,
            engine: &'a str,
            timings: StageTimings,
            n_jobs: usize,
            n_capped_fragments: usize,
            n_cap_pairs: usize,
            n_generalized_concaps: usize,
            n_residue_water_pairs: usize,
            n_water_water_pairs: usize,
            fragment_size_min: usize,
            fragment_size_max: usize,
            wavenumbers: &'a [f64],
            intensities: &'a [f64],
            recovery: &'a Option<RecoverySummary>,
        }
        let record = Record {
            n_atoms: self.n_atoms,
            dof: self.dof,
            hessian_nnz: self.hessian_nnz,
            engine: &self.engine,
            timings: self.timings,
            n_jobs: self.stats.n_jobs,
            n_capped_fragments: self.stats.n_capped_fragments,
            n_cap_pairs: self.stats.n_cap_pairs,
            n_generalized_concaps: self.stats.n_generalized_concaps,
            n_residue_water_pairs: self.stats.n_residue_water_pairs,
            n_water_water_pairs: self.stats.n_water_water_pairs,
            fragment_size_min: self.stats.min_size,
            fragment_size_max: self.stats.max_size,
            wavenumbers: &self.spectrum.wavenumbers,
            intensities: &self.spectrum.intensities,
            recovery: &self.recovery,
        };
        serde_json::to_string_pretty(&record).expect("serialization cannot fail")
    }

    /// Short human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} atoms, {} jobs ({}), Hessian nnz {}, peak {:?} cm-1, {:.2}s total",
            self.n_atoms,
            self.stats.n_jobs,
            self.engine,
            self.hessian_nnz,
            self.spectrum.peak().map(|p| p.round()),
            self.timings.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_solver::spectrum::gaussian_broadening;

    fn sample_result() -> RamanResult {
        RamanResult {
            spectrum: gaussian_broadening(&[(1000.0, 1.0)], 0.0, 2000.0, 201, 10.0),
            ir: gaussian_broadening(&[(1500.0, 1.0)], 0.0, 2000.0, 201, 10.0),
            stats: DecompositionStats { n_jobs: 5, ..Default::default() },
            n_atoms: 9,
            dof: 27,
            hessian_nnz: 81,
            engine: "force-field".into(),
            timings: StageTimings {
                decompose_s: 0.1,
                engine_s: 0.2,
                assemble_s: 0.3,
                solver_s: 0.4,
            },
            recovery: None,
        }
    }

    #[test]
    fn json_round_trips_key_fields() {
        let r = sample_result();
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["n_atoms"], 9);
        assert_eq!(v["engine"], "force-field");
        assert_eq!(v["n_jobs"], 5);
        assert_eq!(v["wavenumbers"].as_array().unwrap().len(), 201);
        assert!(v["recovery"].is_null(), "plain runs record no recovery block");
    }

    #[test]
    fn recovery_summary_serializes_when_present() {
        let mut r = sample_result();
        r.recovery = Some(RecoverySummary {
            retries: 2,
            eager_retries: 2,
            resumed_jobs: 3,
            reissues: 1,
            duplicates_suppressed: 1,
            quarantined_jobs: 1,
            unfinished_jobs: 0,
            leaders_died: 0,
            cache_hits: 4,
        });
        assert!(!r.recovery.as_ref().unwrap().is_complete());
        let v: serde_json::Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(v["recovery"]["retries"], 2);
        assert_eq!(v["recovery"]["eager_retries"], 2);
        assert_eq!(v["recovery"]["resumed_jobs"], 3);
        assert_eq!(v["recovery"]["quarantined_jobs"], 1);
        assert_eq!(v["recovery"]["cache_hits"], 4);
        assert!(RecoverySummary::default().is_complete());
    }

    #[test]
    fn timings_total() {
        let r = sample_result();
        assert!((r.timings.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_engine_and_atoms() {
        let s = sample_result().summary();
        assert!(s.contains("9 atoms"));
        assert!(s.contains("force-field"));
    }
}
