//! Matrix-free Hessian operator for beyond-memory system sizes.
//!
//! At 10⁸ atoms the paper's mass-weighted Hessian has ~3·10⁸ rows; even its
//! block-sparse form exceeds a single node's memory. Because the
//! Lanczos/GAGQ solver only needs `y = H x`, [`StreamedHessian`] never
//! materializes the matrix: every `apply` recomputes the per-job Hessian
//! blocks with the engine and scatters `coeff · H_job · x|_job` into `y`.
//! Memory is O(jobs) for the job *descriptions* only; compute is one full
//! engine pass per matvec — the trade the paper makes at scale across
//! 96,000 nodes, here across rayon threads.

use parking_lot::Mutex;
use qfr_fragment::{Decomposition, FragmentEngine, FragmentJob};
use qfr_geom::MolecularSystem;
use qfr_linalg::sparse::MatVec;
use rayon::prelude::*;

/// A matrix-free mass-weighted Hessian.
pub struct StreamedHessian<'a> {
    system: &'a MolecularSystem,
    jobs: &'a [FragmentJob],
    engine: &'a dyn FragmentEngine,
    inv_sqrt_mass: Vec<f64>,
}

impl<'a> StreamedHessian<'a> {
    /// Builds the operator over a decomposition.
    pub fn new(
        system: &'a MolecularSystem,
        decomposition: &'a Decomposition,
        engine: &'a dyn FragmentEngine,
    ) -> Self {
        let inv_sqrt_mass = system.masses().iter().map(|&m| 1.0 / m.sqrt()).collect();
        Self { system, jobs: &decomposition.jobs, engine, inv_sqrt_mass }
    }
}

impl MatVec for StreamedHessian<'_> {
    fn dim(&self) -> usize {
        3 * self.system.n_atoms()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        y.iter_mut().for_each(|v| *v = 0.0);
        let acc = Mutex::new(y);
        // Thread-local partial outputs merged under the lock, so `apply`
        // stays deterministic-in-value (floating-point order varies only
        // within each job's local accumulation).
        self.jobs.par_iter().for_each_init(
            || vec![0.0f64; self.dim()],
            |local, job| {
                local.iter_mut().for_each(|v| *v = 0.0);
                let frag = job.structure(self.system);
                let resp = self.engine.compute(&frag);
                let coeff = job.coefficient;
                // Gather mass-weighted x into fragment order.
                let m = job.atoms.len();
                let mut xf = vec![0.0; 3 * frag.n_atoms()];
                for (la, &ga) in job.atoms.iter().enumerate() {
                    for c in 0..3 {
                        xf[3 * la + c] = x[3 * ga + c] * self.inv_sqrt_mass[ga];
                    }
                }
                // y_f = H_f x_f over real-atom rows only (link-H rows have
                // no global image and are dropped, matching the assembled
                // path).
                for (la, &ga) in job.atoms.iter().enumerate().take(m) {
                    let wa = self.inv_sqrt_mass[ga];
                    for c in 0..3 {
                        let row = 3 * la + c;
                        let mut accum = 0.0;
                        for col in 0..3 * m {
                            accum += resp.hessian[(row, col)] * xf[col];
                        }
                        local[3 * ga + c] += coeff * wa * accum;
                    }
                }
                let mut out = acc.lock();
                for (o, l) in out.iter_mut().zip(local.iter()) {
                    *o += l;
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{assemble, DecompositionParams, FragmentResponse, MassWeighted};
    use qfr_geom::WaterBoxBuilder;
    use qfr_model::ForceFieldEngine;

    #[test]
    fn streamed_matches_assembled() {
        let system = WaterBoxBuilder::new(10).seed(1).build();
        let decomposition = Decomposition::new(&system, DecompositionParams::default());
        let engine = ForceFieldEngine::new();

        // Assembled reference.
        let responses: Vec<FragmentResponse> =
            decomposition.jobs.iter().map(|j| engine.compute(&j.structure(&system))).collect();
        let asm = assemble::assemble(&decomposition.jobs, &responses, system.n_atoms());
        let mw = MassWeighted::new(&asm, &system.masses());

        let streamed = StreamedHessian::new(&system, &decomposition, &engine);
        assert_eq!(streamed.dim(), mw.dim());

        let n = streamed.dim();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut y_streamed = vec![0.0; n];
        let mut y_assembled = vec![0.0; n];
        streamed.apply(&x, &mut y_streamed);
        mw.hessian.apply(&x, &mut y_assembled);
        for (a, b) in y_streamed.iter().zip(&y_assembled) {
            assert!((a - b).abs() < 1e-9, "streamed {a} vs assembled {b}");
        }
    }

    #[test]
    fn streamed_is_symmetric_operator() {
        // u^T (H v) == v^T (H u) for a symmetric operator.
        let system = WaterBoxBuilder::new(6).seed(2).build();
        let decomposition = Decomposition::new(&system, DecompositionParams::default());
        let engine = ForceFieldEngine::new();
        let h = StreamedHessian::new(&system, &decomposition, &engine);
        let n = h.dim();
        let u: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 3) % 11) as f64 - 5.0).collect();
        let mut hu = vec![0.0; n];
        let mut hv = vec![0.0; n];
        h.apply(&u, &mut hu);
        h.apply(&v, &mut hv);
        let uhv: f64 = u.iter().zip(&hv).map(|(a, b)| a * b).sum();
        let vhu: f64 = v.iter().zip(&hu).map(|(a, b)| a * b).sum();
        assert!((uhv - vhu).abs() < 1e-8 * uhv.abs().max(1.0));
    }

    #[test]
    fn streamed_lanczos_spectrum_matches() {
        use qfr_solver::{raman_lanczos, RamanOptions};
        let system = WaterBoxBuilder::new(8).seed(3).build();
        let decomposition = Decomposition::new(&system, DecompositionParams::default());
        let engine = ForceFieldEngine::new();

        let responses: Vec<FragmentResponse> =
            decomposition.jobs.iter().map(|j| engine.compute(&j.structure(&system))).collect();
        let asm = assemble::assemble(&decomposition.jobs, &responses, system.n_atoms());
        let mw = MassWeighted::new(&asm, &system.masses());

        let streamed = StreamedHessian::new(&system, &decomposition, &engine);
        let opts = RamanOptions { sigma: 25.0, lanczos_steps: 60, ..Default::default() };
        let s1 = raman_lanczos(&streamed, &mw.dalpha, &opts);
        let s2 = raman_lanczos(&mw.hessian, &mw.dalpha, &opts);
        let sim = s1.cosine_similarity(&s2);
        assert!(sim > 0.99999, "streamed spectrum diverged: {sim}");
    }
}
