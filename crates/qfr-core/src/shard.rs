//! Out-of-core sharded assembly of the Eq. (1) operators.
//!
//! The unsharded pipeline materializes the full mass-weighted Hessian —
//! triplets, CSR, and a second mass-weighting builder all live at once, so
//! peak RSS is `O(n)` and the 10⁸-atom run is memory-bound long before it
//! is worker-bound. This module partitions the **atoms** into `K`
//! contiguous ranges ([`ShardPlan`]); each shard worker accumulates only
//! its range's Hessian *rows* and ∂α/∂μ entries (re-deriving the responses
//! of just the fragments that touch the range), mass-weights them, splits
//! the rows into fixed-height CSR tiles, and spills the shard to one
//! `shard-NNNNN.qfrs` file. [`ShardStore`] then serves those tiles back to
//! the solver one at a time through [`qfr_solver::TileSource`], so the
//! Lanczos stage holds one tile plus its vectors: `O(n/K + window)`.
//!
//! ## File format (v1, little-endian)
//!
//! Magic `QFRS`, version u32 (= 1), fingerprint u64, then the geometry
//! header (`n_atoms`, `K`, shard index, atom range, `tile_rows`, tile
//! count, present-tile count — all u64), a tile presence bitmap of
//! `ceil(n_tiles/8)` bytes in the checkpoint-v2 layout (bit `t` of byte
//! `t/8`), the total nnz (u64), the mass-weighted ∂α (6 rows) and ∂μ
//! (3 rows) spans as f64 arrays over the shard's dof window, a per-tile
//! nnz table (u64 each, absent tiles zero), and finally one CSR block per
//! *present* tile in ascending tile order: `rows` u32, `row_ptr` as
//! `rows + 1` u64, `col_idx` u32 each, `values` f64 each. Saves go through
//! the checkpoint module's atomic temp-name write (pid+sequence temp file,
//! fsync, rename, drop-guard cleanup), so a killed worker leaves either a
//! complete file or none — never a torn one. The presence bitmap guards
//! against hand-truncated or partially copied files the way the
//! checkpoint's job bitmap does: an incomplete shard is rejected at open
//! and recomputed.
//!
//! ## The fingerprint
//!
//! A shard file is keyed by the checkpoint v3 geometry-aware fingerprint of
//! the decomposition folded with the shard geometry (`K`, shard index,
//! `tile_rows`, `n_atoms`), so moving an atom, changing λ, resharding, or
//! retiling all invalidate stale spills — the same contract checkpoints
//! acquired when v3 fixed their geometry-blind keys.
//!
//! ## Why `K` cannot change the spectrum
//!
//! Every global Hessian row belongs to exactly one shard. The unsharded
//! assembly pushes row `r`'s triplets in job order (and, within a job, in
//! atom-pair order); a shard build iterates the *same* jobs in the *same*
//! order and merely skips jobs that do not touch its range — which
//! contribute nothing to row `r` anyway — so row `r` receives the
//! identical push sequence. `TripletBuilder::build` sorts **stably**, so
//! duplicate `(row, col)` entries sum in push order either way, making the
//! compressed row bytes a pure function of that sequence. Mass weighting
//! multiplies each stored value by the same two factors in the same order
//! as [`qfr_fragment::MassWeighted`], and the streamed SpMV computes each
//! `y[r]` as the same dot product over the same entries. Identical `y`
//! bit-for-bit means an identical Lanczos recursion and a bit-identical
//! spectrum for every `K` — which `ablation_shards` pins in CI.

use crate::checkpoint::{atomic_write, CheckpointError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use qfr_fragment::{FragmentJob, FragmentResponse};
use qfr_geom::MolecularSystem;
use qfr_linalg::{CsrMatrix, TripletBuilder};
use qfr_solver::{CsrTile, TileSource};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"QFRS";
const VERSION: u32 = 1;

// Shard lifecycle counters. Spilled bytes and tile geometry are pure
// functions of the system, λ, K and tile_rows; the number of streamed
// tiles is (present tiles) x (matvec count), and the Lanczos step count is
// fixed by the options — all deterministic, all CI-gateable.
static SHARD_BYTES_SPILLED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("shard.bytes_spilled");
static SHARD_TILES_STREAMED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("shard.tiles_streamed");
static SHARD_SHARDS_BUILT: qfr_obs::Counter = qfr_obs::Counter::deterministic("shard.shards_built");
static SHARD_SHARDS_RESUMED: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("shard.shards_resumed");

/// Errors from shard planning and spill I/O.
pub type ShardError = CheckpointError;

/// Contiguous-range partition of `n_atoms` atoms into `k` shards.
///
/// The split is balanced: the first `n_atoms % k` shards own one extra
/// atom. Ranges tile `0..n_atoms` exactly — no overlap, no gap — for
/// *every* `(n_atoms, k)` (the proptest in `tests/shard.rs` pins this),
/// including `k > n_atoms`, where trailing shards own empty ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_atoms: usize,
    k: usize,
}

impl ShardPlan {
    /// Plan for `n_atoms` atoms in `k` shards.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(n_atoms: usize, k: usize) -> Self {
        assert!(k > 0, "shard count must be positive");
        Self { n_atoms, k }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of atoms partitioned.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Atom range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        assert!(s < self.k, "shard {s} out of {}", self.k);
        let base = self.n_atoms / self.k;
        let extra = self.n_atoms % self.k;
        let lo = s * base + s.min(extra);
        let hi = lo + base + usize::from(s < extra);
        lo..hi
    }

    /// All shard ranges in ascending order.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.k).map(|s| self.range(s)).collect()
    }

    /// The shard owning `atom`.
    pub fn shard_of(&self, atom: usize) -> usize {
        assert!(atom < self.n_atoms, "atom {atom} out of {}", self.n_atoms);
        let base = self.n_atoms / self.k;
        let extra = self.n_atoms % self.k;
        let boundary = extra * (base + 1);
        if atom < boundary {
            atom / (base + 1)
        } else {
            extra + (atom - boundary) / base
        }
    }
}

/// Folds the checkpoint v3 decomposition fingerprint with the shard
/// geometry: different `K`, shard index, tile height, or atom count mean a
/// different key, so stale spills never validate.
pub fn shard_fingerprint(base: u64, plan: &ShardPlan, shard: usize, tile_rows: usize) -> u64 {
    let mut h = base ^ 0x53_48_41_52_44_u64; // "SHARD"
    for v in [plan.n_atoms as u64, plan.k as u64, shard as u64, tile_rows as u64] {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Spill file path of shard `s` under `dir`.
pub fn shard_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:05}.qfrs"))
}

fn dof_span(range: &Range<usize>) -> usize {
    3 * (range.end - range.start)
}

fn n_tiles_of(span: usize, tile_rows: usize) -> usize {
    span.div_ceil(tile_rows)
}

/// Accumulates, mass-weights and spills one shard.
///
/// `compute` produces the response of one fragment job (through the
/// engine, or the attached cache — responses are bit-identical either
/// way); it is invoked once per job whose atoms intersect the shard's
/// range, in global job order. The save is atomic; on success the
/// `shard.bytes_spilled` and `shard.shards_built` counters advance.
#[allow(clippy::too_many_arguments)]
pub fn build_shard<F>(
    path: &Path,
    sys: &MolecularSystem,
    jobs: &[FragmentJob],
    plan: &ShardPlan,
    shard: usize,
    tile_rows: usize,
    fingerprint: u64,
    mut compute: F,
) -> Result<(), ShardError>
where
    F: FnMut(&FragmentJob) -> FragmentResponse,
{
    assert!(tile_rows > 0, "tile_rows must be positive");
    let range = plan.range(shard);
    let span = dof_span(&range);
    let dim = 3 * plan.n_atoms;
    let dof_lo = 3 * range.start;
    let inv_sqrt: Vec<f64> = sys.masses().iter().map(|&m| 1.0 / m.sqrt()).collect();

    // Raw accumulation, mirroring `assemble()` restricted to in-range rows:
    // same job order, same within-job atom-pair order, so each row sees the
    // identical push sequence the global builder would.
    let mut builder = TripletBuilder::new(span, dim);
    let mut dalpha: [Vec<f64>; 6] = std::array::from_fn(|_| vec![0.0; span]);
    let mut dmu: [Vec<f64>; 3] = std::array::from_fn(|_| vec![0.0; span]);
    for job in jobs {
        if !job.atoms.iter().any(|a| range.contains(a)) {
            continue;
        }
        let resp = compute(job);
        let m = job.size();
        assert_eq!(resp.hessian.rows(), 3 * m, "hessian shape mismatch for {:?}", job.kind);
        assert_eq!(resp.dalpha.cols(), 3 * m, "dalpha shape mismatch for {:?}", job.kind);
        let coeff = job.coefficient;
        for (la, &ga) in job.atoms.iter().enumerate() {
            if !range.contains(&ga) {
                continue;
            }
            let local = 3 * ga - dof_lo;
            for (lb, &gb) in job.atoms.iter().enumerate() {
                for da in 0..3 {
                    for db in 0..3 {
                        let v = resp.hessian[(3 * la + da, 3 * lb + db)];
                        if v != 0.0 {
                            builder.push(local + da, 3 * gb + db, coeff * v);
                        }
                    }
                }
            }
            for (comp, dvec) in dalpha.iter_mut().enumerate() {
                for da in 0..3 {
                    dvec[local + da] += coeff * resp.dalpha[(comp, 3 * la + da)];
                }
            }
            for (comp, dvec) in dmu.iter_mut().enumerate() {
                for da in 0..3 {
                    dvec[local + da] += coeff * resp.dmu[(comp, 3 * la + da)];
                }
            }
        }
    }
    let raw = builder.build();

    // Mass weighting, exactly as `MassWeighted::new`: re-push each stored
    // value times `w_i * w_j` through a fresh (stable) builder, and scale
    // the vectors by `w_i` — the same f64 products in the same order.
    let mut weighted = TripletBuilder::new(span, dim);
    for i in 0..span {
        let wi = inv_sqrt[(dof_lo + i) / 3];
        for (j, v) in raw.row_entries(i) {
            weighted.push(i, j, v * wi * inv_sqrt[j / 3]);
        }
    }
    let csr = weighted.build();
    for dvec in dalpha.iter_mut().chain(dmu.iter_mut()) {
        for (i, v) in dvec.iter_mut().enumerate() {
            *v *= inv_sqrt[(dof_lo + i) / 3];
        }
    }

    let bytes = encode_shard(plan, shard, tile_rows, fingerprint, &csr, &dalpha, &dmu);
    let len = bytes.len() as u64;
    atomic_write(path, &bytes)?;
    SHARD_BYTES_SPILLED.add(len);
    SHARD_SHARDS_BUILT.incr();
    Ok(())
}

fn encode_shard(
    plan: &ShardPlan,
    shard: usize,
    tile_rows: usize,
    fingerprint: u64,
    csr: &CsrMatrix,
    dalpha: &[Vec<f64>; 6],
    dmu: &[Vec<f64>; 3],
) -> BytesMut {
    let range = plan.range(shard);
    let span = dof_span(&range);
    let n_tiles = n_tiles_of(span, tile_rows);
    let (row_ptr, col_idx, values) = csr.raw_parts();

    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(fingerprint);
    for v in [
        plan.n_atoms as u64,
        plan.k as u64,
        shard as u64,
        range.start as u64,
        range.end as u64,
        tile_rows as u64,
        n_tiles as u64,
        n_tiles as u64, // present count: a fresh save always has every tile
    ] {
        buf.put_u64_le(v);
    }
    let mut bitmap = vec![0u8; n_tiles.div_ceil(8)];
    for t in 0..n_tiles {
        bitmap[t / 8] |= 1 << (t % 8);
    }
    buf.put_slice(&bitmap);
    buf.put_u64_le(csr.nnz() as u64);
    for dvec in dalpha.iter().chain(dmu.iter()) {
        for &v in dvec {
            buf.put_f64_le(v);
        }
    }
    // Per-tile nnz table, then the tile CSR blocks.
    let tile_bounds: Vec<(usize, usize)> = (0..n_tiles)
        .map(|t| {
            let lo = t * tile_rows;
            (lo, (lo + tile_rows).min(span))
        })
        .collect();
    for &(lo, hi) in &tile_bounds {
        buf.put_u64_le((row_ptr[hi] - row_ptr[lo]) as u64);
    }
    for &(lo, hi) in &tile_bounds {
        let base = row_ptr[lo];
        buf.put_u32_le((hi - lo) as u32);
        for r in lo..=hi {
            buf.put_u64_le((row_ptr[r] - base) as u64);
        }
        for &c in &col_idx[row_ptr[lo]..row_ptr[hi]] {
            buf.put_u32_le(c);
        }
        for &v in &values[row_ptr[lo]..row_ptr[hi]] {
            buf.put_f64_le(v);
        }
    }
    buf
}

/// Parsed header of one shard spill file.
#[derive(Debug, Clone)]
pub struct ShardMeta {
    /// Atom range the file covers.
    pub atom_range: Range<usize>,
    /// Dof rows per tile.
    pub tile_rows: usize,
    /// Tiles the geometry implies.
    pub n_tiles: usize,
    /// Per-tile presence (checkpoint-v2 bitmap layout).
    pub present: Vec<bool>,
    /// Total stored non-zeros.
    pub nnz: u64,
    /// Per-tile nnz.
    tile_nnz: Vec<u64>,
    /// Absolute byte offset of each present tile's block.
    tile_offset: Vec<u64>,
    /// Mass-weighted ∂α span (6 x dof_span).
    dalpha: [Vec<f64>; 6],
    /// Mass-weighted ∂μ span (3 x dof_span).
    dmu: [Vec<f64>; 3],
}

impl ShardMeta {
    /// True when every tile the geometry implies is present.
    pub fn is_complete(&self) -> bool {
        self.present.iter().all(|&p| p)
    }
}

/// Reads and validates a shard file's header (not the tile payloads).
///
/// Rejects wrong magic/version, a fingerprint that does not match
/// `expected` (stale geometry, different K/tiling), a bitmap disagreeing
/// with its present count, and truncated headers.
pub fn load_shard_meta(
    path: &Path,
    plan: &ShardPlan,
    shard: usize,
    tile_rows: usize,
    expected: u64,
) -> Result<ShardMeta, ShardError> {
    let raw = std::fs::read(path)?;
    let file_len = raw.len() as u64;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 4 + 4 + 8 {
        return Err(ShardError::Format("shard file too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ShardError::Format("bad shard magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(ShardError::Format(format!("unsupported shard version {version}")));
    }
    let found = buf.get_u64_le();
    if found != expected {
        return Err(ShardError::FingerprintMismatch { found, expected });
    }
    if buf.remaining() < 8 * 8 {
        return Err(ShardError::Format("truncated shard header".into()));
    }
    let n_atoms = buf.get_u64_le() as usize;
    let k = buf.get_u64_le() as usize;
    let s = buf.get_u64_le() as usize;
    let lo = buf.get_u64_le() as usize;
    let hi = buf.get_u64_le() as usize;
    let file_tile_rows = buf.get_u64_le() as usize;
    let n_tiles = buf.get_u64_le() as usize;
    let present_count = buf.get_u64_le() as usize;
    let range = plan.range(shard);
    if n_atoms != plan.n_atoms
        || k != plan.k
        || s != shard
        || lo != range.start
        || hi != range.end
        || file_tile_rows != tile_rows
    {
        return Err(ShardError::Format("shard geometry does not match the plan".into()));
    }
    let span = dof_span(&range);
    if n_tiles != n_tiles_of(span, tile_rows) {
        return Err(ShardError::Format("tile count does not match the geometry".into()));
    }
    let bitmap_len = n_tiles.div_ceil(8);
    if buf.remaining() < bitmap_len + 8 {
        return Err(ShardError::Format("truncated tile bitmap".into()));
    }
    let mut bitmap = vec![0u8; bitmap_len];
    buf.copy_to_slice(&mut bitmap);
    let present: Vec<bool> = (0..n_tiles).map(|t| bitmap[t / 8] & (1 << (t % 8)) != 0).collect();
    if present.iter().filter(|&&p| p).count() != present_count {
        return Err(ShardError::Format("tile bitmap disagrees with present count".into()));
    }
    let nnz = buf.get_u64_le();
    if buf.remaining() < 9 * span * 8 + n_tiles * 8 {
        return Err(ShardError::Format("truncated derivative spans".into()));
    }
    let mut read_span = || -> Vec<f64> { (0..span).map(|_| buf.get_f64_le()).collect() };
    let dalpha: [Vec<f64>; 6] = std::array::from_fn(|_| read_span());
    let dmu: [Vec<f64>; 3] = std::array::from_fn(|_| read_span());
    let tile_nnz: Vec<u64> = (0..n_tiles).map(|_| buf.get_u64_le()).collect();
    if tile_nnz.iter().sum::<u64>() != nnz {
        return Err(ShardError::Format("tile nnz table disagrees with total".into()));
    }

    // Tile block offsets follow from the geometry: blocks of present tiles
    // are packed in ascending order right after the nnz table.
    let mut offset = file_len - buf.remaining() as u64;
    let mut tile_offset = vec![0u64; n_tiles];
    for t in 0..n_tiles {
        if !present[t] {
            continue;
        }
        tile_offset[t] = offset;
        let rows = tile_bounds(span, tile_rows, t);
        offset += 4 + 8 * (rows as u64 + 1) + 12 * tile_nnz[t];
    }
    if offset != file_len {
        return Err(ShardError::Format("shard payload length mismatch".into()));
    }
    Ok(ShardMeta {
        atom_range: range,
        tile_rows,
        n_tiles,
        present,
        nnz,
        tile_nnz,
        tile_offset,
        dalpha,
        dmu,
    })
}

/// Rows of tile `t` in a shard of `span` dof rows.
fn tile_bounds(span: usize, tile_rows: usize, t: usize) -> usize {
    let lo = t * tile_rows;
    (lo + tile_rows).min(span) - lo
}

/// True when `path` holds a complete, geometry-matching shard spill —
/// the resume predicate: valid shards are skipped, anything else rebuilt.
pub fn shard_file_valid(
    path: &Path,
    plan: &ShardPlan,
    shard: usize,
    tile_rows: usize,
    expected: u64,
) -> bool {
    load_shard_meta(path, plan, shard, tile_rows, expected).is_ok_and(|m| m.is_complete())
}

struct ShardHandle {
    file: Mutex<std::fs::File>,
    meta: ShardMeta,
}

/// Read side of a spill directory: opens every valid shard file and serves
/// their tiles to the solver in ascending global row order.
///
/// Shards whose file is absent, incomplete, or stale are *missing*: their
/// tiles stream as `None` (zero rows, partial spectrum) and their indices
/// are reported by [`ShardStore::missing_shards`].
pub struct ShardStore {
    plan: ShardPlan,
    tile_rows: usize,
    shards: Vec<Option<ShardHandle>>,
    /// Global tile index -> (shard, local tile, global row0, rows).
    tiles: Vec<(usize, usize, usize, usize)>,
    dalpha: [Vec<f64>; 6],
    dmu: [Vec<f64>; 3],
}

impl ShardStore {
    /// Opens the spill directory, tolerating missing or invalid shards.
    ///
    /// `base` is the checkpoint v3 fingerprint of the decomposition; each
    /// shard file must match its [`shard_fingerprint`].
    pub fn open(
        dir: &Path,
        plan: ShardPlan,
        tile_rows: usize,
        base: u64,
    ) -> Result<Self, ShardError> {
        assert!(tile_rows > 0, "tile_rows must be positive");
        let dim = 3 * plan.n_atoms;
        let mut shards = Vec::with_capacity(plan.k);
        let mut tiles = Vec::new();
        let mut dalpha: [Vec<f64>; 6] = std::array::from_fn(|_| vec![0.0; dim]);
        let mut dmu: [Vec<f64>; 3] = std::array::from_fn(|_| vec![0.0; dim]);
        for s in 0..plan.k {
            let range = plan.range(s);
            let span = dof_span(&range);
            let fp = shard_fingerprint(base, &plan, s, tile_rows);
            let path = shard_path(dir, s);
            let handle = match load_shard_meta(&path, &plan, s, tile_rows, fp) {
                Ok(meta) if meta.is_complete() => {
                    let file = std::fs::File::open(&path)?;
                    for c in 0..6 {
                        dalpha[c][3 * range.start..3 * range.end].copy_from_slice(&meta.dalpha[c]);
                    }
                    for c in 0..3 {
                        dmu[c][3 * range.start..3 * range.end].copy_from_slice(&meta.dmu[c]);
                    }
                    Some(ShardHandle { file: Mutex::new(file), meta })
                }
                _ => None,
            };
            for t in 0..n_tiles_of(span, tile_rows) {
                tiles.push((
                    s,
                    t,
                    3 * range.start + t * tile_rows,
                    tile_bounds(span, tile_rows, t),
                ));
            }
            shards.push(handle);
        }
        Ok(Self { plan, tile_rows, shards, tiles, dalpha, dmu })
    }

    /// The partition this store serves.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Dof rows per solver tile.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Indices of shards with no usable spill file.
    pub fn missing_shards(&self) -> Vec<usize> {
        (0..self.plan.k).filter(|&s| self.shards[s].is_none()).collect()
    }

    /// Total stored non-zeros across present shards.
    pub fn nnz(&self) -> usize {
        self.shards.iter().flatten().map(|h| h.meta.nnz as usize).sum()
    }

    /// Mass-weighted ∂α vectors (missing shards' spans are zero).
    pub fn dalpha(&self) -> &[Vec<f64>; 6] {
        &self.dalpha
    }

    /// Mass-weighted ∂μ vectors (missing shards' spans are zero).
    pub fn dmu(&self) -> &[Vec<f64>; 3] {
        &self.dmu
    }

    fn read_tile(&self, handle: &ShardHandle, local: usize, rows: usize) -> CsrMatrix {
        use std::io::{Read, Seek, SeekFrom};
        let nnz = handle.meta.tile_nnz[local] as usize;
        let len = 4 + 8 * (rows + 1) + 12 * nnz;
        let mut raw = vec![0u8; len];
        {
            let mut f = handle.file.lock().expect("shard file poisoned");
            f.seek(SeekFrom::Start(handle.meta.tile_offset[local])).expect("shard seek");
            f.read_exact(&mut raw).expect("shard tile read");
        }
        let mut buf = Bytes::from(raw);
        let stored_rows = buf.get_u32_le() as usize;
        assert_eq!(stored_rows, rows, "tile row count disagrees with geometry");
        let row_ptr: Vec<usize> = (0..=rows).map(|_| buf.get_u64_le() as usize).collect();
        let col_idx: Vec<u32> = (0..nnz).map(|_| buf.get_u32_le()).collect();
        let values: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        CsrMatrix::from_raw_parts(rows, 3 * self.plan.n_atoms, row_ptr, col_idx, values)
    }
}

impl TileSource for ShardStore {
    fn dim(&self) -> usize {
        3 * self.plan.n_atoms
    }

    fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    fn load_tile(&self, index: usize) -> Option<CsrTile> {
        let (s, local, row0, rows) = self.tiles[index];
        let handle = self.shards[s].as_ref()?;
        let matrix = self.read_tile(handle, local, rows);
        SHARD_TILES_STREAMED.incr();
        Some(CsrTile { row0, matrix })
    }
}

/// Records `n` shards resumed from valid spill files (counter hook for the
/// workflow's resume path).
pub(crate) fn note_shards_resumed(n: usize) {
    if n > 0 {
        SHARD_SHARDS_RESUMED.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_ranges_tile_exactly() {
        for (n, k) in [(10, 3), (7, 7), (5, 9), (0, 4), (100, 1), (97, 16)] {
            let plan = ShardPlan::new(n, k);
            let ranges = plan.ranges();
            assert_eq!(ranges.len(), k);
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor, "gap/overlap at {r:?} for n={n} k={k}");
                cursor = r.end;
            }
            assert_eq!(cursor, n, "cover must end at n_atoms");
            // Balance: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn shard_of_inverts_range() {
        for (n, k) in [(10, 3), (97, 16), (5, 5), (12, 7)] {
            let plan = ShardPlan::new(n, k);
            for atom in 0..n {
                let s = plan.shard_of(atom);
                assert!(plan.range(s).contains(&atom), "atom {atom} n={n} k={k} -> shard {s}");
            }
        }
    }

    #[test]
    fn fingerprint_sensitive_to_geometry() {
        let plan = ShardPlan::new(100, 4);
        let f = shard_fingerprint(1, &plan, 0, 64);
        assert_ne!(f, shard_fingerprint(2, &plan, 0, 64), "base must enter");
        assert_ne!(f, shard_fingerprint(1, &plan, 1, 64), "shard index must enter");
        assert_ne!(f, shard_fingerprint(1, &plan, 0, 128), "tile height must enter");
        assert_ne!(f, shard_fingerprint(1, &ShardPlan::new(100, 5), 0, 64), "K must enter");
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected() {
        let _ = ShardPlan::new(10, 0);
    }
}
