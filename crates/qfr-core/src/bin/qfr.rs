//! `qfr` — command-line front end to the QF-RAMAN pipeline.
//!
//! ```text
//! qfr spectrum  --protein 100 [--solvate 6.0] [--sigma 5] [--lanczos 160]
//!               [--seed 42] [--temperature 300] [--json out.json] [--xyz out.xyz]
//! qfr spectrum  --waters 1000 [--sigma 20] [--cache [--cache-mb 256]] ...
//! qfr spectrum  --scenario disulfide            # graph-decomposition demo systems
//! qfr decompose --protein 3180 [--lambda 4.0]
//! qfr serve     --waters 200 --requests 6 [--distinct 2] [--workers 4]
//! qfr info
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every flag has a
//! sensible paper-matching default.

use qfr_cache::{CacheConfig, FragmentCache};
use qfr_core::{EngineKind, RamanWorkflow, ServiceConfig, SpectrumRequest, SpectrumService};
use qfr_geom::{io, MolecularSystem, ProteinBuilder, SolvatedSystem, WaterBoxBuilder};
use qfr_linalg::batch::OffloadMode;
use qfr_linalg::GemmPrecision;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn has(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         qfr spectrum  (--protein N | --waters N | --scenario NAME)\n                \
         [--solvate PAD] [--sigma S]\n                \
         [--lambda L] [--lanczos K] [--seed SEED] [--temperature T]\n                \
         [--ir] [--json FILE] [--xyz FILE] [--dense | --stream]\n                \
         [--dfpt] [--offload batched|scattered] [--precision f64|mixed]\n                \
         [--shards K [--spill DIR] [--tile-rows N]]\n                \
         [--sched LEADERS [--workers W] [--checkpoint FILE\n                 \
         [--checkpoint-interval N]]] [--checkpoint FILE]\n                \
         [--cache [--cache-mb MB] [--warm N]]\n                \
         [--trace FILE] [--metrics] [--metrics-out FILE]\n  \
         qfr decompose (--protein N | --waters N | --scenario NAME)\n                \
         [--lambda L] [--seed SEED]\n  \
         qfr serve    (--protein N | --waters N | --scenario NAME)\n                \
         [--requests R] [--distinct D]\n                \
         [--workers W] [--max-active A] [--max-queued Q]\n                \
         [--batch-window B] [--cache-mb MB] [--sigma S] [--seed SEED]\n  \
         qfr info"
    );
    std::process::exit(2);
}

fn build_system(args: &[String]) -> MolecularSystem {
    build_seeded_system(args, parse(args, "--seed", 42))
}

fn build_seeded_system(args: &[String], seed: u64) -> MolecularSystem {
    if let Some(name) = arg_value(args, "--scenario") {
        return qfr_geom::build_scenario(&name, seed).unwrap_or_else(|| {
            eprintln!(
                "unknown scenario '{name}' (available: {})",
                qfr_geom::SCENARIO_NAMES.join(", ")
            );
            std::process::exit(2);
        });
    }
    if let Some(n) = arg_value(args, "--protein").and_then(|v| v.parse::<usize>().ok()) {
        let protein = ProteinBuilder::new(n).seed(seed).build();
        if let Some(pad) = arg_value(args, "--solvate").and_then(|v| v.parse::<f64>().ok()) {
            return SolvatedSystem::build(&protein, pad, 3.1, 2.4, seed + 1);
        }
        return protein;
    }
    if let Some(n) = arg_value(args, "--waters").and_then(|v| v.parse::<usize>().ok()) {
        return WaterBoxBuilder::new(n).seed(seed).build();
    }
    usage()
}

fn cmd_spectrum(args: &[String]) {
    let trace_path = arg_value(args, "--trace");
    if trace_path.is_some() {
        qfr_obs::trace::enable();
    }
    let system = build_system(args);
    println!(
        "system: {} atoms ({} residues, {} waters)",
        system.n_atoms(),
        system.residues.len(),
        system.n_waters
    );
    if let Some(path) = arg_value(args, "--xyz") {
        std::fs::write(&path, io::to_xyz(&system, "qfr spectrum input")).expect("write xyz");
        println!("geometry written to {path}");
    }

    let sigma = parse(args, "--sigma", if system.n_waters > 0 { 20.0 } else { 5.0 });
    // --offload selects how the DFPT engine executes its gathered job
    // streams; spectra are bit-identical in both modes (ablation knob).
    let offload = match arg_value(args, "--offload").as_deref() {
        None | Some("batched") => OffloadMode::default(),
        Some("scattered") => OffloadMode::Scattered,
        Some(other) => {
            eprintln!("error: --offload takes 'batched' or 'scattered', got '{other}'");
            std::process::exit(2);
        }
    };
    // --precision selects the DFPT batch kernels' element width: f64
    // (default, bit-identical to the reference kernels) or mixed (f32
    // packed panels, f64 accumulation — validated by a max-|Δ| tolerance
    // of 1e-3 x the f64 spectrum's peak, not bit parity).
    let precision = match arg_value(args, "--precision").as_deref() {
        None | Some("f64") => GemmPrecision::F64,
        Some("mixed") => GemmPrecision::MixedF32,
        Some(other) => {
            eprintln!("error: --precision takes 'f64' or 'mixed', got '{other}'");
            std::process::exit(2);
        }
    };
    let mut workflow = RamanWorkflow::new(system)
        .sigma(sigma)
        .lambda(parse(args, "--lambda", 4.0))
        .lanczos_steps(parse(args, "--lanczos", 140))
        .offload(offload)
        .precision(precision);
    if has(args, "--dfpt") {
        workflow = workflow.engine(EngineKind::ModelDfpt);
    }
    // --cache attaches a content-addressed fragment result cache;
    // --warm N re-runs the workflow N extra times against the warm cache
    // (hit-rate demonstration — spectra are bit-identical regardless).
    let cache = if has(args, "--cache") {
        let mb: usize = parse(args, "--cache-mb", 256);
        let cache = std::sync::Arc::new(FragmentCache::new(CacheConfig {
            max_bytes: mb << 20,
            ..CacheConfig::default()
        }));
        workflow = workflow.with_cache(std::sync::Arc::clone(&cache));
        Some(cache)
    } else {
        None
    };
    let mut result = if has(args, "--dense") {
        workflow.run_dense_reference()
    } else if has(args, "--stream") {
        workflow.run_streamed()
    } else if let Some(shards) = arg_value(args, "--shards") {
        // --shards K: out-of-core sharded assembly — spill one file per
        // contiguous atom range under --spill, stream the solver SpMV
        // tile-by-tile. Bit-identical to the in-core run for every K.
        // Composes with --sched: missing shards then build through the
        // fault-tolerant scheduler.
        let k: usize = shards.parse().ok().filter(|&k| k > 0).unwrap_or_else(|| {
            eprintln!("error: --shards takes a positive shard count, got '{shards}'");
            std::process::exit(2);
        });
        let spill = arg_value(args, "--spill").unwrap_or_else(|| "target/spill".into());
        let mut cfg =
            qfr_core::ShardConfig::new(k, &spill).tile_rows(parse(args, "--tile-rows", 512));
        if let Some(leaders) = arg_value(args, "--sched") {
            let n_leaders: usize = leaders.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                eprintln!("error: --sched takes a positive leader count, got '{leaders}'");
                std::process::exit(2);
            });
            cfg = cfg.scheduled(qfr_sched::RuntimeConfig {
                n_leaders,
                workers_per_leader: parse(args, "--workers", 2),
                ..Default::default()
            });
        }
        println!("sharded: K={k}, spill dir {spill}, tile rows {}", cfg.tile_rows);
        workflow.run_sharded(cfg)
    } else if let Some(leaders) = arg_value(args, "--sched") {
        let n_leaders: usize = leaders.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("error: --sched takes a positive leader count, got '{leaders}'");
            std::process::exit(2);
        });
        let runtime = qfr_sched::RuntimeConfig {
            n_leaders,
            workers_per_leader: parse(args, "--workers", 2),
            ..Default::default()
        };
        // --sched --checkpoint FILE: incremental checkpoint/restart of the
        // scheduled engine stage (resumes from FILE when it exists).
        workflow.run_scheduled_with(qfr_core::ScheduledConfig {
            runtime,
            checkpoint: arg_value(args, "--checkpoint").map(std::path::PathBuf::from),
            checkpoint_interval: parse(args, "--checkpoint-interval", 64),
        })
    } else if let Some(ckpt) = arg_value(args, "--checkpoint") {
        workflow.run_with_checkpoint(std::path::Path::new(&ckpt))
    } else {
        workflow.run()
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    if let Some(t) = arg_value(args, "--temperature").and_then(|v| v.parse::<f64>().ok()) {
        result.spectrum.apply_bose_factor(t);
        result.ir.apply_bose_factor(t);
        println!("applied Bose factor at {t} K");
    }

    if let Some(cache) = &cache {
        for i in 0..parse(args, "--warm", 0usize) {
            let warm = workflow.run().unwrap_or_else(|e| {
                eprintln!("error: warm run {i}: {e}");
                std::process::exit(1);
            });
            assert_eq!(
                warm.spectrum.intensities, result.spectrum.intensities,
                "cache broke bit-identity"
            );
        }
        let s = cache.stats();
        println!(
            "cache: {} entries, {:.1} MiB resident, {} hits / {} misses / {} near / {} evicted",
            s.entries,
            s.resident_bytes as f64 / (1 << 20) as f64,
            s.hits,
            s.misses,
            s.near_hits,
            s.evictions
        );
    }

    println!("decomposition: {}", result.stats.summary());
    println!("run: {}", result.summary());
    if let Some(rec) = &result.recovery {
        println!(
            "recovery: {} retries ({} eager), {} resumed, {} re-issues, \
             {} duplicates suppressed, {} quarantined, {} unfinished, {} leaders died, \
             {} cache hits",
            rec.retries,
            rec.eager_retries,
            rec.resumed_jobs,
            rec.reissues,
            rec.duplicates_suppressed,
            rec.quarantined_jobs,
            rec.unfinished_jobs,
            rec.leaders_died,
            rec.cache_hits
        );
    }
    println!(
        "Raman bands (cm-1): {:?}",
        result.spectrum.peaks_above(0.05).iter().map(|p| p.round()).collect::<Vec<_>>()
    );
    if has(args, "--ir") {
        println!(
            "IR bands    (cm-1): {:?}",
            result.ir.peaks_above(0.05).iter().map(|p| p.round()).collect::<Vec<_>>()
        );
        println!("\nIR spectrum:\n{}", result.ir.ascii_plot(25, 55));
    }
    println!("\nRaman spectrum:\n{}", result.spectrum.ascii_plot(25, 55));

    if let Some(path) = arg_value(args, "--json") {
        std::fs::write(&path, result.to_json()).expect("write json");
        println!("record written to {path}");
    }

    // --metrics prints the full span/counter report, then the deterministic
    // counter block between sentinel lines so CI (and `diff`) can extract
    // and compare it byte-for-byte across same-seed runs.
    if has(args, "--metrics") {
        println!("\n{}", qfr_obs::report());
        println!("-- deterministic counters --");
        print!("{}", qfr_obs::counter::deterministic_report());
        println!("-- end deterministic counters --");
    }
    if let Some(path) = arg_value(args, "--metrics-out") {
        std::fs::write(&path, qfr_obs::counter::deterministic_report()).expect("write metrics");
        println!("deterministic counters written to {path}");
    }
    if let Some(path) = trace_path {
        qfr_obs::trace::save(std::path::Path::new(&path)).expect("write trace");
        qfr_obs::trace::disable();
        println!("chrome trace written to {path}");
    }
}

fn cmd_decompose(args: &[String]) {
    let system = build_system(args);
    let workflow = RamanWorkflow::new(system).lambda(parse(args, "--lambda", 4.0));
    let d = workflow.decompose();
    println!("system: {} atoms", workflow.system().n_atoms());
    println!("{}", d.stats.summary());
    println!("capped fragments    : {}", d.stats.n_capped_fragments);
    println!("conjugate caps      : {}", d.stats.n_cap_pairs);
    println!("generalized concaps : {}", d.stats.n_generalized_concaps);
    println!("residue-water pairs : {}", d.stats.n_residue_water_pairs);
    println!("water-water pairs   : {}", d.stats.n_water_water_pairs);
    println!("fragment sizes      : {}..{}", d.stats.min_size, d.stats.max_size);
}

/// Scripted driver for the concurrent [`SpectrumService`]: submits
/// `--requests` spectrum requests drawn from `--distinct` seed variants of
/// the base system (repeats of a variant are served from the shared
/// cache), waits for all of them, and reports per-request and cache-wide
/// statistics. There is no network listener — this is the in-process
/// demonstration of the service's admission, batching and cache sharing.
fn cmd_serve(args: &[String]) {
    let requests: usize = parse(args, "--requests", 6);
    let distinct: usize = std::cmp::max(parse(args, "--distinct", 2), 1);
    let base_seed: u64 = parse(args, "--seed", 42);
    let cache_mb: usize = parse(args, "--cache-mb", 256);
    let config = ServiceConfig {
        workers: parse(args, "--workers", 4),
        max_active: parse(args, "--max-active", 4),
        max_queued: parse(args, "--max-queued", 16),
        batch_window: parse(args, "--batch-window", 32),
        engine: EngineKind::ForceField,
        cache: Some(std::sync::Arc::new(FragmentCache::new(CacheConfig {
            max_bytes: cache_mb << 20,
            ..CacheConfig::default()
        }))),
    };
    println!("service: {config:?}");
    let service = SpectrumService::new(config);

    let variants: Vec<MolecularSystem> =
        (0..distinct).map(|d| build_seeded_system(args, base_seed + d as u64)).collect();
    let sigma = parse(args, "--sigma", if variants[0].n_waters > 0 { 20.0 } else { 5.0 });

    let mut handles = Vec::new();
    for r in 0..requests {
        let system = variants[r % distinct].clone();
        let request = SpectrumRequest::new(system)
            .sigma(sigma)
            .lambda(parse(args, "--lambda", 4.0))
            .lanczos_steps(parse(args, "--lanczos", 140));
        match service.submit(request) {
            Ok(handle) => {
                println!("request {:>2}: admitted (variant {})", handle.id(), r % distinct);
                handles.push(handle);
            }
            Err(e) => println!("request {r:>2}: shed ({e})"),
        }
    }
    for handle in handles {
        let id = handle.id();
        match handle.wait() {
            Ok(result) => {
                let hits = result.recovery.as_ref().map_or(0, |r| r.cache_hits);
                println!(
                    "request {:>2}: done — {} ({} of {} fragments from cache)",
                    id,
                    result.summary(),
                    hits,
                    result.stats.n_jobs
                );
            }
            Err(e) => println!("request {id:>2}: failed ({e})"),
        }
    }
    let s = service.cache().stats();
    println!(
        "cache: {} entries, {:.1} MiB resident, {} hits / {} misses / {} near / {} evicted",
        s.entries,
        s.resident_bytes as f64 / (1 << 20) as f64,
        s.hits,
        s.misses,
        s.near_hits,
        s.evictions
    );
    if has(args, "--metrics") {
        println!("\n{}", qfr_obs::report());
    }
}

fn cmd_info() {
    println!("qfr-raman-rs — QF-RAMAN (SC 2024) reproduction in Rust");
    println!("pipeline: QF decomposition -> per-fragment engine -> Eq.(1) assembly");
    println!("          -> Lanczos/GAGQ spectral solver (no diagonalization)");
    println!("engines : force-field (calibrated, production) | model-dfpt (faithful, small)");
    println!("docs    : README.md, DESIGN.md, EXPERIMENTS.md");
    println!("threads : {}", rayon::current_num_threads());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("spectrum") => cmd_spectrum(&args[1..]),
        Some("decompose") => cmd_decompose(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("info") => cmd_info(),
        _ => usage(),
    }
}
