//! `qfr` — command-line front end to the QF-RAMAN pipeline.
//!
//! ```text
//! qfr spectrum  --protein 100 [--solvate 6.0] [--sigma 5] [--lanczos 160]
//!               [--seed 42] [--temperature 300] [--json out.json] [--xyz out.xyz]
//! qfr spectrum  --waters 1000 [--sigma 20] ...
//! qfr decompose --protein 3180 [--lambda 4.0]
//! qfr info
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every flag has a
//! sensible paper-matching default.

use qfr_core::{EngineKind, RamanWorkflow};
use qfr_geom::{io, MolecularSystem, ProteinBuilder, SolvatedSystem, WaterBoxBuilder};
use qfr_linalg::batch::OffloadMode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn has(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         qfr spectrum  (--protein N | --waters N) [--solvate PAD] [--sigma S]\n                \
         [--lambda L] [--lanczos K] [--seed SEED] [--temperature T]\n                \
         [--ir] [--json FILE] [--xyz FILE] [--dense | --stream]\n                \
         [--dfpt] [--offload batched|scattered]\n                \
         [--sched LEADERS [--workers W] [--checkpoint FILE\n                 \
         [--checkpoint-interval N]]] [--checkpoint FILE]\n                \
         [--trace FILE] [--metrics] [--metrics-out FILE]\n  \
         qfr decompose (--protein N | --waters N) [--lambda L] [--seed SEED]\n  \
         qfr info"
    );
    std::process::exit(2);
}

fn build_system(args: &[String]) -> MolecularSystem {
    let seed: u64 = parse(args, "--seed", 42);
    if let Some(n) = arg_value(args, "--protein").and_then(|v| v.parse::<usize>().ok()) {
        let protein = ProteinBuilder::new(n).seed(seed).build();
        if let Some(pad) = arg_value(args, "--solvate").and_then(|v| v.parse::<f64>().ok()) {
            return SolvatedSystem::build(&protein, pad, 3.1, 2.4, seed + 1);
        }
        return protein;
    }
    if let Some(n) = arg_value(args, "--waters").and_then(|v| v.parse::<usize>().ok()) {
        return WaterBoxBuilder::new(n).seed(seed).build();
    }
    usage()
}

fn cmd_spectrum(args: &[String]) {
    let trace_path = arg_value(args, "--trace");
    if trace_path.is_some() {
        qfr_obs::trace::enable();
    }
    let system = build_system(args);
    println!(
        "system: {} atoms ({} residues, {} waters)",
        system.n_atoms(),
        system.residues.len(),
        system.n_waters
    );
    if let Some(path) = arg_value(args, "--xyz") {
        std::fs::write(&path, io::to_xyz(&system, "qfr spectrum input")).expect("write xyz");
        println!("geometry written to {path}");
    }

    let sigma = parse(args, "--sigma", if system.n_waters > 0 { 20.0 } else { 5.0 });
    // --offload selects how the DFPT engine executes its gathered job
    // streams; spectra are bit-identical in both modes (ablation knob).
    let offload = match arg_value(args, "--offload").as_deref() {
        None | Some("batched") => OffloadMode::default(),
        Some("scattered") => OffloadMode::Scattered,
        Some(other) => {
            eprintln!("error: --offload takes 'batched' or 'scattered', got '{other}'");
            std::process::exit(2);
        }
    };
    let mut workflow = RamanWorkflow::new(system)
        .sigma(sigma)
        .lambda(parse(args, "--lambda", 4.0))
        .lanczos_steps(parse(args, "--lanczos", 140))
        .offload(offload);
    if has(args, "--dfpt") {
        workflow = workflow.engine(EngineKind::ModelDfpt);
    }
    let mut result = if has(args, "--dense") {
        workflow.run_dense_reference()
    } else if has(args, "--stream") {
        workflow.run_streamed()
    } else if let Some(leaders) = arg_value(args, "--sched") {
        let n_leaders: usize = leaders.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("error: --sched takes a positive leader count, got '{leaders}'");
            std::process::exit(2);
        });
        let runtime = qfr_sched::RuntimeConfig {
            n_leaders,
            workers_per_leader: parse(args, "--workers", 2),
            ..Default::default()
        };
        // --sched --checkpoint FILE: incremental checkpoint/restart of the
        // scheduled engine stage (resumes from FILE when it exists).
        workflow.run_scheduled_with(qfr_core::ScheduledConfig {
            runtime,
            checkpoint: arg_value(args, "--checkpoint").map(std::path::PathBuf::from),
            checkpoint_interval: parse(args, "--checkpoint-interval", 64),
        })
    } else if let Some(ckpt) = arg_value(args, "--checkpoint") {
        workflow.run_with_checkpoint(std::path::Path::new(&ckpt))
    } else {
        workflow.run()
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    if let Some(t) = arg_value(args, "--temperature").and_then(|v| v.parse::<f64>().ok()) {
        result.spectrum.apply_bose_factor(t);
        result.ir.apply_bose_factor(t);
        println!("applied Bose factor at {t} K");
    }

    println!("decomposition: {}", result.stats.summary());
    println!("run: {}", result.summary());
    if let Some(rec) = &result.recovery {
        println!(
            "recovery: {} retries ({} eager), {} resumed, {} re-issues, \
             {} duplicates suppressed, {} quarantined, {} unfinished, {} leaders died",
            rec.retries,
            rec.eager_retries,
            rec.resumed_jobs,
            rec.reissues,
            rec.duplicates_suppressed,
            rec.quarantined_jobs,
            rec.unfinished_jobs,
            rec.leaders_died
        );
    }
    println!(
        "Raman bands (cm-1): {:?}",
        result.spectrum.peaks_above(0.05).iter().map(|p| p.round()).collect::<Vec<_>>()
    );
    if has(args, "--ir") {
        println!(
            "IR bands    (cm-1): {:?}",
            result.ir.peaks_above(0.05).iter().map(|p| p.round()).collect::<Vec<_>>()
        );
        println!("\nIR spectrum:\n{}", result.ir.ascii_plot(25, 55));
    }
    println!("\nRaman spectrum:\n{}", result.spectrum.ascii_plot(25, 55));

    if let Some(path) = arg_value(args, "--json") {
        std::fs::write(&path, result.to_json()).expect("write json");
        println!("record written to {path}");
    }

    // --metrics prints the full span/counter report, then the deterministic
    // counter block between sentinel lines so CI (and `diff`) can extract
    // and compare it byte-for-byte across same-seed runs.
    if has(args, "--metrics") {
        println!("\n{}", qfr_obs::report());
        println!("-- deterministic counters --");
        print!("{}", qfr_obs::counter::deterministic_report());
        println!("-- end deterministic counters --");
    }
    if let Some(path) = arg_value(args, "--metrics-out") {
        std::fs::write(&path, qfr_obs::counter::deterministic_report()).expect("write metrics");
        println!("deterministic counters written to {path}");
    }
    if let Some(path) = trace_path {
        qfr_obs::trace::save(std::path::Path::new(&path)).expect("write trace");
        qfr_obs::trace::disable();
        println!("chrome trace written to {path}");
    }
}

fn cmd_decompose(args: &[String]) {
    let system = build_system(args);
    let workflow = RamanWorkflow::new(system).lambda(parse(args, "--lambda", 4.0));
    let d = workflow.decompose();
    println!("system: {} atoms", workflow.system().n_atoms());
    println!("{}", d.stats.summary());
    println!("capped fragments    : {}", d.stats.n_capped_fragments);
    println!("conjugate caps      : {}", d.stats.n_cap_pairs);
    println!("generalized concaps : {}", d.stats.n_generalized_concaps);
    println!("residue-water pairs : {}", d.stats.n_residue_water_pairs);
    println!("water-water pairs   : {}", d.stats.n_water_water_pairs);
    println!("fragment sizes      : {}..{}", d.stats.min_size, d.stats.max_size);
}

fn cmd_info() {
    println!("qfr-raman-rs — QF-RAMAN (SC 2024) reproduction in Rust");
    println!("pipeline: QF decomposition -> per-fragment engine -> Eq.(1) assembly");
    println!("          -> Lanczos/GAGQ spectral solver (no diagonalization)");
    println!("engines : force-field (calibrated, production) | model-dfpt (faithful, small)");
    println!("docs    : README.md, DESIGN.md, EXPERIMENTS.md");
    println!("threads : {}", rayon::current_num_threads());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("spectrum") => cmd_spectrum(&args[1..]),
        Some("decompose") => cmd_decompose(&args[1..]),
        Some("info") => cmd_info(),
        _ => usage(),
    }
}
