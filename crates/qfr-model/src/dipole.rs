//! Bond-dipole model: analytic `∂μ/∂r` for IR intensities.
//!
//! Companion observable to the Raman pipeline (the paper's DFPT machinery
//! yields both response properties; IR is the natural extension the same
//! Eq. (5)-style solver evaluates). The molecular dipole is a sum of bond
//! dipoles `μ = Σ_b m_b(r) û` with `m_b(r) = m0 + m'·r`; differentiating
//! gives the `3 x 3m` derivative matrix whose mass-weighted rows feed
//! `I_IR(ω) ∝ Σ_c d_cᵀ δ(ω − H) d_c`.
//!
//! Bond dipoles point from atom `i` to atom `j` as stored; within our
//! builders hydrogens are always the bond's `j` atom, giving consistent
//! X→H polarity.

use crate::params::bond_dipole;
use qfr_fragment::FragmentStructure;
use qfr_linalg::DMatrix;

/// Analytic dipole derivatives (`3 x 3m`) of a fragment.
pub fn dmu(frag: &FragmentStructure) -> DMatrix {
    let mut out = DMatrix::zeros(3, frag.dof());
    for b in &frag.bonds {
        let pars = bond_dipole(b.class);
        let u = frag.positions[b.j] - frag.positions[b.i];
        let r = u.norm();
        if r < 1e-9 {
            continue;
        }
        let uh = u * (1.0 / r);
        let ua = uh.to_array();
        qfr_linalg::flops::add(3 * 3 * 6);
        let m = pars.static_moment + pars.deriv * r;
        // ∂(m û_p)/∂x_j^c = m' û_c û_p + (m/r)(δ_pc − û_p û_c).
        for p in 0..3 {
            for c in 0..3 {
                let delta_pc = if p == c { 1.0 } else { 0.0 };
                let v = pars.deriv * ua[c] * ua[p] + m / r * (delta_pc - ua[p] * ua[c]);
                out[(p, 3 * b.j + c)] += v;
                out[(p, 3 * b.i + c)] -= v;
            }
        }
    }
    out
}

/// Total bond-model dipole vector of a fragment (validation helper for the
/// finite-difference tests).
pub fn mu(frag: &FragmentStructure) -> [f64; 3] {
    let mut out = [0.0; 3];
    for b in &frag.bonds {
        let pars = bond_dipole(b.class);
        let u = frag.positions[b.j] - frag.positions[b.i];
        let r = u.norm();
        if r < 1e-9 {
            continue;
        }
        let m = pars.static_moment + pars.deriv * r;
        let uh = u * (m / r);
        out[0] += uh.x;
        out[1] += uh.y;
        out[2] += uh.z;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polarizability::displaced;
    use qfr_fragment::{FragmentJob, JobKind};
    use qfr_geom::WaterBoxBuilder;

    fn water_fragment() -> FragmentStructure {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    #[test]
    fn water_has_a_dipole() {
        let m = mu(&water_fragment());
        let norm = (m[0] * m[0] + m[1] * m[1] + m[2] * m[2]).sqrt();
        assert!(norm > 0.1, "water must be polar: |mu| = {norm}");
    }

    #[test]
    fn dmu_matches_finite_differences() {
        let frag = water_fragment();
        let d = dmu(&frag);
        let h = 1e-6;
        for atom in 0..frag.n_atoms() {
            for c in 0..3 {
                let mp = mu(&displaced(&frag, atom, c, h));
                let mm = mu(&displaced(&frag, atom, c, -h));
                for p in 0..3 {
                    let fd = (mp[p] - mm[p]) / (2.0 * h);
                    assert!(
                        (fd - d[(p, 3 * atom + c)]).abs() < 1e-6,
                        "atom {atom} dir {c} comp {p}: fd {fd} vs {}",
                        d[(p, 3 * atom + c)]
                    );
                }
            }
        }
    }

    #[test]
    fn translation_invariance() {
        let d = dmu(&water_fragment());
        for p in 0..3 {
            for c in 0..3 {
                let total: f64 = (0..3).map(|a| d[(p, 3 * a + c)]).sum();
                assert!(total.abs() < 1e-12, "comp {p} dir {c}: {total}");
            }
        }
    }

    #[test]
    fn oh_stretch_is_ir_active() {
        // Stretching an O-H bond along its axis changes mu strongly.
        let frag = water_fragment();
        let d = dmu(&frag);
        // H atom 1 displacement along the O-H direction: project.
        let dir = (frag.positions[1] - frag.positions[0]).normalized().to_array();
        let mut proj = 0.0;
        for p in 0..3 {
            let mut along = 0.0;
            for c in 0..3 {
                along += d[(p, 3 + c)] * dir[c];
            }
            proj += along * along;
        }
        assert!(proj.sqrt() > 0.5, "O-H stretch must be IR-bright: {proj}");
    }
}
