//! Bond-polarizability model: analytic `∂α/∂r` for Raman activities.
//!
//! The molecular polarizability is modeled as a sum over bonds,
//! `α = Σ_b [ α_par(r) û ûᵀ + α_perp(r) (I − û ûᵀ) ]`, the classic
//! bond-polarizability approximation. Differentiating with respect to the
//! Cartesian coordinates of the two bond atoms gives the `6 x 3m`
//! derivative matrix the Raman intensity formula (Eq. (4) of the paper)
//! needs. Stretching a bond changes the parallel/perpendicular components
//! through `par_deriv`/`perp_deriv`; reorienting it changes the projector
//! through the static `anisotropy`.

use crate::params::bond_polarizability;
use qfr_fragment::FragmentStructure;
use qfr_linalg::DMatrix;

/// Order of the six independent symmetric-tensor components in all `dalpha`
/// matrices: xx, yy, zz, xy, xz, yz.
pub const COMPONENTS: [(usize, usize); 6] = [(0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2)];

/// Analytic polarizability derivatives (`6 x 3m`) of a fragment.
pub fn dalpha(frag: &FragmentStructure) -> DMatrix {
    let mut out = DMatrix::zeros(6, frag.dof());
    for b in &frag.bonds {
        let pars = bond_polarizability(b.class);
        let u = frag.positions[b.j] - frag.positions[b.i];
        let r = u.norm();
        if r < 1e-9 {
            continue;
        }
        let uh = u * (1.0 / r);
        let ua = uh.to_array();
        qfr_linalg::flops::add(6 * 3 * 8);
        // d(alpha_pq)/dx_j^c  (and the negative for atom i):
        //   stretch part: [perp' δ_pq + (par' − perp') û_p û_q] û_c
        //   rotation part: (α_par − α_perp)/r [ (δ_pc − û_p û_c) û_q
        //                                     + û_p (δ_qc − û_q û_c) ]
        // with α_par − α_perp = (par' − perp')·r + anisotropy in the affine
        // gauge of [`alpha`].
        let rot_prefactor = (pars.par_deriv - pars.perp_deriv) + pars.anisotropy / r;
        for (comp, &(p, q)) in COMPONENTS.iter().enumerate() {
            let delta_pq = if p == q { 1.0 } else { 0.0 };
            let stretch_coef =
                pars.perp_deriv * delta_pq + (pars.par_deriv - pars.perp_deriv) * ua[p] * ua[q];
            for c in 0..3 {
                let delta_pc = if p == c { 1.0 } else { 0.0 };
                let delta_qc = if q == c { 1.0 } else { 0.0 };
                let rot = rot_prefactor
                    * ((delta_pc - ua[p] * ua[c]) * ua[q] + ua[p] * (delta_qc - ua[q] * ua[c]));
                let v = stretch_coef * ua[c] + rot;
                out[(comp, 3 * b.j + c)] += v;
                out[(comp, 3 * b.i + c)] -= v;
            }
        }
    }
    out
}

/// Polarizability tensor (3x3, symmetric) of a fragment at its current
/// geometry under the same model — used by the finite-difference tests to
/// validate [`dalpha`], with bond lengths entering linearly through the
/// derivative parameters.
pub fn alpha(frag: &FragmentStructure) -> DMatrix {
    let mut a = DMatrix::zeros(3, 3);
    for b in &frag.bonds {
        let pars = bond_polarizability(b.class);
        let u = frag.positions[b.j] - frag.positions[b.i];
        let r = u.norm();
        if r < 1e-9 {
            continue;
        }
        let uh = u * (1.0 / r);
        let ua = uh.to_array();
        // alpha_par(r) = par_deriv * r + anisotropy (affine model);
        // alpha_perp(r) = perp_deriv * r. Only differences and derivatives
        // matter for Raman, so the gauge constants are chosen for
        // simplicity.
        let a_par = pars.par_deriv * r + pars.anisotropy;
        let a_perp = pars.perp_deriv * r;
        for p in 0..3 {
            for q in 0..3 {
                let proj = ua[p] * ua[q];
                let delta = if p == q { 1.0 } else { 0.0 };
                a[(p, q)] += a_par * proj + a_perp * (delta - proj);
            }
        }
    }
    a
}

/// Moves one Cartesian coordinate of a fragment (helper for tests and
/// finite-difference reference paths).
pub fn displaced(frag: &FragmentStructure, atom: usize, comp: usize, h: f64) -> FragmentStructure {
    let mut out = frag.clone();
    match comp {
        0 => out.positions[atom].x += h,
        1 => out.positions[atom].y += h,
        _ => out.positions[atom].z += h,
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{FragmentJob, JobKind};
    use qfr_geom::{Vec3 as V, WaterBoxBuilder};

    fn water_fragment() -> FragmentStructure {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    #[test]
    fn alpha_is_symmetric() {
        let a = alpha(&water_fragment());
        assert!(a.is_symmetric(1e-12));
        assert!(a.trace() > 0.0, "polarizability must be positive");
    }

    #[test]
    fn dalpha_matches_finite_differences() {
        let frag = water_fragment();
        let d = dalpha(&frag);
        let h = 1e-6;
        for atom in 0..frag.n_atoms() {
            for c in 0..3 {
                let ap = alpha(&displaced(&frag, atom, c, h));
                let am = alpha(&displaced(&frag, atom, c, -h));
                for (comp, &(p, q)) in COMPONENTS.iter().enumerate() {
                    let fd = (ap[(p, q)] - am[(p, q)]) / (2.0 * h);
                    let an = d[(comp, 3 * atom + c)];
                    assert!(
                        (fd - an).abs() < 1e-6,
                        "atom {atom} comp {c} tensor {comp}: fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn translation_leaves_alpha_unchanged() {
        // dalpha summed over atoms (per component/direction) must vanish.
        let frag = water_fragment();
        let d = dalpha(&frag);
        for comp in 0..6 {
            for c in 0..3 {
                let total: f64 = (0..frag.n_atoms()).map(|a| d[(comp, 3 * a + c)]).sum();
                assert!(total.abs() < 1e-12, "component {comp} dir {c}: {total}");
            }
        }
    }

    #[test]
    fn single_bond_along_z_has_expected_structure() {
        // A lone O-H bond along z: stretching z changes alpha_zz via
        // par_deriv and alpha_xx/yy via perp_deriv; no xy coupling.
        let sys = WaterBoxBuilder::new(1).seed(2).build();
        let mut frag = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1],
            link_hydrogens: vec![],
        }
        .structure(&sys);
        frag.positions[0] = V::ZERO;
        frag.positions[1] = V::new(0.0, 0.0, 0.96);
        frag.bonds.truncate(1);
        frag.bonds[0].i = 0;
        frag.bonds[0].j = 1;
        let d = dalpha(&frag);
        let pars = crate::params::bond_polarizability(frag.bonds[0].class);
        // d(alpha_zz)/dz_H = par_deriv.
        assert!((d[(2, 5)] - pars.par_deriv).abs() < 1e-12);
        // d(alpha_xx)/dz_H = perp_deriv.
        assert!((d[(0, 5)] - pars.perp_deriv).abs() < 1e-12);
        // d(alpha_xy)/dz_H = 0.
        assert!(d[(3, 5)].abs() < 1e-12);
        // Rotation activity: d(alpha_xz)/dx_H =
        // (par' - perp') + anisotropy / r.
        let rot = (pars.par_deriv - pars.perp_deriv) + pars.anisotropy / 0.96;
        assert!((d[(4, 3)] - rot).abs() < 1e-9);
    }

    #[test]
    fn zero_length_bond_ignored() {
        let sys = WaterBoxBuilder::new(1).seed(3).build();
        let mut frag = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1],
            link_hydrogens: vec![],
        }
        .structure(&sys);
        frag.positions[1] = frag.positions[0];
        frag.bonds.truncate(1);
        let d = dalpha(&frag);
        assert_eq!(d.max_abs(), 0.0);
    }
}
