//! The force-field fragment engine.

use crate::dipole::dmu;
use crate::forcefield::{build_terms, hessian};
use crate::params::ForceFieldParams;
use crate::polarizability::dalpha;
use qfr_fragment::{FragmentEngine, FragmentResponse, FragmentStructure};

/// Fragments actually computed by this engine. Deterministic under
/// scheduling and checkpointing: a restarted run increments it only for the
/// jobs that were missing from the checkpoint.
static ENGINE_FRAGMENTS: qfr_obs::Counter =
    qfr_obs::Counter::deterministic("model.engine.fragments");

/// Analytic engine producing Hessian + polarizability derivatives from the
/// calibrated harmonic force field and bond-polarizability model. Fast
/// enough to drive 10⁶-atom assemblies on a laptop; the DFPT mini-engine in
/// `qfr-dfpt` is the computationally faithful (and expensive) counterpart.
#[derive(Debug, Clone, Default)]
pub struct ForceFieldEngine {
    /// Parameter set (defaults are the calibrated values).
    pub params: ForceFieldParams,
}

impl ForceFieldEngine {
    /// Engine with default calibrated parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with custom parameters (ablation benches).
    pub fn with_params(params: ForceFieldParams) -> Self {
        Self { params }
    }
}

impl FragmentEngine for ForceFieldEngine {
    fn compute(&self, frag: &FragmentStructure) -> FragmentResponse {
        ENGINE_FRAGMENTS.incr();
        let terms = build_terms(frag, &self.params);
        let resp = FragmentResponse {
            hessian: hessian(frag, &terms),
            dalpha: dalpha(frag),
            dmu: dmu(frag),
        };
        resp.check_shape(frag);
        resp
    }

    fn name(&self) -> &'static str {
        "force-field"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{Decomposition, DecompositionParams, JobKind};
    use qfr_geom::{ProteinBuilder, ResidueKind, WaterBoxBuilder};
    use qfr_linalg::eigen::symmetric_eigen;

    #[test]
    fn water_monomer_frequencies_hit_bands() {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = &d.jobs[0];
        let frag = job.structure(&sys);
        let resp = ForceFieldEngine::new().compute(&frag);

        // Mass weight and diagonalize.
        let masses = frag.masses();
        let n = frag.dof();
        let mut mw = resp.hessian.clone();
        for i in 0..n {
            for j in 0..n {
                mw[(i, j)] /= (masses[i / 3] * masses[j / 3]).sqrt();
            }
        }
        let eig = symmetric_eigen(&mw);
        let nus: Vec<f64> = eig
            .eigenvalues
            .iter()
            .map(|&l| crate::frequencies::eigenvalue_to_wavenumber(l))
            .filter(|&nu| nu > 100.0)
            .collect();
        assert_eq!(nus.len(), 3, "water has 3 vibrational modes: {nus:?}");
        // Bend near 1640, stretches near 3400 (the Fig. 12 water bands).
        assert!((1400.0..1900.0).contains(&nus[0]), "bend at {} cm-1", nus[0]);
        assert!(
            (3100.0..3700.0).contains(&nus[1]) && (3100.0..3800.0).contains(&nus[2]),
            "stretches at {} / {} cm-1",
            nus[1],
            nus[2]
        );
    }

    #[test]
    fn alanine_fragment_has_ch_band() {
        let sys = ProteinBuilder::new(3).seed(2).sequence(vec![ResidueKind::Ala; 3]).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let job = d.jobs.iter().find(|j| matches!(j.kind, JobKind::CappedFragment { .. })).unwrap();
        let frag = job.structure(&sys);
        let resp = ForceFieldEngine::new().compute(&frag);
        let masses = frag.masses();
        let mut mw = resp.hessian.clone();
        for i in 0..frag.dof() {
            for j in 0..frag.dof() {
                mw[(i, j)] /= (masses[i / 3] * masses[j / 3]).sqrt();
            }
        }
        let eig = symmetric_eigen(&mw);
        let nus: Vec<f64> = eig
            .eigenvalues
            .iter()
            .map(|&l| crate::frequencies::eigenvalue_to_wavenumber(l))
            .collect();
        // C-H stretch manifold near 2900-3000.
        assert!(nus.iter().any(|&nu| (2800.0..3100.0).contains(&nu)), "no C-H band found");
        // Amide I (C=O) near 1600-1800.
        assert!(nus.iter().any(|&nu| (1550.0..1850.0).contains(&nu)), "no amide I band found");
        // No imaginary modes beyond numerical noise.
        assert!(nus.iter().all(|&nu| nu > -1.0), "imaginary modes: {nus:?}");
    }

    #[test]
    fn response_is_deterministic() {
        let sys = WaterBoxBuilder::new(2).seed(3).build();
        let d = Decomposition::new(&sys, DecompositionParams::default());
        let frag = d.jobs[0].structure(&sys);
        let e = ForceFieldEngine::new();
        let r1 = e.compute(&frag);
        let r2 = e.compute(&frag);
        assert_eq!(r1.hessian.max_abs_diff(&r2.hessian), 0.0);
        assert_eq!(r1.dalpha.max_abs_diff(&r2.dalpha), 0.0);
    }

    #[test]
    fn engine_name() {
        assert_eq!(ForceFieldEngine::new().name(), "force-field");
    }
}
