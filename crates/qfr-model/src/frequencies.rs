//! Unit conversion between mass-weighted-Hessian eigenvalues and
//! vibrational wavenumbers.

/// `ν̃ [cm⁻¹] = WAVENUMBER_PER_SQRT_EIG · sqrt(λ)` for eigenvalues λ of the
/// mass-weighted Hessian in mdyn/(Å·amu). The constant is
/// `sqrt(10^2 N/m / amu) / (2 π c)` evaluated in CGS-friendly units.
pub const WAVENUMBER_PER_SQRT_EIG: f64 = 1302.7914;

/// Converts one eigenvalue to a signed wavenumber: negative eigenvalues
/// (numerical noise around the acoustic modes) map to negative wavenumbers
/// of the corresponding magnitude so they are easy to filter.
pub fn eigenvalue_to_wavenumber(lambda: f64) -> f64 {
    if lambda >= 0.0 {
        WAVENUMBER_PER_SQRT_EIG * lambda.sqrt()
    } else {
        -WAVENUMBER_PER_SQRT_EIG * (-lambda).sqrt()
    }
}

/// Inverse of [`eigenvalue_to_wavenumber`].
pub fn wavenumber_to_eigenvalue(nu: f64) -> f64 {
    let l = nu / WAVENUMBER_PER_SQRT_EIG;
    if nu >= 0.0 {
        l * l
    } else {
        -(l * l)
    }
}

/// Converts a whole eigenvalue slice, preserving order.
pub fn spectrum_wavenumbers(eigenvalues: &[f64]) -> Vec<f64> {
    eigenvalues.iter().map(|&l| eigenvalue_to_wavenumber(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diatomic_ch_lands_near_2900() {
        // k = 4.7 mdyn/A, mu = 1.008*12.011/13.019.
        let mu = 1.008 * 12.011 / (1.008 + 12.011);
        let nu = eigenvalue_to_wavenumber(4.7 / mu);
        assert!((2850.0..3050.0).contains(&nu), "{nu}");
    }

    #[test]
    fn round_trip() {
        for nu in [-500.0, 0.0, 100.0, 1650.0, 3400.0] {
            let back = eigenvalue_to_wavenumber(wavenumber_to_eigenvalue(nu));
            assert!((back - nu).abs() < 1e-9, "{nu} -> {back}");
        }
    }

    #[test]
    fn negative_eigenvalues_signed() {
        let nu = eigenvalue_to_wavenumber(-1.0);
        assert!(nu < 0.0);
        assert!((nu + WAVENUMBER_PER_SQRT_EIG).abs() < 1e-9);
    }

    #[test]
    fn spectrum_conversion_preserves_order() {
        let nus = spectrum_wavenumbers(&[0.0, 1.0, 4.0]);
        assert_eq!(nus[0], 0.0);
        assert!((nus[2] / nus[1] - 2.0).abs() < 1e-12);
    }
}
