//! # qfr-model
//!
//! Analytic per-fragment engine: a calibrated harmonic force field for the
//! Hessian (`∂²E/∂r∂r`) and a bond-polarizability model for the Raman
//! activity (`∂α/∂ξ`).
//!
//! **Substitution note** (see DESIGN.md): the paper computes these
//! quantities with all-electron DFPT. A full quantum-chemistry stack is out
//! of scope for a Rust reproduction (repro score 1/5: "no quantum chemistry
//! ecosystem"), so this engine produces the *same data structures* with
//! *physically calibrated* values: stretch force constants chosen so the
//! characteristic Raman bands land where the paper's Fig. 12 shows them
//! (C–H ≈ 2900 cm⁻¹, CH₂ bend ≈ 1450 cm⁻¹, amide I ≈ 1650 cm⁻¹, water bend
//! ≈ 1640 cm⁻¹ / stretch ≈ 3400 cm⁻¹, aromatic ring modes near 1000–1600
//! cm⁻¹). Because every term is harmonic about the *built* geometry, the
//! Hessian is exactly positive semidefinite and translation invariant
//! (acoustic sum rule), which the property tests assert.
//!
//! Units: lengths Å, masses amu, force constants mdyn/Å; mass-weighted
//! Hessian eigenvalues convert to wavenumbers via
//! `ν̃ [cm⁻¹] = 1302.79 · sqrt(λ)`.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index loops over tensor components

pub mod dipole;
pub mod engine;
pub mod forcefield;
pub mod frequencies;
pub mod params;
pub mod polarizability;

pub use engine::ForceFieldEngine;
pub use frequencies::{
    eigenvalue_to_wavenumber, wavenumber_to_eigenvalue, WAVENUMBER_PER_SQRT_EIG,
};
pub use params::ForceFieldParams;
