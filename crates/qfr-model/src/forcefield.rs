//! Harmonic force-field terms and the analytic Cartesian Hessian.
//!
//! Every term is harmonic about the *current* geometry (equilibrium = built
//! structure), so the gradient vanishes identically and the Hessian takes
//! the Gauss–Newton form `k · J Jᵀ` per term, with `J` the internal-
//! coordinate Jacobian. This guarantees two invariants the tests rely on:
//! the Hessian is positive semidefinite, and it is exactly translation
//! invariant (every `J` depends only on coordinate differences), i.e. the
//! acoustic sum rule `Σ_J H_IJ = 0` holds.

use crate::params::{bend_constant, nonbonded_constant, stretch_constant, ForceFieldParams};
use qfr_fragment::FragmentStructure;
use qfr_geom::Vec3;
use qfr_linalg::DMatrix;

/// One internal coordinate term of the force field.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Bond stretch: atoms, force constant (mdyn/Å), current direction and
    /// length baked into the Jacobian at evaluation time.
    Stretch {
        /// First atom.
        i: usize,
        /// Second atom.
        j: usize,
        /// Force constant (mdyn/Å).
        k: f64,
    },
    /// Angle bend `i - center - j` with constant in mdyn·Å/rad².
    Bend {
        /// First end atom.
        i: usize,
        /// Central atom.
        center: usize,
        /// Second end atom.
        j: usize,
        /// Force constant (mdyn·Å/rad²).
        k: f64,
    },
    /// Soft non-bonded harmonic coupling (intermolecular / through-space).
    NonBonded {
        /// First atom.
        i: usize,
        /// Second atom.
        j: usize,
        /// Force constant (mdyn/Å).
        k: f64,
    },
}

/// Enumerates the force-field terms of a fragment: one stretch per bond,
/// one bend per bonded pair sharing a center, and soft non-bonded couplings
/// between atoms separated by ≥ 3 bonds (or in different connected
/// components) within the cutoff.
pub fn build_terms(frag: &FragmentStructure, params: &ForceFieldParams) -> Vec<Term> {
    let n = frag.n_atoms();
    let mut terms = Vec::new();

    // Stretches.
    for b in &frag.bonds {
        terms.push(Term::Stretch {
            i: b.i,
            j: b.j,
            k: params.stretch_scale * stretch_constant(b.class),
        });
    }

    // Bends: every unordered pair of neighbors of each center.
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in &frag.bonds {
        neighbors[b.i].push(b.j);
        neighbors[b.j].push(b.i);
    }
    for (center, nb) in neighbors.iter().enumerate() {
        for a in 0..nb.len() {
            for b in (a + 1)..nb.len() {
                let (i, j) = (nb[a], nb[b]);
                terms.push(Term::Bend {
                    i,
                    center,
                    j,
                    k: params.bend_scale
                        * bend_constant(frag.elements[i], frag.elements[center], frag.elements[j]),
                });
            }
        }
    }

    // Non-bonded: bond-path distance >= 3 within cutoff.
    if params.nonbonded_scale > 0.0 {
        let close = bonded_within_two(&neighbors, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if close[i].contains(&j) {
                    continue;
                }
                let r = frag.positions[i].dist(frag.positions[j]);
                if r <= params.nonbonded_cutoff {
                    let k = params.nonbonded_scale * nonbonded_constant(r);
                    if k > 0.0 {
                        terms.push(Term::NonBonded { i, j, k });
                    }
                }
            }
        }
    }
    terms
}

/// For each atom, the set of atoms within bond-path distance ≤ 2 (self,
/// bonded, and geminal neighbors) — excluded from non-bonded terms.
fn bonded_within_two(neighbors: &[Vec<usize>], n: usize) -> Vec<std::collections::HashSet<usize>> {
    let mut out = vec![std::collections::HashSet::new(); n];
    for (i, set) in out.iter_mut().enumerate() {
        set.insert(i);
        for &j in &neighbors[i] {
            set.insert(j);
            for &k in &neighbors[j] {
                set.insert(k);
            }
        }
    }
    out
}

/// Accumulates `k · J Jᵀ` into the Hessian for a Jacobian supported on the
/// given atoms (each entry of `jac` is the 3-vector ∂q/∂x_atom).
fn accumulate_outer(h: &mut DMatrix, atoms: &[usize], jac: &[Vec3], k: f64) {
    qfr_linalg::flops::add((9 * atoms.len() * atoms.len()) as u64 * 2);
    for (ai, &a) in atoms.iter().enumerate() {
        let ja = jac[ai].to_array();
        for (bi, &b) in atoms.iter().enumerate() {
            let jb = jac[bi].to_array();
            for p in 0..3 {
                for q in 0..3 {
                    h[(3 * a + p, 3 * b + q)] += k * ja[p] * jb[q];
                }
            }
        }
    }
}

/// Analytic Cartesian Hessian of all terms at the current geometry
/// (mdyn/Å), `3m x 3m`.
pub fn hessian(frag: &FragmentStructure, terms: &[Term]) -> DMatrix {
    let mut h = DMatrix::zeros(frag.dof(), frag.dof());
    for t in terms {
        match *t {
            Term::Stretch { i, j, k } | Term::NonBonded { i, j, k } => {
                let u = frag.positions[j] - frag.positions[i];
                let Some(uh) = u.try_normalized() else { continue };
                // q = |x_j - x_i|: dq/dx_j = û, dq/dx_i = -û.
                accumulate_outer(&mut h, &[i, j], &[-uh, uh], k);
            }
            Term::Bend { i, center, j, k } => {
                if let Some((ji, jc, jj)) =
                    bend_jacobian(frag.positions[i], frag.positions[center], frag.positions[j])
                {
                    accumulate_outer(&mut h, &[i, center, j], &[ji, jc, jj], k);
                }
            }
        }
    }
    h
}

/// Jacobian of the angle `i-center-j` with respect to the three atom
/// positions; `None` when the geometry is (nearly) collinear or degenerate.
pub fn bend_jacobian(pi: Vec3, pc: Vec3, pj: Vec3) -> Option<(Vec3, Vec3, Vec3)> {
    let u = pi - pc;
    let v = pj - pc;
    let ru = u.norm();
    let rv = v.norm();
    if ru < 1e-9 || rv < 1e-9 {
        return None;
    }
    let uh = u * (1.0 / ru);
    let vh = v * (1.0 / rv);
    let cos_t = uh.dot(vh).clamp(-1.0, 1.0);
    let sin_t = (1.0 - cos_t * cos_t).sqrt();
    if sin_t < 1e-6 {
        return None;
    }
    // d(theta)/dx_i = (cos(t) û - v̂) / (r_u sin t), and symmetrically.
    let ji = (uh * cos_t - vh) * (1.0 / (ru * sin_t));
    let jj = (vh * cos_t - uh) * (1.0 / (rv * sin_t));
    let jc = -(ji + jj);
    Some((ji, jc, jj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{FragmentJob, JobKind};
    use qfr_geom::WaterBoxBuilder;
    use qfr_linalg::eigen::symmetric_eigen;

    fn water_fragment() -> FragmentStructure {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    #[test]
    fn water_terms() {
        let frag = water_fragment();
        let terms = build_terms(&frag, &ForceFieldParams::default());
        let stretches = terms.iter().filter(|t| matches!(t, Term::Stretch { .. })).count();
        let bends = terms.iter().filter(|t| matches!(t, Term::Bend { .. })).count();
        assert_eq!(stretches, 2);
        assert_eq!(bends, 1);
    }

    #[test]
    fn hessian_is_symmetric_and_psd() {
        let frag = water_fragment();
        let terms = build_terms(&frag, &ForceFieldParams::default());
        let h = hessian(&frag, &terms);
        assert!(h.is_symmetric(1e-12));
        let eig = symmetric_eigen(&h);
        assert!(
            eig.eigenvalues.iter().all(|&w| w > -1e-10),
            "negative eigenvalue: {:?}",
            eig.eigenvalues
        );
    }

    #[test]
    fn acoustic_sum_rule() {
        // Translation invariance: sum over atom blocks of each row is zero.
        let frag = water_fragment();
        let terms = build_terms(&frag, &ForceFieldParams::default());
        let h = hessian(&frag, &terms);
        for row in 0..frag.dof() {
            for q in 0..3 {
                let total: f64 = (0..frag.n_atoms()).map(|b| h[(row, 3 * b + q)]).sum();
                assert!(total.abs() < 1e-12, "ASR violated at row {row} comp {q}: {total}");
            }
        }
    }

    #[test]
    fn water_has_exactly_six_zero_modes() {
        // 3 translations + 3 rotations for a nonlinear molecule.
        let frag = water_fragment();
        let terms = build_terms(&frag, &ForceFieldParams::default());
        let h = hessian(&frag, &terms);
        let eig = symmetric_eigen(&h);
        let zeros = eig.eigenvalues.iter().filter(|&&w| w.abs() < 1e-8).count();
        assert_eq!(zeros, 6, "eigenvalues: {:?}", eig.eigenvalues);
    }

    #[test]
    fn bend_jacobian_orthogonal_to_bond_stretch() {
        // The angle gradient at atom i is perpendicular to the i-center
        // bond direction.
        let pi = Vec3::new(1.0, 0.2, -0.1);
        let pc = Vec3::ZERO;
        let pj = Vec3::new(-0.2, 1.1, 0.3);
        let (ji, jc, jj) = bend_jacobian(pi, pc, pj).unwrap();
        assert!(ji.dot((pi - pc).normalized()).abs() < 1e-12);
        assert!(jj.dot((pj - pc).normalized()).abs() < 1e-12);
        // Jacobian sums to zero (translation invariance).
        assert!((ji + jc + jj).norm() < 1e-12);
    }

    #[test]
    fn bend_jacobian_matches_finite_differences() {
        let pi = Vec3::new(0.9, 0.3, 0.1);
        let pc = Vec3::new(0.0, 0.0, 0.0);
        let pj = Vec3::new(-0.1, 1.0, -0.4);
        let (ji, jc, jj) = bend_jacobian(pi, pc, pj).unwrap();
        let angle = |pi: Vec3, pc: Vec3, pj: Vec3| (pi - pc).angle_between(pj - pc);
        let h = 1e-6;
        for (atom, jac) in [(0, ji), (1, jc), (2, jj)] {
            for c in 0..3 {
                let mut d = Vec3::ZERO;
                match c {
                    0 => d.x = h,
                    1 => d.y = h,
                    _ => d.z = h,
                }
                let (a_p, a_m) = match atom {
                    0 => (angle(pi + d, pc, pj), angle(pi - d, pc, pj)),
                    1 => (angle(pi, pc + d, pj), angle(pi, pc - d, pj)),
                    _ => (angle(pi, pc, pj + d), angle(pi, pc, pj - d)),
                };
                let fd = (a_p - a_m) / (2.0 * h);
                let an = jac.to_array()[c];
                assert!((fd - an).abs() < 1e-6, "atom {atom} comp {c}: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn collinear_bend_skipped() {
        assert!(bend_jacobian(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, Vec3::new(-2.0, 0.0, 0.0))
            .is_none());
        assert!(bend_jacobian(Vec3::ZERO, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn nonbonded_terms_between_molecules() {
        let sys = WaterBoxBuilder::new(2).seed(2).build();
        let mut atoms = sys.water_atoms(0).to_vec();
        atoms.extend(sys.water_atoms(1));
        let frag = FragmentJob {
            kind: JobKind::WaterWaterDimer { a: 0, b: 1 },
            coefficient: 1.0,
            atoms,
            link_hydrogens: vec![],
        }
        .structure(&sys);
        let terms = build_terms(&frag, &ForceFieldParams::default());
        let nb = terms.iter().filter(|t| matches!(t, Term::NonBonded { .. })).count();
        assert!(nb > 0, "3.1 A apart waters must couple");
        // Disabling non-bonded terms removes them.
        let params = ForceFieldParams { nonbonded_scale: 0.0, ..Default::default() };
        let terms = build_terms(&frag, &params);
        assert!(terms.iter().all(|t| !matches!(t, Term::NonBonded { .. })));
    }

    #[test]
    fn geminal_pairs_not_nonbonded() {
        let frag = water_fragment();
        let terms = build_terms(&frag, &ForceFieldParams::default());
        // H...H in one water is a 1-3 pair: excluded.
        assert!(terms.iter().all(|t| !matches!(t, Term::NonBonded { .. })));
    }
}
