//! Force-field and polarizability parameter sets.

use qfr_geom::system::BondClass;
use qfr_geom::Element;

/// Bond-stretch force constant in mdyn/Å, per bond class. Values chosen so
/// the diatomic estimate `ν̃ = 1302.79 sqrt(k/μ)` lands on the literature
/// band centers quoted in the paper's Fig. 12 discussion.
pub fn stretch_constant(class: BondClass) -> f64 {
    match class {
        BondClass::CH => 4.70,         // ≈2940 cm⁻¹ C-H stretch
        BondClass::NH => 6.00,         // ≈3280 cm⁻¹
        BondClass::OH => 6.50,         // water stretch band ≈3400 cm⁻¹
        BondClass::SH => 4.00,         // ≈2560 cm⁻¹
        BondClass::CCSingle => 4.50,   // skeletal ≈1100 cm⁻¹
        BondClass::CCAromatic => 6.50, // ring modes 1000–1600 cm⁻¹
        BondClass::CNSingle => 5.00,
        BondClass::CNAmide => 6.30, // amide III coupling 1200–1360 cm⁻¹
        BondClass::CNDouble => 10.00,
        BondClass::COSingle => 5.00,
        BondClass::CODouble => 11.50, // amide I ≈1690 cm⁻¹
        BondClass::CSSingle => 3.00,
        BondClass::SSBond => 2.50, // ≈510 cm⁻¹
        BondClass::Other => 3.00,
    }
}

/// Angle-bend force constant in mdyn·Å/rad², keyed on the (end, center,
/// end) element triple. Calibrated so the H-C-H scissor lands near 1450
/// cm⁻¹ and the water bend near 1640 cm⁻¹.
pub fn bend_constant(end_a: Element, center: Element, end_b: Element) -> f64 {
    use Element::*;
    let (lo, hi) = if end_a <= end_b { (end_a, end_b) } else { (end_b, end_a) };
    match (lo, center, hi) {
        (H, O, H) => 0.68,
        (H, C, H) => 0.55,
        (H, N, H) => 0.48,
        (H, _, H) => 0.50,
        (H, _, _) | (_, _, H) => 0.60,
        _ => 0.95, // heavy-heavy skeletal bends (300–700 cm⁻¹)
    }
}

/// Non-bonded (intermolecular / through-space) harmonic coupling constant
/// at separation `r` (Å), mdyn/Å. A soft `r^-4` falloff produces the
/// low-frequency intermolecular band the paper observes emerging in large
/// water boxes.
pub fn nonbonded_constant(r: f64) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    // Clamped so close contacts never rival covalent stretches (which
    // would blue-shift the intramolecular bands).
    (0.05 * (2.8 / r).powi(4)).min(0.12)
}

/// Cutoff beyond which non-bonded couplings are dropped (Å).
pub const NONBONDED_CUTOFF: f64 = 4.5;

/// Bond-polarizability parameters of one bond class (arbitrary
/// polarizability-volume units; relative magnitudes set Raman intensities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BondPolarizability {
    /// d(alpha_parallel)/dr — dominant Raman stretch activity.
    pub par_deriv: f64,
    /// d(alpha_perp)/dr.
    pub perp_deriv: f64,
    /// Static anisotropy (alpha_par - alpha_perp), drives reorientation
    /// activity of bends.
    pub anisotropy: f64,
}

/// Polarizability parameters per bond class.
pub fn bond_polarizability(class: BondClass) -> BondPolarizability {
    match class {
        BondClass::CH => BondPolarizability { par_deriv: 1.00, perp_deriv: 0.20, anisotropy: 0.50 },
        BondClass::NH => BondPolarizability { par_deriv: 0.70, perp_deriv: 0.15, anisotropy: 0.35 },
        BondClass::OH => BondPolarizability { par_deriv: 0.85, perp_deriv: 0.20, anisotropy: 0.40 },
        BondClass::SH => BondPolarizability { par_deriv: 1.40, perp_deriv: 0.25, anisotropy: 0.60 },
        BondClass::CCSingle => {
            BondPolarizability { par_deriv: 1.10, perp_deriv: 0.25, anisotropy: 0.55 }
        }
        BondClass::CCAromatic => {
            BondPolarizability { par_deriv: 2.10, perp_deriv: 0.45, anisotropy: 1.10 }
        }
        BondClass::CNSingle => {
            BondPolarizability { par_deriv: 0.90, perp_deriv: 0.20, anisotropy: 0.45 }
        }
        BondClass::CNAmide => {
            BondPolarizability { par_deriv: 1.30, perp_deriv: 0.30, anisotropy: 0.70 }
        }
        BondClass::CNDouble => {
            BondPolarizability { par_deriv: 1.60, perp_deriv: 0.35, anisotropy: 0.85 }
        }
        BondClass::COSingle => {
            BondPolarizability { par_deriv: 0.90, perp_deriv: 0.20, anisotropy: 0.45 }
        }
        BondClass::CODouble => {
            BondPolarizability { par_deriv: 1.50, perp_deriv: 0.35, anisotropy: 0.80 }
        }
        BondClass::CSSingle => {
            BondPolarizability { par_deriv: 1.80, perp_deriv: 0.35, anisotropy: 0.90 }
        }
        BondClass::SSBond => {
            BondPolarizability { par_deriv: 2.40, perp_deriv: 0.50, anisotropy: 1.20 }
        }
        BondClass::Other => {
            BondPolarizability { par_deriv: 1.00, perp_deriv: 0.20, anisotropy: 0.50 }
        }
    }
}

/// Bond-dipole parameters (IR intensities): dipole moment derivative and
/// static moment per bond, model units. Polar bonds dominate the IR
/// spectrum; near-apolar C–C bonds are IR-dark, exactly the
/// complementarity to the Raman-bright ring modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BondDipole {
    /// d(mu)/dr along the bond.
    pub deriv: f64,
    /// Static bond moment at the reference geometry.
    pub static_moment: f64,
}

/// Dipole parameters per bond class.
pub fn bond_dipole(class: BondClass) -> BondDipole {
    match class {
        BondClass::CH => BondDipole { deriv: 0.25, static_moment: 0.10 },
        BondClass::NH => BondDipole { deriv: 1.00, static_moment: 0.45 },
        BondClass::OH => BondDipole { deriv: 1.20, static_moment: 0.50 },
        BondClass::SH => BondDipole { deriv: 0.40, static_moment: 0.20 },
        BondClass::CCSingle => BondDipole { deriv: 0.03, static_moment: 0.00 },
        BondClass::CCAromatic => BondDipole { deriv: 0.05, static_moment: 0.00 },
        BondClass::CNSingle => BondDipole { deriv: 0.55, static_moment: 0.25 },
        BondClass::CNAmide => BondDipole { deriv: 1.10, static_moment: 0.40 },
        BondClass::CNDouble => BondDipole { deriv: 1.00, static_moment: 0.35 },
        BondClass::COSingle => BondDipole { deriv: 0.80, static_moment: 0.35 },
        BondClass::CODouble => BondDipole { deriv: 1.60, static_moment: 0.60 },
        BondClass::CSSingle => BondDipole { deriv: 0.35, static_moment: 0.15 },
        BondClass::SSBond => BondDipole { deriv: 0.02, static_moment: 0.00 },
        BondClass::Other => BondDipole { deriv: 0.30, static_moment: 0.10 },
    }
}

/// Bundled parameter set handed to the engine; the defaults above are the
/// calibrated set, but benches may perturb them for ablation.
#[derive(Debug, Clone, Copy)]
pub struct ForceFieldParams {
    /// Global scale on all stretch constants (ablation knob).
    pub stretch_scale: f64,
    /// Global scale on all bend constants.
    pub bend_scale: f64,
    /// Global scale on non-bonded couplings (0 disables the intermolecular
    /// low-frequency band entirely).
    pub nonbonded_scale: f64,
    /// Non-bonded cutoff in Å.
    pub nonbonded_cutoff: f64,
}

impl Default for ForceFieldParams {
    fn default() -> Self {
        Self {
            stretch_scale: 1.0,
            bend_scale: 1.0,
            nonbonded_scale: 1.0,
            nonbonded_cutoff: NONBONDED_CUTOFF,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diatomic_stretch_frequencies_hit_bands() {
        // nu = 1302.79 sqrt(k/mu) with reduced masses of the X-H pairs.
        let nu = |k: f64, m1: f64, m2: f64| 1302.79 * (k / (m1 * m2 / (m1 + m2))).sqrt();
        let ch = nu(stretch_constant(BondClass::CH), 12.011, 1.008);
        assert!((2800.0..3050.0).contains(&ch), "C-H {ch}");
        let oh = nu(stretch_constant(BondClass::OH), 15.999, 1.008);
        assert!((3250.0..3550.0).contains(&oh), "O-H {oh}");
        let co = nu(stretch_constant(BondClass::CODouble), 12.011, 15.999);
        assert!((1550.0..1800.0).contains(&co), "C=O {co}");
        let ss = nu(stretch_constant(BondClass::SSBond), 32.06, 32.06);
        assert!((400.0..620.0).contains(&ss), "S-S {ss}");
    }

    #[test]
    fn bend_constants_symmetric_in_ends() {
        use Element::*;
        assert_eq!(bend_constant(H, C, C), bend_constant(C, C, H));
        assert_eq!(bend_constant(H, O, H), 0.68);
        assert!(bend_constant(C, C, C) > bend_constant(H, C, H));
    }

    #[test]
    fn nonbonded_decays_with_distance() {
        assert!(nonbonded_constant(2.5) > nonbonded_constant(3.5));
        assert!(nonbonded_constant(4.0) > 0.0);
        assert_eq!(nonbonded_constant(0.0), 0.0);
        // Much weaker than any covalent bond.
        assert!(nonbonded_constant(2.5) < 0.5 * stretch_constant(BondClass::SSBond));
    }

    #[test]
    fn aromatic_polarizability_strongest_of_cc() {
        let arom = bond_polarizability(BondClass::CCAromatic);
        let single = bond_polarizability(BondClass::CCSingle);
        assert!(arom.par_deriv > single.par_deriv, "ring breathing must be Raman-bright");
    }

    #[test]
    fn polar_bonds_ir_bright_apolar_dark() {
        assert!(bond_dipole(BondClass::OH).deriv > 10.0 * bond_dipole(BondClass::CCSingle).deriv);
        assert!(bond_dipole(BondClass::CODouble).deriv > bond_dipole(BondClass::CH).deriv);
        assert_eq!(bond_dipole(BondClass::SSBond).static_moment, 0.0);
    }

    #[test]
    fn default_params() {
        let p = ForceFieldParams::default();
        assert_eq!(p.stretch_scale, 1.0);
        assert_eq!(p.nonbonded_cutoff, NONBONDED_CUTOFF);
    }
}
