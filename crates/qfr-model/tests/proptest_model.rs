//! Property tests for the force-field engine: PSD Hessians, acoustic sum
//! rule, and finite-difference consistency on random geometries.

use proptest::prelude::*;
use qfr_fragment::{FragmentEngine, FragmentJob, FragmentStructure, JobKind};
use qfr_geom::system::{Bond, BondClass};
use qfr_geom::{Element, Vec3, WaterBoxBuilder};
use qfr_linalg::eigen::symmetric_eigen;
use qfr_model::polarizability::{alpha, dalpha, displaced, COMPONENTS};
use qfr_model::ForceFieldEngine;

/// A randomized small chain molecule: n atoms in a jittered line, bonded
/// sequentially.
fn chain_fragment(n: usize, seed: u64) -> FragmentStructure {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let elements: Vec<Element> = (0..n)
        .map(|i| match i % 4 {
            0 => Element::C,
            1 => Element::H,
            2 => Element::O,
            _ => Element::N,
        })
        .collect();
    let mut positions = Vec::with_capacity(n);
    let mut pos = Vec3::ZERO;
    positions.push(pos);
    for _ in 1..n {
        pos += Vec3::new(1.2 + 0.2 * rnd(), 0.5 * rnd(), 0.5 * rnd());
        positions.push(pos);
    }
    let bonds: Vec<Bond> = (1..n)
        .map(|i| Bond {
            i: i - 1,
            j: i,
            order: 1,
            class: BondClass::classify(elements[i - 1], elements[i], 1),
        })
        .collect();
    FragmentStructure { elements, positions, bonds, global_map: (0..n).map(Some).collect() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hessian_psd_and_translation_invariant(n in 2..10usize, seed in 0u64..1000) {
        let frag = chain_fragment(n, seed);
        let resp = ForceFieldEngine::new().compute(&frag);
        prop_assert!(resp.hessian.is_symmetric(1e-10));
        let eig = symmetric_eigen(&resp.hessian);
        prop_assert!(
            eig.eigenvalues.iter().all(|&w| w > -1e-8),
            "negative eigenvalue {:?}",
            eig.eigenvalues.first()
        );
        // Acoustic sum rule.
        for row in 0..frag.dof() {
            for q in 0..3 {
                let total: f64 = (0..n).map(|b| resp.hessian[(row, 3 * b + q)]).sum();
                prop_assert!(total.abs() < 1e-9, "ASR violated: {total}");
            }
        }
    }

    #[test]
    fn dalpha_fd_consistency_random_geometry(n in 2..7usize, seed in 0u64..1000) {
        let frag = chain_fragment(n, seed);
        let d = dalpha(&frag);
        let h = 1e-6;
        // Spot check a few coordinates.
        for &coord in &[0usize, (3 * n - 1) / 2, 3 * n - 1] {
            let (atom, c) = (coord / 3, coord % 3);
            let ap = alpha(&displaced(&frag, atom, c, h));
            let am = alpha(&displaced(&frag, atom, c, -h));
            for (comp, &(p, q)) in COMPONENTS.iter().enumerate() {
                let fd = (ap[(p, q)] - am[(p, q)]) / (2.0 * h);
                prop_assert!(
                    (fd - d[(comp, coord)]).abs() < 1e-5,
                    "coord {coord} comp {comp}: fd {fd} vs {}",
                    d[(comp, coord)]
                );
            }
        }
    }

    #[test]
    fn engine_scale_invariance_under_global_rotation(seed in 0u64..300, angle in 0.1..3.0f64) {
        // Rotating the whole fragment must leave the Hessian spectrum
        // unchanged (the Hessian transforms covariantly).
        let sys = WaterBoxBuilder::new(1).seed(seed).build();
        let frag = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys);
        let mut rotated = frag.clone();
        let axis = Vec3::new(0.3, 0.5, 0.81).normalized();
        for p in &mut rotated.positions {
            *p = p.rotated_about(axis, angle);
        }
        let e = ForceFieldEngine::new();
        let h1 = symmetric_eigen(&e.compute(&frag).hessian).eigenvalues;
        let h2 = symmetric_eigen(&e.compute(&rotated).hessian).eigenvalues;
        for (a, b) in h1.iter().zip(&h2) {
            prop_assert!((a - b).abs() < 1e-8, "rotation changed the spectrum: {a} vs {b}");
        }
    }
}
