//! # qfr-dfpt
//!
//! A self-contained model DFT/DFPT mini-engine reproducing the
//! *computational structure* of the per-fragment quantum calculation in
//! QF-RAMAN (the paper uses the FHI-aims all-electron NAO DFPT rewritten in
//! OpenCL; see DESIGN.md for the substitution rationale).
//!
//! The physical model: normalized s-type Gaussian orbitals (1 shell on H,
//! 2 on heavy atoms), a Gaussian-well external potential carrying the
//! valence charge of each atom, a Hartree term solved on a real-space grid
//! with the FFT Poisson solver, and LDA exchange. The SCF solves the
//! generalized eigenproblem via Cholesky/Löwdin orthogonalization.
//!
//! The DFPT layer implements the paper's four worker phases exactly
//! (Fig. 3, right):
//!
//! 1. response density matrix `P(1)` (sum-over-states with the SCF
//!    eigenpairs),
//! 2. real-space integration of the response density `n(1)(r)` —
//!    the GEMM-dominated phase of Table I,
//! 3. Poisson solve for the response potential `v(1)(r)` (FFT),
//! 4. response Hamiltonian `H(1)` — the second GEMM-dominated phase.
//!
//! Two BLAS paths are provided throughout: the *naive* path issues the
//! scattered GEMM sequences of Fig. 6 verbatim; the *symmetry-reduced* path
//! applies the paper's strength reduction (Section V-D). Both produce
//! identical results (tested) and both account FLOPs, which is how the
//! Fig. 9 speedups and Table I rates are regenerated.
//!
//! Since PR 6 the dense hot loops (SCF density/Fock builds, the response
//! phases 1/2/4) no longer call kernels directly: they *gather*
//! kernel-tagged [`qfr_linalg::batch::BatchJob`] streams and dispatch them
//! through `qfr_sched::CpuAccelerator` — the paper's elastic workload
//! offloading executed for real (Section V-C, DESIGN.md §11). The
//! [`response::solve_responses`] set driver additionally gathers jobs
//! *across* response tasks (field directions × displaced geometries) in
//! deterministic lockstep.

#![forbid(unsafe_code)]

pub mod basis;
pub mod dispatch;
pub mod displacement;
pub mod engine;
pub mod grid;
pub mod response;
pub mod scf;

pub use basis::Basis;
pub use displacement::{displacement_cycle, CycleProfile, DisplacementConfig};
pub use engine::{DfptEngine, DfptEngineConfig};
pub use grid::RealSpaceGrid;
pub use response::{polarizability, solve_responses, ResponseConfig, ResponseResult, ResponseTask};
pub use scf::{ScfConfig, ScfResult, ScfSolver};
