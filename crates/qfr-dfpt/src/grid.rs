//! Real-space integration grid with FFT-Poisson support.
//!
//! A uniform Cartesian grid over the fragment's padded bounding box, with
//! power-of-two dimensions so the [`qfr_linalg::fft`] Poisson solver applies
//! directly. Grid points are traversed in z-fastest order matching
//! [`qfr_linalg::fft::Grid3`] layout. The grid also defines the *batching*
//! of points used by the GEMM-heavy DFPT phases: each batch of `batch_size`
//! points becomes one `X` panel (`npts x nbasis`), which is exactly the
//! granularity the elastic offloading scheme packs.

use qfr_fragment::FragmentStructure;
use qfr_geom::Vec3;
use qfr_linalg::fft::Grid3;

static POISSON_SOLVES: qfr_obs::Counter = qfr_obs::Counter::deterministic("dfpt.poisson.solves");

/// A uniform real-space grid.
#[derive(Debug, Clone)]
pub struct RealSpaceGrid {
    /// Grid origin (corner).
    pub origin: Vec3,
    /// Spacing (Å), identical along each axis.
    pub spacing: f64,
    /// Dimensions (powers of two).
    pub dims: (usize, usize, usize),
    /// Flattened point coordinates (z fastest).
    pub points: Vec<Vec3>,
    /// Volume element (Å³).
    pub dv: f64,
}

impl RealSpaceGrid {
    /// Builds a grid covering the fragment's bounding box plus `padding` Å
    /// on every side at roughly `target_spacing`, with each dimension a
    /// power of two capped at `max_dim` (the spacing stretches if the cap
    /// binds).
    pub fn for_fragment(
        frag: &FragmentStructure,
        target_spacing: f64,
        padding: f64,
        max_dim: usize,
    ) -> Self {
        assert!(!frag.positions.is_empty(), "empty fragment");
        let mut lo = frag.positions[0];
        let mut hi = frag.positions[0];
        for p in &frag.positions {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            lo.z = lo.z.min(p.z);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
            hi.z = hi.z.max(p.z);
        }
        let lo = lo - Vec3::new(padding, padding, padding);
        let hi = hi + Vec3::new(padding, padding, padding);
        let extent = [hi.x - lo.x, hi.y - lo.y, hi.z - lo.z];
        let dim_of = |len: f64| -> usize {
            let want = (len / target_spacing).ceil() as usize + 1;
            want.next_power_of_two().clamp(8, max_dim.max(8))
        };
        let dims = (dim_of(extent[0]), dim_of(extent[1]), dim_of(extent[2]));
        // A single isotropic spacing keeps the Poisson kernel simple: use
        // the largest required spacing across axes.
        let spacing = (extent[0] / dims.0 as f64)
            .max(extent[1] / dims.1 as f64)
            .max(extent[2] / dims.2 as f64)
            .max(1e-6);
        let mut points = Vec::with_capacity(dims.0 * dims.1 * dims.2);
        for i in 0..dims.0 {
            for j in 0..dims.1 {
                for k in 0..dims.2 {
                    points.push(lo + Vec3::new(i as f64, j as f64, k as f64) * spacing);
                }
            }
        }
        let dv = spacing * spacing * spacing;
        Self { origin: lo, spacing, dims, points, dv }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the grid has no points (never happens for valid fragments).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Splits point indices into batches of `batch_size` (the GEMM panel
    /// granularity of the DFPT phases).
    pub fn batches(&self, batch_size: usize) -> Vec<std::ops::Range<usize>> {
        assert!(batch_size > 0);
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            out.push(start..end);
            start = end;
        }
        out
    }

    /// Solves the (periodic) Poisson equation `∇² v = -4π n` for the given
    /// density samples, returning the potential on the grid. The DC
    /// component is projected out (neutralizing background).
    pub fn solve_poisson(&self, density: &[f64]) -> Vec<f64> {
        let _span = qfr_obs::span("dfpt.poisson");
        POISSON_SOLVES.incr();
        assert_eq!(density.len(), self.len(), "density sample count mismatch");
        let (nx, ny, nz) = self.dims;
        let mut g = Grid3::from_real(nx, ny, nz, density);
        g.fft();
        let lx = nx as f64 * self.spacing;
        let ly = ny as f64 * self.spacing;
        let lz = nz as f64 * self.spacing;
        let tau = 2.0 * std::f64::consts::PI;
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let fi = if i <= nx / 2 { i as f64 } else { i as f64 - nx as f64 };
                    let fj = if j <= ny / 2 { j as f64 } else { j as f64 - ny as f64 };
                    let fk = if k <= nz / 2 { k as f64 } else { k as f64 - nz as f64 };
                    let kx = tau * fi / lx;
                    let ky = tau * fj / ly;
                    let kz = tau * fk / lz;
                    let k2 = kx * kx + ky * ky + kz * kz;
                    let idx = g.idx(i, j, k);
                    if k2 == 0.0 {
                        g.data_mut()[idx] = qfr_linalg::Complex64::ZERO;
                    } else {
                        let scale = 4.0 * std::f64::consts::PI / k2;
                        g.data_mut()[idx] = g.data_mut()[idx].scale(scale);
                    }
                }
            }
        }
        g.ifft();
        g.to_real()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{FragmentJob, JobKind};
    use qfr_geom::WaterBoxBuilder;

    fn water_fragment() -> FragmentStructure {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    #[test]
    fn grid_covers_fragment() {
        let frag = water_fragment();
        let g = RealSpaceGrid::for_fragment(&frag, 0.4, 3.0, 32);
        assert!(g.dims.0.is_power_of_two());
        for p in &frag.positions {
            assert!(p.x >= g.origin.x && p.y >= g.origin.y && p.z >= g.origin.z);
            let far = g.origin
                + Vec3::new(
                    g.dims.0 as f64 * g.spacing,
                    g.dims.1 as f64 * g.spacing,
                    g.dims.2 as f64 * g.spacing,
                );
            assert!(p.x <= far.x && p.y <= far.y && p.z <= far.z);
        }
        assert_eq!(g.len(), g.dims.0 * g.dims.1 * g.dims.2);
        assert!((g.dv - g.spacing.powi(3)).abs() < 1e-15);
    }

    #[test]
    fn max_dim_caps_grid() {
        let frag = water_fragment();
        let g = RealSpaceGrid::for_fragment(&frag, 0.05, 6.0, 16);
        assert!(g.dims.0 <= 16 && g.dims.1 <= 16 && g.dims.2 <= 16);
        // Spacing stretched to still cover the box.
        assert!(g.spacing > 0.05);
    }

    #[test]
    fn batches_partition_points() {
        let frag = water_fragment();
        let g = RealSpaceGrid::for_fragment(&frag, 0.5, 2.0, 16);
        let batches = g.batches(100);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, g.len());
        for w in batches.windows(2) {
            assert_eq!(w[0].end, w[1].start, "batches must be contiguous");
        }
        assert!(batches[0].len() <= 100);
    }

    #[test]
    fn poisson_plane_wave_eigenfunction() {
        // n(r) = cos(2π x / Lx) is an eigenfunction: v = 4π/(k²) n.
        let frag = water_fragment();
        let g = RealSpaceGrid::for_fragment(&frag, 0.5, 3.0, 16);
        let lx = g.dims.0 as f64 * g.spacing;
        let k = 2.0 * std::f64::consts::PI / lx;
        let density: Vec<f64> = g.points.iter().map(|p| (k * (p.x - g.origin.x)).cos()).collect();
        let v = g.solve_poisson(&density);
        let expect = 4.0 * std::f64::consts::PI / (k * k);
        for (vi, ni) in v.iter().zip(&density) {
            assert!(
                (vi - expect * ni).abs() < 1e-8 * expect,
                "poisson eigenfunction violated: {vi} vs {}",
                expect * ni
            );
        }
    }

    #[test]
    fn poisson_removes_dc() {
        let frag = water_fragment();
        let g = RealSpaceGrid::for_fragment(&frag, 0.6, 2.0, 8);
        let density = vec![3.0; g.len()];
        let v = g.solve_poisson(&density);
        // Constant density has only a DC component -> zero potential.
        assert!(v.iter().all(|x| x.abs() < 1e-10));
    }

    #[test]
    fn poisson_output_mean_zero() {
        let frag = water_fragment();
        let g = RealSpaceGrid::for_fragment(&frag, 0.5, 2.0, 8);
        let density: Vec<f64> = (0..g.len()).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let v = g.solve_poisson(&density);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 1e-9, "mean {mean}");
    }
}
