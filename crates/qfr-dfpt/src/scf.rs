//! Self-consistent field ground state of the model Hamiltonian.
//!
//! `F[P] = T + V_ext + V_H[n] + V_x[n]` with the Hartree potential from the
//! FFT Poisson solver and LDA exchange, solved by Löwdin orthogonalization
//! (Cholesky of `S`) and damped fixed-point iteration on the density
//! matrix. Everything is deterministic: fixed grid, fixed iteration cap,
//! fixed mixing.

use crate::basis::Basis;
use crate::dispatch::dispatch_jobs;
use crate::grid::RealSpaceGrid;
use qfr_fragment::FragmentStructure;
use qfr_linalg::batch::{BatchJob, OffloadMode};
use qfr_linalg::cholesky::Cholesky;
use qfr_linalg::eigen::symmetric_eigen;
use qfr_linalg::gemm;
use qfr_linalg::DMatrix;

static SCF_SOLVES: qfr_obs::Counter = qfr_obs::Counter::deterministic("dfpt.scf.solves");
static SCF_ITERATIONS: qfr_obs::Counter = qfr_obs::Counter::deterministic("dfpt.scf.iterations");

/// LDA exchange constant `(3/π)^{1/3}`.
pub const CX: f64 = 0.984745;

/// SCF configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScfConfig {
    /// Target grid spacing (Å).
    pub grid_spacing: f64,
    /// Grid padding around the fragment (Å).
    pub grid_padding: f64,
    /// Cap on each grid dimension (power of two).
    pub max_grid_dim: usize,
    /// Grid points per GEMM panel.
    pub batch_size: usize,
    /// Maximum SCF iterations.
    pub max_iterations: usize,
    /// Fraction of the new density mixed in per iteration.
    pub mixing: f64,
    /// Convergence threshold on `max|ΔP|`.
    pub convergence: f64,
    /// How the gathered density/Fock job streams are executed.
    pub offload: OffloadMode,
    /// Element width the batch kernels run at — `F64` (default) or the
    /// opt-in `MixedF32` floor (DESIGN.md §15).
    pub precision: qfr_linalg::GemmPrecision,
}

impl Default for ScfConfig {
    fn default() -> Self {
        Self {
            grid_spacing: 0.35,
            grid_padding: 3.0,
            max_grid_dim: 32,
            batch_size: 512,
            max_iterations: 60,
            mixing: 0.35,
            convergence: 1e-8,
            offload: OffloadMode::default(),
            precision: qfr_linalg::GemmPrecision::default(),
        }
    }
}

/// Converged SCF state.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// The fragment basis.
    pub basis: Basis,
    /// The integration grid.
    pub grid: RealSpaceGrid,
    /// Overlap matrix.
    pub s: DMatrix,
    /// Inverse Cholesky factor `L⁻¹` of `S` (Löwdin transform).
    pub l_inv: DMatrix,
    /// Core Hamiltonian `T + V_ext`.
    pub h_core: DMatrix,
    /// Final Kohn–Sham matrix.
    pub fock: DMatrix,
    /// MO coefficients (columns).
    pub c: DMatrix,
    /// Orbital energies (ascending).
    pub eps: Vec<f64>,
    /// Occupations (2, possibly one fractional, then 0).
    pub occ: Vec<f64>,
    /// Density matrix with occupations folded in.
    pub p: DMatrix,
    /// Ground-state density on the grid.
    pub density: Vec<f64>,
    /// Total energy (model units).
    pub energy: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether `max|ΔP|` dropped below the threshold.
    pub converged: bool,
}

/// The SCF driver.
#[derive(Debug, Clone, Default)]
pub struct ScfSolver {
    /// Configuration.
    pub config: ScfConfig,
}

impl ScfSolver {
    /// Solver with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the SCF for a fragment.
    pub fn solve(&self, frag: &FragmentStructure) -> ScfResult {
        let _span = qfr_obs::span("dfpt.scf");
        SCF_SOLVES.incr();
        let cfg = &self.config;
        let basis = Basis::for_fragment(frag);
        let grid =
            RealSpaceGrid::for_fragment(frag, cfg.grid_spacing, cfg.grid_padding, cfg.max_grid_dim);
        let n = basis.len();

        let s = basis.overlap();
        let chol = Cholesky::new(&s).expect("overlap must be positive definite");
        let l_inv = chol.l_inverse();
        let t = basis.kinetic();
        let v_ext = basis.external_potential();
        let h_core = &t + &v_ext;

        // Pre-evaluate basis panels per batch (reused every iteration).
        // Panels and the density matrix live behind `Arc` so the gathered
        // job streams below *reference* them instead of cloning one copy
        // per batch job.
        let batches = grid.batches(cfg.batch_size);
        let x_panels: Vec<std::sync::Arc<DMatrix>> = batches
            .iter()
            .map(|b| std::sync::Arc::new(basis.evaluate(&grid.points[b.clone()])))
            .collect();

        let mut p = std::sync::Arc::new(initial_density_matrix(&h_core, &l_inv, &basis));
        let mut fock = h_core.clone();
        let mut c = DMatrix::zeros(n, n);
        let mut eps = vec![0.0; n];
        let mut occ = vec![0.0; n];
        let mut density = vec![0.0; grid.len()];
        let mut energy = 0.0;
        let mut iterations = 0;
        let mut converged = false;

        for it in 0..cfg.max_iterations {
            iterations = it + 1;
            // Density on the grid: n_i = x_i^T P x_i per batch. The X·P
            // products are gathered into one job stream and dispatched
            // through the shared accelerator.
            density.clear();
            let density_jobs: Vec<BatchJob> =
                x_panels.iter().map(|x| BatchJob::gemm(x.clone(), p.clone())).collect(); // Arc clones
            let xps = dispatch_jobs(&density_jobs, cfg.offload, cfg.precision);
            for ((b, x), xp) in batches.iter().zip(&x_panels).zip(&xps) {
                qfr_linalg::flops::add((2 * x.rows() * n) as u64);
                for row in 0..x.rows() {
                    let v: f64 = xp.row(row).iter().zip(x.row(row)).map(|(a, b)| a * b).sum();
                    density.push(v.max(0.0));
                }
                debug_assert_eq!(density.len(), b.end);
            }
            // Effective potential on the grid.
            let v_h = grid.solve_poisson(&density);
            let v_eff: Vec<f64> =
                density.iter().zip(&v_h).map(|(&nd, &vh)| vh - CX * nd.powf(1.0 / 3.0)).collect();
            // V_eff matrix: sum over batches of X^T diag(v dv) X. Each
            // batch is a symmetric-product job (half the GEMM work);
            // results are accumulated in batch order, which is bitwise
            // equal to the former in-place β=1 accumulation because IEEE
            // addition is commutative.
            let fock_jobs: Vec<BatchJob> = batches
                .iter()
                .zip(&x_panels)
                .map(|(b, x)| {
                    // The weighted copy is per-job by necessity; the plain
                    // X operand is shared.
                    let mut xw = (**x).clone();
                    qfr_linalg::flops::add((x.rows() * n) as u64);
                    for (row, gi) in b.clone().enumerate() {
                        let w = v_eff[gi] * grid.dv;
                        for v in xw.row_mut(row) {
                            *v *= w;
                        }
                    }
                    BatchJob::symmetric_product(xw, x.clone())
                })
                .collect();
            let mut v_mat = DMatrix::zeros(n, n);
            for out in dispatch_jobs(&fock_jobs, cfg.offload, cfg.precision) {
                v_mat += &out;
            }
            fock = &h_core + &v_mat;

            // Löwdin-orthogonalized eigenproblem.
            let f_prime = sandwich_linv(&l_inv, &fock);
            let eig = symmetric_eigen(&f_prime);
            eps = eig.eigenvalues.clone();
            c = gemm::matmul(&l_inv.transpose(), &eig.eigenvectors);
            occ = fill_occupations(basis.n_electrons, n);

            // New density matrix.
            let p_new = density_matrix(&c, &occ);
            let delta = p.max_abs_diff(&p_new);
            // Damped update.
            let mut p_next = p.scaled(1.0 - cfg.mixing);
            let scaled_new = p_new.scaled(cfg.mixing);
            p_next += &scaled_new;
            p = std::sync::Arc::new(p_next);

            // Energy: tr(P H_core) + 0.5 ∫ n v_H + E_x.
            let e_core = trace_product(&p, &h_core);
            let e_h: f64 =
                0.5 * density.iter().zip(&v_h).map(|(&nd, &vh)| nd * vh).sum::<f64>() * grid.dv;
            let e_x: f64 =
                -0.75 * CX * density.iter().map(|&nd| nd.powf(4.0 / 3.0)).sum::<f64>() * grid.dv;
            energy = e_core + e_h + e_x + basis.nuclear_repulsion();

            if delta < cfg.convergence {
                converged = true;
                break;
            }
        }
        SCF_ITERATIONS.add(iterations as u64);

        ScfResult {
            basis,
            grid,
            s,
            l_inv,
            h_core,
            fock,
            c,
            eps,
            occ,
            // The last iteration's jobs are gone, so the Arc is unique and
            // this unwraps without copying.
            p: std::sync::Arc::try_unwrap(p).unwrap_or_else(|shared| (*shared).clone()),
            density,
            energy,
            iterations,
            converged,
        }
    }
}

/// `L⁻¹ M L⁻ᵀ` for symmetric `M`, via the triangle-only similarity kernel
/// (neither transpose is materialized; result exactly symmetric by mirror).
pub(crate) fn sandwich_linv(l_inv: &DMatrix, m: &DMatrix) -> DMatrix {
    qfr_linalg::syrk::similarity_transform(l_inv, m)
}

/// Aufbau occupations: 2 electrons per orbital, one possibly fractional.
pub(crate) fn fill_occupations(n_electrons: f64, n_orbitals: usize) -> Vec<f64> {
    let mut occ = vec![0.0; n_orbitals];
    let mut remaining = n_electrons;
    for o in occ.iter_mut() {
        if remaining <= 0.0 {
            break;
        }
        *o = remaining.min(2.0);
        remaining -= *o;
    }
    assert!(remaining <= 1e-9, "basis too small for the electron count");
    occ
}

/// `P = C diag(occ) Cᵀ`.
pub(crate) fn density_matrix(c: &DMatrix, occ: &[f64]) -> DMatrix {
    let n = c.rows();
    let mut c_occ = c.clone();
    for j in 0..n {
        let f = occ[j].sqrt();
        for i in 0..n {
            c_occ[(i, j)] *= f;
        }
    }
    let mut p = DMatrix::zeros(n, n);
    qfr_linalg::syrk::syrk(gemm::Trans::No, 1.0, &c_occ, 0.0, &mut p);
    p
}

/// `tr(A B)` for symmetric-compatible shapes (public alias for tests and
/// downstream observables).
pub fn trace_product_public(a: &DMatrix, b: &DMatrix) -> f64 {
    trace_product(a, b)
}

/// `tr(A B)` for symmetric-compatible shapes.
pub(crate) fn trace_product(a: &DMatrix, b: &DMatrix) -> f64 {
    assert_eq!(a.cols(), b.rows());
    let mut tr = 0.0;
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            tr += a[(i, k)] * b[(k, i)];
        }
    }
    tr
}

fn initial_density_matrix(h_core: &DMatrix, l_inv: &DMatrix, basis: &Basis) -> DMatrix {
    let f_prime = sandwich_linv(l_inv, h_core);
    let eig = symmetric_eigen(&f_prime);
    let c = gemm::matmul(&l_inv.transpose(), &eig.eigenvectors);
    let occ = fill_occupations(basis.n_electrons, basis.len());
    density_matrix(&c, &occ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfr_fragment::{FragmentJob, JobKind};
    use qfr_geom::WaterBoxBuilder;

    fn fast() -> ScfSolver {
        ScfSolver {
            config: ScfConfig { max_grid_dim: 16, grid_spacing: 0.5, ..Default::default() },
        }
    }

    pub(crate) fn water_fragment() -> FragmentStructure {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    #[test]
    fn water_scf_converges() {
        let res = ScfSolver::new().solve(&water_fragment());
        assert!(res.converged, "SCF did not converge in {} iterations", res.iterations);
        assert!(res.energy < 0.0, "bound system must have negative energy: {}", res.energy);
        // 8 valence electrons: 4 doubly occupied orbitals, 3 virtuals.
        assert_eq!(res.occ, vec![2.0, 2.0, 2.0, 2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn density_integrates_to_electron_count() {
        let res = ScfSolver::new().solve(&water_fragment());
        let total: f64 = res.density.iter().sum::<f64>() * res.grid.dv;
        assert!(
            (total - res.basis.n_electrons).abs() < 0.15 * res.basis.n_electrons,
            "density integrates to {total}, expected {}",
            res.basis.n_electrons
        );
    }

    #[test]
    fn density_matrix_consistent_with_overlap() {
        // tr(P S) = number of electrons (exactly, independent of the grid).
        let res = fast().solve(&water_fragment());
        let tr = trace_product(&res.p, &res.s);
        assert!((tr - res.basis.n_electrons).abs() < 1e-6, "tr(PS) = {tr}");
    }

    #[test]
    fn orbitals_s_orthonormal() {
        let res = fast().solve(&water_fragment());
        // C^T S C = I.
        let sc = gemm::matmul(&res.s, &res.c);
        let csc = gemm::matmul(&res.c.transpose(), &sc);
        assert!(csc.max_abs_diff(&DMatrix::identity(res.basis.len())) < 1e-8);
    }

    #[test]
    fn occupied_below_virtual() {
        let res = fast().solve(&water_fragment());
        for w in res.eps.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn energy_is_translation_invariant() {
        let frag = water_fragment();
        let mut moved = frag.clone();
        for p in &mut moved.positions {
            *p += qfr_geom::Vec3::new(0.13, -0.21, 0.08);
        }
        let e1 = ScfSolver::new().solve(&frag).energy;
        let e2 = ScfSolver::new().solve(&moved).energy;
        // Grid alignment introduces a small egg-box error; it must stay tiny.
        assert!((e1 - e2).abs() < 5e-3 * e1.abs(), "egg-box error too large: {e1} vs {e2}");
    }

    #[test]
    fn occupations_fractional_for_odd_count() {
        let occ = fill_occupations(7.0, 5);
        assert_eq!(occ, vec![2.0, 2.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "basis too small")]
    fn too_many_electrons_rejected() {
        let _ = fill_occupations(9.0, 4);
    }

    #[test]
    fn scf_is_deterministic() {
        let frag = water_fragment();
        let a = fast().solve(&frag);
        let b = fast().solve(&frag);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.p.max_abs_diff(&b.p), 0.0);
    }
}
