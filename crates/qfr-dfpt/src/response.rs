//! Electric-field DFPT: the four-phase response cycle and polarizability.
//!
//! For a homogeneous field along `c`, the bare perturbation is the dipole
//! operator `H1_ext = -D_c`. Each self-consistency cycle runs the paper's
//! four worker phases (Fig. 3, bottom right):
//!
//! 1. **P(1)** — sum-over-states response density matrix from the SCF
//!    eigenpairs;
//! 2. **n(1)(r)** — response density (and its gradient) on the grid,
//!    GEMM-dominated; the gradient uses the Fig. 6(b) *sandwich* expression
//!    in either the naive (2 GEMM + 2 GEMV) or symmetry-reduced
//!    (1 GEMM + 1 GEMV) form;
//! 3. **v(1)** — FFT Poisson solve plus the LDA kernel (and a small
//!    gradient-kernel model term that consumes ∇n(1));
//! 4. **H(1)** — response Hamiltonian matrix elements, GEMM-dominated.
//!
//! Wall time and FLOPs are accumulated per phase into [`CyclePhases`],
//! which Table I and Fig. 9 read out.

use crate::scf::{ScfResult, CX};
use qfr_linalg::gemm;
use qfr_linalg::DMatrix;
use std::time::Instant;

/// Strength of the model gradient-kernel term (consumes ∇n(1); kept small
/// so the LDA response dominates).
pub const GRADIENT_KERNEL: f64 = 0.02;

/// Configuration of the response cycle.
#[derive(Debug, Clone, Copy)]
pub struct ResponseConfig {
    /// Self-consistency cycles (fixed count for determinism).
    pub n_cycles: usize,
    /// Damping of the H(1) update.
    pub mixing: f64,
    /// Grid points per GEMM panel.
    pub batch_size: usize,
    /// Use the symmetry-aware strength reduction of Section V-D.
    pub use_symmetry_reduction: bool,
}

impl Default for ResponseConfig {
    fn default() -> Self {
        Self { n_cycles: 4, mixing: 0.6, batch_size: 512, use_symmetry_reduction: true }
    }
}

/// Per-phase accumulated cost of one or more DFPT cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CyclePhases {
    /// Phase 1 (response density matrix) seconds.
    pub p1_seconds: f64,
    /// Phase 1 FLOPs.
    pub p1_flops: u64,
    /// Phase 2 (grid integration of n(1), ∇n(1)) seconds.
    pub n1_seconds: f64,
    /// Phase 2 FLOPs.
    pub n1_flops: u64,
    /// Phase 3 (Poisson + kernels) seconds.
    pub poisson_seconds: f64,
    /// Phase 3 FLOPs.
    pub poisson_flops: u64,
    /// Phase 4 (response Hamiltonian) seconds.
    pub h1_seconds: f64,
    /// Phase 4 FLOPs.
    pub h1_flops: u64,
}

impl CyclePhases {
    /// Total seconds across phases.
    pub fn total_seconds(&self) -> f64 {
        self.p1_seconds + self.n1_seconds + self.poisson_seconds + self.h1_seconds
    }

    /// Total FLOPs across phases.
    pub fn total_flops(&self) -> u64 {
        self.p1_flops + self.n1_flops + self.poisson_flops + self.h1_flops
    }

    /// Accumulates another measurement.
    pub fn merge(&mut self, o: &CyclePhases) {
        self.p1_seconds += o.p1_seconds;
        self.p1_flops += o.p1_flops;
        self.n1_seconds += o.n1_seconds;
        self.n1_flops += o.n1_flops;
        self.poisson_seconds += o.poisson_seconds;
        self.poisson_flops += o.poisson_flops;
        self.h1_seconds += o.h1_seconds;
        self.h1_flops += o.h1_flops;
    }
}

/// Result of one response solve.
#[derive(Debug, Clone)]
pub struct ResponseResult {
    /// Converged response density matrix.
    pub p1: DMatrix,
    /// Response density on the grid.
    pub n1: Vec<f64>,
    /// Response potential on the grid.
    pub v1: Vec<f64>,
    /// Final response Hamiltonian.
    pub h1: DMatrix,
    /// Cost profile.
    pub phases: CyclePhases,
}

static RESPONSE_CYCLES: qfr_obs::Counter = qfr_obs::Counter::deterministic("dfpt.response.cycles");

/// Measures a closure under an observability span, returning its value plus
/// (seconds, flops). The span name feeds the shared per-phase report and, if
/// tracing is armed, the Chrome trace.
fn measured<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64, u64) {
    let _span = qfr_obs::span(name);
    let scope = qfr_linalg::flops::FlopScope::start();
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed().as_secs_f64();
    let m = scope.finish();
    (out, dt, m.flops)
}

/// Runs the DFPT response for the field direction `c` (0 = x, 1 = y,
/// 2 = z).
pub fn field_response(scf: &ScfResult, c: usize, cfg: &ResponseConfig) -> ResponseResult {
    let dipole = scf.basis.dipole();
    let h1_ext = dipole[c].scaled(-1.0);
    solve_response(scf, &h1_ext, cfg)
}

/// Runs the DFPT self-consistency loop for an arbitrary bare perturbation
/// `h1_ext` (fixed basis; used by both the field driver and the
/// displacement-cycle workload of `crate::displacement`).
pub fn solve_response(scf: &ScfResult, h1_ext: &DMatrix, cfg: &ResponseConfig) -> ResponseResult {
    let n = scf.basis.len();
    let batches = scf.grid.batches(cfg.batch_size);
    // Pre-evaluated panels: values and Cartesian gradients.
    let x_panels: Vec<DMatrix> =
        batches.iter().map(|b| scf.basis.evaluate(&scf.grid.points[b.clone()])).collect();
    let g_panels: Vec<[DMatrix; 3]> = batches
        .iter()
        .map(|b| {
            [
                scf.basis.evaluate_gradient(&scf.grid.points[b.clone()], 0),
                scf.basis.evaluate_gradient(&scf.grid.points[b.clone()], 1),
                scf.basis.evaluate_gradient(&scf.grid.points[b.clone()], 2),
            ]
        })
        .collect();
    // Ground-state density gradient (for the model gradient kernel).
    let grad_n: [Vec<f64>; 3] = std::array::from_fn(|dir| {
        let mut out = Vec::with_capacity(scf.grid.len());
        for (x, g) in x_panels.iter().zip(&g_panels) {
            let xp = gemm::matmul(x, &scf.p);
            for row in 0..x.rows() {
                let v: f64 = xp.row(row).iter().zip(g[dir].row(row)).map(|(a, b)| a * b).sum();
                out.push(2.0 * v);
            }
        }
        out
    });

    let mut h1 = h1_ext.clone();
    let mut phases = CyclePhases::default();
    let mut p1 = DMatrix::zeros(n, n);
    let mut n1 = vec![0.0; scf.grid.len()];
    let mut v1 = vec![0.0; scf.grid.len()];

    for _cycle in 0..cfg.n_cycles {
        RESPONSE_CYCLES.incr();
        // ---- Phase 1: response density matrix. -------------------------
        let (p1_new, dt, fl) = measured("dfpt.p1", || response_density_matrix(scf, &h1));
        p1 = p1_new;
        phases.p1_seconds += dt;
        phases.p1_flops += fl;

        // ---- Phase 2: n(1)(r) and ∇n(1)(r) on the grid. -----------------
        let ((n1_new, grad_n1), dt, fl) = measured("dfpt.n1", || {
            response_density_on_grid(
                &p1,
                &batches,
                &x_panels,
                &g_panels,
                cfg.use_symmetry_reduction,
            )
        });
        n1 = n1_new;
        phases.n1_seconds += dt;
        phases.n1_flops += fl;

        // ---- Phase 3: Poisson + kernels. --------------------------------
        let (v1_new, dt, fl) = measured("dfpt.v1", || {
            let v_h1 = scf.grid.solve_poisson(&n1);
            qfr_linalg::flops::add(8 * n1.len() as u64);
            let mut v = Vec::with_capacity(n1.len());
            for i in 0..n1.len() {
                let nd = scf.density[i].max(1e-10);
                // LDA kernel: f_xc = d v_x / d n = -(1/3) Cx n^{-2/3}.
                let lda = -(CX / 3.0) * nd.powf(-2.0 / 3.0) * n1[i];
                // Model gradient kernel: couples ∇n and ∇n(1).
                let grad_term: f64 =
                    (0..3).map(|d| grad_n[d][i] * grad_n1[d][i]).sum::<f64>() / (nd * nd);
                v.push(v_h1[i] + lda + GRADIENT_KERNEL * grad_term);
            }
            v
        });
        v1 = v1_new;
        phases.poisson_seconds += dt;
        phases.poisson_flops += fl;

        // ---- Phase 4: response Hamiltonian. ------------------------------
        let (h1_grid, dt, fl) = measured("dfpt.h1", || {
            let mut m = DMatrix::zeros(n, n);
            for (b, x) in batches.iter().zip(&x_panels) {
                let mut xw = x.clone();
                qfr_linalg::flops::add((x.rows() * n) as u64);
                for (row, gi) in b.clone().enumerate() {
                    let w = v1[gi] * scf.grid.dv;
                    for v in xw.row_mut(row) {
                        *v *= w;
                    }
                }
                // X^T diag(w) X is symmetric; half-FLOP triangle kernel.
                qfr_linalg::syrk::symmetric_product(1.0, &xw, x, 1.0, &mut m);
            }
            m
        });
        phases.h1_seconds += dt;
        phases.h1_flops += fl;

        // Damped update of the total perturbation.
        let target = h1_ext + &h1_grid;
        qfr_linalg::flops::add((3 * n * n) as u64);
        h1 = DMatrix::from_fn(n, n, |i, j| {
            (1.0 - cfg.mixing) * h1[(i, j)] + cfg.mixing * target[(i, j)]
        });
    }

    ResponseResult { p1, n1, v1, h1, phases }
}

/// Sum-over-states `P(1) = Σ_{i occ, a virt} occ_i (c_i c_aᵀ + c_a c_iᵀ)
/// H1_ia / (ε_i − ε_a)`, computed in the MO basis with two GEMM pairs.
fn response_density_matrix(scf: &ScfResult, h1: &DMatrix) -> DMatrix {
    let n = scf.basis.len();
    // H1 is symmetric, so Cᵀ H1 C is a congruence of a symmetric matrix —
    // the triangle-only kernel halves the second product's FLOPs.
    let h1_mo = qfr_linalg::syrk::congruence_transform(&scf.c, h1);
    let mut m = DMatrix::zeros(n, n);
    qfr_linalg::flops::add((n * n * 4) as u64);
    for i in 0..n {
        if scf.occ[i] <= 0.0 {
            continue;
        }
        for a in 0..n {
            let gap = scf.eps[i] - scf.eps[a];
            if scf.occ[a] > 0.0 || gap.abs() < 1e-8 {
                continue;
            }
            let w = scf.occ[i] * h1_mo[(i, a)] / gap;
            m[(i, a)] = w;
            m[(a, i)] = w;
        }
    }
    // m is symmetric by construction, so P1 = C m Cᵀ is a similarity
    // transform — triangle-only second product, exactly symmetric output.
    qfr_linalg::syrk::similarity_transform(&scf.c, &m)
}

/// Phase 2 kernel: response density and its gradient per batch.
///
/// Naive path (Fig. 6(b) before reduction): `∇n1 = rowdot(X P1, G) +
/// rowdot(G P1, X)` — two GEMMs plus two GEMV-style row reductions per
/// direction. Reduced path: since `P1 = P1ᵀ`, the halves are equal, so
/// `∇n1 = 2·rowdot(X P1, G)` — one GEMM (shared with the n(1) evaluation)
/// plus one reduction.
#[allow(clippy::type_complexity)]
fn response_density_on_grid(
    p1: &DMatrix,
    batches: &[std::ops::Range<usize>],
    x_panels: &[DMatrix],
    g_panels: &[[DMatrix; 3]],
    reduced: bool,
) -> (Vec<f64>, [Vec<f64>; 3]) {
    let npts = batches.last().map_or(0, |b| b.end);
    let mut n1 = Vec::with_capacity(npts);
    let mut grad: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::with_capacity(npts));
    for (x, g3) in x_panels.iter().zip(g_panels) {
        let rows = x.rows();
        let xp = gemm::matmul(x, p1);
        qfr_linalg::flops::add((2 * rows * x.cols()) as u64);
        for row in 0..rows {
            let v: f64 = xp.row(row).iter().zip(x.row(row)).map(|(a, b)| a * b).sum();
            n1.push(v);
        }
        if reduced {
            for (dir, gvec) in grad.iter_mut().enumerate() {
                let g = &g3[dir];
                qfr_linalg::flops::add((2 * rows * x.cols()) as u64);
                for row in 0..rows {
                    let v: f64 = xp.row(row).iter().zip(g.row(row)).map(|(a, b)| a * b).sum();
                    gvec.push(2.0 * v);
                }
            }
        } else {
            for (dir, gvec) in grad.iter_mut().enumerate() {
                let g = &g3[dir];
                let gp = gemm::matmul(g, p1);
                qfr_linalg::flops::add((4 * rows * x.cols()) as u64);
                for row in 0..rows {
                    let a: f64 = xp.row(row).iter().zip(g.row(row)).map(|(u, v)| u * v).sum();
                    let b: f64 = gp.row(row).iter().zip(x.row(row)).map(|(u, v)| u * v).sum();
                    gvec.push(a + b);
                }
            }
        }
    }
    (n1, grad)
}

/// Static polarizability tensor from three field responses:
/// `α_{cc'} = tr(P1^{(c)} D_{c'})` (symmetrized; the sign follows from
/// `H1_ext = -D_c`). For planar fragments in the s-only basis the
/// out-of-plane response vanishes, so α is positive *semi*-definite.
pub fn polarizability(scf: &ScfResult, cfg: &ResponseConfig) -> (DMatrix, CyclePhases) {
    let dipole = scf.basis.dipole();
    let mut alpha = DMatrix::zeros(3, 3);
    let mut phases = CyclePhases::default();
    for c in 0..3 {
        let resp = field_response(scf, c, cfg);
        phases.merge(&resp.phases);
        for (cp, d) in dipole.iter().enumerate() {
            alpha[(c, cp)] = crate::scf::trace_product(&resp.p1, d);
        }
    }
    alpha.symmetrize_mut();
    (alpha, phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::ScfSolver;
    use qfr_fragment::{FragmentJob, FragmentStructure, JobKind};
    use qfr_geom::WaterBoxBuilder;

    fn water_fragment() -> FragmentStructure {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    fn fast_scf() -> ScfSolver {
        ScfSolver {
            config: crate::scf::ScfConfig {
                max_grid_dim: 16,
                grid_spacing: 0.5,
                ..Default::default()
            },
        }
    }

    #[test]
    fn response_density_integrates_to_zero() {
        // A field rearranges charge but conserves it: ∫ n1 = 0.
        let scf = fast_scf().solve(&water_fragment());
        let resp = field_response(&scf, 0, &ResponseConfig::default());
        // The algebraic identity tr(P1 S) = 0 is exact; the grid integral
        // carries quadrature error, so the tolerance is looser.
        let total: f64 = resp.n1.iter().sum::<f64>() * scf.grid.dv;
        assert!(total.abs() < 2e-2, "∫n1 = {total}");
    }

    #[test]
    fn p1_is_symmetric_and_traceless_in_s() {
        let scf = fast_scf().solve(&water_fragment());
        let resp = field_response(&scf, 1, &ResponseConfig::default());
        assert!(resp.p1.is_symmetric(1e-10));
        // tr(P1 S) = 0: no change in electron count.
        let tr = crate::scf::trace_product(&resp.p1, &scf.s);
        assert!(tr.abs() < 1e-8, "tr(P1 S) = {tr}");
    }

    #[test]
    fn polarizability_positive_definite() {
        let scf = fast_scf().solve(&water_fragment());
        let (alpha, phases) = polarizability(&scf, &ResponseConfig::default());
        assert!(alpha.is_symmetric(1e-10));
        let eig = qfr_linalg::eigen::symmetric_eigen(&alpha);
        assert!(
            eig.eigenvalues.iter().all(|&w| w > -1e-10),
            "alpha must be PSD: {:?}",
            eig.eigenvalues
        );
        // At least the two in-plane directions polarize.
        assert!(
            eig.eigenvalues.iter().filter(|&&w| w > 1e-6).count() >= 2,
            "alpha spectrum: {:?}",
            eig.eigenvalues
        );
        assert!(phases.total_flops() > 0);
        assert!(phases.n1_flops > 0 && phases.h1_flops > 0);
    }

    #[test]
    fn reduction_paths_agree() {
        let scf = fast_scf().solve(&water_fragment());
        let naive = field_response(
            &scf,
            2,
            &ResponseConfig { use_symmetry_reduction: false, ..Default::default() },
        );
        let fast = field_response(
            &scf,
            2,
            &ResponseConfig { use_symmetry_reduction: true, ..Default::default() },
        );
        assert!(
            naive.h1.max_abs_diff(&fast.h1) < 1e-10,
            "strength reduction changed the physics: {}",
            naive.h1.max_abs_diff(&fast.h1)
        );
        assert!(
            fast.phases.n1_flops < naive.phases.n1_flops,
            "reduced path must save phase-2 FLOPs: {} vs {}",
            fast.phases.n1_flops,
            naive.phases.n1_flops
        );
    }

    #[test]
    fn response_deterministic() {
        let scf = fast_scf().solve(&water_fragment());
        let a = field_response(&scf, 0, &ResponseConfig::default());
        let b = field_response(&scf, 0, &ResponseConfig::default());
        assert_eq!(a.h1.max_abs_diff(&b.h1), 0.0);
        assert_eq!(a.n1, b.n1);
    }

    #[test]
    fn phases_accumulate() {
        let mut a = CyclePhases { p1_seconds: 1.0, p1_flops: 10, ..Default::default() };
        let b = CyclePhases { p1_seconds: 0.5, p1_flops: 5, n1_flops: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.p1_seconds, 1.5);
        assert_eq!(a.p1_flops, 15);
        assert_eq!(a.n1_flops, 7);
        assert_eq!(a.total_flops(), 22);
    }
}
