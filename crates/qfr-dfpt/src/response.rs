//! Electric-field DFPT: the four-phase response cycle and polarizability.
//!
//! For a homogeneous field along `c`, the bare perturbation is the dipole
//! operator `H1_ext = -D_c`. Each self-consistency cycle runs the paper's
//! four worker phases (Fig. 3, bottom right):
//!
//! 1. **P(1)** — sum-over-states response density matrix from the SCF
//!    eigenpairs;
//! 2. **n(1)(r)** — response density (and its gradient) on the grid,
//!    GEMM-dominated; the gradient uses the Fig. 6(b) *sandwich* expression
//!    in either the naive (2 GEMM + 2 GEMV) or symmetry-reduced
//!    (1 GEMM + 1 GEMV) form;
//! 3. **v(1)** — FFT Poisson solve plus the LDA kernel (and a small
//!    gradient-kernel model term that consumes ∇n(1));
//! 4. **H(1)** — response Hamiltonian matrix elements, GEMM-dominated.
//!
//! Wall time and FLOPs are accumulated per phase into [`CyclePhases`],
//! which Table I and Fig. 9 read out.
//!
//! Execution model (PR 6, DESIGN.md §11): the GEMM/SYRK work of phases 1,
//! 2 and 4 is *gathered* into kernel-tagged job streams and dispatched
//! through [`crate::dispatch::dispatch_jobs`] — one batched launch family
//! per phase instead of one kernel call per matrix. [`solve_responses`]
//! runs a whole *set* of response tasks (field directions × displaced
//! geometries) in deterministic lockstep, so jobs gather across tasks;
//! [`solve_response`] is the single-task wrapper.

use crate::dispatch::dispatch_jobs;
use crate::scf::{ScfResult, CX};
use qfr_linalg::batch::BatchJob;
use qfr_linalg::gemm;
use qfr_linalg::DMatrix;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Strength of the model gradient-kernel term (consumes ∇n(1); kept small
/// so the LDA response dominates).
pub const GRADIENT_KERNEL: f64 = 0.02;

/// Configuration of the response cycle.
#[derive(Debug, Clone, Copy)]
pub struct ResponseConfig {
    /// Self-consistency cycles (fixed count for determinism).
    pub n_cycles: usize,
    /// Damping of the H(1) update.
    pub mixing: f64,
    /// Grid points per GEMM panel.
    pub batch_size: usize,
    /// Use the symmetry-aware strength reduction of Section V-D.
    pub use_symmetry_reduction: bool,
    /// How gathered dense-algebra jobs are executed (Section V-C). Both
    /// modes produce identical values; `Batched` packs size classes into
    /// single launches.
    pub offload: qfr_linalg::batch::OffloadMode,
    /// Element width the batch kernels run at — `F64` (default) or the
    /// opt-in `MixedF32` floor (DESIGN.md §15).
    pub precision: qfr_linalg::GemmPrecision,
}

impl Default for ResponseConfig {
    fn default() -> Self {
        Self {
            n_cycles: 4,
            mixing: 0.6,
            batch_size: 512,
            use_symmetry_reduction: true,
            offload: qfr_linalg::batch::OffloadMode::default(),
            precision: qfr_linalg::GemmPrecision::default(),
        }
    }
}

/// Per-phase accumulated cost of one or more DFPT cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CyclePhases {
    /// Phase 1 (response density matrix) seconds.
    pub p1_seconds: f64,
    /// Phase 1 FLOPs.
    pub p1_flops: u64,
    /// Phase 2 (grid integration of n(1), ∇n(1)) seconds.
    pub n1_seconds: f64,
    /// Phase 2 FLOPs.
    pub n1_flops: u64,
    /// Phase 3 (Poisson + kernels) seconds.
    pub poisson_seconds: f64,
    /// Phase 3 FLOPs.
    pub poisson_flops: u64,
    /// Phase 4 (response Hamiltonian) seconds.
    pub h1_seconds: f64,
    /// Phase 4 FLOPs.
    pub h1_flops: u64,
}

impl CyclePhases {
    /// Total seconds across phases.
    pub fn total_seconds(&self) -> f64 {
        self.p1_seconds + self.n1_seconds + self.poisson_seconds + self.h1_seconds
    }

    /// Total FLOPs across phases.
    pub fn total_flops(&self) -> u64 {
        self.p1_flops + self.n1_flops + self.poisson_flops + self.h1_flops
    }

    /// Accumulates another measurement.
    pub fn merge(&mut self, o: &CyclePhases) {
        self.p1_seconds += o.p1_seconds;
        self.p1_flops += o.p1_flops;
        self.n1_seconds += o.n1_seconds;
        self.n1_flops += o.n1_flops;
        self.poisson_seconds += o.poisson_seconds;
        self.poisson_flops += o.poisson_flops;
        self.h1_seconds += o.h1_seconds;
        self.h1_flops += o.h1_flops;
    }
}

/// Result of one response solve.
#[derive(Debug, Clone)]
pub struct ResponseResult {
    /// Converged response density matrix.
    pub p1: DMatrix,
    /// Response density on the grid.
    pub n1: Vec<f64>,
    /// Response potential on the grid.
    pub v1: Vec<f64>,
    /// Final response Hamiltonian.
    pub h1: DMatrix,
    /// Cost profile.
    pub phases: CyclePhases,
}

static RESPONSE_CYCLES: qfr_obs::Counter = qfr_obs::Counter::deterministic("dfpt.response.cycles");

/// Measures a closure under an observability span, returning its value plus
/// (seconds, flops). The span name feeds the shared per-phase report and, if
/// tracing is armed, the Chrome trace.
fn measured<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64, u64) {
    let _span = qfr_obs::span(name);
    let scope = qfr_linalg::flops::FlopScope::start();
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed().as_secs_f64();
    let m = scope.finish();
    (out, dt, m.flops)
}

/// Runs the DFPT response for the field direction `c` (0 = x, 1 = y,
/// 2 = z).
pub fn field_response(scf: &ScfResult, c: usize, cfg: &ResponseConfig) -> ResponseResult {
    let dipole = scf.basis.dipole();
    let h1_ext = dipole[c].scaled(-1.0);
    solve_response(scf, &h1_ext, cfg)
}

/// Runs the DFPT self-consistency loop for an arbitrary bare perturbation
/// `h1_ext` (fixed basis; used by both the field driver and the
/// displacement-cycle workload of `crate::displacement`). Single-task
/// wrapper around [`solve_responses`]; the returned `phases` are the set
/// totals (identical, for one task).
pub fn solve_response(scf: &ScfResult, h1_ext: &DMatrix, cfg: &ResponseConfig) -> ResponseResult {
    let tasks = [ResponseTask { scf, h1_ext: h1_ext.clone() }];
    let (mut results, phases) = solve_responses(&tasks, cfg);
    let mut out = results.pop().expect("one task in, one result out");
    out.phases = phases;
    out
}

/// One `(SCF state, bare perturbation)` entry of a gathered response set.
#[derive(Debug)]
pub struct ResponseTask<'a> {
    /// The converged ground state the response is computed against.
    pub scf: &'a ScfResult,
    /// The bare perturbation matrix (symmetric).
    pub h1_ext: DMatrix,
}

/// Per-`ScfResult` precomputation shared by every task on that state:
/// grid batches, basis value/gradient panels, the MO coefficients, and the
/// ground-state density gradient for the model gradient kernel. Panels and
/// `C` are `Arc`-shared so the gathered job streams reference one copy
/// across every batch/task/cycle instead of cloning per job.
struct ScfPanels {
    batches: Vec<std::ops::Range<usize>>,
    x_panels: Vec<Arc<DMatrix>>,
    g_panels: Vec<[Arc<DMatrix>; 3]>,
    c: Arc<DMatrix>,
    grad_n: [Vec<f64>; 3],
}

fn build_panels(scf: &ScfResult, batch_size: usize) -> ScfPanels {
    let batches = scf.grid.batches(batch_size);
    let x_panels: Vec<Arc<DMatrix>> =
        batches.iter().map(|b| Arc::new(scf.basis.evaluate(&scf.grid.points[b.clone()]))).collect();
    let g_panels: Vec<[Arc<DMatrix>; 3]> = batches
        .iter()
        .map(|b| {
            [
                Arc::new(scf.basis.evaluate_gradient(&scf.grid.points[b.clone()], 0)),
                Arc::new(scf.basis.evaluate_gradient(&scf.grid.points[b.clone()], 1)),
                Arc::new(scf.basis.evaluate_gradient(&scf.grid.points[b.clone()], 2)),
            ]
        })
        .collect();
    // Ground-state density gradient (for the model gradient kernel). The
    // X·P products are shared across the three directions.
    let xps: Vec<DMatrix> = x_panels.iter().map(|x| gemm::matmul(x, &scf.p)).collect();
    let grad_n: [Vec<f64>; 3] = std::array::from_fn(|dir| {
        let mut out = Vec::with_capacity(scf.grid.len());
        for ((x, g), xp) in x_panels.iter().zip(&g_panels).zip(&xps) {
            for row in 0..x.rows() {
                let v: f64 = xp.row(row).iter().zip(g[dir].row(row)).map(|(a, b)| a * b).sum();
                out.push(2.0 * v);
            }
        }
        out
    });
    ScfPanels { batches, x_panels, g_panels, c: Arc::new(scf.c.clone()), grad_n }
}

/// Runs a whole set of response tasks in deterministic lockstep: each
/// four-phase cycle gathers the dense-algebra jobs of *all* tasks into one
/// kernel-tagged stream, dispatches them through the shared CPU
/// accelerator ([`crate::dispatch::dispatch_jobs`]), and scatters results
/// back in task/batch index order.
///
/// Determinism and independence: every job is computed over its own
/// operands regardless of batch companions, and scatter-back is indexed,
/// so each task's result is bit-identical whether it is solved alone, in
/// this set, or in a different set — and identical in both offload modes.
/// Panel precomputation is deduplicated across tasks sharing an
/// [`ScfResult`] (the three field directions of a polarizability).
///
/// Returns the per-task results (their `phases` fields are zero) plus the
/// set-level [`CyclePhases`] totals.
pub fn solve_responses(
    tasks: &[ResponseTask<'_>],
    cfg: &ResponseConfig,
) -> (Vec<ResponseResult>, CyclePhases) {
    let t_count = tasks.len();
    if t_count == 0 {
        return (Vec::new(), CyclePhases::default());
    }
    // Deduplicate panel builds by ScfResult identity.
    let mut uniq: Vec<&ScfResult> = Vec::new();
    let panel_of: Vec<usize> = tasks
        .iter()
        .map(|t| match uniq.iter().position(|u| std::ptr::eq(*u, t.scf)) {
            Some(i) => i,
            None => {
                uniq.push(t.scf);
                uniq.len() - 1
            }
        })
        .collect();
    let panels: Vec<ScfPanels> =
        uniq.par_iter().map(|scf| build_panels(scf, cfg.batch_size)).collect();

    let mut phases = CyclePhases::default();
    // Arc-held so each cycle's job stream shares one H1/P1 per task across
    // all of its batches.
    let mut h1s: Vec<Arc<DMatrix>> = tasks.iter().map(|t| Arc::new(t.h1_ext.clone())).collect();
    let mut p1s: Vec<Arc<DMatrix>> = tasks
        .iter()
        .map(|t| Arc::new(DMatrix::zeros(t.scf.basis.len(), t.scf.basis.len())))
        .collect();
    let mut n1s: Vec<Vec<f64>> = tasks.iter().map(|t| vec![0.0; t.scf.grid.len()]).collect();
    let mut v1s: Vec<Vec<f64>> = n1s.clone();

    for _cycle in 0..cfg.n_cycles {
        RESPONSE_CYCLES.add(t_count as u64);

        // ---- Phase 1: response density matrices. ------------------------
        // Sum-over-states `P(1) = Σ_{i occ, a virt} occ_i (c_i c_aᵀ +
        // c_a c_iᵀ) H1_ia / (ε_i − ε_a)` in the MO basis. H1 is symmetric,
        // so Cᵀ H1 C is a congruence and P1 = C m Cᵀ a similarity — both
        // triangle-only batched jobs.
        let (new_p1s, dt, fl) = measured("dfpt.p1", || {
            let cong: Vec<BatchJob> = h1s
                .iter()
                .enumerate()
                .map(|(t_idx, h1)| {
                    BatchJob::congruence(panels[panel_of[t_idx]].c.clone(), h1.clone())
                })
                .collect();
            let h1_mos = dispatch_jobs(&cong, cfg.offload, cfg.precision);
            let sims: Vec<BatchJob> = tasks
                .iter()
                .enumerate()
                .zip(&h1_mos)
                .map(|((t_idx, t), h1_mo)| {
                    let scf = t.scf;
                    let n = scf.basis.len();
                    let mut m = DMatrix::zeros(n, n);
                    qfr_linalg::flops::add((n * n * 4) as u64);
                    for i in 0..n {
                        if scf.occ[i] <= 0.0 {
                            continue;
                        }
                        for a in 0..n {
                            let gap = scf.eps[i] - scf.eps[a];
                            if scf.occ[a] > 0.0 || gap.abs() < 1e-8 {
                                continue;
                            }
                            let w = scf.occ[i] * h1_mo[(i, a)] / gap;
                            m[(i, a)] = w;
                            m[(a, i)] = w;
                        }
                    }
                    BatchJob::similarity(panels[panel_of[t_idx]].c.clone(), m)
                })
                .collect();
            dispatch_jobs(&sims, cfg.offload, cfg.precision)
        });
        p1s = new_p1s.into_iter().map(Arc::new).collect();
        phases.p1_seconds += dt;
        phases.p1_flops += fl;

        // ---- Phase 2: n(1)(r) and ∇n(1)(r) on the grid. -----------------
        // Naive path (Fig. 6(b) before reduction): `∇n1 = rowdot(X P1, G)
        // + rowdot(G P1, X)` — two GEMMs plus two reductions per direction.
        // Reduced path: since `P1 = P1ᵀ` the halves are equal, so `∇n1 =
        // 2·rowdot(X P1, G)` — the GEMM is shared with the n(1) evaluation.
        let jobs_per_batch = if cfg.use_symmetry_reduction { 1 } else { 4 };
        let ((new_n1s, grads), dt, fl) = measured("dfpt.n1", || {
            let mut jobs: Vec<BatchJob> = Vec::new();
            let mut base = Vec::with_capacity(t_count);
            for (t_idx, _) in tasks.iter().enumerate() {
                let pan = &panels[panel_of[t_idx]];
                base.push(jobs.len());
                for (bi, x) in pan.x_panels.iter().enumerate() {
                    jobs.push(BatchJob::gemm(x.clone(), p1s[t_idx].clone()));
                    if !cfg.use_symmetry_reduction {
                        for dir in 0..3 {
                            jobs.push(BatchJob::gemm(
                                pan.g_panels[bi][dir].clone(),
                                p1s[t_idx].clone(),
                            ));
                        }
                    }
                }
            }
            let products = dispatch_jobs(&jobs, cfg.offload, cfg.precision);
            let mut n1_out = Vec::with_capacity(t_count);
            let mut grads_out: Vec<[Vec<f64>; 3]> = Vec::with_capacity(t_count);
            for (t_idx, task) in tasks.iter().enumerate() {
                let pan = &panels[panel_of[t_idx]];
                let npts = task.scf.grid.len();
                let mut n1 = Vec::with_capacity(npts);
                let mut grad: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::with_capacity(npts));
                for (bi, x) in pan.x_panels.iter().enumerate() {
                    let rows = x.rows();
                    let xp = &products[base[t_idx] + bi * jobs_per_batch];
                    qfr_linalg::flops::add((2 * rows * x.cols()) as u64);
                    for row in 0..rows {
                        let v: f64 = xp.row(row).iter().zip(x.row(row)).map(|(a, b)| a * b).sum();
                        n1.push(v);
                    }
                    if cfg.use_symmetry_reduction {
                        for (dir, gvec) in grad.iter_mut().enumerate() {
                            let g = &pan.g_panels[bi][dir];
                            qfr_linalg::flops::add((2 * rows * x.cols()) as u64);
                            for row in 0..rows {
                                let v: f64 =
                                    xp.row(row).iter().zip(g.row(row)).map(|(a, b)| a * b).sum();
                                gvec.push(2.0 * v);
                            }
                        }
                    } else {
                        for (dir, gvec) in grad.iter_mut().enumerate() {
                            let g = &pan.g_panels[bi][dir];
                            let gp = &products[base[t_idx] + bi * jobs_per_batch + 1 + dir];
                            qfr_linalg::flops::add((4 * rows * x.cols()) as u64);
                            for row in 0..rows {
                                let a: f64 =
                                    xp.row(row).iter().zip(g.row(row)).map(|(u, v)| u * v).sum();
                                let b: f64 =
                                    gp.row(row).iter().zip(x.row(row)).map(|(u, v)| u * v).sum();
                                gvec.push(a + b);
                            }
                        }
                    }
                }
                n1_out.push(n1);
                grads_out.push(grad);
            }
            (n1_out, grads_out)
        });
        n1s = new_n1s;
        phases.n1_seconds += dt;
        phases.n1_flops += fl;

        // ---- Phase 3: Poisson + kernels. --------------------------------
        // Tasks are independent; FLOPs land in the process-global counter
        // the surrounding FlopScope reads, so parallelism keeps the phase
        // totals (and all values) deterministic.
        let (new_v1s, dt, fl) = measured("dfpt.v1", || {
            (0..t_count)
                .into_par_iter()
                .map(|t_idx| {
                    let scf = tasks[t_idx].scf;
                    let pan = &panels[panel_of[t_idx]];
                    let n1 = &n1s[t_idx];
                    let grad_n1 = &grads[t_idx];
                    let v_h1 = scf.grid.solve_poisson(n1);
                    qfr_linalg::flops::add(8 * n1.len() as u64);
                    let mut v = Vec::with_capacity(n1.len());
                    for i in 0..n1.len() {
                        let nd = scf.density[i].max(1e-10);
                        // LDA kernel: f_xc = d v_x / d n = -(1/3) Cx n^{-2/3}.
                        let lda = -(CX / 3.0) * nd.powf(-2.0 / 3.0) * n1[i];
                        // Model gradient kernel: couples ∇n and ∇n(1).
                        let grad_term: f64 =
                            (0..3).map(|d| pan.grad_n[d][i] * grad_n1[d][i]).sum::<f64>()
                                / (nd * nd);
                        v.push(v_h1[i] + lda + GRADIENT_KERNEL * grad_term);
                    }
                    v
                })
                .collect::<Vec<_>>()
        });
        v1s = new_v1s;
        phases.poisson_seconds += dt;
        phases.poisson_flops += fl;

        // ---- Phase 4: response Hamiltonians. -----------------------------
        // X^T diag(w) X is symmetric; per-batch triangle jobs, accumulated
        // in batch order (IEEE addition is commutative, so the indexed sum
        // equals the former in-place β=1 accumulation).
        let (h1_grids, dt, fl) = measured("dfpt.h1", || {
            let mut jobs: Vec<BatchJob> = Vec::new();
            let mut base = Vec::with_capacity(t_count);
            for (t_idx, task) in tasks.iter().enumerate() {
                let pan = &panels[panel_of[t_idx]];
                let n = task.scf.basis.len();
                base.push(jobs.len());
                for (b, x) in pan.batches.iter().zip(&pan.x_panels) {
                    // The weighted copy is per-job by necessity; the plain
                    // X operand is shared.
                    let mut xw = (**x).clone();
                    qfr_linalg::flops::add((x.rows() * n) as u64);
                    for (row, gi) in b.clone().enumerate() {
                        let w = v1s[t_idx][gi] * task.scf.grid.dv;
                        for v in xw.row_mut(row) {
                            *v *= w;
                        }
                    }
                    jobs.push(BatchJob::symmetric_product(xw, x.clone()));
                }
            }
            let outs = dispatch_jobs(&jobs, cfg.offload, cfg.precision);
            let mut grids = Vec::with_capacity(t_count);
            for (t_idx, task) in tasks.iter().enumerate() {
                let pan = &panels[panel_of[t_idx]];
                let n = task.scf.basis.len();
                let mut m = DMatrix::zeros(n, n);
                for bi in 0..pan.x_panels.len() {
                    m += &outs[base[t_idx] + bi];
                }
                grids.push(m);
            }
            grids
        });
        phases.h1_seconds += dt;
        phases.h1_flops += fl;

        // Damped update of each task's total perturbation.
        for (t_idx, task) in tasks.iter().enumerate() {
            let n = task.scf.basis.len();
            let target = &task.h1_ext + &h1_grids[t_idx];
            qfr_linalg::flops::add((3 * n * n) as u64);
            let next = DMatrix::from_fn(n, n, |i, j| {
                (1.0 - cfg.mixing) * h1s[t_idx][(i, j)] + cfg.mixing * target[(i, j)]
            });
            h1s[t_idx] = Arc::new(next);
        }
    }

    // The cycle's jobs are gone, so the Arcs are unique and unwrap without
    // copying.
    let unwrap = |m: Arc<DMatrix>| Arc::try_unwrap(m).unwrap_or_else(|shared| (*shared).clone());
    let results = p1s
        .into_iter()
        .zip(n1s)
        .zip(v1s)
        .zip(h1s)
        .map(|(((p1, n1), v1), h1)| ResponseResult {
            p1: unwrap(p1),
            n1,
            v1,
            h1: unwrap(h1),
            phases: CyclePhases::default(),
        })
        .collect();
    (results, phases)
}

/// Static polarizability tensor from three field responses:
/// `α_{cc'} = tr(P1^{(c)} D_{c'})` (symmetrized; the sign follows from
/// `H1_ext = -D_c`). For planar fragments in the s-only basis the
/// out-of-plane response vanishes, so α is positive *semi*-definite.
pub fn polarizability(scf: &ScfResult, cfg: &ResponseConfig) -> (DMatrix, CyclePhases) {
    let dipole = scf.basis.dipole();
    let tasks: Vec<ResponseTask<'_>> =
        (0..3).map(|c| ResponseTask { scf, h1_ext: dipole[c].scaled(-1.0) }).collect();
    let (results, phases) = solve_responses(&tasks, cfg);
    let alpha = alpha_from(scf, [&results[0].p1, &results[1].p1, &results[2].p1]);
    (alpha, phases)
}

/// Assembles the symmetrized polarizability tensor from the three field
/// response density matrices (shared with the merged displaced-SCF sweep
/// in `crate::engine`).
pub(crate) fn alpha_from(scf: &ScfResult, p1s: [&DMatrix; 3]) -> DMatrix {
    let dipole = scf.basis.dipole();
    let mut alpha = DMatrix::zeros(3, 3);
    for (c, p1) in p1s.iter().enumerate() {
        for (cp, d) in dipole.iter().enumerate() {
            alpha[(c, cp)] = crate::scf::trace_product(p1, d);
        }
    }
    alpha.symmetrize_mut();
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::ScfSolver;
    use qfr_fragment::{FragmentJob, FragmentStructure, JobKind};
    use qfr_geom::WaterBoxBuilder;

    fn water_fragment() -> FragmentStructure {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys)
    }

    fn fast_scf() -> ScfSolver {
        ScfSolver {
            config: crate::scf::ScfConfig {
                max_grid_dim: 16,
                grid_spacing: 0.5,
                ..Default::default()
            },
        }
    }

    #[test]
    fn response_density_integrates_to_zero() {
        // A field rearranges charge but conserves it: ∫ n1 = 0.
        let scf = fast_scf().solve(&water_fragment());
        let resp = field_response(&scf, 0, &ResponseConfig::default());
        // The algebraic identity tr(P1 S) = 0 is exact; the grid integral
        // carries quadrature error, so the tolerance is looser.
        let total: f64 = resp.n1.iter().sum::<f64>() * scf.grid.dv;
        assert!(total.abs() < 2e-2, "∫n1 = {total}");
    }

    #[test]
    fn p1_is_symmetric_and_traceless_in_s() {
        let scf = fast_scf().solve(&water_fragment());
        let resp = field_response(&scf, 1, &ResponseConfig::default());
        assert!(resp.p1.is_symmetric(1e-10));
        // tr(P1 S) = 0: no change in electron count.
        let tr = crate::scf::trace_product(&resp.p1, &scf.s);
        assert!(tr.abs() < 1e-8, "tr(P1 S) = {tr}");
    }

    #[test]
    fn polarizability_positive_definite() {
        let scf = fast_scf().solve(&water_fragment());
        let (alpha, phases) = polarizability(&scf, &ResponseConfig::default());
        assert!(alpha.is_symmetric(1e-10));
        let eig = qfr_linalg::eigen::symmetric_eigen(&alpha);
        assert!(
            eig.eigenvalues.iter().all(|&w| w > -1e-10),
            "alpha must be PSD: {:?}",
            eig.eigenvalues
        );
        // At least the two in-plane directions polarize.
        assert!(
            eig.eigenvalues.iter().filter(|&&w| w > 1e-6).count() >= 2,
            "alpha spectrum: {:?}",
            eig.eigenvalues
        );
        assert!(phases.total_flops() > 0);
        assert!(phases.n1_flops > 0 && phases.h1_flops > 0);
    }

    #[test]
    fn reduction_paths_agree() {
        let scf = fast_scf().solve(&water_fragment());
        let naive = field_response(
            &scf,
            2,
            &ResponseConfig { use_symmetry_reduction: false, ..Default::default() },
        );
        let fast = field_response(
            &scf,
            2,
            &ResponseConfig { use_symmetry_reduction: true, ..Default::default() },
        );
        assert!(
            naive.h1.max_abs_diff(&fast.h1) < 1e-10,
            "strength reduction changed the physics: {}",
            naive.h1.max_abs_diff(&fast.h1)
        );
        assert!(
            fast.phases.n1_flops < naive.phases.n1_flops,
            "reduced path must save phase-2 FLOPs: {} vs {}",
            fast.phases.n1_flops,
            naive.phases.n1_flops
        );
    }

    #[test]
    fn response_deterministic() {
        let scf = fast_scf().solve(&water_fragment());
        let a = field_response(&scf, 0, &ResponseConfig::default());
        let b = field_response(&scf, 0, &ResponseConfig::default());
        assert_eq!(a.h1.max_abs_diff(&b.h1), 0.0);
        assert_eq!(a.n1, b.n1);
    }

    #[test]
    fn phases_accumulate() {
        let mut a = CyclePhases { p1_seconds: 1.0, p1_flops: 10, ..Default::default() };
        let b = CyclePhases { p1_seconds: 0.5, p1_flops: 5, n1_flops: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.p1_seconds, 1.5);
        assert_eq!(a.p1_flops, 15);
        assert_eq!(a.n1_flops, 7);
        assert_eq!(a.total_flops(), 22);
    }
}
