//! Atomic-displacement DFPT cycles — the worker workload of Fig. 3.
//!
//! In QF-RAMAN each leader generates a set of atomic displacements for its
//! fragment and each worker runs a DFPT cycle per displacement. When an
//! atom moves, the basis functions anchored on it move too, which is where
//! the Fig. 6(a) expression `χᵀχ + χᵀ∇χ + ∇χᵀχ` enters the response
//! Hamiltonian (the Pulay / basis-motion term). This module builds the
//! displacement perturbation — analytic-difference core matrices plus the
//! grid Pulay kernel evaluated per batch with either the naive 3-GEMM form
//! ([`qfr_linalg::blas::cross_term_naive`]) or the symmetry-reduced 1-GEMM
//! form ([`qfr_linalg::blas::symmetric_cross_term`]) — and runs the shared
//! four-phase response loop. It also exposes the scattered GEMM job list of
//! the n(1) phase, which the elastic offloading scheme of `qfr-sched`
//! batches.

use crate::response::{solve_response, CyclePhases, ResponseConfig, ResponseResult};
use crate::scf::ScfResult;
use qfr_fragment::FragmentStructure;
use qfr_linalg::batch::GemmJob;
use qfr_linalg::blas;
use qfr_linalg::DMatrix;
use std::time::Instant;

/// Configuration of a displacement cycle.
#[derive(Debug, Clone, Copy)]
pub struct DisplacementConfig {
    /// Displaced atom (fragment-local index).
    pub atom: usize,
    /// Cartesian direction (0 = x, 1 = y, 2 = z).
    pub direction: usize,
    /// Finite-difference step for the core matrices (Å).
    pub step: f64,
    /// Response-loop settings (batching, cycles, reduction path).
    pub response: ResponseConfig,
}

impl DisplacementConfig {
    /// Default cycle for displacing `atom` along `direction`.
    pub fn new(atom: usize, direction: usize) -> Self {
        Self { atom, direction, step: 1e-3, response: ResponseConfig::default() }
    }
}

/// Cost profile of one displacement cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleProfile {
    /// The four response phases.
    pub phases: CyclePhases,
    /// Pulay (basis-motion) kernel seconds.
    pub pulay_seconds: f64,
    /// Pulay kernel FLOPs.
    pub pulay_flops: u64,
    /// Number of GEMM panel invocations issued by the Pulay kernel.
    pub pulay_gemm_calls: usize,
}

impl CycleProfile {
    /// Total wall seconds of the cycle.
    pub fn total_seconds(&self) -> f64 {
        self.phases.total_seconds() + self.pulay_seconds
    }

    /// Total FLOPs of the cycle.
    pub fn total_flops(&self) -> u64 {
        self.phases.total_flops() + self.pulay_flops
    }
}

/// Runs one displacement DFPT cycle. Returns the response and its profile.
pub fn displacement_cycle(
    scf: &ScfResult,
    frag: &FragmentStructure,
    cfg: &DisplacementConfig,
) -> (ResponseResult, CycleProfile) {
    assert!(cfg.atom < frag.n_atoms(), "displaced atom out of range");
    assert!(cfg.direction < 3, "direction must be 0..3");
    let mut profile = CycleProfile::default();

    // Bare perturbation part 1: analytic-difference core Hamiltonian.
    let h1_core = core_difference(frag, cfg);

    // Bare perturbation part 2: grid Pulay kernel via the Fig. 6(a)
    // expression, batch by batch.
    let t0 = Instant::now();
    let scope = qfr_linalg::flops::FlopScope::start();
    let (pulay, gemm_calls) = pulay_kernel(scf, cfg);
    profile.pulay_seconds = t0.elapsed().as_secs_f64();
    profile.pulay_flops = scope.finish().flops;
    profile.pulay_gemm_calls = gemm_calls;

    let h1_ext = &h1_core + &pulay;
    let resp = solve_response(scf, &h1_ext, &cfg.response);
    profile.phases = resp.phases;
    (resp, profile)
}

/// `(H_core(+h) - H_core(-h)) / 2h` with only the displaced atom's shells
/// and well moved.
fn core_difference(frag: &FragmentStructure, cfg: &DisplacementConfig) -> DMatrix {
    let shift = |sign: f64| {
        let mut moved = frag.clone();
        match cfg.direction {
            0 => moved.positions[cfg.atom].x += sign * cfg.step,
            1 => moved.positions[cfg.atom].y += sign * cfg.step,
            _ => moved.positions[cfg.atom].z += sign * cfg.step,
        }
        let b = crate::basis::Basis::for_fragment(&moved);
        &b.kinetic() + &b.external_potential()
    };
    let plus = shift(1.0);
    let minus = shift(-1.0);
    let mut d = &plus - &minus;
    d.scale_mut(1.0 / (2.0 * cfg.step));
    d
}

/// The grid Pulay kernel: per batch, the Fig. 6(a) cross-term expression
/// over the effective-potential-weighted value panel `X̃` and the
/// displaced-atom gradient panel `G_A`. Returns the accumulated matrix and
/// the number of GEMM invocations issued.
fn pulay_kernel(scf: &ScfResult, cfg: &DisplacementConfig) -> (DMatrix, usize) {
    let n = scf.basis.len();
    let batches = scf.grid.batches(cfg.response.batch_size);
    let mut total = DMatrix::zeros(n, n);
    let mut gemm_calls = 0;
    // Effective potential from the converged ground state: v_H + v_x.
    let v_h = scf.grid.solve_poisson(&scf.density);
    for b in &batches {
        let pts = &scf.grid.points[b.clone()];
        let x = scf.basis.evaluate(pts);
        let g_full = scf.basis.evaluate_gradient(pts, cfg.direction);
        // Mask the gradient to the displaced atom's shells; moving atom A
        // changes only its own basis functions (∂χ_μ/∂R_A = -∇χ_μ for
        // μ ∈ A).
        let mut g = g_full;
        for (mu, shell) in scf.basis.shells.iter().enumerate() {
            if shell.atom != cfg.atom {
                for row in 0..g.rows() {
                    g[(row, mu)] = 0.0;
                }
            } else {
                for row in 0..g.rows() {
                    g[(row, mu)] = -g[(row, mu)];
                }
            }
        }
        // Weight the value panel by v_eff dv. The model basis-motion kernel
        // is then exactly the Fig. 6(a) expression over (X̃, G):
        // W = X̃ᵀX̃ + X̃ᵀG + GᵀX̃.
        let mut xw = x.clone();
        qfr_linalg::flops::add((2 * x.rows() * n) as u64);
        for (row, gi) in b.clone().enumerate() {
            let v = (v_h[gi] - crate::scf::CX * scf.density[gi].powf(1.0 / 3.0)) * scf.grid.dv;
            for val in xw.row_mut(row) {
                *val *= v;
            }
        }
        let term = if cfg.response.use_symmetry_reduction {
            gemm_calls += 1;
            blas::symmetric_cross_term(&xw, &g)
        } else {
            gemm_calls += 3;
            blas::cross_term_naive(&xw, &g)
        };
        total += &term;
    }
    total.symmetrize_mut();
    (total, gemm_calls)
}

/// The scattered GEMM jobs of one n(1) phase: `X_batch × P1` per grid
/// batch. The elastic offloading experiments (Fig. 9 / `qfr-sched`) batch
/// these by stride-32 size class.
pub fn n1_phase_gemm_jobs(scf: &ScfResult, p1: &DMatrix, batch_size: usize) -> Vec<GemmJob> {
    scf.grid
        .batches(batch_size)
        .into_iter()
        .map(|b| {
            let x = scf.basis.evaluate(&scf.grid.points[b]);
            GemmJob::new(x, p1.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::ScfSolver;
    use qfr_fragment::{FragmentJob, JobKind};
    use qfr_geom::WaterBoxBuilder;

    fn water() -> (ScfResult, FragmentStructure) {
        let sys = WaterBoxBuilder::new(1).seed(1).build();
        let frag = FragmentJob {
            kind: JobKind::WaterMonomer { w: 0 },
            coefficient: 1.0,
            atoms: vec![0, 1, 2],
            link_hydrogens: vec![],
        }
        .structure(&sys);
        let solver = ScfSolver {
            config: crate::scf::ScfConfig {
                max_grid_dim: 16,
                grid_spacing: 0.5,
                ..Default::default()
            },
        };
        (solver.solve(&frag), frag)
    }

    #[test]
    fn cycle_runs_and_profiles() {
        let (scf, frag) = water();
        let cfg = DisplacementConfig::new(0, 2);
        let (resp, profile) = displacement_cycle(&scf, &frag, &cfg);
        assert!(resp.h1.is_symmetric(1e-9));
        assert!(profile.total_flops() > 0);
        assert!(profile.pulay_flops > 0);
        assert!(profile.phases.n1_flops > 0);
        assert!(profile.pulay_gemm_calls >= 1);
    }

    #[test]
    fn reduction_paths_identical_results() {
        let (scf, frag) = water();
        let mut cfg = DisplacementConfig::new(1, 0);
        cfg.response.use_symmetry_reduction = false;
        let (naive, prof_naive) = displacement_cycle(&scf, &frag, &cfg);
        cfg.response.use_symmetry_reduction = true;
        let (fast, prof_fast) = displacement_cycle(&scf, &frag, &cfg);
        assert!(
            naive.h1.max_abs_diff(&fast.h1) < 1e-9,
            "paths diverge: {}",
            naive.h1.max_abs_diff(&fast.h1)
        );
        assert!(
            prof_fast.pulay_flops < prof_naive.pulay_flops,
            "reduced Pulay kernel must save FLOPs ({} vs {})",
            prof_fast.pulay_flops,
            prof_naive.pulay_flops
        );
        assert!(prof_fast.pulay_gemm_calls < prof_naive.pulay_gemm_calls);
    }

    #[test]
    fn displacement_perturbation_nonzero_and_local() {
        let (scf, frag) = water();
        let cfg = DisplacementConfig::new(2, 1);
        let h1 = core_difference(&frag, &cfg);
        assert!(h1.max_abs() > 1e-6, "moving an atom must perturb the core");
        // Entries between shells on non-displaced atoms change only through
        // the well of the moved atom — much smaller than on-atom entries.
        let on_atom: f64 = scf
            .basis
            .shells
            .iter()
            .enumerate()
            .filter(|(_, s)| s.atom == 2)
            .map(|(mu, _)| h1[(mu, mu)].abs())
            .sum();
        assert!(on_atom > 0.0);
    }

    #[test]
    fn gemm_jobs_cover_grid() {
        let (scf, _frag) = water();
        let p1 = DMatrix::identity(scf.basis.len());
        let jobs = n1_phase_gemm_jobs(&scf, &p1, 128);
        let total_rows: usize = jobs.iter().map(|j| j.a.rows()).sum();
        assert_eq!(total_rows, scf.grid.len());
        for j in &jobs {
            assert_eq!(j.a.cols(), scf.basis.len());
            assert_eq!(j.b.shape(), (scf.basis.len(), scf.basis.len()));
        }
        // Many scattered small GEMMs — the premise of elastic offloading.
        assert!(jobs.len() > 8, "expected scattered jobs, got {}", jobs.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_atom_rejected() {
        let (scf, frag) = water();
        let _ = displacement_cycle(&scf, &frag, &DisplacementConfig::new(99, 0));
    }
}
