//! The gather → accelerator → scatter bridge of the DFPT hot loops.
//!
//! Every dense-algebra hot loop in this crate (SCF density and Fock
//! builds, response phases 1/2/4) funnels its kernel-tagged job stream
//! through this one chokepoint, which dispatches to
//! [`qfr_sched::CpuAccelerator`] under the caller's
//! [`OffloadMode`] and returns results in job-index order. Keeping a single
//! dispatch point makes the determinism argument local (DESIGN.md §11):
//! gather order is the loop order of the caller, execution computes each
//! job independently of its batch companions, and scatter-back is indexed —
//! so results are identical in both modes and independent of batching
//! companions.

use qfr_linalg::batch::{BatchJob, OffloadMode};
use qfr_linalg::{DMatrix, GemmPrecision};

/// Executes a gathered job stream through the shared CPU accelerator,
/// returning results in job order. `prec` selects the element width the
/// batch kernels run at ([`GemmPrecision::F64`] by default everywhere;
/// `MixedF32` is the opt-in accelerator floor of DESIGN.md §15).
pub fn dispatch_jobs(jobs: &[BatchJob], mode: OffloadMode, prec: GemmPrecision) -> Vec<DMatrix> {
    qfr_sched::CpuAccelerator.execute_jobs_prec(jobs, mode, prec).0
}
